#![warn(missing_docs)]

//! Umbrella crate for the ChGraph (HPCA'22) reproduction suite.
//!
//! Re-exports the workspace crates under one roof so the examples and
//! integration tests in this repository can `use chgraph_suite::...`.
//!
//! - [`hypergraph`] — bipartite-CSR hypergraph data model, generators,
//!   datasets, overlap statistics;
//! - [`oag`] — overlap-aware abstraction graph and chain generation;
//! - [`archsim`] — cycle-level multicore cache/NoC/DRAM simulator;
//! - [`chgraph`] — the GLA execution model, the Hygra baseline, the software
//!   GLA runtime, the ChGraph hardware engine, and the comparison baselines;
//! - [`hyperalgos`] — the six hypergraph algorithms plus the two
//!   ordinary-graph algorithms of the generality study.

pub use archsim;
pub use chgraph;
pub use hyperalgos;
pub use hypergraph;
pub use oag;
