//! `chgraphd` — the long-lived chgraph query daemon.
//!
//! ```text
//! chgraphd --addr 127.0.0.1:7411 --workers 4 --cache-dir .chgraph-cache
//! ```
//!
//! Accepts run requests (dataset × algorithm × runtime × configuration)
//! over the `chg_serve` protocol, executes them on a bounded worker pool,
//! and keeps hot prepared artifacts in an in-memory LRU backed by the
//! on-disk preprocess cache. `chgraph-cli submit` / `serve-stats` are the
//! matching clients.
//!
//! SIGINT and SIGTERM trigger a graceful drain: intake stops, queued and
//! in-flight runs finish and reply, and the process exits 0. A protocol
//! `shutdown` request does the same (the script-friendly path).

use chg_serve::{ServeConfig, Server};
use chgraph::WatchdogConfig;
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set from the signal handler; polled by the bridge thread.
static SIGNALED: AtomicBool = AtomicBool::new(false);

/// Installs a graceful-shutdown handler for `signum` via the C `signal`
/// symbol std already links, avoiding any new dependency. The handler body
/// is a single atomic store — async-signal-safe.
fn install_signal(signum: i32) {
    extern "C" fn on_signal(_signum: i32) {
        SIGNALED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    unsafe {
        signal(signum, on_signal as *const () as usize);
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  chgraphd [--addr <host:port>]   (default 127.0.0.1:7411; port 0 = ephemeral)\n\
         \x20          [--workers <n>]         (default 2)\n\
         \x20          [--queue <n>]           (bounded queue capacity, default 16)\n\
         \x20          [--graph-lru <n>]       (resident graphs, default 8)\n\
         \x20          [--oag-lru <n>]         (resident prepared-OAG pairs, default 8)\n\
         \x20          [--cache-dir <dir>]     (on-disk preprocess cache; off by default)\n\
         \x20          [--threads <n>]         (host threads per OAG build, default 1)\n\
         \x20          [--max-cycles <n>]      (default per-request cycle budget)\n\
         \x20          [--max-wall-ms <n>]     (default per-request wall-clock budget)\n\
         \x20          [--read-timeout-ms <n>] (per-read quiet period mid-frame, default 30000)\n\
         \x20          [--write-timeout-ms <n>](per-reply write budget, default 30000)\n\
         \x20          [--frame-deadline-ms <n>] (total per-frame budget, default 60000)\n\
         \x20          [--max-conns <n>]       (concurrent connection cap, default 64)\n\
         \x20          [--shed-ms <n>]         (degraded mode: shed when queue-wait p95\n\
         \x20                                   exceeds this; off by default)\n\
         \x20          [--dedup <n>]           (request-key single-flight slots, default 128)"
    );
    ExitCode::FAILURE
}

fn parse_flags(args: &[String]) -> Option<HashMap<String, String>> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].strip_prefix("--")?;
        let value = args.get(i + 1)?.clone();
        map.insert(key.to_string(), value);
        i += 2;
    }
    Some(map)
}

fn run(flags: HashMap<String, String>) -> Result<(), String> {
    let get_num = |key: &str, default: usize| -> Result<usize, String> {
        match flags.get(key) {
            Some(v) => v.parse().map_err(|_| format!("bad --{key}")),
            None => Ok(default),
        }
    };
    let mut watchdog = WatchdogConfig::default();
    if let Some(n) = flags.get("max-cycles") {
        watchdog.max_cycles = Some(n.parse().map_err(|_| "bad --max-cycles")?);
    }
    if let Some(n) = flags.get("max-wall-ms") {
        watchdog.max_wall =
            Some(Duration::from_millis(n.parse().map_err(|_| "bad --max-wall-ms")?));
    }
    let defaults = ServeConfig::default();
    let cfg = ServeConfig {
        workers: get_num("workers", 2)?.max(1),
        queue_capacity: get_num("queue", 16)?.max(1),
        graph_lru: get_num("graph-lru", 8)?.max(1),
        oag_lru: get_num("oag-lru", 8)?.max(1),
        cache_dir: flags.get("cache-dir").cloned(),
        default_watchdog: watchdog,
        oag_build_threads: get_num("threads", 1)?.max(1),
        read_timeout: Duration::from_millis(
            get_num("read-timeout-ms", defaults.read_timeout.as_millis() as usize)?.max(1) as u64,
        ),
        write_timeout: Duration::from_millis(
            get_num("write-timeout-ms", defaults.write_timeout.as_millis() as usize)?.max(1) as u64,
        ),
        frame_deadline: Duration::from_millis(
            get_num("frame-deadline-ms", defaults.frame_deadline.as_millis() as usize)?.max(1)
                as u64,
        ),
        max_connections: get_num("max-conns", defaults.max_connections)?.max(1),
        shed_queue_wait: flags
            .get("shed-ms")
            .map(|v| v.parse().map(Duration::from_millis).map_err(|_| "bad --shed-ms"))
            .transpose()?,
        dedup_capacity: get_num("dedup", defaults.dedup_capacity)?.max(1),
        // The daemon is long-lived and restartable: converge the cache to a
        // residue-free state after any crash instead of keeping post-mortem
        // copies around forever.
        recover_cache: true,
    };
    let addr = flags.get("addr").map(String::as_str).unwrap_or("127.0.0.1:7411");

    let server = Server::bind(addr, cfg.clone()).map_err(|e| format!("bind {addr}: {e}"))?;
    let local = server.local_addr().map_err(|e| format!("local_addr: {e}"))?;
    // The exact line scripts wait for (the port matters under --addr ...:0).
    println!(
        "chgraphd listening on {local} ({} workers, queue {})",
        cfg.workers, cfg.queue_capacity
    );

    install_signal(2); // SIGINT
    install_signal(15); // SIGTERM
    let handle = server.shutdown_handle();
    std::thread::spawn(move || {
        while !SIGNALED.load(Ordering::SeqCst) {
            if handle.is_shutdown() {
                return; // protocol-initiated shutdown; nothing to bridge
            }
            std::thread::sleep(Duration::from_millis(25));
        }
        eprintln!("[chgraphd: signal received, draining]");
        handle.shutdown();
    });

    let stats = server.run().map_err(|e| format!("serve: {e}"))?;
    println!(
        "chgraphd drained: {} requests ({} ok, {} failed, {} rejected), uptime {}s",
        stats.requests.received,
        stats.requests.ok,
        stats.requests.failed,
        stats.requests.rejected_overload,
        stats.uptime_secs
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(flags) = parse_flags(&args) else {
        return usage();
    };
    match run(flags) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
