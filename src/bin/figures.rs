//! Regenerates the paper's tables and figures.
//!
//! ```text
//! figures <artifact> [--scale <f>] [--threads <n>] [--cache-dir <dir>] [--no-cache]
//!         [--self-check] [--validate]
//!
//! artifacts: table1 table2 fig2 fig3 fig5 fig7 fig8 fig14 fig15 fig16
//!            fig17 fig18 fig19 fig20 fig21 fig22 fig23 fig24 fig25 area all
//! ```
//!
//! `--scale` shrinks the stand-in datasets multiplicatively for smoke runs
//! (default 1.0, the configuration EXPERIMENTS.md records). `--threads`
//! fans the independent grid simulations across worker threads (default:
//! the host's available parallelism); every artifact is bit-identical for
//! any thread count, and the run log (thread count, timings, cache
//! summary) goes to stderr so stdout stays reproducible. `--cache-dir`
//! persists preprocessing artifacts (loaded graphs and built OAGs) between
//! invocations (default `target/preprocess-cache`; `--no-cache` disables).
//!
//! `--self-check` diffs every grid execution against the naive reference
//! implementation, and `--validate` enables deep structural checks (input,
//! OAGs, per-schedule chain covers). With either guard, a tripped cell is
//! recorded as a failed cell (retried once, reported on stderr, non-zero
//! exit) while the rest of the grid completes — guards never abort the run.

use chg_bench::figures::{self, Harness};
use chg_bench::{default_threads, PreprocessCache, Scale};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

const ARTIFACTS: &[&str] = &[
    "table1", "table2", "fig2", "fig3", "fig5", "fig7", "fig8", "fig14", "fig15", "fig16", "fig17",
    "fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "fig24", "fig25", "area", "energy",
    "chains",
];

fn usage() -> ExitCode {
    eprintln!(
        "usage: figures <artifact|all> [--scale <f>] [--threads <n>] [--cache-dir <dir>] \
         [--no-cache] [--self-check] [--validate]"
    );
    eprintln!("artifacts: {}", ARTIFACTS.join(" "));
    ExitCode::FAILURE
}

/// Emits one artifact with panic isolation: a cell that keeps failing
/// after the harness's retry unwinds out of the figure function, and is
/// converted here into a stderr report instead of aborting the remaining
/// artifacts. Returns `Err(())` for an unknown artifact name.
fn emit_isolated(artifact: &str, h: &Harness) -> Result<bool, ()> {
    match catch_unwind(AssertUnwindSafe(|| emit(artifact, h))) {
        Ok(known) => {
            if known {
                Ok(true)
            } else {
                Err(())
            }
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            eprintln!("[{artifact} FAILED: {msg}]");
            Ok(false)
        }
    }
}

fn emit(artifact: &str, h: &Harness) -> bool {
    let t0 = Instant::now();
    match artifact {
        "table1" => println!("{}", figures::table1()),
        "table2" => println!("{}", figures::table2(h.scale)),
        "fig2" => println!("{}", figures::fig2(h)),
        "fig3" => println!("{}", figures::fig3(h)),
        "fig5" => println!("{}", figures::fig5(h)),
        "fig7" => println!("{}", figures::fig7(h)),
        "fig8" => println!("{}", figures::fig8(h)),
        "fig14" => println!("{}", figures::fig14(h)),
        "fig15" => println!("{}", figures::fig15(h)),
        "fig16" => println!("{}", figures::fig16(h)),
        "fig17" => println!("{}", figures::fig17(h)),
        "fig18" => println!("{}", figures::fig18(h)),
        "fig19" => println!("{}", figures::fig19(h)),
        "fig20" => println!("{}", figures::fig20(h)),
        "fig21" => println!("{}", figures::fig21(h)),
        "fig22" => println!("{}", figures::fig22(h)),
        "fig23" => println!("{}", figures::fig23(h)),
        "fig24" => println!("{}", figures::fig24(h)),
        "fig25" => println!("{}", figures::fig25(h)),
        "area" => println!("{}", figures::area_table()),
        "energy" => println!("{}", figures::energy(h)),
        "chains" => println!("{}", figures::chains(h)),
        _ => return false,
    }
    eprintln!("[{artifact} took {:.1?}]", t0.elapsed());
    true
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut artifact = None;
    let mut scale = Scale::FULL;
    let mut threads = default_threads();
    let mut cache_dir = Some(String::from("target/preprocess-cache"));
    let mut self_check = false;
    let mut validate = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--self-check" => self_check = true,
            "--validate" => validate = true,
            "--scale" => {
                let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    return usage();
                };
                scale = Scale(v);
            }
            "--threads" => {
                let Some(v) = it.next().and_then(|v| v.parse::<usize>().ok()) else {
                    return usage();
                };
                threads = v.max(1);
            }
            "--cache-dir" => {
                let Some(v) = it.next() else {
                    return usage();
                };
                cache_dir = Some(v.clone());
            }
            "--no-cache" => cache_dir = None,
            "-h" | "--help" => return usage(),
            other if artifact.is_none() => artifact = Some(other.to_string()),
            _ => return usage(),
        }
    }
    let Some(artifact) = artifact else {
        return usage();
    };
    let mut h = Harness::new(scale).with_threads(threads).with_self_check(self_check);
    if validate {
        h.cfg = h.cfg.with_validate(true);
    }
    if let Some(dir) = cache_dir {
        match PreprocessCache::new(&dir) {
            Ok(cache) => h = h.with_cache(Arc::new(cache)),
            Err(e) => eprintln!("[cache disabled: cannot open {dir}: {e}]"),
        }
    }
    eprintln!("[{threads} worker thread(s)]");
    let t0 = Instant::now();
    // Artifacts are emitted even when some cells fail: each one is
    // panic-isolated, failed cells have already been retried once by the
    // harness, and the exit code reflects whether anything was lost.
    let mut emitted_ok = true;
    if artifact == "all" {
        for a in ARTIFACTS {
            match emit_isolated(a, &h) {
                Ok(ok) => emitted_ok &= ok,
                Err(()) => return usage(),
            }
        }
    } else {
        match emit_isolated(&artifact, &h) {
            Ok(ok) => emitted_ok = ok,
            Err(()) => return usage(),
        }
    }
    if let Some(cache) = h.cache() {
        eprintln!("[{}]", cache.summary());
    }
    let failures = h.cell_failures();
    for f in &failures {
        eprintln!("[failed cell after retry: {f}]");
    }
    eprintln!("[total {:.1?}]", t0.elapsed());
    if emitted_ok && failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        eprintln!("[exiting non-zero: {} artifact/cell failure(s)]", failures.len().max(1));
        ExitCode::FAILURE
    }
}
