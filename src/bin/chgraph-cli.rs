//! Command-line front end: run any workload on any input under any runtime
//! on the simulated machine, and print the execution report.
//!
//! ```text
//! chgraph-cli run --workload pr --runtime chgraph --dataset WEB
//! chgraph-cli run --workload bfs --runtime hygra --input my.hgr --cores 8
//! chgraph-cli stats --dataset LJ
//! chgraph-cli gen --vertices 10000 --hyperedges 4000 --out my.hgr
//! ```
//!
//! Input files use the hMETIS-like text format of `hypergraph::io`.

use archsim::SystemConfig;
use chgraph::{
    ChGraphRuntime, GlaRuntime, HatsVRuntime, HygraRuntime, PrefetcherRuntime, RunConfig, Runtime,
};
use hyperalgos::{self_check, try_run_workload, Workload};
use hypergraph::datasets::Dataset;
use hypergraph::{stats, Hypergraph, Side};
use std::collections::HashMap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  chgraph-cli run --workload <bfs|pr|mis|bc|cc|kcore|sssp|adsorption>\n\
         \x20                 --runtime <hygra|gla|chgraph|hcg|hats|prefetcher>\n\
         \x20                 (--dataset <FS|OK|LJ|WEB|OG> | --input <file.hgr>)\n\
         \x20                 [--cores <n>] [--dmax <n>] [--wmin <n>] [--iters <n>]\n\
         \x20                 [--threads <n>]  (host threads for OAG construction;\n\
         \x20                                   default: available parallelism, output\n\
         \x20                                   is bit-identical for any value)\n\
         \x20                 [--validate]     (deep structural checks: input, OAGs,\n\
         \x20                                   and per-schedule chain-cover proofs)\n\
         \x20                 [--self-check]   (diff the result against the naive\n\
         \x20                                   reference implementation)\n\
         \x20                 [--max-cycles <n>]  (watchdog: fail with a typed error\n\
         \x20                                      once the simulated cycle budget\n\
         \x20                                      is exhausted)\n\
         \x20 chgraph-cli stats (--dataset <..> | --input <file.hgr>)\n\
         \x20 chgraph-cli gen --vertices <n> --hyperedges <n> --out <file.hgr> [--seed <n>]"
    );
    ExitCode::FAILURE
}

fn parse_flags(args: &[String]) -> Option<HashMap<String, String>> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].strip_prefix("--")?;
        // Boolean flags (`--validate`) may appear bare: when the next token
        // is another flag (or absent), the value defaults to "true".
        let value = match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => {
                i += 2;
                v.clone()
            }
            _ => {
                i += 1;
                "true".to_string()
            }
        };
        map.insert(key.to_string(), value);
    }
    Some(map)
}

/// `true` when a boolean flag is present (bare or `--flag true`).
fn flag_on(flags: &HashMap<String, String>, key: &str) -> bool {
    flags.get(key).map(String::as_str) == Some("true")
}

fn load_input(flags: &HashMap<String, String>) -> Result<Hypergraph, String> {
    if let Some(ds) = flags.get("dataset") {
        let dataset = Dataset::ALL
            .into_iter()
            .find(|d| d.abbrev().eq_ignore_ascii_case(ds))
            .ok_or_else(|| format!("unknown dataset {ds:?}"))?;
        return Ok(dataset.load());
    }
    if let Some(path) = flags.get("input") {
        let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        return hypergraph::io::read_text(std::io::BufReader::new(file))
            .map_err(|e| format!("parse {path}: {e}"));
    }
    Err("need --dataset or --input".into())
}

fn pick_workload(name: &str) -> Option<Workload> {
    Some(match name.to_ascii_lowercase().as_str() {
        "bfs" => Workload::Bfs,
        "pr" | "pagerank" => Workload::Pr,
        "mis" => Workload::Mis,
        "bc" => Workload::Bc,
        "cc" => Workload::Cc,
        "kcore" | "k-core" => Workload::KCore,
        "sssp" => Workload::Sssp,
        "adsorption" => Workload::Adsorption,
        _ => return None,
    })
}

fn pick_runtime(name: &str) -> Option<Box<dyn Runtime>> {
    Some(match name.to_ascii_lowercase().as_str() {
        "hygra" => Box::new(HygraRuntime),
        "gla" => Box::new(GlaRuntime),
        "chgraph" => Box::new(ChGraphRuntime::new()),
        "hcg" => Box::new(ChGraphRuntime::hcg_only()),
        "hats" | "hats-v" => Box::new(HatsVRuntime),
        "prefetcher" => Box::new(PrefetcherRuntime),
        _ => return None,
    })
}

fn cmd_run(flags: HashMap<String, String>) -> Result<(), String> {
    let mut g = load_input(&flags)?;
    let workload = flags
        .get("workload")
        .and_then(|w| pick_workload(w))
        .ok_or("missing or unknown --workload")?;
    let runtime =
        flags.get("runtime").and_then(|r| pick_runtime(r)).ok_or("missing or unknown --runtime")?;
    let mut cfg = RunConfig::new()
        .with_oag_build_threads(std::thread::available_parallelism().map_or(1, |n| n.get()));
    if let Some(t) = flags.get("threads") {
        cfg = cfg.with_oag_build_threads(t.parse().map_err(|_| "bad --threads")?);
    }
    if let Some(c) = flags.get("cores") {
        let cores: usize = c.parse().map_err(|_| "bad --cores")?;
        cfg = cfg.with_system(SystemConfig::scaled(cores));
    }
    if let Some(d) = flags.get("dmax") {
        cfg = cfg.with_chain(oag::ChainConfig::new(d.parse().map_err(|_| "bad --dmax")?));
    }
    if let Some(w) = flags.get("wmin") {
        cfg = cfg.with_oag(oag::OagConfig::new().with_w_min(w.parse().map_err(|_| "bad --wmin")?));
    }
    if let Some(n) = flags.get("iters") {
        cfg = cfg.with_max_iterations(n.parse().map_err(|_| "bad --iters")?);
    }
    if flag_on(&flags, "validate") {
        cfg = cfg.with_validate(true);
    }
    if let Some(n) = flags.get("max-cycles") {
        cfg = cfg.with_max_cycles(n.parse().map_err(|_| "bad --max-cycles")?);
    }
    if flag_on(&flags, "partition") {
        let parts = hypergraph::partition::streaming_partition(&g, cfg.system.num_cores);
        let (reordered, _) = hypergraph::partition::apply_hyperedge_partition(&g, &parts);
        g = reordered;
        println!("applied overlap-aware partitioning into {} parts", cfg.system.num_cores);
    }
    println!(
        "input: {} vertices, {} hyperedges, {} bipartite edges\n",
        g.num_vertices(),
        g.num_hyperedges(),
        g.num_bipartite_edges()
    );
    if flag_on(&flags, "self-check") {
        let checked =
            self_check(workload, runtime.as_ref(), &g, &cfg).map_err(|e| format!("{e}"))?;
        println!("self-check passed: {} elements match the reference\n", checked.elements_checked);
        print!("{}", checked.report);
    } else {
        let report =
            try_run_workload(workload, runtime.as_ref(), &g, &cfg).map_err(|e| format!("{e}"))?;
        print!("{report}");
    }
    Ok(())
}

fn cmd_stats(flags: HashMap<String, String>) -> Result<(), String> {
    let g = load_input(&flags)?;
    println!("vertices:        {}", g.num_vertices());
    println!("hyperedges:      {}", g.num_hyperedges());
    println!("bipartite edges: {}", g.num_bipartite_edges());
    for side in [Side::Vertex, Side::Hyperedge] {
        let d = stats::degree_stats(&g, side);
        println!(
            "{side} degrees:  min {} / median {} / mean {:.1} / max {}",
            d.min, d.median, d.mean, d.max
        );
    }
    for k in [2usize, 4, 7] {
        println!(
            "shared by >= {k} hyperedges: {:.1}% of vertices",
            stats::sharable_ratio(&g, Side::Vertex, k) * 100.0
        );
    }
    Ok(())
}

fn cmd_gen(flags: HashMap<String, String>) -> Result<(), String> {
    let nv: usize = flags.get("vertices").and_then(|v| v.parse().ok()).ok_or("bad --vertices")?;
    let nh: usize =
        flags.get("hyperedges").and_then(|v| v.parse().ok()).ok_or("bad --hyperedges")?;
    let seed: u64 = flags.get("seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let out = flags.get("out").ok_or("missing --out")?;
    let g = hypergraph::generate::GeneratorConfig::new(nv, nh).with_seed(seed).generate();
    let file = std::fs::File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    hypergraph::io::write_text(&g, std::io::BufWriter::new(file))
        .map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {} ({} bipartite edges)", out, g.num_bipartite_edges());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let Some(flags) = parse_flags(rest) else {
        return usage();
    };
    // Panic isolation: a workload or simulator bug becomes a clean error
    // exit with a message, never an abort trace reaching the caller.
    let result = std::panic::catch_unwind(move || match cmd.as_str() {
        "run" => Some(cmd_run(flags)),
        "stats" => Some(cmd_stats(flags)),
        "gen" => Some(cmd_gen(flags)),
        _ => None,
    });
    match result {
        Ok(None) => usage(),
        Ok(Some(Ok(()))) => ExitCode::SUCCESS,
        Ok(Some(Err(e))) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            eprintln!("error: internal panic: {msg}");
            ExitCode::FAILURE
        }
    }
}
