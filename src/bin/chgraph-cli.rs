//! Command-line front end: run any workload on any input under any runtime
//! on the simulated machine, and print the execution report.
//!
//! ```text
//! chgraph-cli run --workload pr --runtime chgraph --dataset WEB
//! chgraph-cli run --workload bfs --runtime hygra --input my.hgr --cores 8
//! chgraph-cli run --workload pr --runtime chgraph --dataset LJ --json
//! chgraph-cli stats --dataset LJ
//! chgraph-cli gen --vertices 10000 --hyperedges 4000 --out my.hgr
//! chgraph-cli submit --addr 127.0.0.1:7411 --workload pr --runtime chgraph --dataset LJ
//! chgraph-cli serve-stats --addr 127.0.0.1:7411
//! ```
//!
//! Input files use the hMETIS-like text format of `hypergraph::io`.
//! `submit` and `serve-stats` talk to a running `chgraphd`; `run --json`
//! emits the same [`chg_serve::RunResult`] schema the daemon replies with,
//! so scripted consumers are agnostic to where a run executed.

use archsim::SystemConfig;
use chg_serve::WireMessage;
use chgraph::{
    ChGraphRuntime, GlaRuntime, HatsVRuntime, HygraRuntime, PrefetcherRuntime, RunConfig, Runtime,
};
use hyperalgos::{self_check, try_run_workload, Workload};
use hypergraph::datasets::Dataset;
use hypergraph::{stats, Hypergraph, Side};
use std::collections::HashMap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  chgraph-cli run --workload <bfs|pr|mis|bc|cc|kcore|sssp|adsorption>\n\
         \x20                 --runtime <hygra|gla|chgraph|hcg|hats|prefetcher>\n\
         \x20                 (--dataset <FS|OK|LJ|WEB|OG> | --input <file.hgr>)\n\
         \x20                 [--cores <n>] [--dmax <n>] [--wmin <n>] [--iters <n>]\n\
         \x20                 [--threads <n>]  (host threads for OAG construction;\n\
         \x20                                   default: available parallelism, output\n\
         \x20                                   is bit-identical for any value)\n\
         \x20                 [--validate]     (deep structural checks: input, OAGs,\n\
         \x20                                   and per-schedule chain-cover proofs)\n\
         \x20                 [--self-check]   (diff the result against the naive\n\
         \x20                                   reference implementation)\n\
         \x20                 [--max-cycles <n>]  (watchdog: fail with a typed error\n\
         \x20                                      once the simulated cycle budget\n\
         \x20                                      is exhausted)\n\
         \x20                 [--json]         (emit the chg_serve RunResult schema)\n\
         \x20 chgraph-cli stats (--dataset <..> | --input <file.hgr>)\n\
         \x20 chgraph-cli gen --vertices <n> --hyperedges <n> --out <file.hgr> [--seed <n>]\n\
         \x20 chgraph-cli submit --addr <host:port> --workload <..> --runtime <..>\n\
         \x20                 --dataset <..> [--scale <f>] [--cores <n>] [--dmax <n>]\n\
         \x20                 [--wmin <n>] [--iters <n>] [--max-cycles <n>]\n\
         \x20                 [--max-wall-ms <n>] [--repeat <n>] [--validate]\n\
         \x20                 [--self-check] [--json]\n\
         \x20                 [--retries <n>]      (retry transient failures with\n\
         \x20                                       backoff + jitter; default 1 = none)\n\
         \x20                 [--retry-base-ms <n>] [--request-key <key>]\n\
         \x20 chgraph-cli serve-stats --addr <host:port> [--json]"
    );
    ExitCode::FAILURE
}

fn parse_flags(args: &[String]) -> Option<HashMap<String, String>> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].strip_prefix("--")?;
        // Boolean flags (`--validate`) may appear bare: when the next token
        // is another flag (or absent), the value defaults to "true".
        let value = match args.get(i + 1) {
            Some(v) if !v.starts_with("--") => {
                i += 2;
                v.clone()
            }
            _ => {
                i += 1;
                "true".to_string()
            }
        };
        map.insert(key.to_string(), value);
    }
    Some(map)
}

/// `true` when a boolean flag is present (bare or `--flag true`).
fn flag_on(flags: &HashMap<String, String>, key: &str) -> bool {
    flags.get(key).map(String::as_str) == Some("true")
}

fn load_input(flags: &HashMap<String, String>) -> Result<Hypergraph, String> {
    if let Some(ds) = flags.get("dataset") {
        let dataset = Dataset::ALL
            .into_iter()
            .find(|d| d.abbrev().eq_ignore_ascii_case(ds))
            .ok_or_else(|| format!("unknown dataset {ds:?}"))?;
        return Ok(dataset.load());
    }
    if let Some(path) = flags.get("input") {
        let file = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        return hypergraph::io::read_text(std::io::BufReader::new(file))
            .map_err(|e| format!("parse {path}: {e}"));
    }
    Err("need --dataset or --input".into())
}

fn pick_workload(name: &str) -> Option<Workload> {
    Some(match name.to_ascii_lowercase().as_str() {
        "bfs" => Workload::Bfs,
        "pr" | "pagerank" => Workload::Pr,
        "mis" => Workload::Mis,
        "bc" => Workload::Bc,
        "cc" => Workload::Cc,
        "kcore" | "k-core" => Workload::KCore,
        "sssp" => Workload::Sssp,
        "adsorption" => Workload::Adsorption,
        _ => return None,
    })
}

fn pick_runtime(name: &str) -> Option<Box<dyn Runtime>> {
    Some(match name.to_ascii_lowercase().as_str() {
        "hygra" => Box::new(HygraRuntime),
        "gla" => Box::new(GlaRuntime),
        "chgraph" => Box::new(ChGraphRuntime::new()),
        "hcg" => Box::new(ChGraphRuntime::hcg_only()),
        "hats" | "hats-v" => Box::new(HatsVRuntime),
        "prefetcher" => Box::new(PrefetcherRuntime),
        _ => return None,
    })
}

fn cmd_run(flags: HashMap<String, String>) -> Result<(), String> {
    let mut g = load_input(&flags)?;
    let workload = flags
        .get("workload")
        .and_then(|w| pick_workload(w))
        .ok_or("missing or unknown --workload")?;
    let runtime =
        flags.get("runtime").and_then(|r| pick_runtime(r)).ok_or("missing or unknown --runtime")?;
    let mut cfg = RunConfig::new().with_oag_build_threads(chg_bench::default_threads());
    if let Some(t) = flags.get("threads") {
        cfg = cfg.with_oag_build_threads(t.parse().map_err(|_| "bad --threads")?);
    }
    if let Some(c) = flags.get("cores") {
        let cores: usize = c.parse().map_err(|_| "bad --cores")?;
        cfg = cfg.with_system(SystemConfig::scaled(cores));
    }
    if let Some(d) = flags.get("dmax") {
        cfg = cfg.with_chain(oag::ChainConfig::new(d.parse().map_err(|_| "bad --dmax")?));
    }
    if let Some(w) = flags.get("wmin") {
        cfg = cfg.with_oag(oag::OagConfig::new().with_w_min(w.parse().map_err(|_| "bad --wmin")?));
    }
    if let Some(n) = flags.get("iters") {
        cfg = cfg.with_max_iterations(n.parse().map_err(|_| "bad --iters")?);
    }
    if flag_on(&flags, "validate") {
        cfg = cfg.with_validate(true);
    }
    if let Some(n) = flags.get("max-cycles") {
        cfg = cfg.with_max_cycles(n.parse().map_err(|_| "bad --max-cycles")?);
    }
    if flag_on(&flags, "partition") {
        let parts = hypergraph::partition::streaming_partition(&g, cfg.system.num_cores);
        let (reordered, _) = hypergraph::partition::apply_hyperedge_partition(&g, &parts);
        g = reordered;
        println!("applied overlap-aware partitioning into {} parts", cfg.system.num_cores);
    }
    let json = flag_on(&flags, "json");
    if !json {
        println!(
            "input: {} vertices, {} hyperedges, {} bipartite edges\n",
            g.num_vertices(),
            g.num_hyperedges(),
            g.num_bipartite_edges()
        );
    }
    let self_checked = flag_on(&flags, "self-check");
    let started = std::time::Instant::now();
    let report = if self_checked {
        let checked =
            self_check(workload, runtime.as_ref(), &g, &cfg).map_err(|e| format!("{e}"))?;
        if !json {
            println!(
                "self-check passed: {} elements match the reference\n",
                checked.elements_checked
            );
        }
        checked.report
    } else {
        try_run_workload(workload, runtime.as_ref(), &g, &cfg).map_err(|e| format!("{e}"))?
    };
    if json {
        // The same RunResult schema a daemon reply carries; a local run has
        // no artifact store, and its preparation happens inside execution.
        let result = chg_serve::run_result_from_report(
            &report,
            self_checked,
            chg_serve::ArtifactSource::NotApplicable,
            0,
            started.elapsed().as_micros() as u64,
        );
        print!("{}", result.to_json().pretty());
    } else {
        print!("{report}");
    }
    Ok(())
}

fn cmd_submit(flags: HashMap<String, String>) -> Result<(), String> {
    let addr = flags.get("addr").map(String::as_str).unwrap_or("127.0.0.1:7411");
    let workload = flags.get("workload").ok_or("missing --workload")?;
    let runtime = flags.get("runtime").ok_or("missing --runtime")?;
    let dataset = flags.get("dataset").ok_or("missing --dataset")?;
    let mut req = chg_serve::RunRequest::new(workload.clone(), runtime.clone(), dataset.clone());
    if let Some(v) = flags.get("scale") {
        req.scale = v.parse().map_err(|_| "bad --scale")?;
    }
    if let Some(v) = flags.get("cores") {
        req.cores = Some(v.parse().map_err(|_| "bad --cores")?);
    }
    if let Some(v) = flags.get("wmin") {
        req.wmin = Some(v.parse().map_err(|_| "bad --wmin")?);
    }
    if let Some(v) = flags.get("dmax") {
        req.dmax = Some(v.parse().map_err(|_| "bad --dmax")?);
    }
    if let Some(v) = flags.get("iters") {
        req.iters = Some(v.parse().map_err(|_| "bad --iters")?);
    }
    if let Some(v) = flags.get("max-cycles") {
        req.max_cycles = Some(v.parse().map_err(|_| "bad --max-cycles")?);
    }
    if let Some(v) = flags.get("max-wall-ms") {
        req.max_wall_ms = Some(v.parse().map_err(|_| "bad --max-wall-ms")?);
    }
    if let Some(v) = flags.get("repeat") {
        req.repeat = v.parse().map_err(|_| "bad --repeat")?;
    }
    req.self_check = flag_on(&flags, "self-check");
    req.validate = flag_on(&flags, "validate");
    req.request_key = flags.get("request-key").cloned();
    let retries: u32 = match flags.get("retries") {
        Some(v) => v.parse().map_err(|_| "bad --retries")?,
        None => 1,
    };
    let result = if retries > 1 {
        let mut policy = chg_serve::RetryPolicy::with_attempts(retries);
        if let Some(v) = flags.get("retry-base-ms") {
            policy.base =
                std::time::Duration::from_millis(v.parse().map_err(|_| "bad --retry-base-ms")?);
        }
        let outcome =
            chg_serve::Client::run_with_retry(addr, req, policy).map_err(|e| format!("{e}"))?;
        if outcome.attempts > 1 {
            eprintln!(
                "[submit: succeeded on attempt {} after {} ms of backoff]",
                outcome.attempts,
                outcome.backoff_total.as_millis()
            );
        }
        outcome.result
    } else {
        let mut client =
            chg_serve::Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        client.run(req).map_err(|e| format!("{e}"))?
    };
    if flag_on(&flags, "json") {
        print!("{}", result.to_json().pretty());
    } else {
        println!("runtime:          {}", result.runtime);
        println!("algorithm:        {}", result.algorithm);
        println!("iterations:       {}", result.iterations);
        println!("cycles:           {}", result.cycles);
        println!("dram accesses:    {}", result.dram_accesses);
        println!("fingerprint:      {}", result.fingerprint);
        println!("artifact source:  {}", result.artifact_source.as_str());
        println!("self-checked:     {}", result.self_checked);
        println!("prepare latency:  {} us", result.prepare_micros);
        println!("execute latency:  {} us", result.execute_micros);
    }
    Ok(())
}

fn cmd_serve_stats(flags: HashMap<String, String>) -> Result<(), String> {
    let addr = flags.get("addr").map(String::as_str).unwrap_or("127.0.0.1:7411");
    let mut client =
        chg_serve::Client::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let stats = client.stats().map_err(|e| format!("{e}"))?;
    if flag_on(&flags, "json") {
        print!("{}", stats.to_json().pretty());
        return Ok(());
    }
    println!("uptime:          {} s", stats.uptime_secs);
    println!("workers:         {}", stats.workers);
    println!(
        "queue:           {} in flight / {} capacity",
        stats.queue_depth, stats.queue_capacity
    );
    let r = &stats.requests;
    println!(
        "requests:        {} received ({} ok, {} failed, {} overloaded, {} protocol errors)",
        r.received, r.ok, r.failed, r.rejected_overload, r.protocol_errors
    );
    println!(
        "resilience:      {} deduped (request_key), {} shed (degraded mode)",
        r.deduped, r.shed
    );
    let c = &stats.closes;
    println!(
        "closes by cause: {} clean, {} read-timeout, {} write-timeout, {} frame-deadline, \
         {} reset, {} protocol, {} conn-cap",
        c.clean, c.read_timeout, c.write_timeout, c.frame_deadline, c.reset, c.protocol, c.conn_cap
    );
    let a = &stats.artifacts;
    println!(
        "artifact LRU:    graphs {} hit / {} miss, oags {} hit / {} miss, {} coalesced, {} evicted",
        a.graph_hits, a.graph_misses, a.oag_hits, a.oag_misses, a.coalesced, a.evictions
    );
    let d = &stats.disk_cache;
    if d.enabled {
        println!(
            "disk cache:      graphs {} hit / {} miss, oags {} hit / {} miss, {} quarantined",
            d.graph_hits, d.graph_misses, d.oag_hits, d.oag_misses, d.quarantined
        );
    } else {
        println!("disk cache:      disabled");
    }
    for (name, l) in [
        ("prepare", &stats.prepare_latency),
        ("execute", &stats.execute_latency),
        ("total", &stats.total_latency),
        ("queue", &stats.queue_wait_latency),
    ] {
        println!(
            "{name:<8} latency: p50 {} / p95 {} / p99 {} / max {} us ({} samples)",
            l.p50_micros, l.p95_micros, l.p99_micros, l.max_micros, l.count
        );
    }
    Ok(())
}

fn cmd_stats(flags: HashMap<String, String>) -> Result<(), String> {
    let g = load_input(&flags)?;
    println!("vertices:        {}", g.num_vertices());
    println!("hyperedges:      {}", g.num_hyperedges());
    println!("bipartite edges: {}", g.num_bipartite_edges());
    for side in [Side::Vertex, Side::Hyperedge] {
        let d = stats::degree_stats(&g, side);
        println!(
            "{side} degrees:  min {} / median {} / mean {:.1} / max {}",
            d.min, d.median, d.mean, d.max
        );
    }
    for k in [2usize, 4, 7] {
        println!(
            "shared by >= {k} hyperedges: {:.1}% of vertices",
            stats::sharable_ratio(&g, Side::Vertex, k) * 100.0
        );
    }
    Ok(())
}

fn cmd_gen(flags: HashMap<String, String>) -> Result<(), String> {
    let nv: usize = flags.get("vertices").and_then(|v| v.parse().ok()).ok_or("bad --vertices")?;
    let nh: usize =
        flags.get("hyperedges").and_then(|v| v.parse().ok()).ok_or("bad --hyperedges")?;
    let seed: u64 = flags.get("seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let out = flags.get("out").ok_or("missing --out")?;
    let g = hypergraph::generate::GeneratorConfig::new(nv, nh).with_seed(seed).generate();
    let file = std::fs::File::create(out).map_err(|e| format!("create {out}: {e}"))?;
    hypergraph::io::write_text(&g, std::io::BufWriter::new(file))
        .map_err(|e| format!("write {out}: {e}"))?;
    println!("wrote {} ({} bipartite edges)", out, g.num_bipartite_edges());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let Some(flags) = parse_flags(rest) else {
        return usage();
    };
    // Panic isolation: a workload or simulator bug becomes a clean error
    // exit with a message, never an abort trace reaching the caller.
    let result = std::panic::catch_unwind(move || match cmd.as_str() {
        "run" => Some(cmd_run(flags)),
        "stats" => Some(cmd_stats(flags)),
        "gen" => Some(cmd_gen(flags)),
        "submit" => Some(cmd_submit(flags)),
        "serve-stats" => Some(cmd_serve_stats(flags)),
        _ => None,
    });
    match result {
        Ok(None) => usage(),
        Ok(Some(Ok(()))) => ExitCode::SUCCESS,
        Ok(Some(Err(e))) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            eprintln!("error: internal panic: {msg}");
            ExitCode::FAILURE
        }
    }
}
