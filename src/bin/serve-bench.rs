//! Load generator for `chgraphd`, emitting `BENCH_serve.json`.
//!
//! ```text
//! serve-bench --clients 4 --requests 32 --scale 0.05 --out BENCH_serve.json
//! serve-bench --addr 127.0.0.1:7411 ...   (drive an external daemon instead)
//! ```
//!
//! By default it hosts the service in-process on an ephemeral port (so the
//! record is reproducible with one command), drives it with concurrent
//! client connections cycling through a workload × runtime mix, and writes
//! throughput plus client-observed p50/p95/p99 latency — alongside the
//! server's own stats snapshot and the host metadata that makes the record
//! interpretable later ([`chg_bench::HostMeta`]).
//!
//! Latency percentiles here are exact (client-side, sorted samples), unlike
//! the server's ≤2× log-bucketed histogram; the JSON carries both so the
//! two views can be cross-checked.

use chg_bench::HostMeta;
use chg_serve::json::Json;
use chg_serve::{Client, RunRequest, ServeConfig, Server, WireMessage};
use std::collections::HashMap;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// The request mix: 2 algorithms × 2 runtimes, per the CI smoke matrix.
const MIX: [(&str, &str); 4] =
    [("pr", "chgraph"), ("pr", "hygra"), ("bfs", "chgraph"), ("bfs", "hygra")];

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  serve-bench [--addr <host:port>]  (default: in-process server, ephemeral port)\n\
         \x20            [--clients <n>]      (concurrent connections, default 4)\n\
         \x20            [--requests <n>]     (requests per client, default 24)\n\
         \x20            [--dataset <abbrev>] (default LJ)\n\
         \x20            [--scale <f>]        (dataset scale, default 0.05)\n\
         \x20            [--workers <n>]      (in-process server workers, default 2)\n\
         \x20            [--out <file>]       (default BENCH_serve.json)"
    );
    ExitCode::FAILURE
}

fn parse_flags(args: &[String]) -> Option<HashMap<String, String>> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].strip_prefix("--")?;
        let value = args.get(i + 1)?.clone();
        map.insert(key.to_string(), value);
        i += 2;
    }
    Some(map)
}

/// Exact client-side percentile: nearest-rank on sorted micros.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct ClientOutcome {
    latencies_micros: Vec<u64>,
    errors: usize,
}

/// One client connection issuing its share of the mix sequentially.
fn drive_client(
    addr: std::net::SocketAddr,
    client_idx: usize,
    requests: usize,
    dataset: &str,
    scale: f64,
) -> ClientOutcome {
    let mut outcome = ClientOutcome { latencies_micros: Vec::new(), errors: 0 };
    let mut client = match Client::connect_ready(addr, Duration::from_secs(10)) {
        Ok(c) => c,
        Err(_) => {
            outcome.errors = requests;
            return outcome;
        }
    };
    for i in 0..requests {
        let (workload, runtime) = MIX[(client_idx + i) % MIX.len()];
        let mut req = RunRequest::new(workload, runtime, dataset);
        req.scale = scale;
        req.iters = Some(4);
        let start = Instant::now();
        match client.run(req) {
            Ok(_) => outcome.latencies_micros.push(start.elapsed().as_micros() as u64),
            Err(_) => outcome.errors += 1,
        }
    }
    outcome
}

fn run(flags: HashMap<String, String>) -> Result<(), String> {
    let get_num = |key: &str, default: usize| -> Result<usize, String> {
        match flags.get(key) {
            Some(v) => v.parse().map_err(|_| format!("bad --{key}")),
            None => Ok(default),
        }
    };
    let clients = get_num("clients", 4)?.max(1);
    let requests = get_num("requests", 24)?.max(1);
    let dataset = flags.get("dataset").cloned().unwrap_or_else(|| "LJ".to_string());
    let scale: f64 =
        flags.get("scale").map_or(Ok(0.05), |v| v.parse().map_err(|_| "bad --scale"))?;
    let out_path = flags.get("out").cloned().unwrap_or_else(|| "BENCH_serve.json".to_string());

    // Either drive an external daemon or host the service in-process.
    let (addr, in_process) = match flags.get("addr") {
        Some(a) => {
            let addr = a
                .parse::<std::net::SocketAddr>()
                .map_err(|_| format!("bad --addr {a:?} (need host:port)"))?;
            (addr, None)
        }
        None => {
            let cfg = ServeConfig {
                workers: get_num("workers", 2)?.max(1),
                queue_capacity: (clients * 2).max(16),
                ..ServeConfig::default()
            };
            let server =
                Server::bind("127.0.0.1:0", cfg).map_err(|e| format!("bind ephemeral: {e}"))?;
            let addr = server.local_addr().map_err(|e| format!("local_addr: {e}"))?;
            (addr, Some(std::thread::spawn(move || server.run())))
        }
    };

    // Warmup: populate the artifact LRU so the measured window reports
    // steady-state (served-from-memory) latency, which is the quantity a
    // resident service exists to provide.
    {
        let mut warm = Client::connect_ready(addr, Duration::from_secs(10))
            .map_err(|e| format!("connect {addr}: {e}"))?;
        for (workload, runtime) in MIX {
            let mut req = RunRequest::new(workload, runtime, dataset.as_str());
            req.scale = scale;
            req.iters = Some(4);
            warm.run(req).map_err(|e| format!("warmup {workload}/{runtime}: {e}"))?;
        }
    }

    eprintln!(
        "serve-bench: {clients} clients x {requests} requests, dataset {dataset} @ {scale}, {addr}"
    );
    let started = Instant::now();
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|idx| {
                let dataset = dataset.as_str();
                s.spawn(move || drive_client(addr, idx, requests, dataset, scale))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = started.elapsed();

    let mut latencies: Vec<u64> =
        outcomes.iter().flat_map(|o| o.latencies_micros.clone()).collect();
    latencies.sort_unstable();
    let errors: usize = outcomes.iter().map(|o| o.errors).sum();
    let completed = latencies.len();
    let throughput = completed as f64 / elapsed.as_secs_f64();

    // Final server-side stats, then (if we own it) drain and join.
    let mut stats_client =
        Client::connect_ready(addr, Duration::from_secs(10)).map_err(|e| e.to_string())?;
    let stats = stats_client.stats().map_err(|e| format!("stats: {e}"))?;
    if let Some(handle) = in_process {
        stats_client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
        handle
            .join()
            .map_err(|_| "server thread panicked".to_string())?
            .map_err(|e| format!("server: {e}"))?;
    }

    let host = HostMeta::collect();
    let doc = Json::obj(vec![
        (
            "description",
            Json::Str(
                "Steady-state load test of chgraphd: concurrent clients cycling a 2-workload x \
                 2-runtime mix against a warmed prepared-artifact LRU. Latency percentiles are \
                 exact client-observed round-trip times; `server_stats` is the daemon's own \
                 snapshot (log2-bucketed latency, <=2x resolution) for cross-checking."
                    .into(),
            ),
        ),
        ("command", Json::Str(format!(
            "cargo run --release --bin serve-bench -- --clients {clients} --requests {requests} --dataset {dataset} --scale {scale}"
        ))),
        (
            "host",
            Json::obj(vec![
                ("cpu", Json::Str(host.cpu)),
                ("available_cores", Json::U64(host.available_cores as u64)),
                ("os", Json::Str(host.os)),
                ("arch", Json::Str(host.arch)),
                ("unix_timestamp", Json::U64(host.unix_timestamp)),
                ("timestamp_source", Json::Str(host.timestamp_source)),
            ]),
        ),
        (
            "load",
            Json::obj(vec![
                ("clients", Json::U64(clients as u64)),
                ("requests_per_client", Json::U64(requests as u64)),
                ("dataset", Json::Str(dataset.clone())),
                ("scale", Json::F64(scale)),
                (
                    "mix",
                    Json::Arr(
                        MIX.iter()
                            .map(|(w, r)| Json::Str(format!("{w}/{r}")))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "results",
            Json::obj(vec![
                ("completed", Json::U64(completed as u64)),
                ("errors", Json::U64(errors as u64)),
                ("wall_seconds", Json::F64(elapsed.as_secs_f64())),
                ("throughput_rps", Json::F64(throughput)),
                ("p50_micros", Json::U64(percentile(&latencies, 0.50))),
                ("p95_micros", Json::U64(percentile(&latencies, 0.95))),
                ("p99_micros", Json::U64(percentile(&latencies, 0.99))),
                ("max_micros", Json::U64(latencies.last().copied().unwrap_or(0))),
            ]),
        ),
        ("server_stats", stats.to_json()),
    ]);
    std::fs::write(&out_path, doc.pretty()).map_err(|e| format!("write {out_path}: {e}"))?;
    eprintln!(
        "serve-bench: {completed} ok / {errors} err in {:.2}s ({throughput:.1} req/s) -> {out_path}",
        elapsed.as_secs_f64()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(flags) = parse_flags(&args) else {
        return usage();
    };
    match run(flags) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
