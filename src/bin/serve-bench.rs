//! Load generator for `chgraphd`, emitting `BENCH_serve.json`.
//!
//! ```text
//! serve-bench --clients 4 --requests 32 --scale 0.05 --out BENCH_serve.json
//! serve-bench --addr 127.0.0.1:7411 ...   (drive an external daemon instead)
//! ```
//!
//! By default it hosts the service in-process on an ephemeral port (so the
//! record is reproducible with one command), drives it with concurrent
//! client connections cycling through a workload × runtime mix, and writes
//! throughput plus client-observed p50/p95/p99 latency — alongside the
//! server's own stats snapshot and the host metadata that makes the record
//! interpretable later ([`chg_bench::HostMeta`]).
//!
//! Latency percentiles here are exact (client-side, sorted samples), unlike
//! the server's ≤2× log-bucketed histogram; the JSON carries both so the
//! two views can be cross-checked.

use chg_bench::HostMeta;
use chg_serve::json::Json;
use chg_serve::{
    ChaosPolicy, ChaosProxy, Client, FaultPlan, RetryPolicy, RunRequest, ServeConfig, Server,
    WireMessage,
};
use std::collections::HashMap;
use std::process::ExitCode;
use std::time::{Duration, Instant};

/// The request mix: 2 algorithms × 2 runtimes, per the CI smoke matrix.
const MIX: [(&str, &str); 4] =
    [("pr", "chgraph"), ("pr", "hygra"), ("bfs", "chgraph"), ("bfs", "hygra")];

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  serve-bench [--addr <host:port>]  (default: in-process server, ephemeral port)\n\
         \x20            [--clients <n>]      (concurrent connections, default 4)\n\
         \x20            [--requests <n>]     (requests per client, default 24)\n\
         \x20            [--dataset <abbrev>] (default LJ)\n\
         \x20            [--scale <f>]        (dataset scale, default 0.05)\n\
         \x20            [--workers <n>]      (in-process server workers, default 2)\n\
         \x20            [--chaos-seed <n>]   (route clients through the seeded fault\n\
         \x20                                  proxy; same seed = same fault schedule)\n\
         \x20            [--error-rate <f>]   (fraction of faulted connections under\n\
         \x20                                  chaos, default 0.25)\n\
         \x20            [--retries <n>]      (attempts per request; default 5 under\n\
         \x20                                  chaos, 1 otherwise)\n\
         \x20            [--out <file>]       (default BENCH_serve.json)"
    );
    ExitCode::FAILURE
}

fn parse_flags(args: &[String]) -> Option<HashMap<String, String>> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i].strip_prefix("--")?;
        let value = args.get(i + 1)?.clone();
        map.insert(key.to_string(), value);
        i += 2;
    }
    Some(map)
}

/// Exact client-side percentile: nearest-rank on sorted micros.
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[derive(Default)]
struct ClientOutcome {
    latencies_micros: Vec<u64>,
    errors: usize,
    /// Errors whose classification permitted a retry (exhausted budget).
    retryable_errors: usize,
    /// Errors that terminated immediately (bad request, failed run, ...).
    terminal_errors: usize,
    /// Attempts beyond the first, summed over successful requests.
    extra_attempts: u64,
    /// Requests that needed more than one attempt to succeed.
    retried_requests: u64,
}

/// One client issuing its share of the mix sequentially. With `retries`
/// above 1 each request goes through [`Client::run_with_retry`] (fresh
/// connection per attempt, seeded backoff, per-request idempotency key);
/// otherwise one persistent connection issues plain runs.
fn drive_client(
    addr: std::net::SocketAddr,
    client_idx: usize,
    requests: usize,
    dataset: &str,
    scale: f64,
    retries: u32,
    retry_seed: u64,
) -> ClientOutcome {
    let mut outcome = ClientOutcome::default();
    let mut persistent = if retries <= 1 {
        match Client::connect_ready(addr, Duration::from_secs(10)) {
            Ok(c) => Some(c),
            Err(_) => {
                outcome.errors = requests;
                return outcome;
            }
        }
    } else {
        None
    };
    for i in 0..requests {
        let (workload, runtime) = MIX[(client_idx + i) % MIX.len()];
        let mut req = RunRequest::new(workload, runtime, dataset);
        req.scale = scale;
        req.iters = Some(4);
        let start = Instant::now();
        let result = match &mut persistent {
            Some(client) => client.run(req).map(|_| 1u32),
            None => {
                // A unique key per logical request: retries of *this*
                // request dedup on the server; distinct requests do not.
                req.request_key = Some(format!("bench-{retry_seed:x}-{client_idx}-{i}"));
                let policy = RetryPolicy::with_attempts(retries)
                    .with_seed(retry_seed ^ ((client_idx as u64) << 32) ^ i as u64);
                Client::run_with_retry(addr, req, policy).map(|o| o.attempts)
            }
        };
        match result {
            Ok(attempts) => {
                outcome.latencies_micros.push(start.elapsed().as_micros() as u64);
                outcome.extra_attempts += u64::from(attempts.saturating_sub(1));
                if attempts > 1 {
                    outcome.retried_requests += 1;
                }
            }
            Err(e) => {
                outcome.errors += 1;
                if e.is_retryable() {
                    outcome.retryable_errors += 1;
                } else {
                    outcome.terminal_errors += 1;
                }
            }
        }
    }
    outcome
}

/// Stable label for a fault plan, for the per-kind breakdown.
fn plan_kind(plan: &FaultPlan) -> &'static str {
    match plan {
        FaultPlan::Clean => "clean",
        FaultPlan::Refuse => "refuse",
        FaultPlan::Delay { .. } => "delay",
        FaultPlan::Drip { .. } => "drip",
        FaultPlan::Reset { .. } => "reset",
        FaultPlan::Truncate { .. } => "truncate",
        FaultPlan::Duplicate { .. } => "duplicate",
        FaultPlan::Split { .. } => "split",
    }
}

fn run(flags: HashMap<String, String>) -> Result<(), String> {
    let get_num = |key: &str, default: usize| -> Result<usize, String> {
        match flags.get(key) {
            Some(v) => v.parse().map_err(|_| format!("bad --{key}")),
            None => Ok(default),
        }
    };
    let clients = get_num("clients", 4)?.max(1);
    let requests = get_num("requests", 24)?.max(1);
    let dataset = flags.get("dataset").cloned().unwrap_or_else(|| "LJ".to_string());
    let scale: f64 =
        flags.get("scale").map_or(Ok(0.05), |v| v.parse().map_err(|_| "bad --scale"))?;
    let out_path = flags.get("out").cloned().unwrap_or_else(|| "BENCH_serve.json".to_string());
    let chaos_seed: Option<u64> =
        flags.get("chaos-seed").map(|v| v.parse().map_err(|_| "bad --chaos-seed")).transpose()?;
    let error_rate: f64 =
        flags.get("error-rate").map_or(Ok(0.25), |v| v.parse().map_err(|_| "bad --error-rate"))?;
    let retries: u32 = match flags.get("retries") {
        Some(v) => v.parse().map_err(|_| "bad --retries")?,
        None => {
            if chaos_seed.is_some() {
                5
            } else {
                1
            }
        }
    };
    if chaos_seed.is_some() && retries <= 1 {
        return Err("--chaos-seed needs --retries > 1 (faulted requests must be retryable)".into());
    }

    // Either drive an external daemon or host the service in-process.
    let (upstream, in_process) = match flags.get("addr") {
        Some(a) => {
            let addr = a
                .parse::<std::net::SocketAddr>()
                .map_err(|_| format!("bad --addr {a:?} (need host:port)"))?;
            (addr, None)
        }
        None => {
            let cfg = ServeConfig {
                workers: get_num("workers", 2)?.max(1),
                queue_capacity: (clients * 2).max(16),
                ..ServeConfig::default()
            };
            let server =
                Server::bind("127.0.0.1:0", cfg).map_err(|e| format!("bind ephemeral: {e}"))?;
            let addr = server.local_addr().map_err(|e| format!("local_addr: {e}"))?;
            (addr, Some(std::thread::spawn(move || server.run())))
        }
    };

    // Under chaos, measured clients go through the fault proxy; warmup,
    // stats, and shutdown keep a clean path to the daemon itself.
    let proxy = match chaos_seed {
        Some(seed) => Some(
            ChaosProxy::spawn(upstream, ChaosPolicy::new(seed, error_rate))
                .map_err(|e| format!("chaos proxy: {e}"))?,
        ),
        None => None,
    };
    let addr = proxy.as_ref().map_or(upstream, |p| p.addr());

    // Warmup: populate the artifact LRU so the measured window reports
    // steady-state (served-from-memory) latency, which is the quantity a
    // resident service exists to provide.
    {
        let mut warm = Client::connect_ready(upstream, Duration::from_secs(10))
            .map_err(|e| format!("connect {upstream}: {e}"))?;
        for (workload, runtime) in MIX {
            let mut req = RunRequest::new(workload, runtime, dataset.as_str());
            req.scale = scale;
            req.iters = Some(4);
            warm.run(req).map_err(|e| format!("warmup {workload}/{runtime}: {e}"))?;
        }
    }

    let chaos_note = match chaos_seed {
        Some(seed) => format!(", chaos seed {seed} @ error rate {error_rate}"),
        None => String::new(),
    };
    eprintln!(
        "serve-bench: {clients} clients x {requests} requests, dataset {dataset} @ {scale}, \
         {addr}{chaos_note}"
    );
    let started = Instant::now();
    let retry_seed = chaos_seed.unwrap_or(1);
    let outcomes: Vec<ClientOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|idx| {
                let dataset = dataset.as_str();
                s.spawn(move || {
                    drive_client(addr, idx, requests, dataset, scale, retries, retry_seed)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    let elapsed = started.elapsed();

    let mut latencies: Vec<u64> =
        outcomes.iter().flat_map(|o| o.latencies_micros.clone()).collect();
    latencies.sort_unstable();
    let errors: usize = outcomes.iter().map(|o| o.errors).sum();
    let completed = latencies.len();
    let throughput = completed as f64 / elapsed.as_secs_f64();

    // Final server-side stats, then (if we own it) drain and join. Both go
    // straight to the daemon, never through the fault proxy.
    let mut stats_client =
        Client::connect_ready(upstream, Duration::from_secs(10)).map_err(|e| e.to_string())?;
    let stats = stats_client.stats().map_err(|e| format!("stats: {e}"))?;
    // Stop injecting before the drain so no pump thread races the daemon's
    // teardown.
    let fault_events = proxy.map(|mut p| {
        p.stop();
        p.events()
    });
    if let Some(handle) = in_process {
        stats_client.shutdown().map_err(|e| format!("shutdown: {e}"))?;
        handle
            .join()
            .map_err(|_| "server thread panicked".to_string())?
            .map_err(|e| format!("server: {e}"))?;
    }

    let retryable_errors: usize = outcomes.iter().map(|o| o.retryable_errors).sum();
    let terminal_errors: usize = outcomes.iter().map(|o| o.terminal_errors).sum();
    let extra_attempts: u64 = outcomes.iter().map(|o| o.extra_attempts).sum();
    let retried_requests: u64 = outcomes.iter().map(|o| o.retried_requests).sum();
    let fault_breakdown = fault_events.as_ref().map(|events| {
        let mut counts: Vec<(&'static str, u64)> = Vec::new();
        for event in events {
            let kind = plan_kind(&event.plan);
            match counts.iter_mut().find(|(k, _)| *k == kind) {
                Some((_, n)) => *n += 1,
                None => counts.push((kind, 1)),
            }
        }
        counts
    });

    let host = HostMeta::collect();
    let doc = Json::obj(vec![
        (
            "description",
            Json::Str(
                "Steady-state load test of chgraphd: concurrent clients cycling a 2-workload x \
                 2-runtime mix against a warmed prepared-artifact LRU. Latency percentiles are \
                 exact client-observed round-trip times; `server_stats` is the daemon's own \
                 snapshot (log2-bucketed latency, <=2x resolution) for cross-checking."
                    .into(),
            ),
        ),
        ("command", Json::Str(format!(
            "cargo run --release --bin serve-bench -- --clients {clients} --requests {requests} --dataset {dataset} --scale {scale}{}",
            match chaos_seed {
                Some(seed) => format!(" --chaos-seed {seed} --error-rate {error_rate} --retries {retries}"),
                None => String::new(),
            }
        ))),
        (
            "host",
            Json::obj(vec![
                ("cpu", Json::Str(host.cpu)),
                ("available_cores", Json::U64(host.available_cores as u64)),
                ("os", Json::Str(host.os)),
                ("arch", Json::Str(host.arch)),
                ("unix_timestamp", Json::U64(host.unix_timestamp)),
                ("timestamp_source", Json::Str(host.timestamp_source)),
            ]),
        ),
        (
            "load",
            Json::obj(vec![
                ("clients", Json::U64(clients as u64)),
                ("requests_per_client", Json::U64(requests as u64)),
                ("dataset", Json::Str(dataset.clone())),
                ("scale", Json::F64(scale)),
                (
                    "mix",
                    Json::Arr(
                        MIX.iter()
                            .map(|(w, r)| Json::Str(format!("{w}/{r}")))
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "results",
            Json::obj(vec![
                ("completed", Json::U64(completed as u64)),
                ("errors", Json::U64(errors as u64)),
                ("wall_seconds", Json::F64(elapsed.as_secs_f64())),
                ("throughput_rps", Json::F64(throughput)),
                ("p50_micros", Json::U64(percentile(&latencies, 0.50))),
                ("p95_micros", Json::U64(percentile(&latencies, 0.95))),
                ("p99_micros", Json::U64(percentile(&latencies, 0.99))),
                ("max_micros", Json::U64(latencies.last().copied().unwrap_or(0))),
            ]),
        ),
        (
            "resilience",
            Json::obj(vec![
                ("chaos_enabled", Json::Bool(chaos_seed.is_some())),
                (
                    "chaos_seed",
                    chaos_seed.map_or(Json::Null, Json::U64),
                ),
                (
                    "error_rate",
                    if chaos_seed.is_some() { Json::F64(error_rate) } else { Json::Null },
                ),
                ("retries", Json::U64(u64::from(retries))),
                ("retried_requests", Json::U64(retried_requests)),
                ("extra_attempts", Json::U64(extra_attempts)),
                ("retryable_errors", Json::U64(retryable_errors as u64)),
                ("terminal_errors", Json::U64(terminal_errors as u64)),
                (
                    "fault_plans",
                    fault_breakdown.map_or(Json::Null, |counts| {
                        Json::obj(
                            counts.into_iter().map(|(k, n)| (k, Json::U64(n))).collect(),
                        )
                    }),
                ),
            ]),
        ),
        ("server_stats", stats.to_json()),
    ]);
    std::fs::write(&out_path, doc.pretty()).map_err(|e| format!("write {out_path}: {e}"))?;
    eprintln!(
        "serve-bench: {completed} ok / {errors} err in {:.2}s ({throughput:.1} req/s) -> {out_path}",
        elapsed.as_secs_f64()
    );
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(flags) = parse_flags(&args) else {
        return usage();
    };
    match run(flags) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
