//! Cross-component invariants of the simulated memory hierarchy.

use archsim::{AccessKind, AddressMap, Level, Machine, Region, SystemConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn machine_with(cfg: SystemConfig) -> Machine {
    let mut map = AddressMap::new(cfg.line_bytes);
    map.add(Region::VertexValue, 8, 1 << 14);
    map.add(Region::HyperedgeValue, 8, 1 << 14);
    Machine::new(cfg, map)
}

/// A deterministic pseudo-random access trace.
fn trace(seed: u64, n: usize, cores: usize) -> Vec<(usize, Region, u64, AccessKind)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let core = rng.gen_range(0..cores);
            let region =
                if rng.gen_bool(0.5) { Region::VertexValue } else { Region::HyperedgeValue };
            let idx = rng.gen_range(0..1u64 << 14);
            let kind = if rng.gen_bool(0.3) { AccessKind::Write } else { AccessKind::Read };
            (core, region, idx, kind)
        })
        .collect()
}

fn run_trace(mut m: Machine, trace: &[(usize, Region, u64, AccessKind)]) -> Machine {
    for (i, &(core, region, idx, kind)) in trace.iter().enumerate() {
        m.access(core, region, idx, kind, Level::L1, i as u64);
    }
    m
}

#[test]
fn miss_counts_do_not_depend_on_latency_parameters() {
    let t = trace(1, 20_000, 4);
    let base = run_trace(machine_with(SystemConfig::scaled(4)), &t);
    let mut slow_cfg = SystemConfig::scaled(4);
    slow_cfg.l1.latency = 9;
    slow_cfg.l3.latency = 99;
    slow_cfg.dram.base_latency = 999;
    slow_cfg.noc.router_latency = 5;
    let slow = run_trace(machine_with(slow_cfg), &t);
    assert_eq!(
        base.stats().main_memory_accesses(),
        slow.stats().main_memory_accesses(),
        "latency knobs must not change hit/miss behaviour"
    );
    assert_eq!(base.stats().all_accesses(), slow.stats().all_accesses());
}

#[test]
fn inclusive_hierarchy_never_beats_non_inclusive_on_private_hits() {
    let t = trace(2, 30_000, 8);
    let mut incl = SystemConfig::scaled(8);
    incl.l3_inclusive = true;
    let mut nincl = incl;
    nincl.l3_inclusive = false;
    let a = run_trace(machine_with(incl), &t);
    let b = run_trace(machine_with(nincl), &t);
    let private_hits = |m: &Machine| {
        Region::ALL
            .iter()
            .map(|&r| m.stats().served_at(r, Level::L1) + m.stats().served_at(r, Level::L2))
            .sum::<u64>()
    };
    assert!(
        private_hits(&a) <= private_hits(&b),
        "back-invalidation can only remove private hits ({} vs {})",
        private_hits(&a),
        private_hits(&b)
    );
}

#[test]
fn engine_entry_skips_l1_but_counts_identically_at_dram() {
    let mut core = machine_with(SystemConfig::scaled(1));
    let mut engine = machine_with(SystemConfig::scaled(1));
    for i in 0..10_000u64 {
        let idx = (i * 2654435761) % (1 << 14);
        core.access(0, Region::VertexValue, idx, AccessKind::Read, Level::L1, i);
        engine.access(0, Region::VertexValue, idx, AccessKind::Read, Level::L2, i);
    }
    assert_eq!(
        core.stats().dram_fetches(Region::VertexValue),
        engine.stats().dram_fetches(Region::VertexValue),
        "entry level must not change which lines miss to DRAM"
    );
    assert_eq!(engine.stats().served_at(Region::VertexValue, Level::L1), 0);
}

#[test]
fn write_by_one_core_denies_private_hit_to_another() {
    let mut m = machine_with(SystemConfig::scaled(2));
    m.access(0, Region::VertexValue, 0, AccessKind::Read, Level::L1, 0);
    m.access(1, Region::VertexValue, 0, AccessKind::Read, Level::L1, 1);
    // Both private caches now hold the line; core 0 writes it.
    m.access(0, Region::VertexValue, 0, AccessKind::Write, Level::L1, 2);
    let r = m.access(1, Region::VertexValue, 0, AccessKind::Read, Level::L1, 3);
    assert!(r.level >= Level::L3, "stale private copy must have been invalidated: {:?}", r.level);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// DRAM fetches are bounded below by the number of distinct lines and
    /// above by the number of accesses.
    #[test]
    fn dram_fetches_are_sane(seed in 0u64..500, n in 100usize..3_000) {
        let t = trace(seed, n, 4);
        let m = run_trace(machine_with(SystemConfig::scaled(4)), &t);
        let distinct_lines: std::collections::HashSet<(Region, u64)> =
            t.iter().map(|&(_, r, i, _)| (r, i / 8)).collect();
        let fetches: u64 = Region::ALL
            .iter()
            .map(|&r| m.stats().dram_fetches(r))
            .sum();
        prop_assert!(fetches >= distinct_lines.len() as u64, "every distinct line cold-misses once");
        prop_assert!(fetches <= n as u64);
        prop_assert_eq!(m.stats().all_accesses(), n as u64);
    }

    /// Replaying the same trace twice on one machine can only raise hit
    /// levels (warm caches), never DRAM traffic per access.
    #[test]
    fn warm_replay_never_misses_more(seed in 0u64..200) {
        let t = trace(seed, 2_000, 2);
        let cold = run_trace(machine_with(SystemConfig::scaled(2)), &t);
        let cold_fetches: u64 =
            Region::ALL.iter().map(|&r| cold.stats().dram_fetches(r)).sum();
        let warm = run_trace(cold, &t); // second pass on the warmed machine
        let total_fetches: u64 =
            Region::ALL.iter().map(|&r| warm.stats().dram_fetches(r)).sum();
        prop_assert!(total_fetches <= cold_fetches * 2);
    }
}
