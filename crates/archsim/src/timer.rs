//! The decoupled core cost model.

use crate::{AccessResult, Level};

/// Tracks one component's (core or engine) local clock.
///
/// The out-of-order core of Table I is not simulated instruction by
/// instruction. Instead, runtimes charge:
///
/// - [`CoreTimer::compute`] cycles for ALU/branch work, and
/// - [`CoreTimer::charge`] for each memory access: L1 hits are pipelined
///   (their latency is hidden, costing one issue cycle), while miss latency
///   is divided by the machine's effective memory-level parallelism `mlp`,
///   modelling the line-fill buffers of an OOO core overlapping independent
///   misses. [`CoreTimer::charge_dependent`] charges the full latency for
///   serially-dependent accesses (pointer chasing), which MLP cannot hide.
///
/// The timer separately accumulates cycles attributable to main-memory
/// stalls, producing the stall fractions of Fig. 5.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CoreTimer {
    cycles: u64,
    mem_stall: u64,
    mlp: u64,
}

impl CoreTimer {
    /// Creates a timer at cycle zero with the given MLP divisor (min 1).
    pub fn new(mlp: u64) -> Self {
        CoreTimer { cycles: 0, mem_stall: 0, mlp: mlp.max(1) }
    }

    /// Current local cycle count.
    #[inline]
    pub fn now(&self) -> u64 {
        self.cycles
    }

    /// Cycles attributed to main-memory (DRAM-level) stalls.
    #[inline]
    pub fn mem_stall_cycles(&self) -> u64 {
        self.mem_stall
    }

    /// Fraction of elapsed cycles stalled on main memory (Fig. 5's metric).
    pub fn mem_stall_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.mem_stall as f64 / self.cycles as f64
        }
    }

    /// Charges `n` compute cycles.
    #[inline]
    pub fn compute(&mut self, n: u64) {
        self.cycles += n;
    }

    /// Charges an access issued among independent neighbours (MLP applies).
    #[inline]
    pub fn charge(&mut self, access: AccessResult) {
        let effective = match access.level {
            Level::L1 => 1, // pipelined hit: one issue slot
            _ => (access.latency / self.mlp).max(1),
        };
        self.cycles += effective;
        if access.level == Level::Mem {
            self.mem_stall += effective;
        }
    }

    /// Charges a serially-dependent access (full latency, no MLP).
    #[inline]
    pub fn charge_dependent(&mut self, access: AccessResult) {
        let effective = match access.level {
            Level::L1 => access.latency.max(1),
            _ => access.latency,
        };
        self.cycles += effective;
        if access.level == Level::Mem {
            self.mem_stall += effective;
        }
    }

    /// Advances this timer to `other` if `other` is ahead (barrier).
    pub fn sync_to(&mut self, other: u64) {
        self.cycles = self.cycles.max(other);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(level: Level, latency: u64) -> AccessResult {
        AccessResult { level, latency }
    }

    #[test]
    fn compute_advances() {
        let mut t = CoreTimer::new(4);
        t.compute(10);
        assert_eq!(t.now(), 10);
        assert_eq!(t.mem_stall_cycles(), 0);
    }

    #[test]
    fn l1_hit_costs_one_issue_cycle() {
        let mut t = CoreTimer::new(4);
        t.charge(hit(Level::L1, 3));
        assert_eq!(t.now(), 1);
    }

    #[test]
    fn miss_latency_divided_by_mlp() {
        let mut t = CoreTimer::new(4);
        t.charge(hit(Level::Mem, 200));
        assert_eq!(t.now(), 50);
        assert_eq!(t.mem_stall_cycles(), 50);
    }

    #[test]
    fn dependent_miss_pays_full_latency() {
        let mut t = CoreTimer::new(4);
        t.charge_dependent(hit(Level::Mem, 200));
        assert_eq!(t.now(), 200);
        assert_eq!(t.mem_stall_cycles(), 200);
    }

    #[test]
    fn l3_hit_is_not_a_mem_stall() {
        let mut t = CoreTimer::new(2);
        t.charge(hit(Level::L3, 30));
        assert_eq!(t.now(), 15);
        assert_eq!(t.mem_stall_cycles(), 0);
    }

    #[test]
    fn stall_fraction() {
        let mut t = CoreTimer::new(1);
        assert_eq!(t.mem_stall_fraction(), 0.0);
        t.compute(100);
        t.charge(hit(Level::Mem, 100));
        assert!((t.mem_stall_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sync_to_only_moves_forward() {
        let mut t = CoreTimer::new(1);
        t.compute(10);
        t.sync_to(5);
        assert_eq!(t.now(), 10);
        t.sync_to(25);
        assert_eq!(t.now(), 25);
    }

    #[test]
    fn mlp_zero_is_clamped() {
        let mut t = CoreTimer::new(0);
        t.charge(hit(Level::Mem, 10));
        assert_eq!(t.now(), 10);
    }
}
