//! Retained reference kernels (pre-flattening implementations).
//!
//! [`reference::Cache`](Cache) is the original nested-`Vec` set-associative
//! cache this crate shipped before the flat SoA rewrite of
//! [`crate::Cache`]. It is kept — compiled only under `cfg(test)` or the
//! `reference-kernels` feature — as the behavioural oracle: the identity
//! test suite replays random access streams through both implementations
//! and asserts every [`CacheAccess`] result and the resident-line census
//! are bit-identical, and the `hotpath` benchmark measures the speedup of
//! the flat layout against this baseline.

use crate::{CacheAccess, CacheConfig};

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// The pre-rewrite set-associative write-back LRU cache: one heap-allocated
/// `Vec<Line>` per set (a pointer chase per access), with the set-index
/// width recomputed from the mask on every lookup.
#[derive(Clone, Debug)]
pub struct Cache {
    sets: Vec<Vec<Line>>,
    set_mask: u64,
    line_shift: u32,
    stamp: u64,
}

impl Cache {
    /// Creates an empty cache from `cfg` with the given line size.
    ///
    /// # Panics
    ///
    /// Panics if the set count is not a power of two or the geometry is
    /// degenerate.
    pub fn new(cfg: &CacheConfig, line_bytes: usize) -> Self {
        let num_sets = cfg.num_sets(line_bytes);
        assert!(num_sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets: vec![vec![Line::default(); cfg.ways]; num_sets],
            set_mask: num_sets as u64 - 1,
            line_shift: line_bytes.trailing_zeros(),
            stamp: 0,
        }
    }

    fn locate(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        ((line & self.set_mask) as usize, line >> self.set_mask.count_ones())
    }

    /// Looks up `addr`; on a miss, fills the line (write-allocate). `write`
    /// marks the line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> CacheAccess {
        self.stamp += 1;
        let stamp = self.stamp;
        let (set_idx, tag) = self.locate(addr);
        let shift = self.line_shift;
        let mask_bits = self.set_mask.count_ones();
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = stamp;
            line.dirty |= write;
            return CacheAccess { hit: true, writeback: None, evicted: None };
        }
        // Miss: pick the LRU victim (preferring invalid ways).
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru + 1 } else { 0 })
            // invariant: CacheConfig validates ways >= 1, so every set is
            // non-empty.
            .expect("cache has at least one way");
        let mut writeback = None;
        let mut evicted = None;
        if victim.valid {
            let evicted_addr = ((victim.tag << mask_bits) | set_idx as u64) << shift;
            evicted = Some(evicted_addr);
            if victim.dirty {
                writeback = Some(evicted_addr);
            }
        }
        *victim = Line { tag, valid: true, dirty: write, lru: stamp };
        CacheAccess { hit: false, writeback, evicted }
    }

    /// Returns `true` if the line containing `addr` is present.
    pub fn contains(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.locate(addr);
        self.sets[set_idx].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates the line containing `addr` if present; returns whether it
    /// was dirty (the caller decides what to do with the data).
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let (set_idx, tag) = self.locate(addr);
        let line = self.sets[set_idx].iter_mut().find(|l| l.valid && l.tag == tag)?;
        line.valid = false;
        Some(std::mem::replace(&mut line.dirty, false))
    }

    /// Marks the line containing `addr` dirty if present (used when a write
    /// is propagated to an inclusive parent).
    pub fn mark_dirty(&mut self, addr: u64) -> bool {
        let (set_idx, tag) = self.locate(addr);
        if let Some(line) = self.sets[set_idx].iter_mut().find(|l| l.valid && l.tag == tag) {
            line.dirty = true;
            true
        } else {
            false
        }
    }

    /// Drops every line, forgetting dirtiness (used between independent
    /// simulations, never mid-run).
    pub fn flush_silently(&mut self) {
        for set in &mut self.sets {
            for line in set {
                *line = Line::default();
            }
        }
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().flatten().filter(|l| l.valid).count()
    }
}
