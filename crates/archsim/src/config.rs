//! Machine configuration (the paper's Table I).

use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Access latency in core cycles.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets for the given line size.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets).
    pub fn num_sets(&self, line_bytes: usize) -> usize {
        let sets = self.size_bytes / (self.ways * line_bytes);
        assert!(sets > 0, "cache too small for its associativity/line size");
        sets
    }
}

/// Mesh network-on-chip parameters (Table I: 4×4 mesh, 1-cycle pipelined
/// routers, 1-cycle links, X-Y routing).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct NocConfig {
    /// Mesh width (nodes per row).
    pub width: usize,
    /// Mesh height (nodes per column).
    pub height: usize,
    /// Per-hop router latency in cycles.
    pub router_latency: u64,
    /// Per-hop link latency in cycles.
    pub link_latency: u64,
}

/// Main-memory parameters (Table I: 4 DDR4-1600 controllers, 12.8 GB/s
/// each).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of memory controllers; lines interleave across them.
    pub controllers: usize,
    /// Idle access latency in core cycles (row activation + transfer).
    pub base_latency: u64,
    /// Minimum cycles between line transfers on one controller — the
    /// bandwidth bound. At 2.2 GHz and 12.8 GB/s per controller, one 64-B
    /// line every ~11 cycles.
    pub cycles_per_line: u64,
}

/// Full description of the simulated machine.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Number of general-purpose cores.
    pub num_cores: usize,
    /// Cache line size in bytes (Table I: 64 B).
    pub line_bytes: usize,
    /// Per-core L1 data cache.
    pub l1: CacheConfig,
    /// Per-core L2 cache (inclusive of L1).
    pub l2: CacheConfig,
    /// Shared banked L3 (inclusive of all L2s).
    pub l3: CacheConfig,
    /// Number of L3 banks, interleaved by line address.
    pub l3_banks: usize,
    /// Whether the L3 is inclusive of the private caches (Table I's
    /// machine is inclusive). Inclusion requires the L3 to dwarf the sum
    /// of private caches — true at the paper's 32 MB vs 2 MB, impossible
    /// at the scaled geometry, where the LLC is modelled non-inclusive
    /// (as in NINE hierarchies) instead.
    pub l3_inclusive: bool,
    /// NoC between cores and L3 banks.
    pub noc: NocConfig,
    /// Main memory.
    pub dram: DramConfig,
    /// Effective memory-level parallelism of the out-of-order core: the
    /// divisor applied to miss latency when a runtime issues independent
    /// accesses (Haswell-like OOO of Table I; 10 line-fill buffers give an
    /// effective overlap of ~4 on irregular streams).
    pub mlp: u64,
    /// Latency charged to a write that must invalidate remote sharers.
    pub coherence_latency: u64,
}

impl SystemConfig {
    /// The paper's Table I configuration: 16 Haswell-like cores at 2.2 GHz,
    /// 32 KB L1, 128 KB L2, 32 MB shared L3 in 16 banks, 4×4 mesh,
    /// 4 DDR4-1600 controllers.
    pub fn paper() -> Self {
        SystemConfig {
            num_cores: 16,
            line_bytes: 64,
            l1: CacheConfig { size_bytes: 32 * 1024, ways: 8, latency: 3 },
            l2: CacheConfig { size_bytes: 128 * 1024, ways: 8, latency: 6 },
            l3: CacheConfig { size_bytes: 32 * 1024 * 1024, ways: 16, latency: 24 },
            l3_banks: 16,
            l3_inclusive: true,
            noc: NocConfig { width: 4, height: 4, router_latency: 1, link_latency: 1 },
            dram: DramConfig { controllers: 4, base_latency: 200, cycles_per_line: 11 },
            mlp: 4,
            coherence_latency: 30,
        }
    }

    /// The capacity-scaled configuration used with the ~400×-downscaled
    /// stand-in datasets: identical latencies, associativities and topology,
    /// with L1/L2/L3 capacities scaled so the working-set:cache ratio stays
    /// in the paper's regime (see `DESIGN.md` §3).
    pub fn scaled(num_cores: usize) -> Self {
        let mut cfg = SystemConfig::paper();
        cfg.num_cores = num_cores;
        cfg.l1.size_bytes = 2 * 1024;
        cfg.l2.size_bytes = 8 * 1024;
        cfg.l3.size_bytes = 64 * 1024;
        cfg.l3_inclusive = false;
        cfg
    }

    /// The default 16-core scaled machine used across the benchmark harness.
    pub fn scaled16() -> Self {
        SystemConfig::scaled(16)
    }

    /// Replaces the shared-L3 capacity (Fig. 19's sweep axis).
    pub fn with_llc_bytes(mut self, bytes: usize) -> Self {
        self.l3.size_bytes = bytes;
        self
    }

    /// Replaces the core count (Fig. 20's sweep axis).
    pub fn with_cores(mut self, cores: usize) -> Self {
        self.num_cores = cores;
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if any cache geometry is degenerate, the NoC cannot address
    /// every core/bank, or a zero count is configured.
    pub fn validate(&self) {
        assert!(self.num_cores > 0, "need at least one core");
        assert!(self.line_bytes.is_power_of_two(), "line size must be a power of two");
        let _ = self.l1.num_sets(self.line_bytes);
        let _ = self.l2.num_sets(self.line_bytes);
        let _ = self.l3.num_sets(self.line_bytes) / self.l3_banks.max(1);
        assert!(self.l3_banks > 0, "need at least one L3 bank");
        assert!(self.dram.controllers > 0, "need at least one memory controller");
        assert!(
            self.noc.width * self.noc.height >= self.num_cores.max(self.l3_banks),
            "mesh must be large enough for cores and banks"
        );
        assert!(self.mlp >= 1, "MLP divisor must be at least 1");
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::scaled16()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table1() {
        let c = SystemConfig::paper();
        c.validate();
        assert_eq!(c.num_cores, 16);
        assert_eq!(c.l1.size_bytes, 32 * 1024);
        assert_eq!(c.l1.latency, 3);
        assert_eq!(c.l2.latency, 6);
        assert_eq!(c.l3.size_bytes, 32 << 20);
        assert_eq!(c.l3.ways, 16);
        assert_eq!(c.l3_banks, 16);
        assert_eq!(c.noc.width * c.noc.height, 16);
        assert_eq!(c.dram.controllers, 4);
        assert_eq!(c.line_bytes, 64);
    }

    #[test]
    fn scaled_keeps_latencies() {
        let p = SystemConfig::paper();
        let s = SystemConfig::scaled(16);
        s.validate();
        assert_eq!(s.l1.latency, p.l1.latency);
        assert_eq!(s.l2.latency, p.l2.latency);
        assert_eq!(s.l3.latency, p.l3.latency);
        assert!(s.l3.size_bytes < p.l3.size_bytes);
    }

    #[test]
    fn num_sets() {
        let c = CacheConfig { size_bytes: 32 * 1024, ways: 8, latency: 3 };
        assert_eq!(c.num_sets(64), 64);
    }

    #[test]
    fn builders() {
        let c = SystemConfig::scaled16().with_llc_bytes(1 << 20).with_cores(4);
        assert_eq!(c.l3.size_bytes, 1 << 20);
        assert_eq!(c.num_cores, 4);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "mesh must be large enough")]
    fn validate_rejects_small_mesh() {
        let mut c = SystemConfig::paper();
        c.noc.width = 2;
        c.noc.height = 2;
        c.validate();
    }
}
