//! The simulated machine: private L1/L2 per core, shared banked inclusive
//! L3 with directory-based invalidation, mesh NoC, and DRAM controllers.

use crate::{AddressMap, Cache, DramModel, MemStats, MeshNoc, Region, SystemConfig};
use std::collections::HashMap;

/// Cache level (or main memory) at which an access was satisfied.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Level {
    /// Private per-core L1 data cache.
    L1 = 0,
    /// Private per-core L2 (inclusive of L1).
    L2 = 1,
    /// Shared banked L3 (inclusive of all L2s).
    L3 = 2,
    /// Main memory.
    Mem = 3,
}

/// Read or write.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AccessKind {
    /// A demand load.
    Read,
    /// A store (write-allocate, write-back).
    Write,
}

/// Outcome of one simulated access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AccessResult {
    /// Where the access was satisfied.
    pub level: Level,
    /// End-to-end latency in cycles, including NoC and DRAM queueing.
    pub latency: u64,
}

/// A [`SystemConfig`] the machine model cannot simulate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MachineConfigError {
    /// The sharer directory tracks private-cache copies in a `u32` bitmask,
    /// one bit per core; configurations beyond that width cannot model
    /// coherence.
    TooManyCores {
        /// The configured core count.
        num_cores: usize,
        /// The maximum the directory supports.
        max_cores: usize,
    },
}

impl std::fmt::Display for MachineConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineConfigError::TooManyCores { num_cores, max_cores } => write!(
                f,
                "directory bitmask supports up to {max_cores} cores (configured: {num_cores})"
            ),
        }
    }
}

impl std::error::Error for MachineConfigError {}

/// The simulated multicore machine.
///
/// Every data access of a runtime goes through [`Machine::access`], naming
/// the core, the data [`Region`], the element index, read/write, the cache
/// level the request enters at ([`Level::L1`] for the general-purpose core,
/// [`Level::L2`] for the ChGraph engine, which sits beside the L1 and
/// "accesses the main memory via the L2 cache", §V-A), and the issuing
/// component's local cycle count (used for DRAM contention).
pub struct Machine {
    cfg: SystemConfig,
    map: AddressMap,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    l3_banks: Vec<Cache>,
    noc: MeshNoc,
    dram: DramModel,
    stats: MemStats,
    /// line address -> bitmask of cores whose private L2 holds the line.
    directory: HashMap<u64, u32>,
}

impl Machine {
    /// Builds the machine from a configuration and an address map.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SystemConfig::validate`] or
    /// [`Machine::try_new`] rejects it.
    pub fn new(cfg: SystemConfig, map: AddressMap) -> Self {
        Machine::try_new(cfg, map).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Builds the machine, returning a typed [`MachineConfigError`] for
    /// configurations the model structurally cannot simulate (today: more
    /// cores than the sharer directory's `u32` bitmask can track).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`SystemConfig::validate`]
    /// (degenerate cache geometry, undersized mesh, zero counts) — those
    /// are programming errors, not runtime inputs.
    pub fn try_new(cfg: SystemConfig, map: AddressMap) -> Result<Self, MachineConfigError> {
        cfg.validate();
        const MAX_DIRECTORY_CORES: usize = u32::BITS as usize;
        if cfg.num_cores > MAX_DIRECTORY_CORES {
            return Err(MachineConfigError::TooManyCores {
                num_cores: cfg.num_cores,
                max_cores: MAX_DIRECTORY_CORES,
            });
        }
        let mut bank_cfg = cfg.l3;
        bank_cfg.size_bytes /= cfg.l3_banks;
        Ok(Machine {
            l1: (0..cfg.num_cores).map(|_| Cache::new(&cfg.l1, cfg.line_bytes)).collect(),
            l2: (0..cfg.num_cores).map(|_| Cache::new(&cfg.l2, cfg.line_bytes)).collect(),
            l3_banks: (0..cfg.l3_banks).map(|_| Cache::new(&bank_cfg, cfg.line_bytes)).collect(),
            noc: MeshNoc::new(cfg.noc),
            dram: DramModel::new(cfg.dram),
            stats: MemStats::new(),
            directory: HashMap::new(),
            cfg,
            map,
        })
    }

    /// The machine configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The address map in use.
    pub fn address_map(&self) -> &AddressMap {
        &self.map
    }

    /// Accumulated access statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// DRAM controller statistics.
    pub fn dram(&self) -> &DramModel {
        &self.dram
    }

    #[inline]
    fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.cfg.line_bytes as u64 - 1)
    }

    #[inline]
    fn bank_of(&self, line_addr: u64) -> usize {
        ((line_addr / self.cfg.line_bytes as u64) as usize) % self.cfg.l3_banks
    }

    /// Simulates one access. See the type-level docs for parameter meaning.
    ///
    /// # Panics
    ///
    /// Panics if `core >= num_cores`, the region is not laid out, or the
    /// index is out of range.
    pub fn access(
        &mut self,
        core: usize,
        region: Region,
        index: u64,
        kind: AccessKind,
        entry: Level,
        now: u64,
    ) -> AccessResult {
        assert!(core < self.cfg.num_cores, "core {core} out of range");
        let addr = self.map.addr(region, index);
        let line = self.line_addr(addr);
        let write = kind == AccessKind::Write;
        let mut latency = 0u64;

        // ---- L1 (skipped for engine-entry accesses) ----
        if entry == Level::L1 {
            latency += self.cfg.l1.latency;
            let l1_res = self.l1[core].access(addr, write);
            if l1_res.hit {
                if write {
                    latency += self.invalidate_remote_sharers(core, line, region);
                }
                self.stats.record(region, Level::L1);
                return AccessResult { level: Level::L1, latency };
            }
            // The miss above already allocated the line (single-pass model);
            // fold the dirty victim, if any, into the inclusive L2 copy.
            if let Some(victim) = l1_res.writeback {
                if !self.l2[core].mark_dirty(victim) {
                    // L2 (and hence L3) already lost the line.
                    self.stats.record_writeback(self.map.classify(victim));
                }
            }
        }

        // ---- L2 ----
        latency += self.cfg.l2.latency;
        let l2_res = self.l2[core].access(addr, write && entry == Level::L2);
        self.handle_private_fill_side_effects(core, l2_res.evicted, l2_res.writeback);
        if l2_res.hit {
            if write {
                latency += self.invalidate_remote_sharers(core, line, region);
            }
            self.stats.record(region, Level::L2);
            return AccessResult { level: Level::L2, latency };
        }
        // Newly filled into this core's L2: update the directory (one
        // hash probe — this runs on every private-cache miss).
        *self.directory.entry(line).or_insert(0) |= 1 << core;

        // ---- L3 (over the NoC) ----
        let bank = self.bank_of(line);
        latency += self.noc.round_trip(core, bank);
        latency += self.cfg.l3.latency;
        let l3_res = self.l3_banks[bank].access(addr, false);
        if let Some(evicted) = l3_res.evicted {
            self.handle_l3_eviction(evicted, l3_res.writeback.is_some());
        }
        if write {
            latency += self.invalidate_remote_sharers(core, line, region);
        }
        if l3_res.hit {
            self.stats.record(region, Level::L3);
            return AccessResult { level: Level::L3, latency };
        }

        // ---- DRAM ----
        latency += self.dram.access(addr, self.cfg.line_bytes as u64, now + latency);
        self.stats.record(region, Level::Mem);
        AccessResult { level: Level::Mem, latency }
    }

    /// Handles the eviction side effects of a fill into a private L2:
    /// back-invalidate the core's L1 copy (inclusion) and push dirty data
    /// toward the L3 (or memory if the L3 no longer holds the line).
    fn handle_private_fill_side_effects(
        &mut self,
        core: usize,
        evicted: Option<u64>,
        writeback: Option<u64>,
    ) {
        let Some(victim_line) = evicted else { return };
        // Inclusion: L1 cannot keep a line its L2 lost.
        let l1_dirty = self.l1[core].invalidate(victim_line).unwrap_or(false);
        if let Some(shares) = self.directory.get_mut(&victim_line) {
            *shares &= !(1 << core);
            if *shares == 0 {
                self.directory.remove(&victim_line);
            }
        }
        if writeback.is_some() || l1_dirty {
            let region = self.map.classify(victim_line);
            // The read-only OAG arrays are never dirty (paper §V-A notes
            // their lines are dropped, not written back); assert the model
            // agrees rather than special-casing.
            debug_assert!(!region.is_oag(), "OAG lines must never be dirty");
            let bank = self.bank_of(victim_line);
            if !self.l3_banks[bank].mark_dirty(victim_line) {
                // L3 already lost the line: the writeback goes to DRAM.
                self.stats.record_writeback(region);
            }
        }
    }

    /// Handles an L3 eviction. Inclusive hierarchy: back-invalidate every
    /// private copy, folding dirtiness into the memory writeback.
    /// Non-inclusive hierarchy: private copies (and the directory) survive;
    /// only the L3's own dirty data is written back.
    fn handle_l3_eviction(&mut self, victim_line: u64, l3_dirty: bool) {
        let mut dirty = l3_dirty;
        if self.cfg.l3_inclusive {
            if let Some(shares) = self.directory.remove(&victim_line) {
                for core in 0..self.cfg.num_cores {
                    if shares & (1 << core) != 0 {
                        dirty |= self.l1[core].invalidate(victim_line).unwrap_or(false);
                        dirty |= self.l2[core].invalidate(victim_line).unwrap_or(false);
                    }
                }
            }
        }
        if dirty {
            self.stats.record_writeback(self.map.classify(victim_line));
        }
    }

    /// MESI-lite: a write invalidates every other core's copy. Returns the
    /// coherence latency charged (zero when the line is private).
    fn invalidate_remote_sharers(&mut self, core: usize, line: u64, _region: Region) -> u64 {
        let Some(shares) = self.directory.get_mut(&line) else { return 0 };
        let others = *shares & !(1 << core);
        if others == 0 {
            return 0;
        }
        *shares &= 1 << core;
        let mut dirty = false;
        for other in 0..self.cfg.num_cores {
            if others & (1 << other) != 0 {
                dirty |= self.l1[other].invalidate(line).unwrap_or(false);
                dirty |= self.l2[other].invalidate(line).unwrap_or(false);
            }
        }
        if dirty {
            // The dirty remote copy is folded into the L3 before our write.
            let bank = self.bank_of(line);
            if !self.l3_banks[bank].mark_dirty(line) {
                self.stats.record_writeback(self.map.classify(line));
            }
        }
        self.stats.invalidations += 1;
        self.cfg.coherence_latency
    }

    /// Drops every cached line silently (no writebacks, no stats). Use only
    /// between independent simulations sharing a `Machine`.
    pub fn flush_all_silently(&mut self) {
        for c in &mut self.l1 {
            c.flush_silently();
        }
        for c in &mut self.l2 {
            c.flush_silently();
        }
        for c in &mut self.l3_banks {
            c.flush_silently();
        }
        self.directory.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(cores: usize) -> Machine {
        let cfg = SystemConfig::scaled(cores);
        let mut map = AddressMap::new(cfg.line_bytes);
        map.add(Region::VertexValue, 8, 1 << 16);
        map.add(Region::HyperedgeValue, 8, 1 << 16);
        Machine::new(cfg, map)
    }

    #[test]
    fn cold_miss_then_hits_up_the_hierarchy() {
        let mut m = machine(2);
        let r = m.access(0, Region::VertexValue, 0, AccessKind::Read, Level::L1, 0);
        assert_eq!(r.level, Level::Mem);
        assert!(r.latency >= 200, "DRAM latency must dominate: {}", r.latency);
        let r = m.access(0, Region::VertexValue, 0, AccessKind::Read, Level::L1, 10);
        assert_eq!(r.level, Level::L1);
        assert_eq!(r.latency, m.config().l1.latency);
    }

    #[test]
    fn spatial_locality_within_a_line() {
        let mut m = machine(1);
        m.access(0, Region::VertexValue, 0, AccessKind::Read, Level::L1, 0);
        // Elements 1..8 share the 64-B line (8-byte elements).
        for i in 1..8 {
            let r = m.access(0, Region::VertexValue, i, AccessKind::Read, Level::L1, 0);
            assert_eq!(r.level, Level::L1, "element {i}");
        }
        let r = m.access(0, Region::VertexValue, 8, AccessKind::Read, Level::L1, 0);
        assert_eq!(r.level, Level::Mem, "next line is cold");
    }

    #[test]
    fn engine_entry_fills_l2_not_l1() {
        let mut m = machine(1);
        m.access(0, Region::VertexValue, 0, AccessKind::Read, Level::L2, 0);
        // Engine prefetch warmed L2: the core's subsequent load misses L1
        // but hits L2.
        let r = m.access(0, Region::VertexValue, 0, AccessKind::Read, Level::L1, 0);
        assert_eq!(r.level, Level::L2);
    }

    #[test]
    fn other_core_read_hits_shared_l3() {
        let mut m = machine(2);
        m.access(0, Region::VertexValue, 0, AccessKind::Read, Level::L1, 0);
        let r = m.access(1, Region::VertexValue, 0, AccessKind::Read, Level::L1, 0);
        assert_eq!(r.level, Level::L3, "second core finds the line in shared L3");
    }

    #[test]
    fn write_invalidates_remote_sharers() {
        let mut m = machine(2);
        m.access(0, Region::VertexValue, 0, AccessKind::Read, Level::L1, 0);
        m.access(1, Region::VertexValue, 0, AccessKind::Read, Level::L1, 0);
        let w = m.access(1, Region::VertexValue, 0, AccessKind::Write, Level::L1, 0);
        assert!(w.latency >= m.config().coherence_latency);
        assert_eq!(m.stats().invalidations, 1);
        // Core 0 lost its copy: next read must go past L2.
        let r = m.access(0, Region::VertexValue, 0, AccessKind::Read, Level::L1, 0);
        assert!(r.level >= Level::L3, "invalidated copy cannot hit privately: {:?}", r.level);
    }

    #[test]
    fn dirty_data_survives_remote_invalidation() {
        let mut m = machine(2);
        m.access(0, Region::VertexValue, 0, AccessKind::Write, Level::L1, 0);
        // Core 1 writes the same line: core 0's dirty copy is folded into L3.
        m.access(1, Region::VertexValue, 0, AccessKind::Write, Level::L1, 0);
        let r = m.access(0, Region::VertexValue, 0, AccessKind::Read, Level::L1, 0);
        assert_eq!(r.level, Level::L3, "data must still be on-chip");
    }

    #[test]
    fn main_memory_access_counting() {
        let mut m = machine(1);
        let n_lines = 64u64;
        for i in 0..n_lines {
            m.access(0, Region::VertexValue, i * 8, AccessKind::Read, Level::L1, 0);
        }
        assert_eq!(m.stats().main_memory_accesses(), n_lines);
        assert_eq!(m.stats().dram_fetches(Region::VertexValue), n_lines);
    }

    #[test]
    fn capacity_eviction_causes_re_miss() {
        let mut m = machine(1);
        // Touch far more lines than the whole hierarchy holds.
        let lines = (m.config().l3.size_bytes / 64 * 4) as u64;
        for i in 0..lines {
            m.access(0, Region::VertexValue, (i * 8) % (1 << 16), AccessKind::Read, Level::L1, 0);
        }
        let r = m.access(0, Region::VertexValue, 0, AccessKind::Read, Level::L1, 0);
        // Line 0 was evicted long ago.
        assert_eq!(r.level, Level::Mem);
    }

    #[test]
    fn dirty_eviction_reaches_dram_as_writeback() {
        let mut m = machine(1);
        let span = (m.config().l3.size_bytes / 64 * 4) as u64;
        for i in 0..span.min(1 << 13) {
            m.access(0, Region::VertexValue, i * 8, AccessKind::Write, Level::L1, 0);
        }
        assert!(
            m.stats().dram_writebacks(Region::VertexValue) > 0,
            "capacity-evicted dirty lines must be written back"
        );
    }

    #[test]
    fn flush_clears_state() {
        let mut m = machine(1);
        m.access(0, Region::VertexValue, 0, AccessKind::Read, Level::L1, 0);
        m.flush_all_silently();
        let r = m.access(0, Region::VertexValue, 0, AccessKind::Read, Level::L1, 0);
        assert_eq!(r.level, Level::Mem);
    }

    #[test]
    #[should_panic(expected = "core 5 out of range")]
    fn bad_core_panics() {
        let mut m = machine(2);
        m.access(5, Region::VertexValue, 0, AccessKind::Read, Level::L1, 0);
    }

    #[test]
    fn too_many_cores_is_a_typed_error() {
        let mut cfg = SystemConfig::scaled(32);
        cfg.num_cores = 33;
        cfg.noc.width = 6;
        cfg.noc.height = 6;
        let map = AddressMap::new(cfg.line_bytes);
        match Machine::try_new(cfg, map) {
            Err(MachineConfigError::TooManyCores { num_cores: 33, max_cores: 32 }) => {}
            other => panic!("expected TooManyCores, got {:?}", other.map(|_| ())),
        }
    }

    #[test]
    #[should_panic(expected = "directory bitmask supports up to 32 cores")]
    fn too_many_cores_panics_on_infallible_construction() {
        let mut cfg = SystemConfig::scaled(32);
        cfg.num_cores = 33;
        cfg.noc.width = 6;
        cfg.noc.height = 6;
        let _ = Machine::new(cfg, AddressMap::new(cfg.line_bytes));
    }

    #[test]
    fn thirty_two_cores_is_accepted() {
        let mut cfg = SystemConfig::scaled(32);
        cfg.noc.width = 6;
        cfg.noc.height = 6;
        let map = AddressMap::new(cfg.line_bytes);
        assert!(Machine::try_new(cfg, map).is_ok());
    }
}
