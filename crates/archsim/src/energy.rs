//! Memory-system energy model (McPAT / Micron-datasheet substitute).
//!
//! The paper obtains chip-component energy from McPAT and DRAM energy from
//! Micron datasheets (§VI-A). This analytic substitute charges a fixed
//! energy per access at each level plus core leakage per cycle, using
//! representative 65 nm-class constants. Absolute joules are not the point
//! (the paper reports none); the model exists so energy *ratios* between
//! runtimes can be examined and so the accounting machinery is complete.

use crate::{Level, MemStats, Region};
use serde::{Deserialize, Serialize};

/// Per-event energy constants, in picojoules.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Energy per L1 access.
    pub l1_pj: f64,
    /// Energy per L2 access.
    pub l2_pj: f64,
    /// Energy per L3 access.
    pub l3_pj: f64,
    /// Energy per DRAM line transfer (fetch or writeback).
    pub dram_pj: f64,
    /// Core leakage + clock power per cycle, per core.
    pub core_static_pj_per_cycle: f64,
}

impl EnergyModel {
    /// Representative 65 nm-class constants.
    pub fn default_65nm() -> Self {
        EnergyModel {
            l1_pj: 15.0,
            l2_pj: 45.0,
            l3_pj: 250.0,
            dram_pj: 20_000.0,
            // A 65 nm OOO core averages a few watts; 3 nJ/cycle ~ 3 W at
            // 1 GHz (cf. the Core2 E6750's ~32 W TDP per core with typical
            // activity factors well below TDP).
            core_static_pj_per_cycle: 3_000.0,
        }
    }

    /// Estimates energy for a run that executed `cycles` cycles on
    /// `num_cores` cores with the given memory statistics.
    pub fn estimate(&self, stats: &MemStats, cycles: u64, num_cores: usize) -> EnergyReport {
        let mut l1 = 0u64;
        let mut l2 = 0u64;
        let mut l3 = 0u64;
        let mut dram = 0u64;
        for region in Region::ALL {
            // An access satisfied at level N touched every level above it too.
            let at_l1 = stats.served_at(region, Level::L1);
            let at_l2 = stats.served_at(region, Level::L2);
            let at_l3 = stats.served_at(region, Level::L3);
            let at_mem = stats.served_at(region, Level::Mem);
            l1 += at_l1 + at_l2 + at_l3 + at_mem;
            l2 += at_l2 + at_l3 + at_mem;
            l3 += at_l3 + at_mem;
            dram += at_mem + stats.dram_writebacks(region);
        }
        let dynamic_pj = l1 as f64 * self.l1_pj
            + l2 as f64 * self.l2_pj
            + l3 as f64 * self.l3_pj
            + dram as f64 * self.dram_pj;
        let static_pj = cycles as f64 * num_cores as f64 * self.core_static_pj_per_cycle;
        EnergyReport {
            dynamic_mj: dynamic_pj / 1e9,
            static_mj: static_pj / 1e9,
            dram_line_transfers: dram,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::default_65nm()
    }
}

/// Result of an [`EnergyModel::estimate`] call.
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Dynamic (per-access) energy in millijoules.
    pub dynamic_mj: f64,
    /// Static (leakage/clock) energy in millijoules.
    pub static_mj: f64,
    /// DRAM line transfers charged (fetches + writebacks).
    pub dram_line_transfers: u64,
}

impl EnergyReport {
    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.dynamic_mj + self.static_mj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_stats_zero_dynamic() {
        let model = EnergyModel::default_65nm();
        let r = model.estimate(&MemStats::new(), 0, 16);
        assert_eq!(r.dynamic_mj, 0.0);
        assert_eq!(r.static_mj, 0.0);
        assert_eq!(r.dram_line_transfers, 0);
    }

    #[test]
    fn dram_dominates_per_access() {
        let model = EnergyModel::default_65nm();
        assert!(model.dram_pj > 10.0 * model.l3_pj);
        assert!(model.l3_pj > model.l2_pj);
        assert!(model.l2_pj > model.l1_pj);
    }

    #[test]
    fn deeper_accesses_charge_upper_levels_too() {
        use crate::Region;
        let model = EnergyModel::default_65nm();
        let mut a = MemStats::new();
        let mut b = MemStats::new();
        // Same number of accesses, different depth.
        for _ in 0..100 {
            a.record(Region::VertexValue, Level::L1);
            b.record(Region::VertexValue, Level::Mem);
        }
        let ra = model.estimate(&a, 0, 1);
        let rb = model.estimate(&b, 0, 1);
        assert!(rb.dynamic_mj > ra.dynamic_mj * 10.0);
        assert_eq!(rb.dram_line_transfers, 100);
    }

    #[test]
    fn static_scales_with_cores_and_cycles() {
        let model = EnergyModel::default_65nm();
        let s = MemStats::new();
        let one = model.estimate(&s, 1000, 1);
        let sixteen = model.estimate(&s, 1000, 16);
        assert!((sixteen.static_mj / one.static_mj - 16.0).abs() < 1e-9);
        assert_eq!(one.total_mj(), one.static_mj);
    }
}
