//! Logical address-space layout and per-array access classification.
//!
//! Runtimes issue accesses as `(Region, element index)` pairs. The
//! [`AddressMap`] lays every region out contiguously (line-aligned) in a
//! single flat physical address space, so cache behaviour is realistic, and
//! classifies any address back to its region, which produces the per-array
//! main-memory-access breakdown of Fig. 15.

use serde::{Deserialize, Serialize};

/// The named data arrays of the chain-driven hypergraph system (Fig. 13).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Region {
    /// `hyperedge_offset` — CSR offsets of the hyperedge side.
    HyperedgeOffset,
    /// `incident_vertex` — CSR targets of the hyperedge side.
    IncidentVertex,
    /// `hyperedge_value` — hyperedge attribute array.
    HyperedgeValue,
    /// `vertex_offset` — CSR offsets of the vertex side.
    VertexOffset,
    /// `incident_hyperedge` — CSR targets of the vertex side.
    IncidentHyperedge,
    /// `vertex_value` — vertex attribute array.
    VertexValue,
    /// `OAG_offset` for the hyperedge OAG.
    HOagOffset,
    /// `OAG_edge` for the hyperedge OAG.
    HOagEdge,
    /// `OAG_weight` for the hyperedge OAG.
    HOagWeight,
    /// `OAG_offset` for the vertex OAG.
    VOagOffset,
    /// `OAG_edge` for the vertex OAG.
    VOagEdge,
    /// `OAG_weight` for the vertex OAG.
    VOagWeight,
    /// The active-element bitmap.
    Bitmap,
    /// Frontier worklists, per-iteration scratch, and miscellany.
    Other,
}

impl Region {
    /// All regions, in layout order.
    pub const ALL: [Region; 14] = [
        Region::HyperedgeOffset,
        Region::IncidentVertex,
        Region::HyperedgeValue,
        Region::VertexOffset,
        Region::IncidentHyperedge,
        Region::VertexValue,
        Region::HOagOffset,
        Region::HOagEdge,
        Region::HOagWeight,
        Region::VOagOffset,
        Region::VOagEdge,
        Region::VOagWeight,
        Region::Bitmap,
        Region::Other,
    ];

    /// Dense index of the region (for array-backed counters).
    #[inline]
    pub fn idx(self) -> usize {
        self as usize
    }

    /// The presentation group used by Fig. 15's breakdown.
    pub fn group(self) -> RegionGroup {
        match self {
            Region::HyperedgeOffset | Region::VertexOffset => RegionGroup::Offsets,
            Region::IncidentVertex | Region::IncidentHyperedge => RegionGroup::Incident,
            Region::HyperedgeValue | Region::VertexValue => RegionGroup::Values,
            Region::HOagOffset
            | Region::HOagEdge
            | Region::HOagWeight
            | Region::VOagOffset
            | Region::VOagEdge
            | Region::VOagWeight => RegionGroup::Oag,
            Region::Bitmap | Region::Other => RegionGroup::Other,
        }
    }

    /// Returns `true` for the read-only OAG arrays, whose evicted lines are
    /// dropped rather than written back (paper §V-A).
    pub fn is_oag(self) -> bool {
        self.group() == RegionGroup::Oag
    }
}

/// Fig. 15's five presentation groups of the data arrays.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum RegionGroup {
    /// `hyperedge_offset` + `vertex_offset`.
    Offsets,
    /// `incident_vertex` + `incident_hyperedge`.
    Incident,
    /// `hyperedge_value` + `vertex_value`.
    Values,
    /// The six OAG arrays.
    Oag,
    /// Bitmap and miscellany.
    Other,
}

impl RegionGroup {
    /// All groups, in Fig. 15's order.
    pub const ALL: [RegionGroup; 5] = [
        RegionGroup::Offsets,
        RegionGroup::Incident,
        RegionGroup::Values,
        RegionGroup::Oag,
        RegionGroup::Other,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            RegionGroup::Offsets => "offset arrays",
            RegionGroup::Incident => "incident arrays",
            RegionGroup::Values => "value arrays",
            RegionGroup::Oag => "OAG arrays",
            RegionGroup::Other => "other",
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
struct Segment {
    base: u64,
    elem_bytes: u32,
    len: u64,
}

/// Lays regions out in a flat address space and maps `(region, index)` to
/// byte addresses.
///
/// ```
/// use archsim::{AddressMap, Region};
/// let mut map = AddressMap::new(64);
/// map.add(Region::VertexValue, 8, 100);
/// map.add(Region::VertexOffset, 4, 101);
/// let a = map.addr(Region::VertexValue, 5);
/// assert_eq!(map.classify(a), Region::VertexValue);
/// assert_eq!(a % 8, 0);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct AddressMap {
    line_bytes: u64,
    segments: Vec<Option<Segment>>,
    cursor: u64,
}

impl AddressMap {
    /// Creates an empty map with the given cache-line size.
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two.
    pub fn new(line_bytes: usize) -> Self {
        assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
        AddressMap {
            line_bytes: line_bytes as u64,
            segments: vec![None; Region::ALL.len()],
            // Leave page zero unmapped so address 0 is never valid data.
            cursor: line_bytes as u64,
        }
    }

    /// Adds a region of `len` elements of `elem_bytes` each, line-aligned.
    ///
    /// # Panics
    ///
    /// Panics if the region was already added or `elem_bytes == 0`.
    pub fn add(&mut self, region: Region, elem_bytes: u32, len: usize) -> &mut Self {
        assert!(elem_bytes > 0, "element size must be positive");
        assert!(self.segments[region.idx()].is_none(), "region {region:?} added twice");
        let base = self.cursor;
        let bytes = elem_bytes as u64 * len as u64;
        self.segments[region.idx()] = Some(Segment { base, elem_bytes, len: len as u64 });
        // Advance, line-aligned, with one guard line between regions.
        self.cursor = (base + bytes + 2 * self.line_bytes - 1) / self.line_bytes * self.line_bytes;
        self
    }

    /// Byte address of element `index` of `region`.
    ///
    /// # Panics
    ///
    /// Panics if the region was not added or `index` is out of range.
    #[inline]
    pub fn addr(&self, region: Region, index: u64) -> u64 {
        let seg = self.segments[region.idx()]
            .as_ref()
            .unwrap_or_else(|| panic!("region {region:?} not laid out"));
        assert!(index < seg.len, "index {index} out of range for {region:?} (len {})", seg.len);
        seg.base + index * seg.elem_bytes as u64
    }

    /// The region containing byte address `a`.
    ///
    /// # Panics
    ///
    /// Panics if `a` falls outside every region (including guard space).
    pub fn classify(&self, a: u64) -> Region {
        for region in Region::ALL {
            if let Some(seg) = &self.segments[region.idx()] {
                if a >= seg.base && a < seg.base + seg.len * seg.elem_bytes as u64 {
                    return region;
                }
            }
        }
        panic!("address {a:#x} not mapped to any region");
    }

    /// Total mapped bytes (footprint).
    pub fn footprint(&self) -> u64 {
        self.cursor
    }

    /// Number of elements laid out in `region`, if present.
    pub fn len_of(&self, region: Region) -> Option<u64> {
        self.segments[region.idx()].as_ref().map(|s| s.len)
    }

    /// Cache-line size the map was created with.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AddressMap {
        let mut m = AddressMap::new(64);
        m.add(Region::HyperedgeOffset, 4, 10);
        m.add(Region::VertexValue, 8, 100);
        m.add(Region::Bitmap, 8, 4);
        m
    }

    #[test]
    fn regions_are_disjoint_and_line_aligned() {
        let m = sample();
        assert_eq!(m.addr(Region::HyperedgeOffset, 0) % 64, 0);
        assert_eq!(m.addr(Region::VertexValue, 0) % 64, 0);
        let last_a = m.addr(Region::HyperedgeOffset, 9);
        let first_b = m.addr(Region::VertexValue, 0);
        assert!(last_a / 64 < first_b / 64, "regions must not share a cache line");
    }

    #[test]
    fn classify_roundtrips() {
        let m = sample();
        for (r, n) in
            [(Region::HyperedgeOffset, 10u64), (Region::VertexValue, 100), (Region::Bitmap, 4)]
        {
            for i in [0, n / 2, n - 1] {
                assert_eq!(m.classify(m.addr(r, i)), r);
            }
        }
    }

    #[test]
    fn address_zero_is_never_mapped() {
        let m = sample();
        assert!(m.addr(Region::HyperedgeOffset, 0) >= 64);
    }

    #[test]
    fn group_assignment_matches_fig15() {
        assert_eq!(Region::HyperedgeOffset.group(), RegionGroup::Offsets);
        assert_eq!(Region::IncidentHyperedge.group(), RegionGroup::Incident);
        assert_eq!(Region::VertexValue.group(), RegionGroup::Values);
        assert_eq!(Region::VOagWeight.group(), RegionGroup::Oag);
        assert_eq!(Region::Bitmap.group(), RegionGroup::Other);
        assert!(Region::HOagEdge.is_oag());
        assert!(!Region::VertexValue.is_oag());
    }

    #[test]
    #[should_panic(expected = "added twice")]
    fn double_add_panics() {
        let mut m = sample();
        m.add(Region::VertexValue, 8, 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        let m = sample();
        let _ = m.addr(Region::Bitmap, 4);
    }

    #[test]
    #[should_panic(expected = "not laid out")]
    fn missing_region_panics() {
        let m = sample();
        let _ = m.addr(Region::VOagEdge, 0);
    }

    #[test]
    fn footprint_grows() {
        let m = sample();
        assert!(m.footprint() >= 64 + 40 + 800 + 32);
        assert_eq!(m.len_of(Region::VertexValue), Some(100));
        assert_eq!(m.len_of(Region::VOagEdge), None);
    }
}
