//! A set-associative write-back cache with true-LRU replacement.
//!
//! Storage is a single flat SoA allocation (`sets × ways` entries split
//! into parallel tag / flag / LRU-stamp arrays) rather than a `Vec` per
//! set: one simulated access touches a handful of adjacent array slots
//! with no pointer chase and no per-access allocation, which matters
//! because every simulated memory reference in this repository funnels
//! through [`Cache::access`]. The pre-rewrite nested layout is retained in
//! [`crate::reference`] (under the `reference-kernels` feature) and the
//! identity tests pin the two bit-identical.

use crate::CacheConfig;

/// Result of one cache lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheAccess {
    /// Whether the line was present.
    pub hit: bool,
    /// On a fill that evicted a dirty line: the evicted line's address.
    pub writeback: Option<u64>,
    /// On a fill that evicted any line (dirty or clean): its address. Used
    /// by inclusive parents to back-invalidate children.
    pub evicted: Option<u64>,
}

/// Dirty bit in the per-line `flags` array. Validity is *not* a flag: it
/// lives in bit 0 of the stored tag ([`Cache::tags`]), so the hit scan and
/// the victim scan read the tag array alone and `flags` is only touched on
/// writes, fills, and evictions.
const DIRTY: u8 = 1 << 1;

/// A single set-associative write-back cache with LRU replacement.
///
/// Addresses are byte addresses; the cache operates on line granularity.
///
/// ```
/// use archsim::{Cache, CacheConfig};
/// let mut c = Cache::new(&CacheConfig { size_bytes: 1024, ways: 2, latency: 1 }, 64);
/// assert!(!c.access(0, false).hit); // cold miss (fills)
/// assert!(c.access(32, false).hit); // same line
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    /// Line tags, `sets × ways`, indexed `set * ways + way`. Stored as
    /// `(tag << 1) | 1` for resident lines and `0` for invalid ways, so a
    /// single `u64` compare per way answers "valid and matching" and the
    /// victim scan spots invalid ways without loading a second array. An
    /// 8-way set's tags are exactly one 64-byte host line.
    tags: Box<[u64]>,
    /// Last-touch stamps (true LRU), same indexing. Deliberately `u32`, not
    /// `u64`: the victim scan reads every way's stamp, so stamp width is
    /// directly victim-scan footprint (a 16-way set's stamps fit one host
    /// cache line at 4 bytes, two at 8). LRU only ever compares stamps
    /// *within* a set, so when the 32-bit clock runs out the stamps are
    /// re-based to their per-set LRU ranks ([`compact_stamps`]
    /// (Self::compact_stamps)) — order-preserving, hence unobservable —
    /// instead of widening the array.
    stamps: Box<[u32]>,
    /// Per-line [`VALID`]/[`DIRTY`] bits, same indexing.
    flags: Box<[u8]>,
    ways: usize,
    set_mask: u64,
    /// `set_mask.count_ones()`, precomputed so neither lookup nor the fill
    /// path recomputes index geometry per access.
    set_bits: u32,
    line_shift: u32,
    stamp: u32,
}

impl Cache {
    /// Creates an empty cache from `cfg` with the given line size.
    ///
    /// # Panics
    ///
    /// Panics if the set count is not a power of two or the geometry is
    /// degenerate.
    pub fn new(cfg: &CacheConfig, line_bytes: usize) -> Self {
        let num_sets = cfg.num_sets(line_bytes);
        assert!(num_sets.is_power_of_two(), "set count must be a power of two");
        // invariant: the stored-tag encoding shifts the tag left by one, so
        // the tag must fit 63 bits — guaranteed as long as at least one
        // address bit goes to line offset or set index.
        assert!(
            line_bytes >= 2 || num_sets >= 2,
            "degenerate 1-byte-line single-set geometry overflows the tag encoding"
        );
        let entries = num_sets * cfg.ways;
        Cache {
            tags: vec![0; entries].into_boxed_slice(),
            stamps: vec![0; entries].into_boxed_slice(),
            flags: vec![0; entries].into_boxed_slice(),
            ways: cfg.ways,
            set_mask: num_sets as u64 - 1,
            set_bits: (num_sets as u64 - 1).count_ones(),
            line_shift: line_bytes.trailing_zeros(),
            stamp: 0,
        }
    }

    /// Set index and the *stored* tag probe (`(tag << 1) | 1`) for `addr`.
    #[inline]
    fn locate(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        ((line & self.set_mask) as usize, ((line >> self.set_bits) << 1) | 1)
    }

    /// Reconstructs a line's byte address from its stored tag and set index.
    #[inline]
    fn line_addr(&self, stored_tag: u64, set_idx: usize) -> u64 {
        (((stored_tag >> 1) << self.set_bits) | set_idx as u64) << self.line_shift
    }

    /// Index of `addr`'s way within its set, if resident.
    #[inline]
    fn find(&self, addr: u64) -> Option<usize> {
        let (set_idx, probe) = self.locate(addr);
        let base = set_idx * self.ways;
        (base..base + self.ways).find(|&i| self.tags[i] == probe)
    }

    /// Re-bases every stamp to its LRU rank within its set (`1..=ways`) and
    /// pulls the clock back to `ways`, freeing the rest of the `u32` stamp
    /// space. Victim selection compares stamps only within a set and ranks
    /// preserve that order exactly, so compaction is unobservable; it runs
    /// once per `u32::MAX` accesses (amortized zero) plus on
    /// [`force_stamp`](Self::force_stamp).
    fn compact_stamps(&mut self) {
        let ways = self.ways;
        let mut old: Vec<u32> = Vec::with_capacity(ways);
        for set in 0..self.tags.len() / ways {
            let base = set * ways;
            old.clear();
            old.extend_from_slice(&self.stamps[base..base + ways]);
            for i in 0..ways {
                // Rank = number of ways stamped strictly earlier (stamps of
                // valid ways are unique; invalid ways' stamps are never
                // compared, so their tie-break is irrelevant).
                let rank = old
                    .iter()
                    .enumerate()
                    .filter(|&(j, &s)| s < old[i] || (s == old[i] && j < i))
                    .count();
                self.stamps[base + i] = rank as u32 + 1;
            }
        }
        self.stamp = self.ways as u32;
    }

    /// Forces the LRU clock (test support for stamp-wrap coverage: park it
    /// just below `u32::MAX` and keep accessing). Compacts first, so
    /// current LRU order is preserved and `stamp` is a valid clock floor.
    pub fn force_stamp(&mut self, stamp: u32) {
        self.compact_stamps();
        self.stamp = self.stamp.max(stamp);
    }

    /// Looks up `addr`; on a miss, fills the line (write-allocate). `write`
    /// marks the line dirty.
    #[inline]
    pub fn access(&mut self, addr: u64, write: bool) -> CacheAccess {
        if self.stamp == u32::MAX {
            self.compact_stamps();
        }
        self.stamp += 1;
        let stamp = self.stamp;
        let (set_idx, probe) = self.locate(addr);
        let base = set_idx * self.ways;
        // Victim scan fused with the hit scan: one pass over the tag array
        // alone (validity is the tag's bit 0) finds the matching way or,
        // failing that, the first way with the least LRU key (invalid ways
        // order before any valid one), matching the reference layout's
        // `min_by_key` tie-breaking exactly. Read hits never touch `flags`.
        let mut victim = base;
        let mut victim_key = u32::MAX;
        for i in base..base + self.ways {
            let t = self.tags[i];
            if t == probe {
                self.stamps[i] = stamp;
                if write {
                    self.flags[i] |= DIRTY;
                }
                return CacheAccess { hit: true, writeback: None, evicted: None };
            }
            if t & 1 != 0 {
                let key = self.stamps[i] + 1;
                if key < victim_key {
                    victim_key = key;
                    victim = i;
                }
            } else if victim_key > 0 {
                victim_key = 0;
                victim = i;
            }
        }
        // Miss: fill over the victim.
        let mut writeback = None;
        let mut evicted = None;
        let vt = self.tags[victim];
        if vt & 1 != 0 {
            let evicted_addr = self.line_addr(vt, set_idx);
            evicted = Some(evicted_addr);
            if self.flags[victim] & DIRTY != 0 {
                writeback = Some(evicted_addr);
            }
        }
        self.tags[victim] = probe;
        self.stamps[victim] = stamp;
        self.flags[victim] = if write { DIRTY } else { 0 };
        CacheAccess { hit: false, writeback, evicted }
    }

    /// Returns `true` if the line containing `addr` is present.
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        self.find(addr).is_some()
    }

    /// Invalidates the line containing `addr` if present; returns whether it
    /// was dirty (the caller decides what to do with the data).
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let i = self.find(addr)?;
        let dirty = self.flags[i] & DIRTY != 0;
        self.tags[i] = 0;
        self.flags[i] = 0;
        Some(dirty)
    }

    /// Marks the line containing `addr` dirty if present (used when a write
    /// is propagated to an inclusive parent).
    pub fn mark_dirty(&mut self, addr: u64) -> bool {
        match self.find(addr) {
            Some(i) => {
                self.flags[i] |= DIRTY;
                true
            }
            None => false,
        }
    }

    /// Drops every line, forgetting dirtiness (used between independent
    /// simulations, never mid-run).
    pub fn flush_silently(&mut self) {
        self.flags.fill(0);
        self.tags.fill(0);
        self.stamps.fill(0);
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.tags.iter().filter(|&&t| t & 1 != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64 B lines = 256 B.
        Cache::new(&CacheConfig { size_bytes: 256, ways: 2, latency: 1 }, 64)
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x13F, false).hit, "same 64-B line");
        assert!(!c.access(0x140, false).hit, "next line");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines with (line_number % 2 == 0): 0x000, 0x080, 0x100.
        c.access(0x000, false);
        c.access(0x080, false);
        c.access(0x000, false); // touch 0x000 so 0x080 is LRU
        let res = c.access(0x100, false); // evicts 0x080
        assert!(!res.hit);
        assert_eq!(res.evicted, Some(0x080));
        assert!(c.contains(0x000));
        assert!(!c.contains(0x080));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x080, false);
        let res = c.access(0x100, false); // evicts dirty 0x000 (LRU)
        assert_eq!(res.writeback, Some(0x000));
        assert_eq!(res.evicted, Some(0x000));
    }

    #[test]
    fn clean_eviction_reports_no_writeback() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x080, false);
        let res = c.access(0x100, false);
        assert_eq!(res.writeback, None);
        assert!(res.evicted.is_some());
    }

    #[test]
    fn invalidate_returns_dirtiness() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x040, false);
        assert_eq!(c.invalidate(0x000), Some(true));
        assert_eq!(c.invalidate(0x040), Some(false));
        assert_eq!(c.invalidate(0x040), None);
        assert!(!c.contains(0x000));
    }

    #[test]
    fn mark_dirty_then_evict_writes_back() {
        let mut c = tiny();
        c.access(0x000, false);
        assert!(c.mark_dirty(0x000));
        c.access(0x080, false);
        let res = c.access(0x100, false);
        assert_eq!(res.writeback, Some(0x000));
        assert!(!c.mark_dirty(0xFC0), "absent line cannot be dirtied");
    }

    #[test]
    fn flush_silently_empties() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x040, true);
        assert_eq!(c.resident_lines(), 2);
        c.flush_silently();
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.access(0x000, false).hit);
    }

    #[test]
    fn write_allocate_fills_dirty() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x080, false);
        // Evicting 0x000 must produce a writeback even though it was only
        // ever written once at fill time.
        let res = c.access(0x100, false);
        assert_eq!(res.writeback, Some(0x000));
    }

    #[test]
    fn set_indexing_separates_conflicting_lines() {
        let mut c = tiny();
        // Lines 0x000 and 0x040 map to different sets (consecutive lines).
        c.access(0x000, false);
        c.access(0x040, false);
        assert!(c.contains(0x000));
        assert!(c.contains(0x040));
        assert_eq!(c.resident_lines(), 2);
    }

    /// The documented LRU semantics of the old nested layout, pinned
    /// against the flat layout: fills prefer the *first* invalid way, and
    /// among valid ways the one with the oldest stamp loses (first way on
    /// the — unreachable with unique stamps — tie).
    #[test]
    fn eviction_order_matches_nested_layout_semantics() {
        // 1 set x 4 ways: every line conflicts.
        let mut c = Cache::new(&CacheConfig { size_bytes: 256, ways: 4, latency: 1 }, 64);
        // Fill the four ways in order; no evictions while invalid ways
        // remain (the invalid way always wins the victim scan).
        for i in 0..4u64 {
            assert_eq!(c.access(i * 64, false).evicted, None, "way {i} fills an invalid slot");
        }
        // Re-touch ways 1 and 3; LRU order is now 0, 2, 1, 3.
        c.access(64, false);
        c.access(192, false);
        for expect in [0u64, 2, 1, 3] {
            let res = c.access((100 + expect) * 64, false);
            assert_eq!(res.evicted, Some(expect * 64), "LRU order must be 0,2,1,3");
        }
    }

    /// Parking the `u32` LRU clock at the very top and continuing to access
    /// must be unobservable: the rank compaction preserves per-set LRU
    /// order, so the stream stays identical to the never-wrapping `u64`
    /// reference across the wrap.
    #[test]
    fn lru_survives_stamp_wraparound() {
        let cfg = CacheConfig { size_bytes: 1024, ways: 4, latency: 1 };
        let mut flat = Cache::new(&cfg, 64);
        let mut nested = crate::reference::Cache::new(&cfg, 64);
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        // Warm both with an identical prefix so compaction has real LRU
        // state to preserve.
        for _ in 0..2_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let addr = (state >> 16) % (cfg.size_bytes as u64 * 8);
            assert_eq!(flat.access(addr, state & 1 == 1), nested.access(addr, state & 1 == 1));
        }
        // Wrap the flat cache's clock mid-stream (the reference's u64 clock
        // never wraps; divergence would surface immediately).
        flat.force_stamp(u32::MAX - 50);
        for step in 0..2_000u64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let addr = (state >> 16) % (cfg.size_bytes as u64 * 8);
            assert_eq!(
                flat.access(addr, state & 1 == 1),
                nested.access(addr, state & 1 == 1),
                "step {step} after forcing the clock to the wrap edge"
            );
        }
        assert_eq!(flat.resident_lines(), nested.resident_lines());
    }

    /// Exhaustive stream identity against the retained nested reference
    /// implementation, across several geometries (the proptest suite in the
    /// workspace root covers random geometries; this unit test is the
    /// fast smoke version).
    #[test]
    fn matches_reference_cache_on_mixed_streams() {
        for (size, ways) in [(256usize, 2usize), (512, 4), (1024, 1), (4096, 8)] {
            let cfg = CacheConfig { size_bytes: size, ways, latency: 1 };
            let mut flat = Cache::new(&cfg, 64);
            let mut nested = crate::reference::Cache::new(&cfg, 64);
            let mut state = 0x243F_6A88_85A3_08D3u64; // deterministic LCG
            for step in 0..20_000u64 {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let addr = (state >> 16) % (size as u64 * 8);
                let write = state & 1 == 1;
                match state % 16 {
                    0 => assert_eq!(flat.invalidate(addr), nested.invalidate(addr), "step {step}"),
                    1 => assert_eq!(flat.mark_dirty(addr), nested.mark_dirty(addr), "step {step}"),
                    2 => assert_eq!(flat.contains(addr), nested.contains(addr), "step {step}"),
                    _ => assert_eq!(
                        flat.access(addr, write),
                        nested.access(addr, write),
                        "step {step}"
                    ),
                }
            }
            assert_eq!(flat.resident_lines(), nested.resident_lines());
        }
    }
}
