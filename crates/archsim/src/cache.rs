//! A set-associative write-back cache with true-LRU replacement.

use crate::CacheConfig;

/// Result of one cache lookup.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheAccess {
    /// Whether the line was present.
    pub hit: bool,
    /// On a fill that evicted a dirty line: the evicted line's address.
    pub writeback: Option<u64>,
    /// On a fill that evicted any line (dirty or clean): its address. Used
    /// by inclusive parents to back-invalidate children.
    pub evicted: Option<u64>,
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// A single set-associative write-back cache with LRU replacement.
///
/// Addresses are byte addresses; the cache operates on line granularity.
///
/// ```
/// use archsim::{Cache, CacheConfig};
/// let mut c = Cache::new(&CacheConfig { size_bytes: 1024, ways: 2, latency: 1 }, 64);
/// assert!(!c.access(0, false).hit); // cold miss (fills)
/// assert!(c.access(32, false).hit); // same line
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    sets: Vec<Vec<Line>>,
    set_mask: u64,
    line_shift: u32,
    stamp: u64,
}

impl Cache {
    /// Creates an empty cache from `cfg` with the given line size.
    ///
    /// # Panics
    ///
    /// Panics if the set count is not a power of two or the geometry is
    /// degenerate.
    pub fn new(cfg: &CacheConfig, line_bytes: usize) -> Self {
        let num_sets = cfg.num_sets(line_bytes);
        assert!(num_sets.is_power_of_two(), "set count must be a power of two");
        Cache {
            sets: vec![vec![Line::default(); cfg.ways]; num_sets],
            set_mask: num_sets as u64 - 1,
            line_shift: line_bytes.trailing_zeros(),
            stamp: 0,
        }
    }

    #[inline]
    fn locate(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        ((line & self.set_mask) as usize, line >> self.set_mask.count_ones())
    }

    /// Looks up `addr`; on a miss, fills the line (write-allocate). `write`
    /// marks the line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> CacheAccess {
        self.stamp += 1;
        let stamp = self.stamp;
        let (set_idx, tag) = self.locate(addr);
        let shift = self.line_shift;
        let mask_bits = self.set_mask.count_ones();
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = stamp;
            line.dirty |= write;
            return CacheAccess { hit: true, writeback: None, evicted: None };
        }
        // Miss: pick the LRU victim (preferring invalid ways).
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru + 1 } else { 0 })
            // invariant: CacheConfig validates ways >= 1, so every set is
            // non-empty.
            .expect("cache has at least one way");
        let mut writeback = None;
        let mut evicted = None;
        if victim.valid {
            let evicted_addr = ((victim.tag << mask_bits) | set_idx as u64) << shift;
            evicted = Some(evicted_addr);
            if victim.dirty {
                writeback = Some(evicted_addr);
            }
        }
        *victim = Line { tag, valid: true, dirty: write, lru: stamp };
        CacheAccess { hit: false, writeback, evicted }
    }

    /// Returns `true` if the line containing `addr` is present.
    pub fn contains(&self, addr: u64) -> bool {
        let (set_idx, tag) = self.locate(addr);
        self.sets[set_idx].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates the line containing `addr` if present; returns whether it
    /// was dirty (the caller decides what to do with the data).
    pub fn invalidate(&mut self, addr: u64) -> Option<bool> {
        let (set_idx, tag) = self.locate(addr);
        let line = self.sets[set_idx].iter_mut().find(|l| l.valid && l.tag == tag)?;
        line.valid = false;
        Some(std::mem::replace(&mut line.dirty, false))
    }

    /// Marks the line containing `addr` dirty if present (used when a write
    /// is propagated to an inclusive parent).
    pub fn mark_dirty(&mut self, addr: u64) -> bool {
        let (set_idx, tag) = self.locate(addr);
        if let Some(line) = self.sets[set_idx].iter_mut().find(|l| l.valid && l.tag == tag) {
            line.dirty = true;
            true
        } else {
            false
        }
    }

    /// Drops every line, forgetting dirtiness (used between independent
    /// simulations, never mid-run).
    pub fn flush_silently(&mut self) {
        for set in &mut self.sets {
            for line in set {
                *line = Line::default();
            }
        }
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().flatten().filter(|l| l.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64 B lines = 256 B.
        Cache::new(&CacheConfig { size_bytes: 256, ways: 2, latency: 1 }, 64)
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access(0x100, false).hit);
        assert!(c.access(0x100, false).hit);
        assert!(c.access(0x13F, false).hit, "same 64-B line");
        assert!(!c.access(0x140, false).hit, "next line");
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines with (line_number % 2 == 0): 0x000, 0x080, 0x100.
        c.access(0x000, false);
        c.access(0x080, false);
        c.access(0x000, false); // touch 0x000 so 0x080 is LRU
        let res = c.access(0x100, false); // evicts 0x080
        assert!(!res.hit);
        assert_eq!(res.evicted, Some(0x080));
        assert!(c.contains(0x000));
        assert!(!c.contains(0x080));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x080, false);
        let res = c.access(0x100, false); // evicts dirty 0x000 (LRU)
        assert_eq!(res.writeback, Some(0x000));
        assert_eq!(res.evicted, Some(0x000));
    }

    #[test]
    fn clean_eviction_reports_no_writeback() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x080, false);
        let res = c.access(0x100, false);
        assert_eq!(res.writeback, None);
        assert!(res.evicted.is_some());
    }

    #[test]
    fn invalidate_returns_dirtiness() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x040, false);
        assert_eq!(c.invalidate(0x000), Some(true));
        assert_eq!(c.invalidate(0x040), Some(false));
        assert_eq!(c.invalidate(0x040), None);
        assert!(!c.contains(0x000));
    }

    #[test]
    fn mark_dirty_then_evict_writes_back() {
        let mut c = tiny();
        c.access(0x000, false);
        assert!(c.mark_dirty(0x000));
        c.access(0x080, false);
        let res = c.access(0x100, false);
        assert_eq!(res.writeback, Some(0x000));
        assert!(!c.mark_dirty(0xFC0), "absent line cannot be dirtied");
    }

    #[test]
    fn flush_silently_empties() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x040, true);
        assert_eq!(c.resident_lines(), 2);
        c.flush_silently();
        assert_eq!(c.resident_lines(), 0);
        assert!(!c.access(0x000, false).hit);
    }

    #[test]
    fn write_allocate_fills_dirty() {
        let mut c = tiny();
        c.access(0x000, true);
        c.access(0x080, false);
        // Evicting 0x000 must produce a writeback even though it was only
        // ever written once at fill time.
        let res = c.access(0x100, false);
        assert_eq!(res.writeback, Some(0x000));
    }

    #[test]
    fn set_indexing_separates_conflicting_lines() {
        let mut c = tiny();
        // Lines 0x000 and 0x040 map to different sets (consecutive lines).
        c.access(0x000, false);
        c.access(0x040, false);
        assert!(c.contains(0x000));
        assert!(c.contains(0x040));
        assert_eq!(c.resident_lines(), 2);
    }
}
