//! Mesh network-on-chip latency model.
//!
//! Table I: a 4×4 mesh with 128-bit links, X-Y routing, 1-cycle pipelined
//! routers and 1-cycle links. Cores and L3 banks are co-located at mesh
//! nodes; the model charges the X-Y hop distance for the request and the
//! response of each L3/memory transaction.

use crate::NocConfig;

/// Latency model of an X-Y-routed 2-D mesh.
#[derive(Clone, Copy, Debug)]
pub struct MeshNoc {
    cfg: NocConfig,
}

impl MeshNoc {
    /// Creates the model.
    pub fn new(cfg: NocConfig) -> Self {
        MeshNoc { cfg }
    }

    /// Mesh coordinates of node `n` (row-major placement).
    #[inline]
    pub fn coords(&self, n: usize) -> (usize, usize) {
        (n % self.cfg.width, n / self.cfg.width)
    }

    /// Number of hops between nodes `a` and `b` under X-Y routing
    /// (Manhattan distance).
    pub fn hops(&self, a: usize, b: usize) -> u64 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
    }

    /// One-way traversal latency from node `a` to node `b`: each hop costs a
    /// router traversal plus a link traversal, and the final router ejects.
    pub fn one_way(&self, a: usize, b: usize) -> u64 {
        let hops = self.hops(a, b);
        if hops == 0 {
            0
        } else {
            hops * (self.cfg.router_latency + self.cfg.link_latency) + self.cfg.router_latency
        }
    }

    /// Request + response latency between a core and an L3 bank.
    pub fn round_trip(&self, core: usize, bank: usize) -> u64 {
        2 * self.one_way(core, bank)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh4x4() -> MeshNoc {
        MeshNoc::new(NocConfig { width: 4, height: 4, router_latency: 1, link_latency: 1 })
    }

    #[test]
    fn coords_row_major() {
        let m = mesh4x4();
        assert_eq!(m.coords(0), (0, 0));
        assert_eq!(m.coords(3), (3, 0));
        assert_eq!(m.coords(4), (0, 1));
        assert_eq!(m.coords(15), (3, 3));
    }

    #[test]
    fn hops_are_manhattan() {
        let m = mesh4x4();
        assert_eq!(m.hops(0, 0), 0);
        assert_eq!(m.hops(0, 3), 3);
        assert_eq!(m.hops(0, 15), 6);
        assert_eq!(m.hops(5, 10), 2);
        assert_eq!(m.hops(10, 5), 2, "symmetric");
    }

    #[test]
    fn latency_scales_with_distance() {
        let m = mesh4x4();
        assert_eq!(m.one_way(0, 0), 0);
        assert_eq!(m.one_way(0, 1), 3); // 1 hop: router+link + eject router
        assert_eq!(m.one_way(0, 15), 13); // 6 hops
        assert_eq!(m.round_trip(0, 15), 26);
    }

    #[test]
    fn local_bank_is_free() {
        let m = mesh4x4();
        assert_eq!(m.round_trip(7, 7), 0);
    }
}
