//! Main-memory controllers with a bandwidth/queueing contention model.
//!
//! Each controller serves one cache line every `cycles_per_line` cycles
//! (the DDR4-1600 bandwidth bound of Table I); a request arriving while the
//! controller is busy queues behind earlier requests. Lines interleave
//! across controllers at line granularity.

use crate::DramConfig;

/// The memory-controller array.
#[derive(Clone, Debug)]
pub struct DramModel {
    cfg: DramConfig,
    next_free: Vec<u64>,
    accesses: u64,
    queued_cycles: u64,
}

impl DramModel {
    /// Creates an idle controller array.
    pub fn new(cfg: DramConfig) -> Self {
        DramModel { next_free: vec![0; cfg.controllers], cfg, accesses: 0, queued_cycles: 0 }
    }

    /// The controller owning `line_addr` (line-granularity interleave).
    #[inline]
    pub fn controller_of(&self, line_addr: u64) -> usize {
        (line_addr as usize) % self.cfg.controllers
    }

    /// Services one line transfer for the line containing `addr`, issued at
    /// absolute cycle `now`. Returns the total latency (queueing + access).
    pub fn access(&mut self, addr: u64, line_bytes: u64, now: u64) -> u64 {
        let line = addr / line_bytes;
        let ctrl = self.controller_of(line);
        let start = self.next_free[ctrl].max(now);
        let queue_delay = start - now;
        self.next_free[ctrl] = start + self.cfg.cycles_per_line;
        self.accesses += 1;
        self.queued_cycles += queue_delay;
        queue_delay + self.cfg.base_latency
    }

    /// Total line transfers served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total cycles requests spent queued behind the bandwidth bound — a
    /// direct measure of bandwidth saturation.
    pub fn queued_cycles(&self) -> u64 {
        self.queued_cycles
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> DramModel {
        DramModel::new(DramConfig { controllers: 2, base_latency: 100, cycles_per_line: 10 })
    }

    #[test]
    fn idle_access_costs_base_latency() {
        let mut d = dram();
        assert_eq!(d.access(0, 64, 0), 100);
        assert_eq!(d.accesses(), 1);
        assert_eq!(d.queued_cycles(), 0);
    }

    #[test]
    fn back_to_back_same_controller_queues() {
        let mut d = dram();
        // Lines 0 and 2 both map to controller 0.
        assert_eq!(d.access(0, 64, 0), 100);
        let lat = d.access(2 * 64, 64, 0);
        assert_eq!(lat, 110, "second request waits one service slot");
        assert_eq!(d.queued_cycles(), 10);
    }

    #[test]
    fn different_controllers_do_not_interfere() {
        let mut d = dram();
        assert_eq!(d.access(0, 64, 0), 100); // controller 0
        assert_eq!(d.access(64, 64, 0), 100); // controller 1
        assert_eq!(d.queued_cycles(), 0);
    }

    #[test]
    fn late_arrival_sees_idle_controller() {
        let mut d = dram();
        d.access(0, 64, 0);
        assert_eq!(d.access(2 * 64, 64, 1000), 100, "controller long since free");
    }

    #[test]
    fn interleave_by_line() {
        let d = dram();
        assert_eq!(d.controller_of(0), 0);
        assert_eq!(d.controller_of(1), 1);
        assert_eq!(d.controller_of(2), 0);
    }
}
