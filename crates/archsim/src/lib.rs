#![warn(missing_docs)]

//! Cycle-level multicore memory-hierarchy simulator.
//!
//! The ChGraph paper evaluates on a ZSim-simulated 16-core system (Table I).
//! This crate is the from-scratch substitute: an access-driven simulator of
//! the machine's memory hierarchy with enough fidelity to reproduce the
//! paper's *memory-system* results — per-array main-memory access counts
//! (Fig. 15), stall fractions (Fig. 5), cache-size and core-count
//! sensitivity (Figs. 19–20) — without modelling an out-of-order pipeline
//! instruction by instruction.
//!
//! Components:
//!
//! - [`SystemConfig`] — the machine description, with the paper's Table I
//!   parameters ([`SystemConfig::paper`]) and a capacity-scaled variant
//!   ([`SystemConfig::scaled`]) matched to the ~400× smaller stand-in
//!   datasets;
//! - [`AddressMap`] / [`Region`] — logical data-array layout; every access
//!   names the array it touches, which is how the per-array breakdown of
//!   Fig. 15 is produced;
//! - [`Machine`] — per-core private L1/L2 (inclusive), shared banked
//!   inclusive L3 with an in-cache-directory MESI-lite invalidation model,
//!   a 4×4 mesh NoC latency model, and DDR memory controllers with
//!   queueing contention;
//! - [`CoreTimer`] — a simple decoupled core cost model: compute cycles plus
//!   memory stalls shortened by a memory-level-parallelism factor;
//! - [`MemStats`] / [`EnergyModel`] — access accounting and the
//!   McPAT/CACTI-substitute energy model.
//!
//! # Example
//!
//! ```
//! use archsim::{AddressMap, Machine, Region, SystemConfig, AccessKind, Level};
//!
//! let cfg = SystemConfig::scaled(1);
//! let mut map = AddressMap::new(cfg.line_bytes);
//! map.add(Region::VertexValue, 8, 1024);
//! let mut m = Machine::new(cfg, map);
//! let first = m.access(0, Region::VertexValue, 0, AccessKind::Read, Level::L1, 0);
//! assert_eq!(first.level, Level::Mem); // cold miss goes to main memory
//! let again = m.access(0, Region::VertexValue, 1, AccessKind::Read, Level::L1, 10);
//! assert_eq!(again.level, Level::L1); // same 64-B line: L1 hit
//! ```

mod address;
mod cache;
mod config;
mod dram;
mod energy;
mod machine;
mod noc;
#[cfg(any(test, feature = "reference-kernels"))]
pub mod reference;
mod stats;
mod timer;

pub use address::{AddressMap, Region, RegionGroup};
pub use cache::{Cache, CacheAccess};
pub use config::{CacheConfig, DramConfig, NocConfig, SystemConfig};
pub use dram::DramModel;
pub use energy::{EnergyModel, EnergyReport};
pub use machine::{AccessKind, AccessResult, Level, Machine, MachineConfigError};
pub use noc::MeshNoc;
pub use stats::MemStats;
pub use timer::CoreTimer;
