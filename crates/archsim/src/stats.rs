//! Access accounting.

use crate::{Level, Region, RegionGroup};
use serde::{Deserialize, Serialize};

const NUM_REGIONS: usize = Region::ALL.len();

/// Per-region, per-level access counters for one simulation.
///
/// The paper's headline metric, **off-chip main memory accesses**, is the
/// number of line transfers that reach DRAM: demand fetches satisfied at the
/// [`Level::Mem`] level plus dirty writebacks
/// ([`MemStats::main_memory_accesses`]).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct MemStats {
    /// `served[region][level]`: accesses to `region` satisfied at `level`.
    served: Vec<[u64; 4]>,
    /// Dirty line writebacks to DRAM, per region.
    writebacks: Vec<u64>,
    /// Remote-sharer invalidations triggered by writes.
    pub invalidations: u64,
}

impl MemStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        MemStats {
            served: vec![[0; 4]; NUM_REGIONS],
            writebacks: vec![0; NUM_REGIONS],
            invalidations: 0,
        }
    }

    pub(crate) fn record(&mut self, region: Region, level: Level) {
        self.served[region.idx()][level as usize] += 1;
    }

    pub(crate) fn record_writeback(&mut self, region: Region) {
        self.writebacks[region.idx()] += 1;
    }

    /// Accesses to `region` satisfied at `level`.
    pub fn served_at(&self, region: Region, level: Level) -> u64 {
        self.served[region.idx()][level as usize]
    }

    /// Total accesses issued to `region` at any level.
    pub fn total_accesses(&self, region: Region) -> u64 {
        self.served[region.idx()].iter().sum()
    }

    /// DRAM demand fetches for `region`.
    pub fn dram_fetches(&self, region: Region) -> u64 {
        self.served_at(region, Level::Mem)
    }

    /// DRAM writebacks for `region`.
    pub fn dram_writebacks(&self, region: Region) -> u64 {
        self.writebacks[region.idx()]
    }

    /// Off-chip main-memory accesses for `region` (fetches + writebacks).
    pub fn main_memory_accesses_of(&self, region: Region) -> u64 {
        self.dram_fetches(region) + self.dram_writebacks(region)
    }

    /// Off-chip main-memory accesses for a Fig. 15 presentation group.
    pub fn main_memory_accesses_of_group(&self, group: RegionGroup) -> u64 {
        Region::ALL
            .iter()
            .filter(|r| r.group() == group)
            .map(|&r| self.main_memory_accesses_of(r))
            .sum()
    }

    /// Total off-chip main-memory accesses — the paper's headline metric.
    pub fn main_memory_accesses(&self) -> u64 {
        Region::ALL.iter().map(|&r| self.main_memory_accesses_of(r)).sum()
    }

    /// Total accesses across all regions and levels.
    pub fn all_accesses(&self) -> u64 {
        Region::ALL.iter().map(|&r| self.total_accesses(r)).sum()
    }

    /// Hit rate at L1 over all regions (diagnostics).
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.all_accesses();
        if total == 0 {
            return 0.0;
        }
        let l1: u64 = Region::ALL.iter().map(|&r| self.served_at(r, Level::L1)).sum();
        l1 as f64 / total as f64
    }

    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: &MemStats) {
        for r in 0..NUM_REGIONS {
            for l in 0..4 {
                self.served[r][l] += other.served[r][l];
            }
            self.writebacks[r] += other.writebacks[r];
        }
        self.invalidations += other.invalidations;
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        for r in 0..NUM_REGIONS {
            self.served[r] = [0; 4];
            self.writebacks[r] = 0;
        }
        self.invalidations = 0;
    }
}

impl Default for MemStats {
    fn default() -> Self {
        MemStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut s = MemStats::new();
        s.record(Region::VertexValue, Level::L1);
        s.record(Region::VertexValue, Level::Mem);
        s.record_writeback(Region::VertexValue);
        assert_eq!(s.served_at(Region::VertexValue, Level::L1), 1);
        assert_eq!(s.dram_fetches(Region::VertexValue), 1);
        assert_eq!(s.dram_writebacks(Region::VertexValue), 1);
        assert_eq!(s.main_memory_accesses_of(Region::VertexValue), 2);
        assert_eq!(s.main_memory_accesses(), 2);
        assert_eq!(s.total_accesses(Region::VertexValue), 2);
    }

    #[test]
    fn group_rollup() {
        let mut s = MemStats::new();
        s.record(Region::VertexValue, Level::Mem);
        s.record(Region::HyperedgeValue, Level::Mem);
        s.record(Region::HOagEdge, Level::Mem);
        assert_eq!(s.main_memory_accesses_of_group(RegionGroup::Values), 2);
        assert_eq!(s.main_memory_accesses_of_group(RegionGroup::Oag), 1);
        assert_eq!(s.main_memory_accesses_of_group(RegionGroup::Offsets), 0);
    }

    #[test]
    fn merge_and_reset() {
        let mut a = MemStats::new();
        let mut b = MemStats::new();
        a.record(Region::Bitmap, Level::L2);
        b.record(Region::Bitmap, Level::L2);
        b.invalidations = 3;
        a.merge(&b);
        assert_eq!(a.served_at(Region::Bitmap, Level::L2), 2);
        assert_eq!(a.invalidations, 3);
        a.reset();
        assert_eq!(a.all_accesses(), 0);
        assert_eq!(a.invalidations, 0);
    }

    #[test]
    fn hit_rate() {
        let mut s = MemStats::new();
        assert_eq!(s.l1_hit_rate(), 0.0);
        s.record(Region::VertexValue, Level::L1);
        s.record(Region::VertexValue, Level::L1);
        s.record(Region::VertexValue, Level::Mem);
        s.record(Region::VertexValue, Level::L3);
        assert!((s.l1_hit_rate() - 0.5).abs() < 1e-12);
    }
}
