//! The daemon core: a bounded work queue, a scoped worker pool, a
//! thread-per-connection accept loop, and graceful shutdown.
//!
//! # Request flow
//!
//! ```text
//! client ──frame──▶ handler thread ──try_push──▶ bounded queue ──▶ worker pool
//!        ◀─frame──            ▲                        │  (N threads, executes
//!                             └──── mpsc reply ◀───────┘   on the ArtifactStore)
//! ```
//!
//! `Stats`/`Ping`/`Shutdown` are answered inline by the handler; only `Run`
//! requests pass through the queue. When the queue is full the handler
//! replies [`Response::Overloaded`] immediately — explicit backpressure
//! instead of unbounded buffering or a hung client.
//!
//! # Shutdown
//!
//! Shutdown (a `Shutdown` request, [`ShutdownHandle::shutdown`], or the
//! daemon's SIGINT bridge) is a drain, not an abort: the accept loop stops
//! taking connections, handlers reject *new* run requests with a typed
//! `shutting-down` error, workers finish everything already queued or
//! executing, every reply is delivered, and [`Server::run`] returns a final
//! [`StatsReport`]. Per-request [`WatchdogConfig`] budgets bound how long a
//! drain can take: a runaway simulation trips its budget and returns a
//! typed error instead of wedging a worker forever.

use crate::lru::{ArtifactStore, Fetch};
use crate::proto::{
    self, error_response, run_result_from_report, ArtifactSource, DiskCacheCounters, Request,
    Response, RunRequest, StatsReport,
};
use crate::stats::{CloseCause, Counters, LatencyHistogram};
use chg_bench::{PreprocessCache, Scale};
use chgraph::{
    ChGraphRuntime, ExecutionReport, GlaRuntime, HatsVRuntime, HygraRuntime, PrefetcherRuntime,
    RunConfig, Runtime, WatchdogConfig,
};
use hyperalgos::{self_check_prepared, try_run_workload_prepared, Workload};
use hypergraph::datasets::Dataset;
use std::collections::VecDeque;
use std::io::{self, Read};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How often blocked loops re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);
/// Samples in the sliding queue-wait window the degraded-mode shed reads
/// its p95 from. Small on purpose: the signal must react within a few
/// requests, not after thousands.
const QUEUE_WAIT_WINDOW: usize = 64;
/// Retry hint attached to conn-cap refusals (connection churn clears much
/// faster than queue congestion, so the hint is short).
const CONN_CAP_RETRY_MS: u64 = 100;

/// Service configuration.
#[derive(Clone)]
pub struct ServeConfig {
    /// Worker threads executing run requests.
    pub workers: usize,
    /// Bounded queue capacity; a full queue rejects with `overloaded`.
    pub queue_capacity: usize,
    /// In-memory LRU capacity for loaded graphs.
    pub graph_lru: usize,
    /// In-memory LRU capacity for prepared OAG pairs.
    pub oag_lru: usize,
    /// On-disk preprocess cache directory (`None` disables).
    pub cache_dir: Option<String>,
    /// Watchdog budgets applied to every request **in addition to** its own
    /// (the stricter of the two wins per budget) — the service's runaway
    /// protection.
    pub default_watchdog: WatchdogConfig,
    /// Host threads for OAG construction inside a worker.
    pub oag_build_threads: usize,
    /// Quiet-period budget per read while a frame is in progress: if no
    /// byte arrives for this long, the connection is closed (read-timeout).
    pub read_timeout: Duration,
    /// Budget for each reply write: a client that stops reading cannot pin
    /// a worker past this (write-timeout close).
    pub write_timeout: Duration,
    /// Total budget for one request frame, first byte to last. Bounds
    /// slow-loris drip-feeds that stay under the per-read quiet period.
    pub frame_deadline: Duration,
    /// Concurrent-connection cap; further accepts get a best-effort
    /// `overloaded` reply and an immediate close.
    pub max_connections: usize,
    /// Degraded mode: when the p95 of the last [`QUEUE_WAIT_WINDOW`]
    /// queue waits crosses this threshold (and a backlog exists), new runs
    /// are shed immediately with an `overloaded` reply carrying a
    /// `retry_after_ms` hint. `None` disables shedding.
    pub shed_queue_wait: Option<Duration>,
    /// Single-flight request-key slots kept for dedup (in-flight plus most
    /// recently completed).
    pub dedup_capacity: usize,
    /// Run crash recovery on the on-disk cache at startup: sweep every
    /// `*.tmp.*` leftover, purge `*.corrupt` quarantine residue, and make
    /// future quarantines delete rather than rename. The daemon sets this —
    /// a restart after SIGKILL must converge to a residue-free cache.
    pub recover_cache: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 16,
            graph_lru: 8,
            oag_lru: 8,
            cache_dir: None,
            default_watchdog: WatchdogConfig::default(),
            oag_build_threads: 1,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(30),
            frame_deadline: Duration::from_secs(60),
            max_connections: 64,
            shed_queue_wait: None,
            dedup_capacity: 128,
            recover_cache: false,
        }
    }
}

/// Why [`BoundedQueue::try_push`] refused a job.
enum PushError {
    /// The queue is at capacity — reply `overloaded`.
    Full,
    /// The service is draining — reply `shutting-down`.
    Draining,
}

/// One queued run: the request plus the channel its handler waits on.
struct QueuedRun {
    request: RunRequest,
    enqueued_at: Instant,
    reply: mpsc::Sender<Response>,
}

/// The bounded request queue: `Mutex<VecDeque>` + `Condvar`. `try_push`
/// never blocks (backpressure is a rejection, not a wait); `pop` blocks
/// until work arrives or shutdown has drained the queue.
struct BoundedQueue {
    inner: Mutex<VecDeque<QueuedRun>>,
    capacity: usize,
    available: Condvar,
    draining: AtomicBool,
}

impl BoundedQueue {
    fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            available: Condvar::new(),
            draining: AtomicBool::new(false),
        }
    }

    /// Enqueues unless full or draining; on `Err` the job (and its reply
    /// sender) is dropped and the caller answers the client directly.
    fn try_push(&self, job: QueuedRun) -> Result<(), PushError> {
        if self.draining.load(Ordering::SeqCst) {
            return Err(PushError::Draining);
        }
        let mut q = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if q.len() >= self.capacity {
            return Err(PushError::Full);
        }
        q.push_back(job);
        drop(q);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once draining *and* empty.
    fn pop(&self) -> Option<QueuedRun> {
        let mut q = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
            if self.draining.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self
                .available
                .wait_timeout(q, POLL_INTERVAL)
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
    }

    /// Stops accepting pushes; wakes all poppers so they can drain and exit.
    fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }

    fn depth(&self) -> usize {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).len()
    }
}

/// A single-flight reply slot for one `request_key`: the first holder
/// (owner) executes and publishes; every later holder blocks here and gets
/// a clone of the identical reply.
struct ReplySlot {
    /// Content fingerprint of the owning request — a key reused for a
    /// *different* request is rejected instead of served a wrong result.
    request_fp: u64,
    cell: Mutex<Option<Response>>,
    ready: Condvar,
}

impl ReplySlot {
    fn new(request_fp: u64) -> Self {
        ReplySlot { request_fp, cell: Mutex::new(None), ready: Condvar::new() }
    }

    /// Publishes the reply and wakes every waiter.
    fn put(&self, response: Response) {
        let mut cell = self.cell.lock().unwrap_or_else(PoisonError::into_inner);
        *cell = Some(response);
        drop(cell);
        self.ready.notify_all();
    }

    /// Blocks until the owner publishes. The owner always publishes — its
    /// handler thread is scoped and every execution path produces a
    /// response — so this wait is bounded by the run's watchdog budget.
    fn wait(&self) -> Response {
        let mut cell = self.cell.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(response) = cell.as_ref() {
                return response.clone();
            }
            let (guard, _) = self
                .ready
                .wait_timeout(cell, POLL_INTERVAL)
                .unwrap_or_else(PoisonError::into_inner);
            cell = guard;
        }
    }
}

/// Outcome of claiming a request key.
enum Claim {
    /// This request owns the key: execute, then [`ReplySlot::put`].
    Owner(Arc<ReplySlot>),
    /// Another request owns (or recently completed) the key: wait on it.
    Follower(Arc<ReplySlot>),
    /// The key exists but for a different request body.
    Mismatch,
}

/// The request-key dedup table: insertion-ordered `(key, slot)` pairs with
/// a bounded capacity (completed slots linger until evicted, so a replay
/// shortly after completion is also served without re-execution). Evicting
/// an in-flight slot is safe — its `Arc` keeps it alive for its waiters.
struct DedupTable {
    inner: Mutex<VecDeque<(String, Arc<ReplySlot>)>>,
    capacity: usize,
}

impl DedupTable {
    fn new(capacity: usize) -> Self {
        DedupTable { inner: Mutex::new(VecDeque::new()), capacity: capacity.max(1) }
    }

    fn claim(&self, key: &str, request_fp: u64) -> Claim {
        let mut table = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some((_, slot)) = table.iter().find(|(k, _)| k == key) {
            return if slot.request_fp == request_fp {
                Claim::Follower(slot.clone())
            } else {
                Claim::Mismatch
            };
        }
        let slot = Arc::new(ReplySlot::new(request_fp));
        table.push_back((key.to_string(), slot.clone()));
        while table.len() > self.capacity {
            table.pop_front();
        }
        Claim::Owner(slot)
    }

    /// Drops the key so a later retry re-executes — used when the owner's
    /// outcome is not a cacheable result (overloaded, shutting-down, ...).
    fn forget(&self, key: &str) {
        let mut table = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        table.retain(|(k, _)| k != key);
    }
}

/// Cloneable handle that triggers graceful shutdown from another thread
/// (the daemon's SIGINT bridge, or tests).
#[derive(Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Begins graceful shutdown: drain in-flight requests, then return.
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// The long-lived query service. Construct with [`Server::bind`], then
/// [`Server::run`] blocks until shutdown and returns the final stats.
pub struct Server {
    listener: TcpListener,
    cfg: ServeConfig,
    stop: Arc<AtomicBool>,
}

/// Shared state visible to handlers and workers.
struct Shared {
    store: ArtifactStore,
    queue: BoundedQueue,
    counters: Counters,
    dedup: DedupTable,
    prepare_latency: LatencyHistogram,
    execute_latency: LatencyHistogram,
    total_latency: LatencyHistogram,
    queue_wait_latency: LatencyHistogram,
    /// Sliding window of the most recent queue waits (micros) — the
    /// degraded-mode shed signal.
    recent_queue_wait: Mutex<VecDeque<u64>>,
    in_flight: AtomicU64,
    active_connections: AtomicUsize,
    started: Instant,
    cfg: ServeConfig,
    stop: Arc<AtomicBool>,
}

impl Shared {
    /// Records one queue wait into the histogram and the shed window.
    fn record_queue_wait(&self, micros: u64) {
        self.queue_wait_latency.record(micros);
        let mut window = self.recent_queue_wait.lock().unwrap_or_else(PoisonError::into_inner);
        window.push_back(micros);
        while window.len() > QUEUE_WAIT_WINDOW {
            window.pop_front();
        }
    }

    /// Nearest-rank p95 over the sliding queue-wait window (0 when empty).
    fn windowed_queue_wait_p95(&self) -> u64 {
        let window = self.recent_queue_wait.lock().unwrap_or_else(PoisonError::into_inner);
        if window.is_empty() {
            return 0;
        }
        let mut sorted: Vec<u64> = window.iter().copied().collect();
        drop(window);
        sorted.sort_unstable();
        let rank = ((0.95 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Whether degraded mode is shedding right now: windowed queue-wait p95
    /// over threshold *and* a backlog still queued (an empty queue means
    /// the congestion cleared, so stale window samples must not wedge the
    /// service in degraded mode).
    fn shedding(&self) -> bool {
        match self.cfg.shed_queue_wait {
            Some(threshold) => {
                self.queue.depth() > 0
                    && self.windowed_queue_wait_p95() >= threshold.as_micros() as u64
            }
            None => false,
        }
    }
    fn stats(&self) -> StatsReport {
        let disk = match self.store.disk() {
            Some(cache) => {
                let s = cache.stats();
                DiskCacheCounters {
                    enabled: true,
                    graph_hits: s.graph_hits,
                    graph_misses: s.graph_misses,
                    oag_hits: s.oag_hits,
                    oag_misses: s.oag_misses,
                    quarantined: s.quarantined,
                }
            }
            None => DiskCacheCounters::default(),
        };
        StatsReport {
            uptime_secs: self.started.elapsed().as_secs(),
            workers: self.cfg.workers as u64,
            queue_capacity: self.cfg.queue_capacity as u64,
            queue_depth: self.queue.depth() as u64 + self.in_flight.load(Ordering::Relaxed),
            requests: self.counters.snapshot(),
            closes: self.counters.closes(),
            artifacts: self.store.counters(),
            disk_cache: disk,
            prepare_latency: self.prepare_latency.summary(),
            execute_latency: self.execute_latency.summary(),
            total_latency: self.total_latency.summary(),
            queue_wait_latency: self.queue_wait_latency.summary(),
        }
    }
}

/// Binds a listening socket with `SO_REUSEADDR`, which std's
/// `TcpListener::bind` never sets: a daemon restarted after a crash must
/// reclaim its port immediately, even while connections from its previous
/// life linger in TIME_WAIT (the SIGKILL-recovery test depends on this).
/// IPv4-only fast path through the C symbols std already links; anything
/// else falls back to the plain std bind.
#[cfg(target_os = "linux")]
fn bind_listener(addr: &std::net::SocketAddr) -> io::Result<TcpListener> {
    use std::os::fd::FromRawFd;
    let std::net::SocketAddr::V4(v4) = addr else {
        return TcpListener::bind(addr);
    };
    extern "C" {
        fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
        fn bind(fd: i32, addr: *const u8, len: u32) -> i32;
        fn listen(fd: i32, backlog: i32) -> i32;
        fn close(fd: i32) -> i32;
    }
    const AF_INET: i32 = 2;
    const SOCK_STREAM: i32 = 1;
    const SOL_SOCKET: i32 = 1;
    const SO_REUSEADDR: i32 = 2;
    unsafe {
        let fd = socket(AF_INET, SOCK_STREAM, 0);
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        let fail = |fd: i32| -> io::Error {
            let e = io::Error::last_os_error();
            close(fd);
            e
        };
        let one: i32 = 1;
        if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4) != 0 {
            return Err(fail(fd));
        }
        // struct sockaddr_in: family u16, port u16be, addr u32be, zero[8].
        let mut sa = [0u8; 16];
        sa[0..2].copy_from_slice(&(AF_INET as u16).to_ne_bytes());
        sa[2..4].copy_from_slice(&v4.port().to_be_bytes());
        sa[4..8].copy_from_slice(&v4.ip().octets());
        if bind(fd, sa.as_ptr(), 16) != 0 {
            return Err(fail(fd));
        }
        if listen(fd, 128) != 0 {
            return Err(fail(fd));
        }
        Ok(TcpListener::from_raw_fd(fd))
    }
}

#[cfg(not(target_os = "linux"))]
fn bind_listener(addr: &std::net::SocketAddr) -> io::Result<TcpListener> {
    TcpListener::bind(addr)
}

impl Server {
    /// Binds the service socket (port 0 picks an ephemeral port; see
    /// [`local_addr`](Server::local_addr)). The socket carries
    /// `SO_REUSEADDR` so a restarted daemon reclaims its port without
    /// waiting out TIME_WAIT.
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServeConfig) -> io::Result<Server> {
        let mut last_err = None;
        let mut listener = None;
        for candidate in addr.to_socket_addrs()? {
            match bind_listener(&candidate) {
                Ok(l) => {
                    listener = Some(l);
                    break;
                }
                Err(e) => last_err = Some(e),
            }
        }
        let listener = match listener {
            Some(l) => l,
            None => {
                return Err(last_err.unwrap_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidInput, "no addresses to bind")
                }))
            }
        };
        listener.set_nonblocking(true)?;
        Ok(Server { listener, cfg, stop: Arc::new(AtomicBool::new(false)) })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that triggers graceful shutdown.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(self.stop.clone())
    }

    /// Runs the service until shutdown; returns the final stats snapshot.
    ///
    /// Worker and handler threads are scoped, so returning proves every
    /// in-flight request was drained and replied to.
    pub fn run(self) -> io::Result<StatsReport> {
        let disk = match &self.cfg.cache_dir {
            Some(dir) => match PreprocessCache::new(dir) {
                Ok(cache) => {
                    if self.cfg.recover_cache {
                        cache.set_remove_corrupt(true);
                        let (tmp, corrupt) = cache.recover();
                        if tmp + corrupt > 0 {
                            eprintln!(
                                "[chgraphd: cache recovery swept {tmp} torn write(s), \
                                 {corrupt} quarantined entr{}]",
                                if corrupt == 1 { "y" } else { "ies" }
                            );
                        }
                    }
                    Some(Arc::new(cache))
                }
                Err(e) => {
                    eprintln!("[chgraphd: cache disabled: cannot open {dir}: {e}]");
                    None
                }
            },
            None => None,
        };
        let shared = Shared {
            store: ArtifactStore::new(self.cfg.graph_lru, self.cfg.oag_lru, disk),
            queue: BoundedQueue::new(self.cfg.queue_capacity),
            counters: Counters::new(),
            dedup: DedupTable::new(self.cfg.dedup_capacity),
            prepare_latency: LatencyHistogram::new(),
            execute_latency: LatencyHistogram::new(),
            total_latency: LatencyHistogram::new(),
            queue_wait_latency: LatencyHistogram::new(),
            recent_queue_wait: Mutex::new(VecDeque::new()),
            in_flight: AtomicU64::new(0),
            active_connections: AtomicUsize::new(0),
            started: Instant::now(),
            cfg: self.cfg.clone(),
            stop: self.stop.clone(),
        };
        let shared = &shared;
        std::thread::scope(|scope| {
            for _ in 0..self.cfg.workers.max(1) {
                scope.spawn(move || worker_loop(shared));
            }
            // Accept loop: nonblocking accept polled against the stop flag.
            while !shared.stop.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        if shared.active_connections.load(Ordering::SeqCst)
                            >= shared.cfg.max_connections.max(1)
                        {
                            // Shed at the door: best-effort structured
                            // refusal, then close. Never spawn a handler.
                            shared.counters.on_conn_cap();
                            let mut stream = stream;
                            let _ = stream.set_write_timeout(Some(POLL_INTERVAL));
                            let _ = proto::send(
                                &mut stream,
                                &Response::Overloaded {
                                    queue_capacity: shared.cfg.queue_capacity as u64,
                                    retry_after_ms: CONN_CAP_RETRY_MS,
                                },
                            );
                            continue;
                        }
                        shared.active_connections.fetch_add(1, Ordering::SeqCst);
                        scope.spawn(move || {
                            let cause = handle_connection(stream, shared);
                            shared.counters.on_close(cause);
                            shared.active_connections.fetch_sub(1, Ordering::SeqCst);
                        });
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(e) => {
                        eprintln!("[chgraphd: accept error: {e}]");
                        std::thread::sleep(POLL_INTERVAL);
                    }
                }
            }
            // Drain: no new pushes; workers finish queued + in-flight jobs.
            shared.queue.drain();
        });
        Ok(shared.stats())
    }
}

/// Worker: pops queued runs until the queue reports drained-and-empty.
fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        shared.in_flight.fetch_add(1, Ordering::Relaxed);
        shared.record_queue_wait(job.enqueued_at.elapsed().as_micros() as u64);
        let response = execute_isolated(&job.request, shared);
        match &response {
            Response::Run(_) => shared.counters.on_ok(),
            _ => shared.counters.on_failed(),
        }
        shared.total_latency.record(job.enqueued_at.elapsed().as_micros() as u64);
        // A dropped receiver means the client hung up; nothing to do.
        let _ = job.reply.send(response);
        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Executes one run with panic isolation: a simulator bug becomes a typed
/// `internal-panic` error on this request, never a dead worker.
fn execute_isolated(request: &RunRequest, shared: &Shared) -> Response {
    match catch_unwind(AssertUnwindSafe(|| execute_run(request, shared))) {
        Ok(response) => response,
        Err(payload) => {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            Response::Error { kind: "internal-panic".into(), message }
        }
    }
}

fn pick_workload(name: &str) -> Option<Workload> {
    Some(match name.to_ascii_lowercase().as_str() {
        "bfs" => Workload::Bfs,
        "pr" | "pagerank" => Workload::Pr,
        "mis" => Workload::Mis,
        "bc" => Workload::Bc,
        "cc" => Workload::Cc,
        "kcore" | "k-core" => Workload::KCore,
        "sssp" => Workload::Sssp,
        "adsorption" => Workload::Adsorption,
        _ => return None,
    })
}

fn pick_runtime(name: &str) -> Option<Box<dyn Runtime>> {
    Some(match name.to_ascii_lowercase().as_str() {
        "hygra" => Box::new(HygraRuntime),
        "gla" => Box::new(GlaRuntime),
        "chgraph" => Box::new(ChGraphRuntime::new()),
        "hcg" => Box::new(ChGraphRuntime::hcg_only()),
        "hats" | "hats-v" => Box::new(HatsVRuntime),
        "prefetcher" => Box::new(PrefetcherRuntime),
        _ => return None,
    })
}

/// Whether a runtime consumes [`chgraph::PreparedOags`].
fn uses_oags(name: &str) -> bool {
    matches!(name.to_ascii_lowercase().as_str(), "gla" | "chgraph" | "hcg")
}

/// Per-budget minimum of the service default and the request's own budgets
/// — a client cannot opt out of the service's runaway protection, only
/// tighten it.
fn merged_watchdog(service: WatchdogConfig, request: &RunRequest) -> WatchdogConfig {
    let min_opt = |a: Option<u64>, b: Option<u64>| match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    let wall = match (service.max_wall, request.max_wall_ms.map(Duration::from_millis)) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    WatchdogConfig {
        max_cycles: min_opt(service.max_cycles, request.max_cycles),
        max_wall: wall,
        max_stalled_iterations: service.max_stalled_iterations,
    }
}

/// Builds the library-level [`RunConfig`] for a request; `Err` is a
/// bad-request message.
fn build_run_config(request: &RunRequest, shared: &Shared) -> Result<RunConfig, String> {
    let mut cfg = RunConfig::new().with_oag_build_threads(shared.cfg.oag_build_threads);
    if let Some(cores) = request.cores {
        if cores == 0 {
            return Err("cores must be >= 1".into());
        }
        cfg = cfg.with_system(archsim::SystemConfig::scaled(cores));
    }
    if let Some(w) = request.wmin {
        cfg = cfg.with_oag(oag::OagConfig::new().with_w_min(w));
    }
    if let Some(d) = request.dmax {
        cfg = cfg.with_chain(oag::ChainConfig::new(d));
    }
    if let Some(n) = request.iters {
        cfg = cfg.with_max_iterations(n);
    }
    cfg.validate = request.validate;
    cfg.watchdog = merged_watchdog(shared.cfg.default_watchdog, request);
    Ok(cfg)
}

/// The uninsulated run path (inside `catch_unwind`).
fn execute_run(request: &RunRequest, shared: &Shared) -> Response {
    let bad = |msg: String| Response::Error { kind: "bad-request".into(), message: msg };
    let Some(workload) = pick_workload(&request.workload) else {
        return bad(format!("unknown workload {:?}", request.workload));
    };
    let Some(runtime) = pick_runtime(&request.runtime) else {
        return bad(format!("unknown runtime {:?}", request.runtime));
    };
    let Some(dataset) =
        Dataset::ALL.into_iter().find(|d| d.abbrev().eq_ignore_ascii_case(&request.dataset))
    else {
        return bad(format!("unknown dataset {:?}", request.dataset));
    };
    let cfg = match build_run_config(request, shared) {
        Ok(cfg) => cfg,
        Err(msg) => return bad(msg),
    };
    let scale = Scale(request.scale);

    // Phase 1: artifact preparation (LRU → disk cache → build).
    let t_prepare = Instant::now();
    let (graph, prepared, fetch) = if uses_oags(&request.runtime) {
        let (g, p, fetch) = shared.store.prepared(dataset, scale, &cfg);
        (g, Some(p), fetch)
    } else {
        let (g, fetch) = shared.store.graph(dataset, scale);
        (g, None, fetch)
    };
    let prepare_micros = t_prepare.elapsed().as_micros() as u64;
    shared.prepare_latency.record(prepare_micros);
    let artifact_source = match (&prepared, fetch) {
        (None, _) => ArtifactSource::NotApplicable,
        (Some(_), Fetch::Hit) => ArtifactSource::LruHit,
        (Some(_), Fetch::Coalesced) => ArtifactSource::Coalesced,
        (Some(_), Fetch::Miss) => ArtifactSource::Built,
    };

    // Phase 2: execution (`repeat` identical runs; the last one replies).
    let t_execute = Instant::now();
    let mut last: Option<Result<ExecutionReport, Response>> = None;
    for _ in 0..request.repeat.max(1) {
        let outcome = if request.self_check {
            match self_check_prepared(workload, runtime.as_ref(), &graph, &cfg, prepared.as_deref())
            {
                Ok(checked) => Ok(checked.report),
                Err(e) => Err(Response::Error {
                    kind: "self-check-failed".into(),
                    message: e.to_string(),
                }),
            }
        } else {
            match try_run_workload_prepared(
                workload,
                runtime.as_ref(),
                &graph,
                &cfg,
                prepared.as_deref(),
            ) {
                Ok(report) => Ok(report),
                Err(e) => Err(error_response(&e)),
            }
        };
        let failed = outcome.is_err();
        last = Some(outcome);
        if failed {
            break;
        }
    }
    let execute_micros = t_execute.elapsed().as_micros() as u64;
    shared.execute_latency.record(execute_micros);
    // invariant: repeat >= 1, so the loop ran at least once.
    match last.expect("at least one execution") {
        Ok(report) => Response::Run(run_result_from_report(
            &report,
            request.self_check,
            artifact_source,
            prepare_micros,
            execute_micros,
        )),
        Err(resp) => resp,
    }
}

/// Handles one client connection: a sequence of request frames until EOF,
/// timeout, protocol error, or shutdown. Returns why the connection ended;
/// the accept loop tallies it.
fn handle_connection(stream: TcpStream, shared: &Shared) -> CloseCause {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
    let mut stream = stream;
    loop {
        // Wait for the next frame's first byte without consuming it, so a
        // shutdown between requests closes idle connections promptly and a
        // read timeout can never tear a half-received frame.
        match wait_for_data(&stream, shared) {
            WaitOutcome::Ready => {}
            WaitOutcome::Closed | WaitOutcome::Shutdown => return CloseCause::Clean,
            WaitOutcome::Reset => return CloseCause::Reset,
        }
        // The frame deadline clock starts at its first byte; the reader
        // enforces both the per-read quiet period and the total deadline.
        let mut reader = DeadlineReader::new(
            &stream,
            shared.cfg.read_timeout,
            Instant::now() + shared.cfg.frame_deadline,
        );
        let request: Request = match proto::recv(&mut reader) {
            Ok(req) => req,
            Err(proto::ProtoError::Io(e))
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                // Tell the slow peer why before closing (best effort — its
                // send direction may be the broken one).
                let cause = if reader.deadline_hit {
                    CloseCause::FrameDeadline
                } else {
                    CloseCause::ReadTimeout
                };
                let resp = Response::Error {
                    kind: "timeout".into(),
                    message: match cause {
                        CloseCause::FrameDeadline => format!(
                            "request frame exceeded the {:?} frame deadline",
                            shared.cfg.frame_deadline
                        ),
                        _ => format!(
                            "no data for {:?} while a frame was in progress",
                            shared.cfg.read_timeout
                        ),
                    },
                };
                let _ = proto::send(&mut stream, &resp);
                return cause;
            }
            Err(proto::ProtoError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return CloseCause::Reset; // connection died mid-frame
            }
            Err(proto::ProtoError::Io(_)) => return CloseCause::Reset,
            Err(e) => {
                shared.counters.on_protocol_error();
                let resp = Response::Error { kind: "protocol".into(), message: e.to_string() };
                let _ = proto::send(&mut stream, &resp);
                return CloseCause::Protocol;
            }
        };
        shared.counters.on_received();
        let done = matches!(request, Request::Shutdown);
        let response = dispatch(request, shared);
        if let Err(e) = proto::send(&mut stream, &response) {
            return match e.kind() {
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => CloseCause::WriteTimeout,
                _ => CloseCause::Reset,
            };
        }
        if done {
            return CloseCause::Clean;
        }
    }
}

enum WaitOutcome {
    Ready,
    Closed,
    Shutdown,
    Reset,
}

/// Polls `peek` until a byte is available, the peer closes, or shutdown is
/// requested.
fn wait_for_data(stream: &TcpStream, shared: &Shared) -> WaitOutcome {
    let mut byte = [0u8; 1];
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return WaitOutcome::Reset;
    }
    loop {
        match stream.peek(&mut byte) {
            Ok(0) => return WaitOutcome::Closed,
            Ok(_) => return WaitOutcome::Ready,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.stop.load(Ordering::SeqCst) {
                    return WaitOutcome::Shutdown;
                }
            }
            Err(_) => return WaitOutcome::Reset,
        }
    }
}

/// A [`Read`] adapter over a `TcpStream` that enforces two budgets at once:
/// a per-read quiet period (`read_timeout`) and an absolute per-frame
/// deadline. Each read's socket timeout is the *smaller* of the quiet
/// period and the time left until the deadline, so a slow-loris drip that
/// always arrives just inside the quiet period still hits the frame
/// deadline. After a timeout, `deadline_hit` says which budget fired.
struct DeadlineReader<'a> {
    stream: &'a TcpStream,
    read_timeout: Duration,
    deadline: Instant,
    /// `true` when the last timeout came from the frame deadline rather
    /// than the per-read quiet period.
    deadline_hit: bool,
}

impl<'a> DeadlineReader<'a> {
    fn new(stream: &'a TcpStream, read_timeout: Duration, deadline: Instant) -> Self {
        DeadlineReader { stream, read_timeout, deadline, deadline_hit: false }
    }
}

impl Read for DeadlineReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            self.deadline_hit = true;
            return Err(io::Error::new(io::ErrorKind::TimedOut, "frame deadline exceeded"));
        }
        let budget = remaining.min(self.read_timeout);
        // `set_read_timeout(Some(ZERO))` is an invalid argument; `budget`
        // is nonzero here because `remaining` is.
        self.stream.set_read_timeout(Some(budget))?;
        match self.stream.read(buf) {
            Ok(n) => Ok(n),
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                self.deadline_hit = budget < self.read_timeout;
                Err(io::Error::new(io::ErrorKind::TimedOut, e))
            }
            Err(e) => Err(e),
        }
    }
}

/// Routes one request: `Run` through the bounded queue, everything else
/// answered inline.
fn dispatch(request: Request, shared: &Shared) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Stats => Response::Stats(shared.stats()),
        Request::Shutdown => {
            shared.stop.store(true, Ordering::SeqCst);
            Response::ShuttingDown
        }
        Request::Run(run) => {
            if shared.stop.load(Ordering::SeqCst) {
                return Response::Error {
                    kind: "shutting-down".into(),
                    message: "service is draining; not accepting new runs".into(),
                };
            }
            // Degraded mode: shed before touching dedup or the queue so a
            // congested service answers in microseconds, not queue waits.
            if shared.shedding() {
                shared.counters.on_shed();
                let threshold = shared.cfg.shed_queue_wait.unwrap_or_default();
                return Response::Overloaded {
                    queue_capacity: shared.cfg.queue_capacity as u64,
                    retry_after_ms: (threshold.as_millis() as u64).max(1),
                };
            }
            // Idempotent replay: a request_key claims a single-flight slot.
            // Followers wait on the owner's slot and receive the identical
            // reply without executing again.
            let claimed = match &run.request_key {
                Some(key) => match shared.dedup.claim(key, run.content_fingerprint()) {
                    Claim::Owner(slot) => Some((key.clone(), slot)),
                    Claim::Follower(slot) => {
                        shared.counters.on_deduped();
                        return slot.wait();
                    }
                    Claim::Mismatch => {
                        return Response::Error {
                            kind: "bad-request".into(),
                            message: "request_key reused with a different request".into(),
                        };
                    }
                },
                None => None,
            };
            let (tx, rx) = mpsc::channel();
            let job = QueuedRun { request: run, enqueued_at: Instant::now(), reply: tx };
            let response = match shared.queue.try_push(job) {
                Ok(()) => match rx.recv() {
                    Ok(response) => response,
                    Err(_) => Response::Error {
                        kind: "internal-panic".into(),
                        message: "worker dropped the reply channel".into(),
                    },
                },
                Err(PushError::Draining) => Response::Error {
                    kind: "shutting-down".into(),
                    message: "service is draining; not accepting new runs".into(),
                },
                Err(PushError::Full) => {
                    shared.counters.on_rejected();
                    Response::Overloaded {
                        queue_capacity: shared.cfg.queue_capacity as u64,
                        retry_after_ms: 0,
                    }
                }
            };
            if let Some((key, slot)) = claimed {
                // Only a completed run is replay-safe under this key; a
                // transient outcome (overloaded, draining) must not be
                // replayed to the retry that comes to fix it.
                if !matches!(response, Response::Run(_)) {
                    shared.dedup.forget(&key);
                }
                slot.put(response.clone());
            }
            response
        }
    }
}
