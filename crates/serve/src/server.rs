//! The daemon core: a bounded work queue, a scoped worker pool, a
//! thread-per-connection accept loop, and graceful shutdown.
//!
//! # Request flow
//!
//! ```text
//! client ──frame──▶ handler thread ──try_push──▶ bounded queue ──▶ worker pool
//!        ◀─frame──            ▲                        │  (N threads, executes
//!                             └──── mpsc reply ◀───────┘   on the ArtifactStore)
//! ```
//!
//! `Stats`/`Ping`/`Shutdown` are answered inline by the handler; only `Run`
//! requests pass through the queue. When the queue is full the handler
//! replies [`Response::Overloaded`] immediately — explicit backpressure
//! instead of unbounded buffering or a hung client.
//!
//! # Shutdown
//!
//! Shutdown (a `Shutdown` request, [`ShutdownHandle::shutdown`], or the
//! daemon's SIGINT bridge) is a drain, not an abort: the accept loop stops
//! taking connections, handlers reject *new* run requests with a typed
//! `shutting-down` error, workers finish everything already queued or
//! executing, every reply is delivered, and [`Server::run`] returns a final
//! [`StatsReport`]. Per-request [`WatchdogConfig`] budgets bound how long a
//! drain can take: a runaway simulation trips its budget and returns a
//! typed error instead of wedging a worker forever.

use crate::lru::{ArtifactStore, Fetch};
use crate::proto::{
    self, error_response, run_result_from_report, ArtifactSource, DiskCacheCounters, Request,
    Response, RunRequest, StatsReport,
};
use crate::stats::{Counters, LatencyHistogram};
use chg_bench::{PreprocessCache, Scale};
use chgraph::{
    ChGraphRuntime, ExecutionReport, GlaRuntime, HatsVRuntime, HygraRuntime, PrefetcherRuntime,
    RunConfig, Runtime, WatchdogConfig,
};
use hyperalgos::{self_check_prepared, try_run_workload_prepared, Workload};
use hypergraph::datasets::Dataset;
use std::collections::VecDeque;
use std::io;
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// How often blocked loops re-check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);
/// Read budget for one frame once its first byte has arrived — bounds how
/// long a stalled client can pin a handler thread.
const FRAME_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Service configuration.
#[derive(Clone)]
pub struct ServeConfig {
    /// Worker threads executing run requests.
    pub workers: usize,
    /// Bounded queue capacity; a full queue rejects with `overloaded`.
    pub queue_capacity: usize,
    /// In-memory LRU capacity for loaded graphs.
    pub graph_lru: usize,
    /// In-memory LRU capacity for prepared OAG pairs.
    pub oag_lru: usize,
    /// On-disk preprocess cache directory (`None` disables).
    pub cache_dir: Option<String>,
    /// Watchdog budgets applied to every request **in addition to** its own
    /// (the stricter of the two wins per budget) — the service's runaway
    /// protection.
    pub default_watchdog: WatchdogConfig,
    /// Host threads for OAG construction inside a worker.
    pub oag_build_threads: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 2,
            queue_capacity: 16,
            graph_lru: 8,
            oag_lru: 8,
            cache_dir: None,
            default_watchdog: WatchdogConfig::default(),
            oag_build_threads: 1,
        }
    }
}

/// Why [`BoundedQueue::try_push`] refused a job.
enum PushError {
    /// The queue is at capacity — reply `overloaded`.
    Full,
    /// The service is draining — reply `shutting-down`.
    Draining,
}

/// One queued run: the request plus the channel its handler waits on.
struct QueuedRun {
    request: RunRequest,
    enqueued_at: Instant,
    reply: mpsc::Sender<Response>,
}

/// The bounded request queue: `Mutex<VecDeque>` + `Condvar`. `try_push`
/// never blocks (backpressure is a rejection, not a wait); `pop` blocks
/// until work arrives or shutdown has drained the queue.
struct BoundedQueue {
    inner: Mutex<VecDeque<QueuedRun>>,
    capacity: usize,
    available: Condvar,
    draining: AtomicBool,
}

impl BoundedQueue {
    fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
            available: Condvar::new(),
            draining: AtomicBool::new(false),
        }
    }

    /// Enqueues unless full or draining; on `Err` the job (and its reply
    /// sender) is dropped and the caller answers the client directly.
    fn try_push(&self, job: QueuedRun) -> Result<(), PushError> {
        if self.draining.load(Ordering::SeqCst) {
            return Err(PushError::Draining);
        }
        let mut q = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        if q.len() >= self.capacity {
            return Err(PushError::Full);
        }
        q.push_back(job);
        drop(q);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once draining *and* empty.
    fn pop(&self) -> Option<QueuedRun> {
        let mut q = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(job) = q.pop_front() {
                return Some(job);
            }
            if self.draining.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self
                .available
                .wait_timeout(q, POLL_INTERVAL)
                .unwrap_or_else(PoisonError::into_inner);
            q = guard;
        }
    }

    /// Stops accepting pushes; wakes all poppers so they can drain and exit.
    fn drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }

    fn depth(&self) -> usize {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner).len()
    }
}

/// Cloneable handle that triggers graceful shutdown from another thread
/// (the daemon's SIGINT bridge, or tests).
#[derive(Clone)]
pub struct ShutdownHandle(Arc<AtomicBool>);

impl ShutdownHandle {
    /// Begins graceful shutdown: drain in-flight requests, then return.
    pub fn shutdown(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// The long-lived query service. Construct with [`Server::bind`], then
/// [`Server::run`] blocks until shutdown and returns the final stats.
pub struct Server {
    listener: TcpListener,
    cfg: ServeConfig,
    stop: Arc<AtomicBool>,
}

/// Shared state visible to handlers and workers.
struct Shared {
    store: ArtifactStore,
    queue: BoundedQueue,
    counters: Counters,
    prepare_latency: LatencyHistogram,
    execute_latency: LatencyHistogram,
    total_latency: LatencyHistogram,
    in_flight: AtomicU64,
    started: Instant,
    cfg: ServeConfig,
    stop: Arc<AtomicBool>,
}

impl Shared {
    fn stats(&self) -> StatsReport {
        let disk = match self.store.disk() {
            Some(cache) => {
                let s = cache.stats();
                DiskCacheCounters {
                    enabled: true,
                    graph_hits: s.graph_hits,
                    graph_misses: s.graph_misses,
                    oag_hits: s.oag_hits,
                    oag_misses: s.oag_misses,
                    quarantined: s.quarantined,
                }
            }
            None => DiskCacheCounters::default(),
        };
        StatsReport {
            uptime_secs: self.started.elapsed().as_secs(),
            workers: self.cfg.workers as u64,
            queue_capacity: self.cfg.queue_capacity as u64,
            queue_depth: self.queue.depth() as u64 + self.in_flight.load(Ordering::Relaxed),
            requests: self.counters.snapshot(),
            artifacts: self.store.counters(),
            disk_cache: disk,
            prepare_latency: self.prepare_latency.summary(),
            execute_latency: self.execute_latency.summary(),
            total_latency: self.total_latency.summary(),
        }
    }
}

impl Server {
    /// Binds the service socket (port 0 picks an ephemeral port; see
    /// [`local_addr`](Server::local_addr)).
    pub fn bind(addr: impl ToSocketAddrs, cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server { listener, cfg, stop: Arc::new(AtomicBool::new(false)) })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that triggers graceful shutdown.
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle(self.stop.clone())
    }

    /// Runs the service until shutdown; returns the final stats snapshot.
    ///
    /// Worker and handler threads are scoped, so returning proves every
    /// in-flight request was drained and replied to.
    pub fn run(self) -> io::Result<StatsReport> {
        let disk = match &self.cfg.cache_dir {
            Some(dir) => match PreprocessCache::new(dir) {
                Ok(cache) => Some(Arc::new(cache)),
                Err(e) => {
                    eprintln!("[chgraphd: cache disabled: cannot open {dir}: {e}]");
                    None
                }
            },
            None => None,
        };
        let shared = Shared {
            store: ArtifactStore::new(self.cfg.graph_lru, self.cfg.oag_lru, disk),
            queue: BoundedQueue::new(self.cfg.queue_capacity),
            counters: Counters::new(),
            prepare_latency: LatencyHistogram::new(),
            execute_latency: LatencyHistogram::new(),
            total_latency: LatencyHistogram::new(),
            in_flight: AtomicU64::new(0),
            started: Instant::now(),
            cfg: self.cfg.clone(),
            stop: self.stop.clone(),
        };
        let shared = &shared;
        std::thread::scope(|scope| {
            for _ in 0..self.cfg.workers.max(1) {
                scope.spawn(move || worker_loop(shared));
            }
            // Accept loop: nonblocking accept polled against the stop flag.
            while !shared.stop.load(Ordering::SeqCst) {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        scope.spawn(move || handle_connection(stream, shared));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(e) => {
                        eprintln!("[chgraphd: accept error: {e}]");
                        std::thread::sleep(POLL_INTERVAL);
                    }
                }
            }
            // Drain: no new pushes; workers finish queued + in-flight jobs.
            shared.queue.drain();
        });
        Ok(shared.stats())
    }
}

/// Worker: pops queued runs until the queue reports drained-and-empty.
fn worker_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        shared.in_flight.fetch_add(1, Ordering::Relaxed);
        let response = execute_isolated(&job.request, shared);
        match &response {
            Response::Run(_) => shared.counters.on_ok(),
            _ => shared.counters.on_failed(),
        }
        shared.total_latency.record(job.enqueued_at.elapsed().as_micros() as u64);
        // A dropped receiver means the client hung up; nothing to do.
        let _ = job.reply.send(response);
        shared.in_flight.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Executes one run with panic isolation: a simulator bug becomes a typed
/// `internal-panic` error on this request, never a dead worker.
fn execute_isolated(request: &RunRequest, shared: &Shared) -> Response {
    match catch_unwind(AssertUnwindSafe(|| execute_run(request, shared))) {
        Ok(response) => response,
        Err(payload) => {
            let message = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "non-string panic payload".into());
            Response::Error { kind: "internal-panic".into(), message }
        }
    }
}

fn pick_workload(name: &str) -> Option<Workload> {
    Some(match name.to_ascii_lowercase().as_str() {
        "bfs" => Workload::Bfs,
        "pr" | "pagerank" => Workload::Pr,
        "mis" => Workload::Mis,
        "bc" => Workload::Bc,
        "cc" => Workload::Cc,
        "kcore" | "k-core" => Workload::KCore,
        "sssp" => Workload::Sssp,
        "adsorption" => Workload::Adsorption,
        _ => return None,
    })
}

fn pick_runtime(name: &str) -> Option<Box<dyn Runtime>> {
    Some(match name.to_ascii_lowercase().as_str() {
        "hygra" => Box::new(HygraRuntime),
        "gla" => Box::new(GlaRuntime),
        "chgraph" => Box::new(ChGraphRuntime::new()),
        "hcg" => Box::new(ChGraphRuntime::hcg_only()),
        "hats" | "hats-v" => Box::new(HatsVRuntime),
        "prefetcher" => Box::new(PrefetcherRuntime),
        _ => return None,
    })
}

/// Whether a runtime consumes [`chgraph::PreparedOags`].
fn uses_oags(name: &str) -> bool {
    matches!(name.to_ascii_lowercase().as_str(), "gla" | "chgraph" | "hcg")
}

/// Per-budget minimum of the service default and the request's own budgets
/// — a client cannot opt out of the service's runaway protection, only
/// tighten it.
fn merged_watchdog(service: WatchdogConfig, request: &RunRequest) -> WatchdogConfig {
    let min_opt = |a: Option<u64>, b: Option<u64>| match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    let wall = match (service.max_wall, request.max_wall_ms.map(Duration::from_millis)) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    WatchdogConfig {
        max_cycles: min_opt(service.max_cycles, request.max_cycles),
        max_wall: wall,
        max_stalled_iterations: service.max_stalled_iterations,
    }
}

/// Builds the library-level [`RunConfig`] for a request; `Err` is a
/// bad-request message.
fn build_run_config(request: &RunRequest, shared: &Shared) -> Result<RunConfig, String> {
    let mut cfg = RunConfig::new().with_oag_build_threads(shared.cfg.oag_build_threads);
    if let Some(cores) = request.cores {
        if cores == 0 {
            return Err("cores must be >= 1".into());
        }
        cfg = cfg.with_system(archsim::SystemConfig::scaled(cores));
    }
    if let Some(w) = request.wmin {
        cfg = cfg.with_oag(oag::OagConfig::new().with_w_min(w));
    }
    if let Some(d) = request.dmax {
        cfg = cfg.with_chain(oag::ChainConfig::new(d));
    }
    if let Some(n) = request.iters {
        cfg = cfg.with_max_iterations(n);
    }
    cfg.validate = request.validate;
    cfg.watchdog = merged_watchdog(shared.cfg.default_watchdog, request);
    Ok(cfg)
}

/// The uninsulated run path (inside `catch_unwind`).
fn execute_run(request: &RunRequest, shared: &Shared) -> Response {
    let bad = |msg: String| Response::Error { kind: "bad-request".into(), message: msg };
    let Some(workload) = pick_workload(&request.workload) else {
        return bad(format!("unknown workload {:?}", request.workload));
    };
    let Some(runtime) = pick_runtime(&request.runtime) else {
        return bad(format!("unknown runtime {:?}", request.runtime));
    };
    let Some(dataset) =
        Dataset::ALL.into_iter().find(|d| d.abbrev().eq_ignore_ascii_case(&request.dataset))
    else {
        return bad(format!("unknown dataset {:?}", request.dataset));
    };
    let cfg = match build_run_config(request, shared) {
        Ok(cfg) => cfg,
        Err(msg) => return bad(msg),
    };
    let scale = Scale(request.scale);

    // Phase 1: artifact preparation (LRU → disk cache → build).
    let t_prepare = Instant::now();
    let (graph, prepared, fetch) = if uses_oags(&request.runtime) {
        let (g, p, fetch) = shared.store.prepared(dataset, scale, &cfg);
        (g, Some(p), fetch)
    } else {
        let (g, fetch) = shared.store.graph(dataset, scale);
        (g, None, fetch)
    };
    let prepare_micros = t_prepare.elapsed().as_micros() as u64;
    shared.prepare_latency.record(prepare_micros);
    let artifact_source = match (&prepared, fetch) {
        (None, _) => ArtifactSource::NotApplicable,
        (Some(_), Fetch::Hit) => ArtifactSource::LruHit,
        (Some(_), Fetch::Coalesced) => ArtifactSource::Coalesced,
        (Some(_), Fetch::Miss) => ArtifactSource::Built,
    };

    // Phase 2: execution (`repeat` identical runs; the last one replies).
    let t_execute = Instant::now();
    let mut last: Option<Result<ExecutionReport, Response>> = None;
    for _ in 0..request.repeat.max(1) {
        let outcome = if request.self_check {
            match self_check_prepared(workload, runtime.as_ref(), &graph, &cfg, prepared.as_deref())
            {
                Ok(checked) => Ok(checked.report),
                Err(e) => Err(Response::Error {
                    kind: "self-check-failed".into(),
                    message: e.to_string(),
                }),
            }
        } else {
            match try_run_workload_prepared(
                workload,
                runtime.as_ref(),
                &graph,
                &cfg,
                prepared.as_deref(),
            ) {
                Ok(report) => Ok(report),
                Err(e) => Err(error_response(&e)),
            }
        };
        let failed = outcome.is_err();
        last = Some(outcome);
        if failed {
            break;
        }
    }
    let execute_micros = t_execute.elapsed().as_micros() as u64;
    shared.execute_latency.record(execute_micros);
    // invariant: repeat >= 1, so the loop ran at least once.
    match last.expect("at least one execution") {
        Ok(report) => Response::Run(run_result_from_report(
            &report,
            request.self_check,
            artifact_source,
            prepare_micros,
            execute_micros,
        )),
        Err(resp) => resp,
    }
}

/// Handles one client connection: a sequence of request frames until EOF,
/// protocol error, or shutdown.
fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let mut stream = stream;
    loop {
        // Wait for the next frame's first byte without consuming it, so a
        // shutdown between requests closes idle connections promptly and a
        // read timeout can never tear a half-received frame.
        match wait_for_data(&stream, shared) {
            WaitOutcome::Ready => {}
            WaitOutcome::Closed | WaitOutcome::Shutdown => return,
        }
        if stream.set_read_timeout(Some(FRAME_READ_TIMEOUT)).is_err() {
            return;
        }
        let request: Request = match proto::recv(&mut stream) {
            Ok(req) => req,
            Err(proto::ProtoError::Io(e)) if e.kind() == io::ErrorKind::UnexpectedEof => {
                return; // clean EOF between frames
            }
            Err(e) => {
                shared.counters.on_protocol_error();
                let resp = Response::Error { kind: "protocol".into(), message: e.to_string() };
                let _ = proto::send(&mut stream, &resp);
                return;
            }
        };
        shared.counters.on_received();
        let done = matches!(request, Request::Shutdown);
        let response = dispatch(request, shared);
        if proto::send(&mut stream, &response).is_err() || done {
            return;
        }
    }
}

enum WaitOutcome {
    Ready,
    Closed,
    Shutdown,
}

/// Polls `peek` until a byte is available, the peer closes, or shutdown is
/// requested.
fn wait_for_data(stream: &TcpStream, shared: &Shared) -> WaitOutcome {
    let mut byte = [0u8; 1];
    if stream.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return WaitOutcome::Closed;
    }
    loop {
        match stream.peek(&mut byte) {
            Ok(0) => return WaitOutcome::Closed,
            Ok(_) => return WaitOutcome::Ready,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shared.stop.load(Ordering::SeqCst) {
                    return WaitOutcome::Shutdown;
                }
            }
            Err(_) => return WaitOutcome::Closed,
        }
    }
}

/// Routes one request: `Run` through the bounded queue, everything else
/// answered inline.
fn dispatch(request: Request, shared: &Shared) -> Response {
    match request {
        Request::Ping => Response::Pong,
        Request::Stats => Response::Stats(shared.stats()),
        Request::Shutdown => {
            shared.stop.store(true, Ordering::SeqCst);
            Response::ShuttingDown
        }
        Request::Run(run) => {
            if shared.stop.load(Ordering::SeqCst) {
                return Response::Error {
                    kind: "shutting-down".into(),
                    message: "service is draining; not accepting new runs".into(),
                };
            }
            let (tx, rx) = mpsc::channel();
            let job = QueuedRun { request: run, enqueued_at: Instant::now(), reply: tx };
            match shared.queue.try_push(job) {
                Ok(()) => match rx.recv() {
                    Ok(response) => response,
                    Err(_) => Response::Error {
                        kind: "internal-panic".into(),
                        message: "worker dropped the reply channel".into(),
                    },
                },
                Err(PushError::Draining) => Response::Error {
                    kind: "shutting-down".into(),
                    message: "service is draining; not accepting new runs".into(),
                },
                Err(PushError::Full) => {
                    shared.counters.on_rejected();
                    Response::Overloaded { queue_capacity: shared.cfg.queue_capacity as u64 }
                }
            }
        }
    }
}
