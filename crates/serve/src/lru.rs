//! The prepared-artifact store: an in-memory LRU of loaded hypergraphs and
//! [`PreparedOags`] keyed by `(dataset, scale, W_min, D_max)`, with
//! single-flight build deduplication and an optional on-disk
//! [`PreprocessCache`] fallback.
//!
//! Reuse is what amortizes the preprocessing the paper measures in §VI-G:
//! a resident service pays OAG construction once per key and serves every
//! subsequent request from memory. Two guarantees keep reuse safe:
//!
//! 1. **Bit-identity** — an LRU hit returns the same `Arc` a fresh build
//!    would have produced (`Runtime::execute_prepared`'s contract re-checks
//!    the `OagConfig` anyway), so a cached artifact can never change a
//!    result, only its latency.
//! 2. **Single flight** — concurrent requests for the same key share one
//!    build: the map stores `Arc<OnceLock<...>>` slots (the same pattern as
//!    the figure harness's memo), so latecomers block on the winner's
//!    `get_or_init` instead of duplicating minutes of OAG construction.
//!
//! Eviction is strict LRU per table, counted in
//! [`ArtifactCounters::evictions`]. Evicting an in-flight slot is safe: the
//! `Arc` keeps it alive for its waiters; it just stops being findable.

use crate::proto::ArtifactCounters;
use chg_bench::{load_scaled, PreprocessCache, Scale};
use chgraph::{PreparedOags, RunConfig};
use hypergraph::datasets::Dataset;
use hypergraph::{Hypergraph, Side};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// A single-flight memo slot (see the figure harness's identical pattern).
type Slot<T> = Arc<OnceLock<T>>;

/// Key of a loaded dataset stand-in.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct GraphKey {
    /// The dataset.
    pub dataset: Dataset,
    /// `Scale` factor bits (f64 bit pattern, so the key is `Eq`).
    pub scale_bits: u64,
}

/// Key of a prepared-OAG pair: the ISSUE-specified `(dataset, W_min,
/// D_max)` plus the scale the graph was generated at.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OagKey {
    /// The dataset.
    pub dataset: Dataset,
    /// `Scale` factor bits.
    pub scale_bits: u64,
    /// OAG `W_min`.
    pub w_min: u32,
    /// Chain `D_max` (does not change the artifact, but partitions the LRU
    /// the way requests are keyed).
    pub d_max: usize,
}

/// A fixed-capacity strict-LRU map. The entry count is small (a handful of
/// datasets × a few configurations), so an ordered `Vec` beats pointer
/// chasing: front = most recently used.
struct LruMap<K, V> {
    capacity: usize,
    entries: Vec<(K, V)>,
}

impl<K: PartialEq + Copy, V: Clone> LruMap<K, V> {
    fn new(capacity: usize) -> Self {
        LruMap { capacity: capacity.max(1), entries: Vec::new() }
    }

    /// Looks up `key`, promoting it to most-recent on a hit.
    fn get(&mut self, key: K) -> Option<V> {
        let idx = self.entries.iter().position(|(k, _)| *k == key)?;
        let entry = self.entries.remove(idx);
        let value = entry.1.clone();
        self.entries.insert(0, entry);
        Some(value)
    }

    /// Inserts `key` as most-recent, returning how many entries were
    /// evicted to make room (0 or 1).
    fn insert(&mut self, key: K, value: V) -> u64 {
        self.entries.retain(|(k, _)| *k != key);
        self.entries.insert(0, (key, value));
        let mut evicted = 0;
        while self.entries.len() > self.capacity {
            self.entries.pop();
            evicted += 1;
        }
        evicted
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// How a lookup was satisfied, for per-request reporting.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fetch {
    /// The slot existed and was already initialized.
    Hit,
    /// The slot existed but its build was still in flight; this request
    /// waited for it.
    Coalesced,
    /// This request created the slot and ran the build.
    Miss,
}

/// The resident artifact store backing the worker pool.
pub struct ArtifactStore {
    graphs: Mutex<LruMap<GraphKey, Slot<Arc<Hypergraph>>>>,
    oags: Mutex<LruMap<OagKey, Slot<Arc<PreparedOags>>>>,
    disk: Option<Arc<PreprocessCache>>,
    graph_hits: AtomicU64,
    graph_misses: AtomicU64,
    oag_hits: AtomicU64,
    oag_misses: AtomicU64,
    coalesced: AtomicU64,
    evictions: AtomicU64,
}

impl ArtifactStore {
    /// A store holding at most `graph_capacity` graphs and `oag_capacity`
    /// prepared-OAG pairs, optionally backed by an on-disk cache.
    pub fn new(
        graph_capacity: usize,
        oag_capacity: usize,
        disk: Option<Arc<PreprocessCache>>,
    ) -> Self {
        ArtifactStore {
            graphs: Mutex::new(LruMap::new(graph_capacity)),
            oags: Mutex::new(LruMap::new(oag_capacity)),
            disk,
            graph_hits: AtomicU64::new(0),
            graph_misses: AtomicU64::new(0),
            oag_hits: AtomicU64::new(0),
            oag_misses: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The attached disk cache, if any.
    pub fn disk(&self) -> Option<&PreprocessCache> {
        self.disk.as_deref()
    }

    /// The scaled stand-in for `(dataset, scale)`, loading (disk cache
    /// first, then regeneration) at most once per key.
    pub fn graph(&self, dataset: Dataset, scale: Scale) -> (Arc<Hypergraph>, Fetch) {
        let key = GraphKey { dataset, scale_bits: scale.factor().to_bits() };
        let (slot, fetch) = {
            let mut map = self.graphs.lock().unwrap_or_else(PoisonError::into_inner);
            match map.get(key) {
                Some(slot) => {
                    let fetch = if slot.get().is_some() { Fetch::Hit } else { Fetch::Coalesced };
                    (slot, fetch)
                }
                None => {
                    let slot: Slot<Arc<Hypergraph>> = Arc::default();
                    self.evictions.fetch_add(map.insert(key, slot.clone()), Ordering::Relaxed);
                    (slot, Fetch::Miss)
                }
            }
        };
        match fetch {
            Fetch::Hit => self.graph_hits.fetch_add(1, Ordering::Relaxed),
            Fetch::Coalesced => self.coalesced.fetch_add(1, Ordering::Relaxed),
            Fetch::Miss => self.graph_misses.fetch_add(1, Ordering::Relaxed),
        };
        let g = slot
            .get_or_init(|| {
                if let Some(cache) = &self.disk {
                    if let Some(g) = cache.load_graph(dataset, scale) {
                        return Arc::new(g);
                    }
                }
                let g = load_scaled(dataset, scale);
                if let Some(cache) = &self.disk {
                    cache.store_graph(dataset, scale, &g);
                }
                Arc::new(g)
            })
            .clone();
        (g, fetch)
    }

    /// The prepared-OAG pair for `(dataset, scale, cfg.oag.w_min,
    /// cfg.chain.d_max)`, building (disk cache first) at most once per key.
    /// Returns the graph too — executing needs both and this avoids a
    /// second lookup.
    pub fn prepared(
        &self,
        dataset: Dataset,
        scale: Scale,
        cfg: &RunConfig,
    ) -> (Arc<Hypergraph>, Arc<PreparedOags>, Fetch) {
        let key = OagKey {
            dataset,
            scale_bits: scale.factor().to_bits(),
            w_min: cfg.oag.w_min,
            d_max: cfg.chain.d_max,
        };
        let (slot, fetch) = {
            let mut map = self.oags.lock().unwrap_or_else(PoisonError::into_inner);
            match map.get(key) {
                Some(slot) => {
                    let fetch = if slot.get().is_some() { Fetch::Hit } else { Fetch::Coalesced };
                    (slot, fetch)
                }
                None => {
                    let slot: Slot<Arc<PreparedOags>> = Arc::default();
                    self.evictions.fetch_add(map.insert(key, slot.clone()), Ordering::Relaxed);
                    (slot, Fetch::Miss)
                }
            }
        };
        match fetch {
            Fetch::Hit => self.oag_hits.fetch_add(1, Ordering::Relaxed),
            Fetch::Coalesced => self.coalesced.fetch_add(1, Ordering::Relaxed),
            Fetch::Miss => self.oag_misses.fetch_add(1, Ordering::Relaxed),
        };
        let (g, _) = self.graph(dataset, scale);
        let prepared = slot
            .get_or_init(|| {
                let oag_cfg = cfg.oag;
                let build_side = |side: Side| {
                    if let Some(cache) = &self.disk {
                        if let Some(hit) = cache.load_oag(&g, &oag_cfg, side) {
                            return hit;
                        }
                    }
                    let built =
                        oag_cfg.build_with_stats_threads(&g, side, cfg.oag_build_threads.max(1));
                    if let Some(cache) = &self.disk {
                        cache.store_oag(&g, &oag_cfg, side, &built.0, &built.1);
                    }
                    built
                };
                let hyperedge = build_side(Side::Hyperedge);
                let vertex = build_side(Side::Vertex);
                Arc::new(PreparedOags::from_parts(&g, oag_cfg, hyperedge, vertex))
            })
            .clone();
        (g, prepared, fetch)
    }

    /// Snapshot of the LRU counters for the stats response.
    pub fn counters(&self) -> ArtifactCounters {
        ArtifactCounters {
            graph_hits: self.graph_hits.load(Ordering::Relaxed),
            graph_misses: self.graph_misses.load(Ordering::Relaxed),
            oag_hits: self.oag_hits.load(Ordering::Relaxed),
            oag_misses: self.oag_misses.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Resident entry counts `(graphs, prepared_oags)` — test support.
    pub fn resident(&self) -> (usize, usize) {
        let g = self.graphs.lock().unwrap_or_else(PoisonError::into_inner).len();
        let o = self.oags.lock().unwrap_or_else(PoisonError::into_inner).len();
        (g, o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCALE: Scale = Scale(0.05);

    #[test]
    fn lru_map_evicts_least_recent() {
        let mut m = LruMap::new(2);
        assert_eq!(m.insert(1, "a"), 0);
        assert_eq!(m.insert(2, "b"), 0);
        assert_eq!(m.get(1), Some("a")); // promote 1; 2 is now LRU
        assert_eq!(m.insert(3, "c"), 1); // evicts 2
        assert_eq!(m.get(2), None);
        assert_eq!(m.get(1), Some("a"));
        assert_eq!(m.get(3), Some("c"));
    }

    #[test]
    fn reinsert_does_not_grow() {
        let mut m = LruMap::new(2);
        m.insert(1, "a");
        m.insert(1, "b");
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(1), Some("b"));
    }

    #[test]
    fn graph_hits_on_second_lookup() {
        let store = ArtifactStore::new(4, 4, None);
        let (a, f1) = store.graph(Dataset::LiveJournal, SCALE);
        let (b, f2) = store.graph(Dataset::LiveJournal, SCALE);
        assert_eq!(f1, Fetch::Miss);
        assert_eq!(f2, Fetch::Hit);
        assert!(Arc::ptr_eq(&a, &b), "hit must return the resident Arc");
        let c = store.counters();
        assert_eq!((c.graph_hits, c.graph_misses), (1, 1));
    }

    #[test]
    fn prepared_hits_and_keys_on_config() {
        let store = ArtifactStore::new(4, 4, None);
        let cfg = RunConfig::new();
        let (_, p1, f1) = store.prepared(Dataset::LiveJournal, SCALE, &cfg);
        let (_, p2, f2) = store.prepared(Dataset::LiveJournal, SCALE, &cfg);
        assert_eq!(f1, Fetch::Miss);
        assert_eq!(f2, Fetch::Hit);
        assert!(Arc::ptr_eq(&p1, &p2));
        // A different W_min is a different key (and artifact).
        let other = RunConfig::new().with_oag(oag::OagConfig::new().with_w_min(1));
        let (_, p3, f3) = store.prepared(Dataset::LiveJournal, SCALE, &other);
        assert_eq!(f3, Fetch::Miss);
        assert!(!Arc::ptr_eq(&p1, &p3));
        let c = store.counters();
        assert_eq!((c.oag_hits, c.oag_misses), (1, 2));
    }

    #[test]
    fn capacity_pressure_evicts_and_counts() {
        let store = ArtifactStore::new(1, 4, None);
        store.graph(Dataset::LiveJournal, SCALE);
        store.graph(Dataset::WebTrackers, SCALE); // evicts LJ
        assert_eq!(store.counters().evictions, 1);
        let (_, fetch) = store.graph(Dataset::LiveJournal, SCALE); // rebuilt
        assert_eq!(fetch, Fetch::Miss);
        assert_eq!(store.resident().0, 1);
    }

    #[test]
    fn concurrent_lookups_single_flight() {
        let store = Arc::new(ArtifactStore::new(4, 4, None));
        let results: Vec<(Arc<Hypergraph>, Fetch)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|_| {
                    let store = store.clone();
                    s.spawn(move || store.graph(Dataset::LiveJournal, SCALE))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let misses = results.iter().filter(|(_, f)| *f == Fetch::Miss).count();
        assert_eq!(misses, 1, "exactly one thread builds");
        for (g, _) in &results[1..] {
            assert!(Arc::ptr_eq(g, &results[0].0), "all callers share one artifact");
        }
        let c = store.counters();
        assert_eq!(c.graph_misses, 1);
        assert_eq!(c.graph_hits + c.coalesced, 7);
    }

    #[test]
    fn disk_cache_backs_a_cold_store() {
        let dir = std::env::temp_dir().join(format!("chg-serve-lru-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cache = Arc::new(PreprocessCache::new(&dir).unwrap());
        let cfg = RunConfig::new();
        let warm = ArtifactStore::new(4, 4, Some(cache.clone()));
        let (_, p1, _) = warm.prepared(Dataset::LiveJournal, SCALE, &cfg);
        // A fresh store (cold LRU) restores bit-identical artifacts from disk.
        let cold = ArtifactStore::new(4, 4, Some(cache.clone()));
        let (_, p2, fetch) = cold.prepared(Dataset::LiveJournal, SCALE, &cfg);
        assert_eq!(fetch, Fetch::Miss, "LRU is cold; the disk makes the build cheap, not a hit");
        assert_eq!(p1.hyperedge, p2.hyperedge);
        assert_eq!(p1.vertex, p2.vertex);
        assert_eq!(p1.report, p2.report);
        assert!(cache.stats().oag_hits >= 2, "cold store restored both sides from disk");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
