//! A minimal, dependency-free JSON value type with a writer and a strict
//! recursive-descent parser.
//!
//! The vendored `serde` is a marker-trait stub (see `vendor/README.md`), so
//! the wire protocol cannot serialize through it. This module is the real
//! codec behind the serve crate's request/response types: values are built
//! and destructured explicitly, which keeps the wire schema visible in one
//! place (`proto.rs`) and the encoder deterministic (object keys keep their
//! insertion order, so encoding is reproducible byte-for-byte).
//!
//! Numbers preserve integer exactness: `u64`/`i64` round-trip losslessly
//! (they are *not* forced through `f64`), which matters for cycle counters
//! and FNV fingerprints.

use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer (exact).
    U64(u64),
    /// A negative integer (exact).
    I64(i64),
    /// A non-integer number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered so encoding is deterministic.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for building an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Field lookup on an object (`None` for absent keys or non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64` if it is an exactly-representable non-negative
    /// integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(n) => Some(n),
            Json::I64(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(n) => Some(n as f64),
            Json::I64(n) => Some(n as f64),
            Json::F64(n) => Some(n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line encoding.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Multi-line indented encoding (for files and human eyes).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => out.push_str(&n.to_string()),
            Json::I64(n) => out.push_str(&n.to_string()),
            Json::F64(n) => write_f64(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        let pad = |out: &mut String, d: usize| {
            for _ in 0..d {
                out.push_str("  ");
            }
        };
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    pad(out, depth + 1);
                    write_string(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.encode())
    }
}

/// Writes a float so it parses back to the same bits: finite values use
/// Rust's shortest-round-trip formatting (guaranteed lossless), and an
/// integral-valued float keeps a `.0` so it re-parses as `F64`. JSON has no
/// NaN/Inf, so those encode as `null` (the parser never produces them).
fn write_f64(n: f64, out: &mut String) {
    if !n.is_finite() {
        out.push_str("null");
        return;
    }
    let s = n.to_string();
    out.push_str(&s);
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure: what went wrong and at which byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the violation.
    pub message: String,
    /// Byte offset in the input where it was detected.
    pub offset: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Maximum container nesting the parser accepts; the wire schema is three
/// levels deep, so this bounds a hostile payload's stack use, not ours.
const MAX_DEPTH: usize = 64;

/// Parses a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { message: message.to_string(), offset: self.pos }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: a run of plain bytes is appended as one str slice.
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            if self.pos > start {
                // invariant: the scanned range falls on char boundaries —
                // multi-byte UTF-8 continuation bytes are >= 0x80.
                out.push_str(
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?,
                );
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by \uXXXX low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid code point"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => return Err(self.err("control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut cp = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => (b - b'0') as u32,
                Some(b @ b'a'..=b'f') => (b - b'a') as u32 + 10,
                Some(b @ b'A'..=b'F') => (b - b'A') as u32 + 10,
                _ => return Err(self.err("expected hex digit")),
            };
            cp = cp * 16 + d;
            self.pos += 1;
        }
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        if !matches!(self.peek(), Some(b'0'..=b'9')) {
            return Err(self.err("expected digit"));
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut fractional = false;
        if self.peek() == Some(b'.') {
            fractional = true;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit after '.'"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            fractional = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // invariant: the scanned range is ASCII digits/sign/dot/exponent.
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !fractional {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| ParseError { message: "invalid number".into(), offset: start })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, v) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::U64(0)),
            ("18446744073709551615", Json::U64(u64::MAX)),
            ("-42", Json::I64(-42)),
            ("-9223372036854775808", Json::I64(i64::MIN)),
            ("1.5", Json::F64(1.5)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(parse(text).unwrap(), v, "{text}");
            assert_eq!(parse(&v.encode()).unwrap(), v, "{text} re-encode");
        }
    }

    #[test]
    fn u64_precision_is_exact() {
        // 2^53 + 1 is not representable as f64 — the exact-integer path
        // must carry it through unchanged.
        let n = (1u64 << 53) + 1;
        let v = Json::U64(n);
        assert_eq!(parse(&v.encode()).unwrap().as_u64(), Some(n));
    }

    #[test]
    fn containers_round_trip() {
        let v = Json::obj(vec![
            ("list", Json::Arr(vec![Json::U64(1), Json::Str("two".into()), Json::Null])),
            ("nested", Json::obj(vec![("k", Json::F64(2.25))])),
        ]);
        assert_eq!(parse(&v.encode()).unwrap(), v);
        assert_eq!(parse(&v.pretty()).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        for s in ["quote\"back\\slash", "new\nline\ttab", "unicode \u{1F600} ok", "\u{1}ctrl"] {
            let v = Json::Str(s.into());
            assert_eq!(parse(&v.encode()).unwrap(), v, "{s:?}");
        }
        assert_eq!(parse(r#""😀""#).unwrap(), Json::Str("\u{1F600}".into()));
    }

    #[test]
    fn rejects_garbage() {
        for bad in ["", "{", "[1,]", "{\"k\":}", "truex", "1 2", "\"unterminated", "{-}", "nul"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn rejects_unbounded_nesting() {
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn float_round_trip_preserves_bits() {
        for f in [0.1, 1.0 / 3.0, 1e-308, 123456.789, -2.5e10] {
            let v = Json::F64(f);
            match parse(&v.encode()).unwrap() {
                Json::F64(back) => assert_eq!(back.to_bits(), f.to_bits(), "{f}"),
                other => panic!("{f} decoded as {other:?}"),
            }
        }
    }
}
