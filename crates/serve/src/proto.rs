//! Wire protocol of the serve layer: checksummed length-prefixed JSON
//! frames, and the request/response schema shared by the daemon
//! (`chgraphd`), the CLI client (`chgraph-cli submit` / `serve-stats`), the
//! load generator (`serve-bench`) and `chgraph-cli run --json`.
//!
//! # Framing
//!
//! ```text
//! +------+---------+-------------+----------------+------------+
//! | CHGS | version | payload_len | payload (JSON) | FNV-1a(64) |
//! |  4 B |  4 B le |    8 B le   |  payload_len B |    8 B le  |
//! +------+---------+-------------+----------------+------------+
//! ```
//!
//! The trailing digest covers everything before it (magic, version, length,
//! payload) via [`hypergraph::checksum`] — the same integrity scheme as the
//! v2 on-disk formats — so a truncated, torn or bit-flipped frame is
//! detected at read time and surfaces as a typed [`ProtoError`] instead of
//! a garbage request. `payload_len` is bounds-checked before allocation.
//!
//! # Schema
//!
//! Requests and responses are serde-derived structs (the vendored `serde`
//! is declarative-only, so the actual codec is the explicit
//! [`Json`](crate::json::Json) mapping implemented here — one function pair
//! per type, which keeps the wire schema reviewable in one place).

use crate::json::{self, Json};
use hypergraph::checksum::{HashingReader, HashingWriter};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::{self, Read, Write};

/// Frame magic: "CHGS" (ChGraph Serve).
pub const FRAME_MAGIC: &[u8; 4] = b"CHGS";
/// Current protocol version. A peer speaking a different version is
/// rejected with [`ProtoError::Version`].
pub const PROTO_VERSION: u32 = 1;
/// Upper bound on a frame payload: requests and responses are small JSON
/// documents, so anything larger is a corrupt length field or abuse.
pub const MAX_FRAME_BYTES: u64 = 16 << 20;

/// A protocol failure while reading or decoding a frame.
#[derive(Debug)]
pub enum ProtoError {
    /// The underlying transport failed (includes truncation → EOF).
    Io(io::Error),
    /// The frame header's magic did not match [`FRAME_MAGIC`].
    Magic,
    /// The peer speaks an unsupported protocol version.
    Version(u32),
    /// The declared payload length exceeds [`MAX_FRAME_BYTES`].
    Oversize(u64),
    /// The trailing FNV-1a digest did not match the received bytes.
    ChecksumMismatch {
        /// Digest stored in the frame trailer.
        stored: u64,
        /// Digest computed over the received bytes.
        computed: u64,
    },
    /// The payload was not valid UTF-8 / JSON.
    Json(String),
    /// The JSON was well-formed but not a valid message of the schema.
    Schema(String),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
            ProtoError::Magic => write!(f, "bad frame magic"),
            ProtoError::Version(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::Oversize(n) => {
                write!(f, "frame payload of {n} bytes exceeds the {MAX_FRAME_BYTES}-byte bound")
            }
            ProtoError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "frame checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
                )
            }
            ProtoError::Json(e) => write!(f, "malformed frame payload: {e}"),
            ProtoError::Schema(e) => write!(f, "invalid message: {e}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

fn schema_err<T>(msg: impl Into<String>) -> Result<T, ProtoError> {
    Err(ProtoError::Schema(msg.into()))
}

/// Writes one checksummed frame carrying `payload`.
pub fn write_frame<W: Write>(w: &mut W, payload: &str) -> io::Result<()> {
    let bytes = payload.as_bytes();
    let mut hw = HashingWriter::new(&mut *w);
    hw.write_all(FRAME_MAGIC)?;
    hw.write_all(&PROTO_VERSION.to_le_bytes())?;
    hw.write_all(&(bytes.len() as u64).to_le_bytes())?;
    hw.write_all(bytes)?;
    let digest = hw.digest();
    w.write_all(&digest.to_le_bytes())?;
    w.flush()
}

/// Reads one checksummed frame, returning its payload. Detects bad magic,
/// version skew, implausible lengths, truncation and corruption before any
/// byte of the payload is interpreted.
pub fn read_frame<R: Read>(r: &mut R) -> Result<String, ProtoError> {
    let mut hr = HashingReader::new(r);
    let mut magic = [0u8; 4];
    hr.read_exact(&mut magic)?;
    if &magic != FRAME_MAGIC {
        return Err(ProtoError::Magic);
    }
    let mut word = [0u8; 4];
    hr.read_exact(&mut word)?;
    let version = u32::from_le_bytes(word);
    if version != PROTO_VERSION {
        return Err(ProtoError::Version(version));
    }
    let mut len_bytes = [0u8; 8];
    hr.read_exact(&mut len_bytes)?;
    let len = u64::from_le_bytes(len_bytes);
    if len > MAX_FRAME_BYTES {
        return Err(ProtoError::Oversize(len));
    }
    let mut payload = vec![0u8; len as usize];
    hr.read_exact(&mut payload)?;
    let computed = hr.digest();
    let mut trailer = [0u8; 8];
    hr.get_mut().read_exact(&mut trailer)?;
    let stored = u64::from_le_bytes(trailer);
    if stored != computed {
        return Err(ProtoError::ChecksumMismatch { stored, computed });
    }
    String::from_utf8(payload).map_err(|e| ProtoError::Json(e.to_string()))
}

/// Sends `msg` (anything with a JSON encoding) as one frame.
pub fn send<W: Write, M: WireMessage>(w: &mut W, msg: &M) -> io::Result<()> {
    write_frame(w, &msg.to_json().encode())
}

/// Receives one frame and decodes it as `M`.
pub fn recv<R: Read, M: WireMessage>(r: &mut R) -> Result<M, ProtoError> {
    let payload = read_frame(r)?;
    let value = json::parse(&payload).map_err(|e| ProtoError::Json(e.to_string()))?;
    M::from_json(&value)
}

/// A type with a canonical JSON wire encoding.
pub trait WireMessage: Sized {
    /// Encodes the message as a JSON value.
    fn to_json(&self) -> Json;
    /// Decodes the message, rejecting schema violations.
    fn from_json(v: &Json) -> Result<Self, ProtoError>;
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// One execution request: dataset × workload × runtime × configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunRequest {
    /// Workload name (`bfs`, `pr`, `mis`, `bc`, `cc`, `kcore`, `sssp`,
    /// `adsorption`).
    pub workload: String,
    /// Runtime name (`hygra`, `gla`, `chgraph`, `hcg`, `hats`,
    /// `prefetcher`).
    pub runtime: String,
    /// Dataset abbreviation (`FS`, `OK`, `LJ`, `WEB`, `OG`).
    pub dataset: String,
    /// Dataset scale factor (1.0 = the paper-sized stand-in).
    pub scale: f64,
    /// Simulated core count override.
    pub cores: Option<usize>,
    /// OAG `W_min` override.
    pub wmin: Option<u32>,
    /// Chain `D_max` override.
    pub dmax: Option<usize>,
    /// Iteration cap override.
    pub iters: Option<usize>,
    /// Watchdog: simulated-cycle budget.
    pub max_cycles: Option<u64>,
    /// Watchdog: host wall-clock budget in milliseconds.
    pub max_wall_ms: Option<u64>,
    /// Diff the result against the naive reference before replying.
    pub self_check: bool,
    /// Deep structural validation (input, OAGs, chain covers).
    pub validate: bool,
    /// Execute the simulation this many times (>= 1), reporting the last
    /// result — a load-testing knob for steady-state latency measurements;
    /// results are identical for any value.
    pub repeat: u32,
    /// Idempotency key. Runs are pure functions of the request, so a replay
    /// under the same key is safe; the server single-flights concurrent and
    /// recent duplicates through one execution and hands every holder of
    /// the key the identical reply. `None` opts out of deduplication.
    pub request_key: Option<String>,
}

impl RunRequest {
    /// A request with service defaults: full scale, no overrides, no
    /// guards, one execution.
    pub fn new(
        workload: impl Into<String>,
        runtime: impl Into<String>,
        dataset: impl Into<String>,
    ) -> Self {
        RunRequest {
            workload: workload.into(),
            runtime: runtime.into(),
            dataset: dataset.into(),
            scale: 1.0,
            cores: None,
            wmin: None,
            dmax: None,
            iters: None,
            max_cycles: None,
            max_wall_ms: None,
            self_check: false,
            validate: false,
            repeat: 1,
            request_key: None,
        }
    }

    /// FNV-1a fingerprint of the request's canonical wire encoding
    /// (ignoring any `request_key` already set) — the default idempotency
    /// key a retrying client stamps, and the collision guard the server
    /// checks before serving a dedup hit.
    pub fn content_fingerprint(&self) -> u64 {
        let mut canonical = self.clone();
        canonical.request_key = None;
        let mut h = hypergraph::checksum::Fnv64::new();
        h.update(canonical.to_json().encode().as_bytes());
        h.digest()
    }
}

/// A client request frame.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Execute a workload.
    Run(RunRequest),
    /// Report service counters and latency percentiles.
    Stats,
    /// Liveness probe.
    Ping,
    /// Begin graceful shutdown: drain in-flight requests, then exit.
    Shutdown,
}

fn opt_u64(v: Option<u64>) -> Json {
    v.map_or(Json::Null, Json::U64)
}

fn opt_usize(v: Option<usize>) -> Json {
    v.map_or(Json::Null, |n| Json::U64(n as u64))
}

fn get_opt_u64(v: &Json, key: &str) -> Result<Option<u64>, ProtoError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(n) => n
            .as_u64()
            .map(Some)
            .ok_or_else(|| ProtoError::Schema(format!("{key} must be a non-negative integer"))),
    }
}

fn get_u64(v: &Json, key: &str) -> Result<u64, ProtoError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ProtoError::Schema(format!("missing integer field {key:?}")))
}

fn get_f64(v: &Json, key: &str) -> Result<f64, ProtoError> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| ProtoError::Schema(format!("missing number field {key:?}")))
}

fn get_str(v: &Json, key: &str) -> Result<String, ProtoError> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ProtoError::Schema(format!("missing string field {key:?}")))
}

fn get_bool(v: &Json, key: &str) -> Result<bool, ProtoError> {
    v.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| ProtoError::Schema(format!("missing bool field {key:?}")))
}

fn get_opt_str(v: &Json, key: &str) -> Result<Option<String>, ProtoError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(s) => s
            .as_str()
            .map(|s| Some(s.to_string()))
            .ok_or_else(|| ProtoError::Schema(format!("{key} must be a string"))),
    }
}

impl WireMessage for RunRequest {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("workload", Json::Str(self.workload.clone())),
            ("runtime", Json::Str(self.runtime.clone())),
            ("dataset", Json::Str(self.dataset.clone())),
            ("scale", Json::F64(self.scale)),
            ("cores", opt_usize(self.cores)),
            ("wmin", self.wmin.map_or(Json::Null, |n| Json::U64(n as u64))),
            ("dmax", opt_usize(self.dmax)),
            ("iters", opt_usize(self.iters)),
            ("max_cycles", opt_u64(self.max_cycles)),
            ("max_wall_ms", opt_u64(self.max_wall_ms)),
            ("self_check", Json::Bool(self.self_check)),
            ("validate", Json::Bool(self.validate)),
            ("repeat", Json::U64(self.repeat as u64)),
            ("request_key", self.request_key.clone().map_or(Json::Null, Json::Str)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, ProtoError> {
        let scale = get_f64(v, "scale")?;
        if !(scale.is_finite() && scale > 0.0) {
            return schema_err("scale must be a positive finite number");
        }
        let repeat = get_u64(v, "repeat")?;
        if repeat == 0 || repeat > u32::MAX as u64 {
            return schema_err("repeat must be in 1..=u32::MAX");
        }
        Ok(RunRequest {
            workload: get_str(v, "workload")?,
            runtime: get_str(v, "runtime")?,
            dataset: get_str(v, "dataset")?,
            scale,
            cores: get_opt_u64(v, "cores")?.map(|n| n as usize),
            wmin: match get_opt_u64(v, "wmin")? {
                Some(n) if n > u32::MAX as u64 => return schema_err("wmin out of range"),
                other => other.map(|n| n as u32),
            },
            dmax: get_opt_u64(v, "dmax")?.map(|n| n as usize),
            iters: get_opt_u64(v, "iters")?.map(|n| n as usize),
            max_cycles: get_opt_u64(v, "max_cycles")?,
            max_wall_ms: get_opt_u64(v, "max_wall_ms")?,
            self_check: get_bool(v, "self_check")?,
            validate: get_bool(v, "validate")?,
            repeat: repeat as u32,
            request_key: get_opt_str(v, "request_key")?,
        })
    }
}

impl WireMessage for Request {
    fn to_json(&self) -> Json {
        match self {
            Request::Run(r) => {
                Json::obj(vec![("type", Json::Str("run".into())), ("run", r.to_json())])
            }
            Request::Stats => Json::obj(vec![("type", Json::Str("stats".into()))]),
            Request::Ping => Json::obj(vec![("type", Json::Str("ping".into()))]),
            Request::Shutdown => Json::obj(vec![("type", Json::Str("shutdown".into()))]),
        }
    }

    fn from_json(v: &Json) -> Result<Self, ProtoError> {
        match get_str(v, "type")?.as_str() {
            "run" => {
                let body = v
                    .get("run")
                    .ok_or_else(|| ProtoError::Schema("run request missing \"run\" body".into()))?;
                Ok(Request::Run(RunRequest::from_json(body)?))
            }
            "stats" => Ok(Request::Stats),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => schema_err(format!("unknown request type {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Where a run's prepared artifacts came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArtifactSource {
    /// Served from the in-memory LRU.
    LruHit,
    /// Another request was already building the same key; this one waited
    /// for it (single-flight dedup).
    Coalesced,
    /// Built (possibly restored from the on-disk cache) by this request.
    Built,
    /// The runtime does not use prepared artifacts.
    NotApplicable,
}

impl ArtifactSource {
    /// The stable wire spelling (`lru-hit`, `coalesced`, `built`, `n/a`).
    pub fn as_str(self) -> &'static str {
        self.wire()
    }

    fn wire(self) -> &'static str {
        match self {
            ArtifactSource::LruHit => "lru-hit",
            ArtifactSource::Coalesced => "coalesced",
            ArtifactSource::Built => "built",
            ArtifactSource::NotApplicable => "n/a",
        }
    }

    fn from_wire(s: &str) -> Option<Self> {
        Some(match s {
            "lru-hit" => ArtifactSource::LruHit,
            "coalesced" => ArtifactSource::Coalesced,
            "built" => ArtifactSource::Built,
            "n/a" => ArtifactSource::NotApplicable,
            _ => return None,
        })
    }
}

/// The machine-readable result of one execution — the same schema
/// `chgraph-cli run --json` prints, so CLI and service output are
/// interchangeable.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Runtime that executed.
    pub runtime: String,
    /// Algorithm that ran.
    pub algorithm: String,
    /// Iterations executed.
    pub iterations: u64,
    /// Simulated cycles of the iterative computation.
    pub cycles: u64,
    /// Sum over cores of busy cycles.
    pub core_busy_cycles: u64,
    /// Sum over cores of cycles stalled on main memory.
    pub mem_stall_cycles: u64,
    /// Off-chip main-memory accesses.
    pub dram_accesses: u64,
    /// Estimated preprocessing cycles.
    pub preprocess_cycles: u64,
    /// FNV-1a fingerprint over the full result (state arrays + counters),
    /// rendered as 16 hex digits. Equal fingerprints ⇔ byte-identical
    /// results — what the end-to-end tests compare against direct library
    /// execution.
    pub fingerprint: String,
    /// Whether the result was diffed against the reference implementation.
    pub self_checked: bool,
    /// Where the prepared artifacts came from.
    pub artifact_source: ArtifactSource,
    /// Microseconds spent preparing artifacts (graph load + OAG build or
    /// cache fetch).
    pub prepare_micros: u64,
    /// Microseconds spent executing (all repeats).
    pub execute_micros: u64,
}

impl WireMessage for RunResult {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("runtime", Json::Str(self.runtime.clone())),
            ("algorithm", Json::Str(self.algorithm.clone())),
            ("iterations", Json::U64(self.iterations)),
            ("cycles", Json::U64(self.cycles)),
            ("core_busy_cycles", Json::U64(self.core_busy_cycles)),
            ("mem_stall_cycles", Json::U64(self.mem_stall_cycles)),
            ("dram_accesses", Json::U64(self.dram_accesses)),
            ("preprocess_cycles", Json::U64(self.preprocess_cycles)),
            ("fingerprint", Json::Str(self.fingerprint.clone())),
            ("self_checked", Json::Bool(self.self_checked)),
            ("artifact_source", Json::Str(self.artifact_source.wire().into())),
            ("prepare_micros", Json::U64(self.prepare_micros)),
            ("execute_micros", Json::U64(self.execute_micros)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, ProtoError> {
        let source = get_str(v, "artifact_source")?;
        Ok(RunResult {
            runtime: get_str(v, "runtime")?,
            algorithm: get_str(v, "algorithm")?,
            iterations: get_u64(v, "iterations")?,
            cycles: get_u64(v, "cycles")?,
            core_busy_cycles: get_u64(v, "core_busy_cycles")?,
            mem_stall_cycles: get_u64(v, "mem_stall_cycles")?,
            dram_accesses: get_u64(v, "dram_accesses")?,
            preprocess_cycles: get_u64(v, "preprocess_cycles")?,
            fingerprint: get_str(v, "fingerprint")?,
            self_checked: get_bool(v, "self_checked")?,
            artifact_source: ArtifactSource::from_wire(&source)
                .ok_or_else(|| ProtoError::Schema(format!("unknown artifact source {source:?}")))?,
            prepare_micros: get_u64(v, "prepare_micros")?,
            execute_micros: get_u64(v, "execute_micros")?,
        })
    }
}

/// Counter block of a [`StatsReport`]: request outcomes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestCounters {
    /// Requests received (all types).
    pub received: u64,
    /// Run requests completed successfully.
    pub ok: u64,
    /// Run requests that failed with a typed error.
    pub failed: u64,
    /// Run requests rejected because the queue was full.
    pub rejected_overload: u64,
    /// Frames that failed protocol decoding.
    pub protocol_errors: u64,
    /// Run requests answered from another request's single-flight slot
    /// (same `request_key`) without executing again.
    pub deduped: u64,
    /// Run requests rejected fast by degraded mode (queue-wait p95 over
    /// the shed threshold).
    pub shed: u64,
}

/// Counter block of a [`StatsReport`]: why connections ended, one tally per
/// connection (plus `conn_cap`, which counts refusals at accept).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CloseCounters {
    /// Peer closed cleanly between frames (or idle at drain).
    pub clean: u64,
    /// Per-read quiet-period timeout mid-frame.
    pub read_timeout: u64,
    /// Reply write stalled past the write timeout.
    pub write_timeout: u64,
    /// One frame took longer than the total frame deadline (slow-loris).
    pub frame_deadline: u64,
    /// Torn connection mid-frame (abrupt close, I/O error).
    pub reset: u64,
    /// Closed after replying to an undecodable frame.
    pub protocol: u64,
    /// Refused at accept: concurrent-connection cap reached.
    pub conn_cap: u64,
}

/// Counter block of a [`StatsReport`]: the in-memory artifact LRU.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArtifactCounters {
    /// Graph lookups served from the LRU.
    pub graph_hits: u64,
    /// Graph lookups that built (or disk-restored) the artifact.
    pub graph_misses: u64,
    /// Prepared-OAG lookups served from the LRU.
    pub oag_hits: u64,
    /// Prepared-OAG lookups that built (or disk-restored) the artifact.
    pub oag_misses: u64,
    /// Lookups that waited on another request's in-flight build.
    pub coalesced: u64,
    /// Entries evicted by capacity pressure.
    pub evictions: u64,
}

/// Counter block of a [`StatsReport`]: the on-disk preprocess cache
/// (mirrors [`chg_bench::cache::CacheStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskCacheCounters {
    /// Whether a disk cache is attached at all.
    pub enabled: bool,
    /// Graph entries served from disk.
    pub graph_hits: u64,
    /// Graph lookups that missed on disk.
    pub graph_misses: u64,
    /// OAG entries served from disk.
    pub oag_hits: u64,
    /// OAG lookups that missed on disk.
    pub oag_misses: u64,
    /// Corrupt entries quarantined.
    pub quarantined: u64,
}

/// Latency percentiles of one phase, in microseconds.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Median.
    pub p50_micros: u64,
    /// 95th percentile.
    pub p95_micros: u64,
    /// 99th percentile.
    pub p99_micros: u64,
    /// Maximum observed.
    pub max_micros: u64,
}

/// The `stats` response: service counters, queue state, cache statistics
/// and per-phase latency percentiles.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StatsReport {
    /// Seconds since the service started.
    pub uptime_secs: u64,
    /// Worker threads executing requests.
    pub workers: u64,
    /// Bounded-queue capacity.
    pub queue_capacity: u64,
    /// Requests currently queued (gauge).
    pub queue_depth: u64,
    /// Request outcome counters.
    pub requests: RequestCounters,
    /// Per-cause connection-close counters.
    pub closes: CloseCounters,
    /// In-memory artifact LRU counters.
    pub artifacts: ArtifactCounters,
    /// On-disk preprocess cache counters.
    pub disk_cache: DiskCacheCounters,
    /// Latency of the artifact-preparation phase.
    pub prepare_latency: LatencySummary,
    /// Latency of the execution phase.
    pub execute_latency: LatencySummary,
    /// End-to-end request latency (queue wait + prepare + execute).
    pub total_latency: LatencySummary,
    /// Time runs spent waiting in the bounded queue before a worker popped
    /// them — the congestion signal the degraded-mode shed watches, and the
    /// number a retrying client's backoff is reacting to.
    pub queue_wait_latency: LatencySummary,
}

impl WireMessage for LatencySummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("count", Json::U64(self.count)),
            ("p50_micros", Json::U64(self.p50_micros)),
            ("p95_micros", Json::U64(self.p95_micros)),
            ("p99_micros", Json::U64(self.p99_micros)),
            ("max_micros", Json::U64(self.max_micros)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, ProtoError> {
        Ok(LatencySummary {
            count: get_u64(v, "count")?,
            p50_micros: get_u64(v, "p50_micros")?,
            p95_micros: get_u64(v, "p95_micros")?,
            p99_micros: get_u64(v, "p99_micros")?,
            max_micros: get_u64(v, "max_micros")?,
        })
    }
}

impl WireMessage for StatsReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("uptime_secs", Json::U64(self.uptime_secs)),
            ("workers", Json::U64(self.workers)),
            ("queue_capacity", Json::U64(self.queue_capacity)),
            ("queue_depth", Json::U64(self.queue_depth)),
            (
                "requests",
                Json::obj(vec![
                    ("received", Json::U64(self.requests.received)),
                    ("ok", Json::U64(self.requests.ok)),
                    ("failed", Json::U64(self.requests.failed)),
                    ("rejected_overload", Json::U64(self.requests.rejected_overload)),
                    ("protocol_errors", Json::U64(self.requests.protocol_errors)),
                    ("deduped", Json::U64(self.requests.deduped)),
                    ("shed", Json::U64(self.requests.shed)),
                ]),
            ),
            (
                "closes",
                Json::obj(vec![
                    ("clean", Json::U64(self.closes.clean)),
                    ("read_timeout", Json::U64(self.closes.read_timeout)),
                    ("write_timeout", Json::U64(self.closes.write_timeout)),
                    ("frame_deadline", Json::U64(self.closes.frame_deadline)),
                    ("reset", Json::U64(self.closes.reset)),
                    ("protocol", Json::U64(self.closes.protocol)),
                    ("conn_cap", Json::U64(self.closes.conn_cap)),
                ]),
            ),
            (
                "artifacts",
                Json::obj(vec![
                    ("graph_hits", Json::U64(self.artifacts.graph_hits)),
                    ("graph_misses", Json::U64(self.artifacts.graph_misses)),
                    ("oag_hits", Json::U64(self.artifacts.oag_hits)),
                    ("oag_misses", Json::U64(self.artifacts.oag_misses)),
                    ("coalesced", Json::U64(self.artifacts.coalesced)),
                    ("evictions", Json::U64(self.artifacts.evictions)),
                ]),
            ),
            (
                "disk_cache",
                Json::obj(vec![
                    ("enabled", Json::Bool(self.disk_cache.enabled)),
                    ("graph_hits", Json::U64(self.disk_cache.graph_hits)),
                    ("graph_misses", Json::U64(self.disk_cache.graph_misses)),
                    ("oag_hits", Json::U64(self.disk_cache.oag_hits)),
                    ("oag_misses", Json::U64(self.disk_cache.oag_misses)),
                    ("quarantined", Json::U64(self.disk_cache.quarantined)),
                ]),
            ),
            ("prepare_latency", self.prepare_latency.to_json()),
            ("execute_latency", self.execute_latency.to_json()),
            ("total_latency", self.total_latency.to_json()),
            ("queue_wait_latency", self.queue_wait_latency.to_json()),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, ProtoError> {
        let req = v.get("requests").ok_or_else(|| ProtoError::Schema("missing requests".into()))?;
        let cls = v.get("closes").ok_or_else(|| ProtoError::Schema("missing closes".into()))?;
        let art =
            v.get("artifacts").ok_or_else(|| ProtoError::Schema("missing artifacts".into()))?;
        let disk =
            v.get("disk_cache").ok_or_else(|| ProtoError::Schema("missing disk_cache".into()))?;
        Ok(StatsReport {
            uptime_secs: get_u64(v, "uptime_secs")?,
            workers: get_u64(v, "workers")?,
            queue_capacity: get_u64(v, "queue_capacity")?,
            queue_depth: get_u64(v, "queue_depth")?,
            requests: RequestCounters {
                received: get_u64(req, "received")?,
                ok: get_u64(req, "ok")?,
                failed: get_u64(req, "failed")?,
                rejected_overload: get_u64(req, "rejected_overload")?,
                protocol_errors: get_u64(req, "protocol_errors")?,
                deduped: get_u64(req, "deduped")?,
                shed: get_u64(req, "shed")?,
            },
            closes: CloseCounters {
                clean: get_u64(cls, "clean")?,
                read_timeout: get_u64(cls, "read_timeout")?,
                write_timeout: get_u64(cls, "write_timeout")?,
                frame_deadline: get_u64(cls, "frame_deadline")?,
                reset: get_u64(cls, "reset")?,
                protocol: get_u64(cls, "protocol")?,
                conn_cap: get_u64(cls, "conn_cap")?,
            },
            artifacts: ArtifactCounters {
                graph_hits: get_u64(art, "graph_hits")?,
                graph_misses: get_u64(art, "graph_misses")?,
                oag_hits: get_u64(art, "oag_hits")?,
                oag_misses: get_u64(art, "oag_misses")?,
                coalesced: get_u64(art, "coalesced")?,
                evictions: get_u64(art, "evictions")?,
            },
            disk_cache: DiskCacheCounters {
                enabled: get_bool(disk, "enabled")?,
                graph_hits: get_u64(disk, "graph_hits")?,
                graph_misses: get_u64(disk, "graph_misses")?,
                oag_hits: get_u64(disk, "oag_hits")?,
                oag_misses: get_u64(disk, "oag_misses")?,
                quarantined: get_u64(disk, "quarantined")?,
            },
            prepare_latency: LatencySummary::from_json(
                v.get("prepare_latency")
                    .ok_or_else(|| ProtoError::Schema("missing prepare_latency".into()))?,
            )?,
            execute_latency: LatencySummary::from_json(
                v.get("execute_latency")
                    .ok_or_else(|| ProtoError::Schema("missing execute_latency".into()))?,
            )?,
            total_latency: LatencySummary::from_json(
                v.get("total_latency")
                    .ok_or_else(|| ProtoError::Schema("missing total_latency".into()))?,
            )?,
            queue_wait_latency: LatencySummary::from_json(
                v.get("queue_wait_latency")
                    .ok_or_else(|| ProtoError::Schema("missing queue_wait_latency".into()))?,
            )?,
        })
    }
}

/// A server response frame.
///
/// The variants are intentionally unboxed despite the size spread
/// (`Stats` carries the full report): responses are short-lived — one
/// per frame, plus a bounded handful of dedup reply slots — so boxing
/// would complicate every construction site for negligible memory.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// A run completed.
    Run(RunResult),
    /// The bounded request queue is full, the service is in degraded mode,
    /// or the connection cap is reached — structured backpressure; the
    /// client should retry later (nothing was enqueued).
    Overloaded {
        /// The queue capacity that was exhausted.
        queue_capacity: u64,
        /// Suggested minimum backoff before retrying, in milliseconds
        /// (0 = no hint). The degraded-mode shed path sets this to its
        /// queue-wait threshold so clients back off past the congestion.
        retry_after_ms: u64,
    },
    /// A run failed with a typed error.
    Error {
        /// Stable machine-readable error category (`budget-exceeded`,
        /// `invalid-input`, `invalid-config`, `invalid-chain-cover`,
        /// `self-check-failed`, `bad-request`, `shutting-down`,
        /// `internal-panic`, `timeout`, `protocol`).
        kind: String,
        /// Human-readable detail.
        message: String,
    },
    /// Stats snapshot.
    Stats(StatsReport),
    /// Reply to [`Request::Ping`].
    Pong,
    /// Shutdown acknowledged; in-flight requests are draining.
    ShuttingDown,
}

impl WireMessage for Response {
    fn to_json(&self) -> Json {
        match self {
            Response::Run(r) => {
                Json::obj(vec![("type", Json::Str("run".into())), ("result", r.to_json())])
            }
            Response::Overloaded { queue_capacity, retry_after_ms } => Json::obj(vec![
                ("type", Json::Str("overloaded".into())),
                ("queue_capacity", Json::U64(*queue_capacity)),
                ("retry_after_ms", Json::U64(*retry_after_ms)),
            ]),
            Response::Error { kind, message } => Json::obj(vec![
                ("type", Json::Str("error".into())),
                ("kind", Json::Str(kind.clone())),
                ("message", Json::Str(message.clone())),
            ]),
            Response::Stats(s) => {
                Json::obj(vec![("type", Json::Str("stats".into())), ("stats", s.to_json())])
            }
            Response::Pong => Json::obj(vec![("type", Json::Str("pong".into()))]),
            Response::ShuttingDown => Json::obj(vec![("type", Json::Str("shutting-down".into()))]),
        }
    }

    fn from_json(v: &Json) -> Result<Self, ProtoError> {
        match get_str(v, "type")?.as_str() {
            "run" => {
                let body = v
                    .get("result")
                    .ok_or_else(|| ProtoError::Schema("run response missing result".into()))?;
                Ok(Response::Run(RunResult::from_json(body)?))
            }
            "overloaded" => Ok(Response::Overloaded {
                queue_capacity: get_u64(v, "queue_capacity")?,
                retry_after_ms: get_opt_u64(v, "retry_after_ms")?.unwrap_or(0),
            }),
            "error" => {
                Ok(Response::Error { kind: get_str(v, "kind")?, message: get_str(v, "message")? })
            }
            "stats" => {
                let body = v
                    .get("stats")
                    .ok_or_else(|| ProtoError::Schema("stats response missing stats".into()))?;
                Ok(Response::Stats(StatsReport::from_json(body)?))
            }
            "pong" => Ok(Response::Pong),
            "shutting-down" => Ok(Response::ShuttingDown),
            other => schema_err(format!("unknown response type {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Result fingerprinting
// ---------------------------------------------------------------------------

/// FNV-1a fingerprint over everything that defines an execution result:
/// names, counters, memory statistics and the full final state (f64 bit
/// patterns). Two reports fingerprint equal iff the serve layer delivered a
/// byte-identical result — the end-to-end identity the tests pin.
pub fn fingerprint_report(report: &chgraph::ExecutionReport) -> u64 {
    let mut h = hypergraph::checksum::Fnv64::new();
    h.update(report.runtime.as_bytes());
    h.update(report.algorithm.as_bytes());
    h.update(&(report.iterations as u64).to_le_bytes());
    h.update(&report.cycles.to_le_bytes());
    h.update(&report.core_busy_cycles.to_le_bytes());
    h.update(&report.mem_stall_cycles.to_le_bytes());
    h.update(&report.mem.main_memory_accesses().to_le_bytes());
    h.update(&report.preprocess.cycles_estimate.to_le_bytes());
    for values in [
        &report.state.vertex_value,
        &report.state.hyperedge_value,
        &report.state.vertex_aux,
        &report.state.hyperedge_aux,
    ] {
        h.update(&(values.len() as u64).to_le_bytes());
        for v in values.iter() {
            h.update(&v.to_bits().to_le_bytes());
        }
    }
    h.digest()
}

/// Builds the wire-level [`RunResult`] from a library-level report — the
/// single constructor both `chgraphd` and `chgraph-cli run --json` use, so
/// the two paths cannot drift apart.
pub fn run_result_from_report(
    report: &chgraph::ExecutionReport,
    self_checked: bool,
    artifact_source: ArtifactSource,
    prepare_micros: u64,
    execute_micros: u64,
) -> RunResult {
    RunResult {
        runtime: report.runtime.to_string(),
        algorithm: report.algorithm.to_string(),
        iterations: report.iterations as u64,
        cycles: report.cycles,
        core_busy_cycles: report.core_busy_cycles,
        mem_stall_cycles: report.mem_stall_cycles,
        dram_accesses: report.mem.main_memory_accesses(),
        preprocess_cycles: report.preprocess.cycles_estimate,
        fingerprint: format!("{:016x}", fingerprint_report(report)),
        self_checked,
        artifact_source,
        prepare_micros,
        execute_micros,
    }
}

/// Maps a typed execution error onto the wire error categories.
pub fn error_response(e: &chgraph::ExecError) -> Response {
    let kind = match e {
        chgraph::ExecError::BudgetExceeded { .. } => "budget-exceeded",
        chgraph::ExecError::InvalidChainCover { .. } => "invalid-chain-cover",
        chgraph::ExecError::InvalidInput(_) => "invalid-input",
        chgraph::ExecError::InvalidConfig(_) => "invalid-config",
    };
    Response::Error { kind: kind.into(), message: e.to_string() }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run_request() -> RunRequest {
        RunRequest {
            workload: "pr".into(),
            runtime: "chgraph".into(),
            dataset: "LJ".into(),
            scale: 0.05,
            cores: Some(4),
            wmin: Some(3),
            dmax: Some(16),
            iters: Some(5),
            max_cycles: Some(123_456_789_012),
            max_wall_ms: Some(2_000),
            self_check: true,
            validate: false,
            repeat: 3,
            request_key: Some("retry-key-01".into()),
        }
    }

    #[test]
    fn request_round_trips() {
        for req in [
            Request::Run(sample_run_request()),
            Request::Run(RunRequest::new("bfs", "hygra", "WEB")),
            Request::Stats,
            Request::Ping,
            Request::Shutdown,
        ] {
            let mut buf = Vec::new();
            send(&mut buf, &req).unwrap();
            let back: Request = recv(&mut &buf[..]).unwrap();
            assert_eq!(back, req);
        }
    }

    #[test]
    fn response_round_trips() {
        let result = RunResult {
            runtime: "chgraph".into(),
            algorithm: "pagerank".into(),
            iterations: 10,
            cycles: u64::MAX - 7,
            core_busy_cycles: 123,
            mem_stall_cycles: 45,
            dram_accesses: 678,
            preprocess_cycles: 90,
            fingerprint: "00deadbeef001234".into(),
            self_checked: true,
            artifact_source: ArtifactSource::Coalesced,
            prepare_micros: 1,
            execute_micros: 2,
        };
        for resp in [
            Response::Run(result),
            Response::Overloaded { queue_capacity: 8, retry_after_ms: 250 },
            Response::Error { kind: "budget-exceeded".into(), message: "cycle budget".into() },
            Response::Stats(StatsReport::default()),
            Response::Pong,
            Response::ShuttingDown,
        ] {
            let mut buf = Vec::new();
            send(&mut buf, &resp).unwrap();
            let back: Response = recv(&mut &buf[..]).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn frame_detects_bit_flips() {
        let mut buf = Vec::new();
        send(&mut buf, &Request::Ping).unwrap();
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0x10;
            assert!(recv::<_, Request>(&mut &bad[..]).is_err(), "flip at byte {i} must not decode");
        }
    }

    #[test]
    fn frame_detects_truncation() {
        let mut buf = Vec::new();
        send(&mut buf, &Request::Run(sample_run_request())).unwrap();
        for cut in [0, 3, 4, 8, 16, buf.len() - 1] {
            assert!(
                recv::<_, Request>(&mut &buf[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn oversize_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(FRAME_MAGIC);
        buf.extend_from_slice(&PROTO_VERSION.to_le_bytes());
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        match read_frame(&mut &buf[..]) {
            Err(ProtoError::Oversize(n)) => assert_eq!(n, u64::MAX),
            other => panic!("expected Oversize, got {other:?}"),
        }
    }

    #[test]
    fn version_skew_is_rejected() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{}").unwrap();
        buf[4] = 99; // version field low byte
        match read_frame(&mut &buf[..]) {
            Err(ProtoError::Version(99)) => {}
            other => panic!("expected Version, got {other:?}"),
        }
    }

    #[test]
    fn schema_violations_are_typed() {
        for bad in ["{\"type\":\"run\"}", "{\"type\":\"nope\"}", "{}", "[1,2,3]"] {
            let mut buf = Vec::new();
            write_frame(&mut buf, bad).unwrap();
            assert!(
                matches!(recv::<_, Request>(&mut &buf[..]), Err(ProtoError::Schema(_))),
                "{bad} must fail schema validation"
            );
        }
    }

    #[test]
    fn zero_repeat_is_rejected() {
        let mut req = sample_run_request();
        req.repeat = 0;
        let v = req.to_json();
        assert!(RunRequest::from_json(&v).is_err());
    }

    #[test]
    fn content_fingerprint_ignores_request_key() {
        let mut a = sample_run_request();
        let mut b = sample_run_request();
        a.request_key = None;
        b.request_key = Some("other-key".into());
        assert_eq!(a.content_fingerprint(), b.content_fingerprint());
        b.iters = Some(6);
        assert_ne!(a.content_fingerprint(), b.content_fingerprint());
    }

    #[test]
    fn missing_retry_hint_decodes_as_zero() {
        // Frames from a pre-hint peer lack retry_after_ms entirely.
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"type\":\"overloaded\",\"queue_capacity\":4}").unwrap();
        match recv::<_, Response>(&mut &buf[..]).unwrap() {
            Response::Overloaded { queue_capacity, retry_after_ms } => {
                assert_eq!(queue_capacity, 4);
                assert_eq!(retry_after_ms, 0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn error_kinds_are_stable() {
        let e = chgraph::ExecError::InvalidConfig("too many cores".into());
        match error_response(&e) {
            Response::Error { kind, message } => {
                assert_eq!(kind, "invalid-config");
                assert!(message.contains("too many cores"));
            }
            other => panic!("{other:?}"),
        }
    }
}
