//! Blocking client for the serve protocol, shared by `chgraph-cli submit`,
//! `serve-stats`, the load generator, and the end-to-end tests — one codec,
//! no drift between producers.

use crate::proto::{self, ProtoError, Request, Response, RunRequest, RunResult, StatsReport};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failure: transport/protocol trouble, or a server-side typed
/// error relayed verbatim.
#[derive(Debug)]
pub enum ClientError {
    /// Framing, checksum, or I/O failure.
    Proto(ProtoError),
    /// The service rejected the run because its queue was full.
    Overloaded {
        /// The server's queue capacity, echoed for diagnostics.
        queue_capacity: u64,
    },
    /// A typed error from the service (`kind` is stable, machine-matchable).
    Server {
        /// Stable error kind, e.g. `budget-exceeded` or `bad-request`.
        kind: String,
        /// Human-readable detail.
        message: String,
    },
    /// The reply decoded fine but was not the variant this call expects.
    Unexpected(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::Overloaded { queue_capacity } => {
                write!(f, "server overloaded (queue capacity {queue_capacity})")
            }
            ClientError::Server { kind, message } => write!(f, "server error [{kind}]: {message}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response variant: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Proto(ProtoError::Io(e))
    }
}

/// One connection to a running `chgraphd`. Requests on a connection are
/// sequential (send, then block on the reply); open several connections
/// for concurrency.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to the service.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Like [`connect`](Client::connect) but retries until the service
    /// answers a ping or `deadline` elapses — for "daemon just forked"
    /// startup races in scripts and tests.
    pub fn connect_ready(
        addr: impl ToSocketAddrs + Clone,
        deadline: Duration,
    ) -> Result<Client, ClientError> {
        let start = std::time::Instant::now();
        loop {
            match Client::connect(addr.clone()) {
                Ok(mut c) => match c.ping() {
                    Ok(()) => return Ok(c),
                    Err(e) if start.elapsed() >= deadline => return Err(e),
                    Err(_) => {}
                },
                Err(e) if start.elapsed() >= deadline => return Err(e),
                Err(_) => {}
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Raw request/response exchange.
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        proto::send(&mut self.stream, request)?;
        Ok(proto::recv(&mut self.stream)?)
    }

    /// Submits a run and waits for its result.
    pub fn run(&mut self, request: RunRequest) -> Result<RunResult, ClientError> {
        match self.roundtrip(&Request::Run(request))? {
            Response::Run(result) => Ok(result),
            Response::Overloaded { queue_capacity } => {
                Err(ClientError::Overloaded { queue_capacity })
            }
            Response::Error { kind, message } => Err(ClientError::Server { kind, message }),
            _ => Err(ClientError::Unexpected("expected run result")),
        }
    }

    /// Fetches the service stats snapshot.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            Response::Error { kind, message } => Err(ClientError::Server { kind, message }),
            _ => Err(ClientError::Unexpected("expected stats")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::Unexpected("expected pong")),
        }
    }

    /// Asks the service to drain and exit. Returns once the service has
    /// acknowledged (in-flight work may still be finishing).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error { kind, message } => Err(ClientError::Server { kind, message }),
            _ => Err(ClientError::Unexpected("expected shutdown ack")),
        }
    }
}
