//! Blocking client for the serve protocol, shared by `chgraph-cli submit`,
//! `serve-stats`, the load generator, and the end-to-end tests — one codec,
//! no drift between producers.
//!
//! # Resilience
//!
//! Every failure is classified into an [`ErrorClass`]:
//!
//! - [`Transient`](ErrorClass::Transient) — the service or network hiccuped
//!   (connection refused/reset, overloaded, draining, server-side timeout).
//!   Retrying against a healthy or recovered service should succeed.
//! - [`WireIntegrity`](ErrorClass::WireIntegrity) — bytes were mangled in
//!   flight (bad magic, checksum mismatch, oversize, or the server saw our
//!   request mangled). A fresh connection re-sends cleanly, so the *retry
//!   loop* treats these as retryable — but [`Client::connect_ready`] does
//!   not: during startup probing a mangled reply means a broken peer, not a
//!   slow one, and must surface immediately.
//! - [`Terminal`](ErrorClass::Terminal) — retrying is pointless: version
//!   mismatch, schema violation, bad request, failed run.
//!
//! [`Client::run_with_retry`] layers exponential backoff with decorrelated
//! jitter on top, stamps an idempotent `request_key` so the server dedups
//! replays that raced a completed execution, and honors the server's
//! `retry_after_ms` hint as a delay floor.

use crate::proto::{self, ProtoError, Request, Response, RunRequest, RunResult, StatsReport};
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// Client-side failure: transport/protocol trouble, or a server-side typed
/// error relayed verbatim.
#[derive(Debug)]
pub enum ClientError {
    /// Framing, checksum, or I/O failure.
    Proto(ProtoError),
    /// The service rejected the run fast (full queue, degraded mode, or
    /// connection cap).
    Overloaded {
        /// The server's queue capacity, echoed for diagnostics.
        queue_capacity: u64,
        /// Server's hint for how long to wait before retrying (0 = none).
        retry_after_ms: u64,
    },
    /// A typed error from the service (`kind` is stable, machine-matchable).
    Server {
        /// Stable error kind, e.g. `budget-exceeded` or `bad-request`.
        kind: String,
        /// Human-readable detail.
        message: String,
    },
    /// The reply decoded fine but was not the variant this call expects.
    Unexpected(&'static str),
}

/// How a [`ClientError`] should be handled by a caller that can retry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorClass {
    /// The service or network hiccuped; retry after a backoff.
    Transient,
    /// Bytes were corrupted in flight; a re-send on a fresh connection is
    /// worth trying, but a startup probe should fail fast.
    WireIntegrity,
    /// Retrying cannot help (bad request, malformed payload, failed run).
    Terminal,
}

impl ClientError {
    /// Classifies this error for retry decisions (see [`ErrorClass`]).
    pub fn class(&self) -> ErrorClass {
        match self {
            // Transport-level trouble: refused, reset, timed out, torn.
            ClientError::Proto(ProtoError::Io(_)) => ErrorClass::Transient,
            // Mangled bytes. Everything the header check can report —
            // magic, version, length — is parsed BEFORE the payload
            // checksum is verified, so corruption can forge any of them
            // (duplicated bytes shift the stream and the magic word lands
            // in the version field). All of it is worth one fresh attempt.
            ClientError::Proto(
                ProtoError::Magic
                | ProtoError::Version(_)
                | ProtoError::Oversize(_)
                | ProtoError::ChecksumMismatch { .. },
            ) => ErrorClass::WireIntegrity,
            // These fire only after the checksum passed: the peer really
            // sent those bytes and will do so again on every retry.
            ClientError::Proto(ProtoError::Json(_) | ProtoError::Schema(_)) => ErrorClass::Terminal,
            ClientError::Overloaded { .. } => ErrorClass::Transient,
            ClientError::Server { kind, .. } => match kind.as_str() {
                // The service closed us out for pacing reasons, or saw our
                // request arrive mangled — both clear on a fresh attempt.
                "shutting-down" | "timeout" => ErrorClass::Transient,
                "protocol" => ErrorClass::WireIntegrity,
                _ => ErrorClass::Terminal,
            },
            ClientError::Unexpected(_) => ErrorClass::Terminal,
        }
    }

    /// Whether a retry loop (fresh connection, backoff) may retry this.
    pub fn is_retryable(&self) -> bool {
        self.class() != ErrorClass::Terminal
    }

    /// The server's retry-pacing hint, when the reply carried one.
    pub fn retry_after(&self) -> Option<Duration> {
        match self {
            ClientError::Overloaded { retry_after_ms, .. } if *retry_after_ms > 0 => {
                Some(Duration::from_millis(*retry_after_ms))
            }
            _ => None,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::Overloaded { queue_capacity, retry_after_ms } => {
                write!(f, "server overloaded (queue capacity {queue_capacity}")?;
                if *retry_after_ms > 0 {
                    write!(f, ", retry after {retry_after_ms} ms")?;
                }
                write!(f, ")")
            }
            ClientError::Server { kind, message } => write!(f, "server error [{kind}]: {message}"),
            ClientError::Unexpected(what) => write!(f, "unexpected response variant: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Proto(ProtoError::Io(e))
    }
}

/// One connection to a running `chgraphd`. Requests on a connection are
/// sequential (send, then block on the reply); open several connections
/// for concurrency.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to the service.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Like [`connect`](Client::connect) but retries until the service
    /// answers a ping or `deadline` elapses — for "daemon just forked"
    /// startup races in scripts and tests.
    ///
    /// Only [`Transient`](ErrorClass::Transient) failures (refused, reset,
    /// not yet listening) are retried. A mangled or unexpected reply means
    /// whatever is listening is not a healthy `chgraphd`, and waiting
    /// longer will not change that — it surfaces immediately.
    pub fn connect_ready(
        addr: impl ToSocketAddrs + Clone,
        deadline: Duration,
    ) -> Result<Client, ClientError> {
        let start = Instant::now();
        loop {
            let err = match Client::connect(addr.clone()) {
                Ok(mut c) => match c.ping() {
                    Ok(()) => return Ok(c),
                    Err(e) => e,
                },
                Err(e) => e,
            };
            if err.class() != ErrorClass::Transient || start.elapsed() >= deadline {
                return Err(err);
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    /// Raw request/response exchange.
    pub fn roundtrip(&mut self, request: &Request) -> Result<Response, ClientError> {
        proto::send(&mut self.stream, request)?;
        Ok(proto::recv(&mut self.stream)?)
    }

    /// Submits a run and waits for its result.
    pub fn run(&mut self, request: RunRequest) -> Result<RunResult, ClientError> {
        match self.roundtrip(&Request::Run(request))? {
            Response::Run(result) => Ok(result),
            Response::Overloaded { queue_capacity, retry_after_ms } => {
                Err(ClientError::Overloaded { queue_capacity, retry_after_ms })
            }
            Response::Error { kind, message } => Err(ClientError::Server { kind, message }),
            _ => Err(ClientError::Unexpected("expected run result")),
        }
    }

    /// Fetches the service stats snapshot.
    pub fn stats(&mut self) -> Result<StatsReport, ClientError> {
        match self.roundtrip(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            Response::Error { kind, message } => Err(ClientError::Server { kind, message }),
            _ => Err(ClientError::Unexpected("expected stats")),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Ping)? {
            Response::Pong => Ok(()),
            _ => Err(ClientError::Unexpected("expected pong")),
        }
    }

    /// Asks the service to drain and exit. Returns once the service has
    /// acknowledged (in-flight work may still be finishing).
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.roundtrip(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            Response::Error { kind, message } => Err(ClientError::Server { kind, message }),
            _ => Err(ClientError::Unexpected("expected shutdown ack")),
        }
    }
}

/// Retry configuration for [`Client::run_with_retry`]: exponential backoff
/// with *decorrelated jitter* — each delay is drawn uniformly from
/// `[base, prev_delay * 3]` and capped, which spreads concurrent retriers
/// apart instead of letting them thundering-herd in lockstep. The draw is
/// seeded, so a fixed seed reproduces the exact delay sequence (the chaos
/// suite depends on this).
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Attempts including the first (1 = no retries).
    pub max_attempts: u32,
    /// Minimum backoff delay, and the lower bound of every jitter draw.
    pub base: Duration,
    /// Upper bound on any single backoff delay.
    pub cap: Duration,
    /// Overall wall-clock budget across all attempts; once exceeded, the
    /// last error is returned instead of sleeping again.
    pub overall_deadline: Duration,
    /// Seed for the jitter sequence.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 5,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(2),
            overall_deadline: Duration::from_secs(60),
            seed: 1,
        }
    }
}

impl RetryPolicy {
    /// A policy with `max_attempts` attempts and the default pacing.
    pub fn with_attempts(max_attempts: u32) -> Self {
        RetryPolicy { max_attempts: max_attempts.max(1), ..RetryPolicy::default() }
    }

    /// Same policy, different jitter seed.
    pub fn with_seed(self, seed: u64) -> Self {
        RetryPolicy { seed, ..self }
    }
}

/// A successful [`Client::run_with_retry`], with the retry telemetry the
/// bench harness records.
#[derive(Debug)]
pub struct RetryOutcome {
    /// The run result from the attempt that succeeded.
    pub result: RunResult,
    /// Attempts made, including the successful one (1 = first try).
    pub attempts: u32,
    /// Total time spent sleeping between attempts.
    pub backoff_total: Duration,
}

/// splitmix64 — the same tiny deterministic generator the data generators
/// use; good enough statistics for jitter, zero dependencies.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Uniform draw in `[lo, hi]` (inclusive) from the jitter stream.
fn jitter_between(state: &mut u64, lo: u64, hi: u64) -> u64 {
    if hi <= lo {
        return lo;
    }
    lo + splitmix64(state) % (hi - lo + 1)
}

impl Client {
    /// Submits a run with retries: a fresh connection per attempt,
    /// [`RetryPolicy`] backoff between attempts, and retry only on
    /// [`Transient`](ErrorClass::Transient) and
    /// [`WireIntegrity`](ErrorClass::WireIntegrity) failures.
    ///
    /// If the request has no `request_key`, one is stamped from the
    /// request's content fingerprint, making every attempt *idempotent*:
    /// should a retry race an attempt whose reply was lost after the server
    /// executed it, the server's single-flight dedup returns the already
    /// computed result instead of executing twice.
    ///
    /// When the server replies `overloaded` with a `retry_after_ms` hint,
    /// the hint becomes the floor of the next backoff delay.
    pub fn run_with_retry(
        addr: impl ToSocketAddrs + Clone,
        mut request: RunRequest,
        policy: RetryPolicy,
    ) -> Result<RetryOutcome, ClientError> {
        if request.request_key.is_none() {
            request.request_key = Some(format!("{:016x}", request.content_fingerprint()));
        }
        let started = Instant::now();
        let mut jitter = policy.seed;
        let base_ms = policy.base.as_millis() as u64;
        let cap_ms = (policy.cap.as_millis() as u64).max(base_ms.max(1));
        let mut prev_delay_ms = base_ms;
        let mut backoff_total = Duration::ZERO;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            let err = match Client::connect(addr.clone()) {
                Ok(mut c) => match c.run(request.clone()) {
                    Ok(result) => {
                        return Ok(RetryOutcome { result, attempts: attempt, backoff_total })
                    }
                    Err(e) => e,
                },
                Err(e) => e,
            };
            let out_of_budget = attempt >= policy.max_attempts.max(1)
                || started.elapsed() >= policy.overall_deadline;
            if !err.is_retryable() || out_of_budget {
                return Err(err);
            }
            // Decorrelated jitter: uniform in [base, prev*3], capped; a
            // server retry_after hint raises the floor.
            let mut delay_ms =
                jitter_between(&mut jitter, base_ms, (prev_delay_ms.saturating_mul(3)).min(cap_ms))
                    .min(cap_ms);
            if let Some(hint) = err.retry_after() {
                delay_ms = delay_ms.max(hint.as_millis() as u64).min(cap_ms);
            }
            prev_delay_ms = delay_ms.max(1);
            let delay = Duration::from_millis(delay_ms);
            std::thread::sleep(delay);
            backoff_total += delay;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn server_error(kind: &str) -> ClientError {
        ClientError::Server { kind: kind.into(), message: String::new() }
    }

    #[test]
    fn classification_matches_the_retry_contract() {
        let refused = ClientError::Proto(ProtoError::Io(io::Error::new(
            io::ErrorKind::ConnectionRefused,
            "refused",
        )));
        assert_eq!(refused.class(), ErrorClass::Transient);
        assert_eq!(
            ClientError::Overloaded { queue_capacity: 4, retry_after_ms: 0 }.class(),
            ErrorClass::Transient
        );
        assert_eq!(server_error("shutting-down").class(), ErrorClass::Transient);
        assert_eq!(server_error("timeout").class(), ErrorClass::Transient);

        assert_eq!(ClientError::Proto(ProtoError::Magic).class(), ErrorClass::WireIntegrity);
        assert_eq!(
            ClientError::Proto(ProtoError::ChecksumMismatch { stored: 1, computed: 2 }).class(),
            ErrorClass::WireIntegrity
        );
        assert_eq!(server_error("protocol").class(), ErrorClass::WireIntegrity);
        // The version field sits in the unchecksummed header: corruption
        // can forge it, so it classifies as wire trouble, not terminal.
        assert_eq!(ClientError::Proto(ProtoError::Version(99)).class(), ErrorClass::WireIntegrity);

        assert_eq!(
            ClientError::Proto(ProtoError::Schema("bad".into())).class(),
            ErrorClass::Terminal
        );
        assert_eq!(server_error("bad-request").class(), ErrorClass::Terminal);
        assert_eq!(server_error("budget-exceeded").class(), ErrorClass::Terminal);
        assert_eq!(ClientError::Unexpected("x").class(), ErrorClass::Terminal);

        assert!(refused.is_retryable());
        assert!(ClientError::Proto(ProtoError::Magic).is_retryable());
        assert!(!server_error("bad-request").is_retryable());
    }

    #[test]
    fn retry_after_hint_only_on_hinted_overload() {
        let hinted = ClientError::Overloaded { queue_capacity: 4, retry_after_ms: 250 };
        assert_eq!(hinted.retry_after(), Some(Duration::from_millis(250)));
        let bare = ClientError::Overloaded { queue_capacity: 4, retry_after_ms: 0 };
        assert_eq!(bare.retry_after(), None);
        assert_eq!(server_error("timeout").retry_after(), None);
    }

    #[test]
    fn jitter_sequence_is_deterministic_and_bounded() {
        let mut a = 42u64;
        let mut b = 42u64;
        for _ in 0..100 {
            let x = jitter_between(&mut a, 25, 400);
            let y = jitter_between(&mut b, 25, 400);
            assert_eq!(x, y, "same seed must give the same delay sequence");
            assert!((25..=400).contains(&x));
        }
        let mut c = 43u64;
        let differs = (0..100).any(|_| {
            jitter_between(&mut c, 25, 400) != {
                let mut a2 = 42u64;
                jitter_between(&mut a2, 25, 400)
            }
        });
        assert!(differs, "different seeds should diverge");
    }

    #[test]
    fn degenerate_jitter_range_is_safe() {
        let mut s = 7u64;
        assert_eq!(jitter_between(&mut s, 100, 100), 100);
        assert_eq!(jitter_between(&mut s, 100, 50), 100, "inverted range clamps to lo");
    }
}
