//! Deterministic network-fault injection: a seeded in-process TCP proxy
//! between a client and `chgraphd`.
//!
//! This is `chg_bench::faultutil`'s philosophy — reproducible corruption as
//! a pure function of a seed and an index — lifted from byte streams to
//! sockets. Each accepted connection draws a [`FaultPlan`] from
//! [`plan_for`]`(policy, conn_index)`: a pure function, so the same seed
//! and connection order replay the *identical* fault schedule, and a chaos
//! test failure reproduces from its seed alone. The proxy records every
//! plan it executes in an event log ([`ChaosProxy::events`]) that the
//! determinism test compares across runs.
//!
//! # Fault vocabulary
//!
//! | Plan | Wire effect | What it exercises |
//! |------|-------------|-------------------|
//! | `Refuse` | accept, then immediate close | connect retry |
//! | `Delay` | fixed latency before any byte flows | timeout headroom |
//! | `Drip` | 1–few bytes per write with sleeps (slow-loris) | frame deadline |
//! | `Reset` | both directions torn down mid-stream | mid-frame EOF paths |
//! | `Truncate` | one direction FINs after N bytes | torn frame decode |
//! | `Duplicate` | first N bytes sent twice | magic/checksum rejection |
//! | `Split` | every buffer forwarded in two halves | frame reassembly |
//!
//! The proxy is intentionally *not* a general netem: it injects exactly the
//! failure modes the serving layer claims to survive, nothing stochastic at
//! run time.

use std::io::{self, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often blocked proxy loops re-check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);
/// `Drip` slow-feeds only this many leading bytes, then forwards normally —
/// enough to hold a frame open past a test-sized deadline without making
/// multi-kilobyte replies take seconds.
const DRIP_WINDOW: usize = 256;
/// Forwarding buffer size.
const BUF: usize = 4096;

/// The seeded chaos configuration: `error_rate` is the probability
/// (per connection, decided deterministically from `seed` + connection
/// index) that the connection gets a fault plan other than `Clean`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChaosPolicy {
    /// Seed for the fault schedule; same seed → same schedule.
    pub seed: u64,
    /// Fraction of connections that receive a fault, in `[0, 1]`.
    pub error_rate: f64,
}

impl ChaosPolicy {
    /// A policy injecting faults on ~`error_rate` of connections.
    pub fn new(seed: u64, error_rate: f64) -> Self {
        ChaosPolicy { seed, error_rate: error_rate.clamp(0.0, 1.0) }
    }
}

/// Which direction of the proxied connection a fault applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Client → daemon (request bytes).
    ToServer,
    /// Daemon → client (reply bytes).
    ToClient,
}

/// One connection's fault plan, decided before any byte is forwarded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultPlan {
    /// Forward faithfully.
    Clean,
    /// Accept, then close immediately — the client sees a dead connection.
    Refuse,
    /// Sleep before any byte flows, then forward faithfully.
    Delay {
        /// Added latency in milliseconds.
        ms: u64,
    },
    /// Slow-loris: forward the first [`DRIP_WINDOW`] bytes in `chunk`-sized
    /// pieces with `delay_ms` sleeps between them.
    Drip {
        /// Which direction is dripped.
        dir: Direction,
        /// Bytes per write while dripping.
        chunk: usize,
        /// Sleep between dripped writes, milliseconds.
        delay_ms: u64,
    },
    /// Tear down both directions after `after` bytes have flowed in `dir`.
    Reset {
        /// Direction whose byte count triggers the reset.
        dir: Direction,
        /// Bytes forwarded in `dir` before the teardown.
        after: usize,
    },
    /// FIN one direction after `after` bytes — the peer sees a torn frame.
    Truncate {
        /// Direction that gets truncated.
        dir: Direction,
        /// Bytes forwarded before the FIN.
        after: usize,
    },
    /// Send the first `window` bytes twice — downstream sees corrupt
    /// framing (bad magic or checksum mismatch).
    Duplicate {
        /// Direction that gets duplicated bytes.
        dir: Direction,
        /// Length of the duplicated prefix.
        window: usize,
    },
    /// Forward every buffer in two halves with a small pause between —
    /// exercises frame reassembly across short reads.
    Split {
        /// Direction whose writes are split.
        dir: Direction,
    },
}

/// One executed fault decision, in accept order.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Zero-based index of the proxied connection.
    pub conn_index: u64,
    /// The plan that connection was given.
    pub plan: FaultPlan,
}

/// splitmix64: tiny, seedable, statistically fine for schedules.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The fault plan for connection `conn_index` under `policy` — a pure
/// function, so schedules replay exactly and tests can predict them.
pub fn plan_for(policy: &ChaosPolicy, conn_index: u64) -> FaultPlan {
    // Key a fresh splitmix stream on (seed, conn_index); the multiplier
    // decorrelates neighboring indices.
    let mut s = policy.seed ^ conn_index.wrapping_mul(0xa076_1d64_78bd_642f);
    let roll = (splitmix64(&mut s) >> 11) as f64 / (1u64 << 53) as f64;
    if roll >= policy.error_rate {
        return FaultPlan::Clean;
    }
    let dir = if splitmix64(&mut s) & 1 == 0 { Direction::ToServer } else { Direction::ToClient };
    match splitmix64(&mut s) % 7 {
        0 => FaultPlan::Refuse,
        1 => FaultPlan::Delay { ms: 5 + splitmix64(&mut s) % 46 },
        2 => FaultPlan::Drip {
            dir,
            chunk: 1 + (splitmix64(&mut s) % 7) as usize,
            delay_ms: 1 + splitmix64(&mut s) % 4,
        },
        3 => FaultPlan::Reset { dir, after: 1 + (splitmix64(&mut s) % 64) as usize },
        4 => FaultPlan::Truncate { dir, after: 1 + (splitmix64(&mut s) % 64) as usize },
        5 => FaultPlan::Duplicate { dir, window: 1 + (splitmix64(&mut s) % 32) as usize },
        _ => FaultPlan::Split { dir },
    }
}

/// The running proxy: listens on an ephemeral local port, forwards every
/// connection to `upstream` through its fault plan, and logs what it did.
/// Dropping (or [`stop`](ChaosProxy::stop)) shuts the listener and joins
/// every pump thread.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    events: Arc<Mutex<Vec<FaultEvent>>>,
    accept_thread: Option<JoinHandle<()>>,
}

impl ChaosProxy {
    /// Starts the proxy in front of `upstream`.
    pub fn spawn(upstream: SocketAddr, policy: ChaosPolicy) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let events = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let stop = stop.clone();
            let events = events.clone();
            std::thread::spawn(move || accept_loop(listener, upstream, policy, &stop, &events))
        };
        Ok(ChaosProxy { addr, stop, events, accept_thread: Some(accept_thread) })
    }

    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The fault decisions executed so far, in accept order — the
    /// determinism test's ground truth.
    pub fn events(&self) -> Vec<FaultEvent> {
        self.events.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Stops accepting, tears down in-flight pumps, joins the accept loop.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    policy: ChaosPolicy,
    stop: &Arc<AtomicBool>,
    events: &Arc<Mutex<Vec<FaultEvent>>>,
) {
    let mut conn_index = 0u64;
    let mut conn_threads = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((client, _)) => {
                let plan = plan_for(&policy, conn_index);
                events
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(FaultEvent { conn_index, plan });
                conn_index += 1;
                let stop = stop.clone();
                conn_threads
                    .push(std::thread::spawn(move || proxy_one(client, upstream, plan, &stop)));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => std::thread::sleep(POLL_INTERVAL),
            Err(_) => std::thread::sleep(POLL_INTERVAL),
        }
    }
    for t in conn_threads {
        let _ = t.join();
    }
}

/// Forwards one client connection through its fault plan.
fn proxy_one(client: TcpStream, upstream: SocketAddr, plan: FaultPlan, stop: &Arc<AtomicBool>) {
    if let FaultPlan::Refuse = plan {
        drop(client); // immediate close: the client's next read sees EOF
        return;
    }
    if let FaultPlan::Delay { ms } = plan {
        std::thread::sleep(Duration::from_millis(ms));
    }
    let Ok(server) = TcpStream::connect(upstream) else {
        return; // upstream gone (e.g. daemon killed): client sees EOF
    };
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);
    let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    let fault_for = |dir: Direction| -> FaultPlan {
        match plan {
            FaultPlan::Drip { dir: d, .. }
            | FaultPlan::Reset { dir: d, .. }
            | FaultPlan::Truncate { dir: d, .. }
            | FaultPlan::Duplicate { dir: d, .. }
            | FaultPlan::Split { dir: d } => {
                if d == dir {
                    plan
                } else {
                    FaultPlan::Clean
                }
            }
            _ => FaultPlan::Clean,
        }
    };
    let to_server = {
        let stop = stop.clone();
        let fault = fault_for(Direction::ToServer);
        std::thread::spawn(move || pump(client_r, server, fault, &stop))
    };
    pump(server_r, client, fault_for(Direction::ToClient), stop);
    let _ = to_server.join();
}

/// Copies bytes `from` → `to`, applying `fault` to the forwarded stream.
fn pump(from: TcpStream, mut to: TcpStream, fault: FaultPlan, stop: &Arc<AtomicBool>) {
    let mut from = from;
    if from.set_read_timeout(Some(POLL_INTERVAL)).is_err() {
        return;
    }
    let mut buf = [0u8; BUF];
    let mut forwarded = 0usize;
    loop {
        if stop.load(Ordering::SeqCst) {
            let _ = from.shutdown(Shutdown::Both);
            let _ = to.shutdown(Shutdown::Both);
            return;
        }
        let n = match from.read(&mut buf) {
            Ok(0) => {
                // Upstream of this direction finished; pass the FIN on.
                let _ = to.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => {
                let _ = to.shutdown(Shutdown::Both);
                return;
            }
        };
        let chunk = &buf[..n];
        let write_failed = match fault {
            FaultPlan::Drip { chunk: piece, delay_ms, .. } => {
                let mut failed = false;
                for part in drip_pieces(chunk, forwarded, piece) {
                    if to.write_all(part).is_err() {
                        failed = true;
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(delay_ms));
                }
                failed
            }
            FaultPlan::Reset { after, .. } if forwarded + n >= after => {
                let keep = after.saturating_sub(forwarded);
                let _ = to.write_all(&chunk[..keep]);
                // Abrupt teardown of both directions, mid-frame.
                let _ = to.shutdown(Shutdown::Both);
                let _ = from.shutdown(Shutdown::Both);
                return;
            }
            FaultPlan::Truncate { after, .. } if forwarded + n >= after => {
                let keep = after.saturating_sub(forwarded);
                let _ = to.write_all(&chunk[..keep]);
                // FIN this direction only; the reverse path stays up so a
                // protocol-error reply can still reach the client.
                let _ = to.shutdown(Shutdown::Write);
                let _ = from.shutdown(Shutdown::Read);
                return;
            }
            FaultPlan::Duplicate { window, .. } if forwarded < window => {
                let dup = (window - forwarded).min(n);
                to.write_all(&chunk[..dup]).is_err() || to.write_all(chunk).is_err()
            }
            FaultPlan::Split { .. } if n > 1 => {
                let mid = n / 2;
                let first = to.write_all(&chunk[..mid]).is_err();
                std::thread::sleep(Duration::from_millis(1));
                first || to.write_all(&chunk[mid..]).is_err()
            }
            _ => to.write_all(chunk).is_err(),
        };
        if write_failed {
            let _ = from.shutdown(Shutdown::Both);
            let _ = to.shutdown(Shutdown::Both);
            return;
        }
        forwarded += n;
    }
}

/// Splits `chunk` for dripping: `piece`-sized slices while inside the
/// global [`DRIP_WINDOW`], then the whole remainder in one slice.
fn drip_pieces(chunk: &[u8], already: usize, piece: usize) -> Vec<&[u8]> {
    let piece = piece.max(1);
    let drip_len = DRIP_WINDOW.saturating_sub(already).min(chunk.len());
    let mut parts: Vec<&[u8]> = chunk[..drip_len].chunks(piece).collect();
    if drip_len < chunk.len() {
        parts.push(&chunk[drip_len..]);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_pure_functions_of_seed_and_index() {
        let policy = ChaosPolicy::new(7, 0.5);
        for i in 0..200 {
            assert_eq!(plan_for(&policy, i), plan_for(&policy, i));
        }
        let replay: Vec<_> = (0..200).map(|i| plan_for(&policy, i)).collect();
        let again: Vec<_> = (0..200).map(|i| plan_for(&policy, i)).collect();
        assert_eq!(replay, again);
    }

    #[test]
    fn error_rate_bounds_hold() {
        let never = ChaosPolicy::new(3, 0.0);
        assert!((0..100).all(|i| plan_for(&never, i) == FaultPlan::Clean));
        let always = ChaosPolicy::new(3, 1.0);
        assert!((0..100).all(|i| plan_for(&always, i) != FaultPlan::Clean));
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a: Vec<_> = (0..100).map(|i| plan_for(&ChaosPolicy::new(1, 1.0), i)).collect();
        let b: Vec<_> = (0..100).map(|i| plan_for(&ChaosPolicy::new(2, 1.0), i)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn full_error_rate_covers_every_fault_kind() {
        let policy = ChaosPolicy::new(11, 1.0);
        let mut seen = [false; 7];
        for i in 0..500 {
            let k = match plan_for(&policy, i) {
                FaultPlan::Clean => unreachable!("error_rate 1.0 never yields Clean"),
                FaultPlan::Refuse => 0,
                FaultPlan::Delay { .. } => 1,
                FaultPlan::Drip { .. } => 2,
                FaultPlan::Reset { .. } => 3,
                FaultPlan::Truncate { .. } => 4,
                FaultPlan::Duplicate { .. } => 5,
                FaultPlan::Split { .. } => 6,
            };
            seen[k] = true;
        }
        assert!(seen.iter().all(|&s| s), "500 draws must hit all 7 kinds: {seen:?}");
    }

    #[test]
    fn drip_pieces_respects_window_and_piece_size() {
        let data = [0u8; 300];
        // All inside the window: piece-sized chunks only.
        let parts = drip_pieces(&data[..100], 0, 7);
        assert!(parts.iter().take(parts.len() - 1).all(|p| p.len() == 7));
        assert_eq!(parts.iter().map(|p| p.len()).sum::<usize>(), 100);
        // Straddling the window edge: the tail is one big slice.
        let parts = drip_pieces(&data, 200, 3);
        let dripped: usize = parts.iter().take_while(|p| p.len() <= 3).map(|p| p.len()).sum();
        assert_eq!(dripped, DRIP_WINDOW - 200);
        assert_eq!(parts.last().unwrap().len(), 300 - (DRIP_WINDOW - 200));
        // Past the window: everything in one slice.
        let parts = drip_pieces(&data, DRIP_WINDOW, 3);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), 300);
    }
}
