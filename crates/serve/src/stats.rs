//! Service-side statistics: lock-free counters and a log-bucketed latency
//! histogram with percentile extraction.
//!
//! Everything here is updated from worker and handler threads with relaxed
//! atomics — stats are monitoring data, not synchronization — and read out
//! as one [`StatsReport`] snapshot by the `stats` request handler.

use crate::proto::{CloseCounters, LatencySummary, RequestCounters};
use std::sync::atomic::{AtomicU64, Ordering};

/// Why the server closed (or refused) a client connection. Every connection
/// ends in exactly one of these; the per-cause counters in
/// [`CloseCounters`] are the wire-visible tally the chaos tests assert.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CloseCause {
    /// The peer finished and closed between frames (EOF at a frame
    /// boundary), or the service drained while the connection was idle.
    Clean,
    /// No byte arrived within the per-read quiet-period timeout while a
    /// frame was in progress.
    ReadTimeout,
    /// A reply write could not make progress within the write timeout (a
    /// stalled or non-reading client).
    WriteTimeout,
    /// One frame took longer than the total frame deadline to arrive — the
    /// slow-loris drip-feed guard.
    FrameDeadline,
    /// The connection died mid-frame (torn read/write, abrupt peer close).
    Reset,
    /// The frame decoded to garbage (bad magic, checksum mismatch, schema
    /// violation); the server replied with a typed `protocol` error and
    /// closed.
    Protocol,
}

/// Number of histogram buckets. Bucket `i` holds samples in
/// `[2^i, 2^(i+1))` microseconds (bucket 0 holds `[0, 2)`), so 64 buckets
/// cover any `u64` latency.
const BUCKETS: usize = 64;

/// A log₂-bucketed latency histogram. Recording is one relaxed
/// `fetch_add`; percentile extraction walks the 64 buckets and reports the
/// upper bound of the bucket containing the requested quantile — ≤ 2×
/// resolution error, plenty for service monitoring, with no allocation and
/// no lock on the hot path.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Records one sample, in microseconds.
    pub fn record(&self, micros: u64) {
        let bucket =
            (64 - micros.max(1).leading_zeros() as usize).saturating_sub(1).min(BUCKETS - 1);
        self.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.max.fetch_max(micros, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The value at or below which `q` (0.0–1.0) of samples fall, reported
    /// as the containing bucket's upper bound (0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        // Rank of the target sample, 1-based, clamped into range.
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper bound of bucket i, capped by the observed maximum
                // so p99 never exceeds max.
                let upper = if i + 1 >= 64 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
                return upper.min(self.max.load(Ordering::Relaxed));
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// The p50/p95/p99/max summary for the stats response.
    pub fn summary(&self) -> LatencySummary {
        LatencySummary {
            count: self.count(),
            p50_micros: self.quantile(0.50),
            p95_micros: self.quantile(0.95),
            p99_micros: self.quantile(0.99),
            max_micros: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Request-outcome counters (one relaxed add per event).
#[derive(Default)]
pub struct Counters {
    received: AtomicU64,
    ok: AtomicU64,
    failed: AtomicU64,
    rejected_overload: AtomicU64,
    protocol_errors: AtomicU64,
    deduped: AtomicU64,
    shed: AtomicU64,
    conn_cap: AtomicU64,
    closed_clean: AtomicU64,
    closed_read_timeout: AtomicU64,
    closed_write_timeout: AtomicU64,
    closed_frame_deadline: AtomicU64,
    closed_reset: AtomicU64,
    closed_protocol: AtomicU64,
}

impl Counters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Counters::default()
    }

    /// A request frame arrived.
    pub fn on_received(&self) {
        self.received.fetch_add(1, Ordering::Relaxed);
    }

    /// A run completed successfully.
    pub fn on_ok(&self) {
        self.ok.fetch_add(1, Ordering::Relaxed);
    }

    /// A run failed with a typed error.
    pub fn on_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// A run was rejected with `overloaded`.
    pub fn on_rejected(&self) {
        self.rejected_overload.fetch_add(1, Ordering::Relaxed);
    }

    /// A frame failed protocol decoding.
    pub fn on_protocol_error(&self) {
        self.protocol_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// A run with a `request_key` was answered from another request's
    /// single-flight slot instead of executing again.
    pub fn on_deduped(&self) {
        self.deduped.fetch_add(1, Ordering::Relaxed);
    }

    /// A run was rejected fast because the service is in degraded mode
    /// (queue-wait p95 over threshold).
    pub fn on_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection was refused at accept because the concurrent-connection
    /// cap was reached.
    pub fn on_conn_cap(&self) {
        self.conn_cap.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection ended; tally its cause.
    pub fn on_close(&self, cause: CloseCause) {
        let counter = match cause {
            CloseCause::Clean => &self.closed_clean,
            CloseCause::ReadTimeout => &self.closed_read_timeout,
            CloseCause::WriteTimeout => &self.closed_write_timeout,
            CloseCause::FrameDeadline => &self.closed_frame_deadline,
            CloseCause::Reset => &self.closed_reset,
            CloseCause::Protocol => &self.closed_protocol,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot for the stats response.
    pub fn snapshot(&self) -> RequestCounters {
        RequestCounters {
            received: self.received.load(Ordering::Relaxed),
            ok: self.ok.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
            deduped: self.deduped.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the per-cause connection-close tallies.
    pub fn closes(&self) -> CloseCounters {
        CloseCounters {
            clean: self.closed_clean.load(Ordering::Relaxed),
            read_timeout: self.closed_read_timeout.load(Ordering::Relaxed),
            write_timeout: self.closed_write_timeout.load(Ordering::Relaxed),
            frame_deadline: self.closed_frame_deadline.load(Ordering::Relaxed),
            reset: self.closed_reset.load(Ordering::Relaxed),
            protocol: self.closed_protocol.load(Ordering::Relaxed),
            conn_cap: self.conn_cap.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_is_zero() {
        let h = LatencyHistogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.p50_micros, 0);
        assert_eq!(s.max_micros, 0);
    }

    #[test]
    fn single_sample_pins_all_percentiles() {
        let h = LatencyHistogram::new();
        h.record(1000);
        let s = h.summary();
        assert_eq!(s.count, 1);
        // 1000 falls in [512, 1024); upper bound 1023 capped by max=1000.
        assert_eq!(s.p50_micros, 1000);
        assert_eq!(s.p99_micros, 1000);
        assert_eq!(s.max_micros, 1000);
    }

    #[test]
    fn percentiles_are_ordered_and_bounded() {
        let h = LatencyHistogram::new();
        for i in 0..1000u64 {
            h.record(i * 10);
        }
        let s = h.summary();
        assert!(s.p50_micros <= s.p95_micros);
        assert!(s.p95_micros <= s.p99_micros);
        assert!(s.p99_micros <= s.max_micros);
        assert_eq!(s.max_micros, 9990);
        // p50 of 0..9990 uniform ≈ 5000; log buckets give ≤2x resolution.
        assert!(s.p50_micros >= 4995 && s.p50_micros <= 9990, "p50 = {}", s.p50_micros);
        assert!(s.p50_micros <= 8191, "p50 must stay in its bucket's bound");
    }

    #[test]
    fn zero_latency_is_recordable() {
        let h = LatencyHistogram::new();
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.summary().p50_micros, 0);
    }

    #[test]
    fn counters_accumulate() {
        let c = Counters::new();
        c.on_received();
        c.on_received();
        c.on_ok();
        c.on_rejected();
        c.on_protocol_error();
        c.on_deduped();
        c.on_shed();
        let s = c.snapshot();
        assert_eq!(s.received, 2);
        assert_eq!(s.ok, 1);
        assert_eq!(s.failed, 0);
        assert_eq!(s.rejected_overload, 1);
        assert_eq!(s.protocol_errors, 1);
        assert_eq!(s.deduped, 1);
        assert_eq!(s.shed, 1);
    }

    #[test]
    fn close_causes_are_tallied_separately() {
        let c = Counters::new();
        for cause in [
            CloseCause::Clean,
            CloseCause::Clean,
            CloseCause::ReadTimeout,
            CloseCause::WriteTimeout,
            CloseCause::FrameDeadline,
            CloseCause::Reset,
            CloseCause::Protocol,
        ] {
            c.on_close(cause);
        }
        c.on_conn_cap();
        let s = c.closes();
        assert_eq!(s.clean, 2);
        assert_eq!(s.read_timeout, 1);
        assert_eq!(s.write_timeout, 1);
        assert_eq!(s.frame_deadline, 1);
        assert_eq!(s.reset, 1);
        assert_eq!(s.protocol, 1);
        assert_eq!(s.conn_cap, 1);
    }
}
