//! `chg-serve`: a long-lived query service for the chgraph simulation
//! stack.
//!
//! The batch binaries pay dataset generation and OAG construction on every
//! invocation; this crate keeps those artifacts resident. A daemon
//! (`chgraphd`) accepts run requests — dataset × algorithm × runtime ×
//! configuration — over a checksummed, length-prefixed JSON-over-TCP
//! protocol, executes them on a bounded worker pool, and serves repeated
//! requests from an in-memory prepared-artifact LRU with single-flight
//! build deduplication, falling back to the on-disk preprocess cache.
//!
//! Design invariants:
//!
//! - **Identical results.** A served run returns byte-identical simulator
//!   output to a direct library call — caching changes latency, never
//!   results (covered by the end-to-end test suite).
//! - **Backpressure, not buffering.** The request queue is bounded; a full
//!   queue answers `overloaded` immediately instead of queueing unbounded
//!   work or hanging the client.
//! - **Bounded requests.** Every run executes under a [`WatchdogConfig`]
//!   merged from the service default and the request (stricter budget
//!   wins), so one runaway simulation cannot wedge a worker.
//! - **Graceful drain.** Shutdown (SIGINT on the daemon, or a protocol
//!   `shutdown` request) stops intake, finishes in-flight work, replies to
//!   every accepted request, and exits 0.
//!
//! - **Typed failure.** Both ends classify every failure: the server tallies
//!   why each connection closed (read-timeout, write-timeout, frame
//!   deadline, reset, protocol, clean) and the client maps every error to
//!   retryable-or-terminal ([`ErrorClass`]), so resilience is a contract
//!   the chaos suite ([`chaos`], `tests/serve_chaos.rs`) can assert, not a
//!   hope.
//!
//! Module map: [`proto`] wire format and request/response schema, [`json`]
//! the std-only JSON codec under it, [`lru`] the artifact store, [`stats`]
//! counters and latency histograms, [`server`] the daemon core, [`client`]
//! the blocking client shared by the CLI, the load generator, and tests,
//! [`chaos`] the seeded fault-injection proxy the resilience tests drive.
//!
//! [`WatchdogConfig`]: chgraph::WatchdogConfig

pub mod chaos;
pub mod client;
pub mod json;
pub mod lru;
pub mod proto;
pub mod server;
pub mod stats;

pub use chaos::{plan_for, ChaosPolicy, ChaosProxy, Direction, FaultEvent, FaultPlan};
pub use client::{Client, ClientError, ErrorClass, RetryOutcome, RetryPolicy};
pub use lru::{ArtifactStore, Fetch};
pub use proto::{
    error_response, run_result_from_report, ArtifactCounters, ArtifactSource, CloseCounters,
    DiskCacheCounters, LatencySummary, ProtoError, Request, RequestCounters, Response, RunRequest,
    RunResult, StatsReport, WireMessage,
};
pub use server::{ServeConfig, Server, ShutdownHandle};
pub use stats::{CloseCause, Counters, LatencyHistogram};
