//! Chunk partitioning for multicore processing.
//!
//! Like Hygra (paper §II-A and §IV-B), hyperedges and vertices are logically
//! divided into contiguous chunks assigned to cores. Chunks are balanced by
//! *bipartite-edge count* (the unit of work), not by element count, so a
//! handful of huge hyperedges does not skew one core's load.

use crate::{Hypergraph, Side};
use serde::{Deserialize, Serialize};

/// A contiguous range of element ids assigned to one core.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Chunk {
    /// First element id in the chunk (inclusive).
    pub first: u32,
    /// One past the last element id (exclusive).
    pub last: u32,
}

impl Chunk {
    /// Number of elements in the chunk.
    #[inline]
    pub fn len(&self) -> usize {
        (self.last - self.first) as usize
    }

    /// Returns `true` if the chunk holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.first == self.last
    }

    /// Returns `true` if `id` falls inside the chunk.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        (self.first..self.last).contains(&id)
    }

    /// Iterates the element ids of the chunk in ascending order.
    pub fn ids(&self) -> impl Iterator<Item = u32> {
        self.first..self.last
    }
}

/// Partitions the `side` elements of `g` into `num_chunks` contiguous chunks,
/// balanced by incident bipartite-edge count.
///
/// Every element belongs to exactly one chunk and chunks cover `0..n` in
/// order. Some trailing chunks may be empty when there are fewer work items
/// than chunks.
///
/// # Panics
///
/// Panics if `num_chunks == 0`.
///
/// ```
/// use hypergraph::{chunk::partition, Side};
/// let g = hypergraph::fig1_example();
/// let chunks = partition(&g, Side::Hyperedge, 2);
/// assert_eq!(chunks.len(), 2);
/// assert_eq!(chunks[0].first, 0);
/// assert_eq!(chunks.last().unwrap().last, 4);
/// ```
pub fn partition(g: &Hypergraph, side: Side, num_chunks: usize) -> Vec<Chunk> {
    assert!(num_chunks > 0, "cannot partition into zero chunks");
    let csr = g.csr_for(side);
    let n = csr.len();
    let total_work = csr.num_edges() as u64 + n as u64; // edge work + per-element overhead
    let mut chunks = Vec::with_capacity(num_chunks);
    let mut start = 0u32;
    let mut work_done = 0u64;
    let mut cursor = 0usize;
    for c in 0..num_chunks {
        // Work budget proportional to remaining chunks.
        let target = total_work * (c as u64 + 1) / num_chunks as u64;
        while cursor < n && work_done < target {
            work_done += csr.degree(cursor) as u64 + 1;
            cursor += 1;
        }
        let end = if c + 1 == num_chunks { n } else { cursor };
        chunks.push(Chunk { first: start, last: end as u32 });
        start = end as u32;
        cursor = end;
    }
    chunks
}

/// Total bipartite-edge work in a chunk (used by load-balance tests and the
/// simulator's per-core accounting).
pub fn chunk_work(g: &Hypergraph, side: Side, chunk: &Chunk) -> usize {
    let csr = g.csr_for(side);
    chunk.ids().map(|id| csr.degree(id as usize)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig1_example;

    #[test]
    fn partition_covers_all_ids_without_overlap() {
        let g = fig1_example();
        for side in [Side::Vertex, Side::Hyperedge] {
            for k in 1..=8 {
                let chunks = partition(&g, side, k);
                assert_eq!(chunks.len(), k);
                assert_eq!(chunks[0].first, 0);
                assert_eq!(chunks.last().unwrap().last as usize, g.num_on(side));
                for w in chunks.windows(2) {
                    assert_eq!(w[0].last, w[1].first, "chunks must be contiguous");
                }
            }
        }
    }

    #[test]
    fn single_chunk_is_everything() {
        let g = fig1_example();
        let chunks = partition(&g, Side::Hyperedge, 1);
        assert_eq!(chunks, vec![Chunk { first: 0, last: 4 }]);
    }

    #[test]
    fn more_chunks_than_elements_leaves_empties() {
        let g = fig1_example();
        let chunks = partition(&g, Side::Hyperedge, 10);
        let total: usize = chunks.iter().map(Chunk::len).sum();
        assert_eq!(total, 4);
        assert!(chunks.iter().any(Chunk::is_empty));
    }

    #[test]
    fn balance_is_reasonable_on_uniform_degrees() {
        use crate::{HypergraphBuilder, VertexId};
        let mut b = HypergraphBuilder::new(100);
        for i in 0..50u32 {
            b.add_hyperedge([i, i + 50].map(VertexId::new)).unwrap();
        }
        let g = b.build();
        let chunks = partition(&g, Side::Hyperedge, 5);
        for ch in &chunks {
            let w = chunk_work(&g, Side::Hyperedge, ch);
            assert_eq!(w, 20, "uniform degrees should split exactly, got {w}");
        }
    }

    #[test]
    fn chunk_helpers() {
        let c = Chunk { first: 2, last: 5 };
        assert_eq!(c.len(), 3);
        assert!(c.contains(2) && c.contains(4) && !c.contains(5));
        assert_eq!(c.ids().collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "zero chunks")]
    fn zero_chunks_panics() {
        let g = fig1_example();
        let _ = partition(&g, Side::Vertex, 0);
    }
}
