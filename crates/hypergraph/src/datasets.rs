//! Named synthetic stand-ins for the paper's evaluation datasets.
//!
//! Table II of the paper lists five real-world hypergraphs from SNAP/KONECT.
//! Those inputs are not redistributable here, so each one is replaced by a
//! deterministic synthetic hypergraph, scaled roughly 300–500× down, that
//! preserves the two properties the paper's results hinge on:
//!
//! - the `|H| / |V|` ratio and mean hyperedge degree — which fix the mean
//!   *vertex* degree, the direct driver of the Fig. 8 overlap profile. The
//!   heavy-overlap group (OG, LJ, OK: 71–82 % of vertices shared by 7+
//!   hyperedges) and the light-overlap group (FS, WEB: 8–13 %) fall out of
//!   these ratios;
//! - a power-law hyperedge-degree distribution with community structure, so
//!   chains discover genuine reuse rather than artifacts of id order.
//!
//! The simulator configuration scales cache capacities by a similar factor
//! (see `archsim::config`), keeping the working-set:cache ratio in the
//! paper's regime. The substitution is documented in `DESIGN.md` §3.

use crate::generate::{two_uniform_graph, GeneratorConfig};
use crate::Hypergraph;
use std::fmt;

/// The five hypergraph datasets of Table II (synthetic stand-ins).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Dataset {
    /// Friendster (FS): many vertices, few hyperedges — light overlap.
    Friendster,
    /// com-Orkut (OK): few vertices, many hyperedges — heavy overlap.
    ComOrkut,
    /// LiveJournal (LJ): heavy overlap.
    LiveJournal,
    /// Web-trackers (WEB): the paper's headline dataset — light overlap,
    /// largest vertex count.
    WebTrackers,
    /// Orkut-group (OG): densest bipartite structure — heavy overlap.
    OrkutGroup,
}

impl Dataset {
    /// All five datasets, in the paper's presentation order.
    pub const ALL: [Dataset; 5] = [
        Dataset::Friendster,
        Dataset::ComOrkut,
        Dataset::LiveJournal,
        Dataset::WebTrackers,
        Dataset::OrkutGroup,
    ];

    /// The paper's two-letter abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            Dataset::Friendster => "FS",
            Dataset::ComOrkut => "OK",
            Dataset::LiveJournal => "LJ",
            Dataset::WebTrackers => "WEB",
            Dataset::OrkutGroup => "OG",
        }
    }

    /// Full dataset name as in Table II.
    pub fn full_name(self) -> &'static str {
        match self {
            Dataset::Friendster => "Friendster",
            Dataset::ComOrkut => "com-Orkut",
            Dataset::LiveJournal => "LiveJournal",
            Dataset::WebTrackers => "Web-trackers",
            Dataset::OrkutGroup => "Orkut-group",
        }
    }

    /// Returns `true` for the heavy-overlap group (OG, LJ, OK), where Fig. 8
    /// reports 71–82 % of vertices shared by seven hyperedges.
    pub fn heavy_overlap(self) -> bool {
        matches!(self, Dataset::ComOrkut | Dataset::LiveJournal | Dataset::OrkutGroup)
    }

    /// The generator configuration of the stand-in.
    pub fn config(self) -> GeneratorConfig {
        match self {
            // |V| >> |H|: shallow vertex depth (small families) — light
            // overlap; large vertex working set.
            Dataset::Friendster => GeneratorConfig::new(40_000, 8_000)
                .with_seed(0xF5)
                .with_family_range(4, 96)
                .with_family_exponent(2.0)
                .with_template_range(8, 40)
                .with_member_prob(0.8)
                .with_noise(2),
            // |H| >> |V|: deep vertex sharing (large families) — heavy
            // overlap.
            Dataset::ComOrkut => GeneratorConfig::new(5_800, 38_000)
                .with_seed(0x0C)
                .with_family_range(16, 320)
                .with_family_exponent(1.6)
                .with_template_range(4, 20)
                .with_member_prob(0.8)
                .with_noise(1),
            Dataset::LiveJournal => GeneratorConfig::new(8_000, 18_700)
                .with_seed(0x17)
                .with_family_range(12, 256)
                .with_family_exponent(1.7)
                .with_template_range(6, 40)
                .with_member_prob(0.8)
                .with_noise(2),
            // Largest vertex count, shallow depth — light overlap, big
            // working set (the paper's headline dataset).
            Dataset::WebTrackers => GeneratorConfig::new(69_000, 32_000)
                .with_seed(0x3B)
                .with_family_range(4, 192)
                .with_family_exponent(1.7)
                .with_template_range(6, 32)
                .with_member_prob(0.88)
                .with_noise(2),
            // Densest bipartite structure, largest families — heavy overlap.
            Dataset::OrkutGroup => GeneratorConfig::new(5_000, 15_700)
                .with_seed(0x09)
                .with_family_range(20, 512)
                .with_family_exponent(1.5)
                .with_template_range(12, 72)
                .with_member_prob(0.85)
                .with_noise(2),
        }
    }

    /// Generates the stand-in hypergraph (deterministic).
    pub fn load(self) -> Hypergraph {
        self.config().generate()
    }
}

impl fmt::Display for Dataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// The two ordinary graphs of the generality study (paper §VI-I, Fig. 25),
/// represented as 2-uniform hypergraphs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GraphDataset {
    /// com-Amazon (AZ) stand-in.
    ComAmazon,
    /// soc-Pokec (PK) stand-in.
    SocPokec,
}

impl GraphDataset {
    /// Both ordinary-graph datasets.
    pub const ALL: [GraphDataset; 2] = [GraphDataset::ComAmazon, GraphDataset::SocPokec];

    /// The paper's abbreviation.
    pub fn abbrev(self) -> &'static str {
        match self {
            GraphDataset::ComAmazon => "AZ",
            GraphDataset::SocPokec => "PK",
        }
    }

    /// Generates the 2-uniform stand-in (deterministic).
    pub fn load(self) -> Hypergraph {
        match self {
            GraphDataset::ComAmazon => two_uniform_graph(6_000, 18_000, 0xA2),
            GraphDataset::SocPokec => two_uniform_graph(8_000, 60_000, 0x9C),
        }
    }
}

impl fmt::Display for GraphDataset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::sharable_ratio;
    use crate::Side;

    #[test]
    fn all_datasets_load_with_declared_sizes() {
        for ds in Dataset::ALL {
            let g = ds.load();
            let cfg = ds.config();
            assert_eq!(g.num_vertices(), cfg.num_vertices, "{ds}");
            assert_eq!(g.num_hyperedges(), cfg.num_hyperedges, "{ds}");
            assert!(g.num_bipartite_edges() > g.num_hyperedges(), "{ds}");
        }
    }

    #[test]
    fn loads_are_deterministic() {
        let a = Dataset::WebTrackers.load();
        let b = Dataset::WebTrackers.load();
        assert_eq!(a, b);
    }

    #[test]
    fn heavy_overlap_group_is_heavier_than_light_group() {
        // Fig. 8 / §VI-C: in OG, LJ, OK most vertices are shared by >= 7
        // hyperedges; in FS and WEB only a small fraction are.
        for ds in Dataset::ALL {
            let g = ds.load();
            let r7 = sharable_ratio(&g, Side::Vertex, 7);
            if ds.heavy_overlap() {
                assert!(r7 > 0.5, "{ds}: expected heavy overlap, got {r7:.3}");
            } else {
                assert!(r7 < 0.35, "{ds}: expected light overlap, got {r7:.3}");
            }
        }
    }

    #[test]
    fn vertices_shared_by_two_hyperedges() {
        // Fig. 8(a) reports 55–96 % of vertices shared by at least two
        // hyperedges. The light stand-ins sit below the paper's low end
        // (documented in EXPERIMENTS.md): at ~400x downscale the
        // coverage x depth budget (BE/|V|) cannot support both the paper's
        // k = 2 coverage and chain-exploitable family depth, and depth is
        // the property the evaluation depends on.
        for ds in Dataset::ALL {
            let g = ds.load();
            let r2 = sharable_ratio(&g, Side::Vertex, 2);
            let floor = if ds.heavy_overlap() { 0.9 } else { 0.2 };
            assert!(r2 > floor, "{ds}: sharable ratio at k=2 is only {r2:.3}");
        }
    }

    #[test]
    fn graph_datasets_are_two_uniform() {
        for gd in GraphDataset::ALL {
            let g = gd.load();
            for h in 0..g.num_hyperedges() {
                assert!(g.hyperedge_degree(crate::HyperedgeId::from_index(h)) <= 2, "{gd}");
            }
        }
    }

    #[test]
    fn display_matches_abbrev() {
        assert_eq!(Dataset::WebTrackers.to_string(), "WEB");
        assert_eq!(GraphDataset::SocPokec.to_string(), "PK");
    }
}
