//! Active element sets (frontiers) for iterative hypergraph processing.

use serde::{Deserialize, Serialize};

/// A frontier: the set of active vertices or hyperedges of one computation
/// phase (`FrontierV` / `FrontierE` in Algorithm 1 of the paper).
///
/// Represented as a dense bitmap plus a population count, matching the bitmap
/// the ChGraph hardware walks in its *root setting* stage (§V-B). Iteration
/// order is ascending id, which is exactly the index-ordered schedule of
/// Hygra-style systems.
///
/// ```
/// use hypergraph::Frontier;
/// let mut f = Frontier::empty(8);
/// f.insert(3);
/// f.insert(5);
/// assert_eq!(f.len(), 2);
/// assert!(f.contains(3));
/// assert_eq!(f.iter().collect::<Vec<_>>(), vec![3, 5]);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Frontier {
    words: Vec<u64>,
    universe: usize,
    len: usize,
}

impl Frontier {
    /// Creates an empty frontier over ids `0..universe`.
    pub fn empty(universe: usize) -> Self {
        Frontier { words: vec![0; universe.div_ceil(64)], universe, len: 0 }
    }

    /// Creates a frontier containing every id in `0..universe` (e.g. the
    /// all-active PageRank frontier).
    pub fn full(universe: usize) -> Self {
        let mut f = Frontier::empty(universe);
        for id in 0..universe {
            f.insert(id as u32);
        }
        f
    }

    /// Creates a frontier from an iterator of ids.
    ///
    /// # Panics
    ///
    /// Panics if any id is `>= universe`.
    pub fn from_iter<I: IntoIterator<Item = u32>>(universe: usize, ids: I) -> Self {
        let mut f = Frontier::empty(universe);
        for id in ids {
            f.insert(id);
        }
        f
    }

    /// Size of the id universe.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of active ids.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no ids are active.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `id` is active.
    ///
    /// # Panics
    ///
    /// Panics if `id >= universe`.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        assert!((id as usize) < self.universe, "id {id} outside universe {}", self.universe);
        self.words[id as usize / 64] >> (id % 64) & 1 == 1
    }

    /// Inserts `id`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `id >= universe`.
    #[inline]
    pub fn insert(&mut self, id: u32) -> bool {
        assert!((id as usize) < self.universe, "id {id} outside universe {}", self.universe);
        let word = &mut self.words[id as usize / 64];
        let mask = 1u64 << (id % 64);
        if *word & mask == 0 {
            *word |= mask;
            self.len += 1;
            true
        } else {
            false
        }
    }

    /// Removes `id`; returns `true` if it was present.
    ///
    /// # Panics
    ///
    /// Panics if `id >= universe`.
    #[inline]
    pub fn remove(&mut self, id: u32) -> bool {
        assert!((id as usize) < self.universe, "id {id} outside universe {}", self.universe);
        let word = &mut self.words[id as usize / 64];
        let mask = 1u64 << (id % 64);
        if *word & mask != 0 {
            *word &= !mask;
            self.len -= 1;
            true
        } else {
            false
        }
    }

    /// Removes all ids, keeping the universe.
    pub fn clear(&mut self) {
        self.words.fill(0);
        self.len = 0;
    }

    /// Iterates active ids in ascending order (the index-ordered schedule).
    pub fn iter(&self) -> Iter<'_> {
        Iter { frontier: self, word_idx: 0, bits: self.words.first().copied().unwrap_or(0) }
    }

    /// Collects active ids in ascending order.
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().collect()
    }

    /// Number of 64-bit words backing the bitmap (the quantity of bitmap
    /// memory traffic the simulator charges).
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Number of active ids in `range` (word-wise popcount; `O(range/64)`).
    /// Chain generation uses this to size its chain queue up front.
    ///
    /// # Panics
    ///
    /// Panics if `range.end as usize > universe`.
    pub fn count_range(&self, range: std::ops::Range<u32>) -> usize {
        if range.start >= range.end {
            return 0;
        }
        assert!(
            range.end as usize <= self.universe,
            "range end {} outside universe {}",
            range.end,
            self.universe
        );
        let (start, end) = (range.start as usize, range.end as usize);
        let (first_word, last_word) = (start / 64, (end - 1) / 64);
        let head_mask = !0u64 << (start % 64);
        let tail_mask = !0u64 >> (63 - (end - 1) % 64);
        if first_word == last_word {
            return (self.words[first_word] & head_mask & tail_mask).count_ones() as usize;
        }
        let mut count = (self.words[first_word] & head_mask).count_ones() as usize;
        for &w in &self.words[first_word + 1..last_word] {
            count += w.count_ones() as usize;
        }
        count + (self.words[last_word] & tail_mask).count_ones() as usize
    }
}

impl Extend<u32> for Frontier {
    fn extend<I: IntoIterator<Item = u32>>(&mut self, ids: I) {
        for id in ids {
            self.insert(id);
        }
    }
}

/// Ascending-order iterator over a [`Frontier`]'s active ids.
#[derive(Clone, Debug)]
pub struct Iter<'a> {
    frontier: &'a Frontier,
    word_idx: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.bits != 0 {
                let bit = self.bits.trailing_zeros();
                self.bits &= self.bits - 1;
                return Some((self.word_idx * 64) as u32 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.frontier.words.len() {
                return None;
            }
            self.bits = self.frontier.words[self.word_idx];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = Frontier::empty(100);
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        let f = Frontier::full(100);
        assert_eq!(f.len(), 100);
        assert!(f.contains(0));
        assert!(f.contains(99));
    }

    #[test]
    fn insert_remove_idempotent() {
        let mut f = Frontier::empty(70);
        assert!(f.insert(65));
        assert!(!f.insert(65));
        assert_eq!(f.len(), 1);
        assert!(f.remove(65));
        assert!(!f.remove(65));
        assert!(f.is_empty());
    }

    #[test]
    fn iter_is_ascending_across_word_boundaries() {
        let ids = [0u32, 1, 63, 64, 65, 127, 128, 199];
        let f = Frontier::from_iter(200, ids.iter().copied());
        assert_eq!(f.to_vec(), ids);
    }

    #[test]
    fn clear_resets() {
        let mut f = Frontier::full(10);
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.universe(), 10);
        assert!(!f.contains(5));
    }

    #[test]
    fn extend_inserts_all() {
        let mut f = Frontier::empty(10);
        f.extend([1, 3, 3, 5]);
        assert_eq!(f.len(), 3);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn contains_panics_out_of_range() {
        let f = Frontier::empty(4);
        let _ = f.contains(4);
    }

    #[test]
    fn count_range_matches_filtered_iteration() {
        let ids = [0u32, 1, 63, 64, 65, 100, 127, 128, 199];
        let f = Frontier::from_iter(200, ids.iter().copied());
        for range in [0u32..200, 0..64, 64..128, 1..199, 63..65, 100..101, 150..150, 0..1] {
            let expect = f.iter().filter(|id| range.contains(id)).count();
            assert_eq!(f.count_range(range.clone()), expect, "{range:?}");
        }
        assert_eq!(Frontier::full(200).count_range(0..200), 200);
        assert_eq!(Frontier::empty(200).count_range(0..200), 0);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn count_range_panics_out_of_range() {
        let f = Frontier::empty(10);
        let _ = f.count_range(0..11);
    }

    #[test]
    fn zero_universe_is_fine() {
        let f = Frontier::empty(0);
        assert!(f.is_empty());
        assert_eq!(f.iter().count(), 0);
        assert_eq!(f.num_words(), 0);
    }
}
