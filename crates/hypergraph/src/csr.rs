//! Compressed-sparse-row adjacency storage.
//!
//! Both sides of the bipartite hypergraph representation (Fig. 4(c) of the
//! paper) and the overlap-aware abstraction graph are stored as CSR: an
//! `offsets` array of length `n + 1` and a flat `targets` array, where the
//! neighbors of element `i` occupy `targets[offsets[i]..offsets[i + 1]]`.

use crate::validate::{self, ValidationError};
use serde::{Deserialize, Serialize};

/// A compressed-sparse-row adjacency structure over dense `u32` ids.
///
/// ```
/// use hypergraph::Csr;
/// let csr = Csr::from_adjacency(vec![vec![1, 2], vec![], vec![0]]);
/// assert_eq!(csr.len(), 3);
/// assert_eq!(csr.neighbors(0), &[1, 2]);
/// assert_eq!(csr.degree(1), 0);
/// assert_eq!(csr.num_edges(), 3);
/// ```
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Csr {
    /// Creates an empty CSR with zero rows.
    pub fn new() -> Self {
        Csr { offsets: vec![0], targets: Vec::new() }
    }

    /// Builds a CSR from per-row adjacency lists, preserving list order.
    pub fn from_adjacency(rows: Vec<Vec<u32>>) -> Self {
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        offsets.push(0u32);
        let total: usize = rows.iter().map(Vec::len).sum();
        let mut targets = Vec::with_capacity(total);
        for row in &rows {
            targets.extend_from_slice(row);
            // invariant: ids are u32, so a structurally valid CSR cannot
            // exceed u32::MAX targets; overflow means the caller built an
            // impossible graph and nothing downstream could represent it.
            offsets.push(u32::try_from(targets.len()).expect("CSR exceeds u32 edge capacity"));
        }
        Csr { offsets, targets }
    }

    /// Builds a CSR directly from raw `offsets`/`targets` arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays do not form a valid CSR (`offsets` empty,
    /// non-monotone, or final offset not equal to `targets.len()`). Use
    /// [`Csr::try_from_raw`] for untrusted data.
    pub fn from_raw(offsets: Vec<u32>, targets: Vec<u32>) -> Self {
        Csr::try_from_raw(offsets, targets).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Csr::from_raw`]: builds a CSR from raw arrays, returning a
    /// typed [`ValidationError`] instead of panicking when they do not form
    /// a valid CSR. This is the constructor for *untrusted* data (file
    /// readers, deserialized caches).
    pub fn try_from_raw(offsets: Vec<u32>, targets: Vec<u32>) -> Result<Self, ValidationError> {
        validate::validate_offsets("CSR", &offsets, targets.len())?;
        Ok(Csr { offsets, targets })
    }

    /// Checks this CSR's structural invariants against `num_targets` valid
    /// target ids.
    ///
    /// Construction through [`Csr::from_adjacency`]/[`Csr::try_from_raw`]
    /// cannot violate the offsets invariants, but a deserialized CSR (the
    /// serde derive performs no checking) or one holding ids for an
    /// opposite side it was never checked against can. `what` names the
    /// structure in the returned error.
    pub fn validate(&self, what: &'static str, num_targets: usize) -> Result<(), ValidationError> {
        validate::validate_offsets(what, &self.offsets, self.targets.len())?;
        validate::validate_targets(what, &self.targets, num_targets)
    }

    /// Number of rows (source elements).
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Returns `true` if the CSR has zero rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of stored edges (entries in the target array).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Neighbors of row `i`, in storage order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn neighbors(&self, i: usize) -> &[u32] {
        let lo = self.offsets[i] as usize;
        let hi = self.offsets[i + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Out-degree of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[inline]
    pub fn degree(&self, i: usize) -> usize {
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// The half-open target range of row `i` within [`Self::targets`].
    ///
    /// This is the `(first_offset, last_offset)` pair the simulated hardware
    /// reads from the offset array (paper §V-B, *offsets fetching* stage).
    #[inline]
    pub fn target_range(&self, i: usize) -> (usize, usize) {
        (self.offsets[i] as usize, self.offsets[i + 1] as usize)
    }

    /// The raw offsets array (length `len() + 1`).
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The raw flat targets array.
    #[inline]
    pub fn targets(&self) -> &[u32] {
        &self.targets
    }

    /// Iterates `(row, neighbors)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[u32])> + '_ {
        (0..self.len()).map(move |i| (i, self.neighbors(i)))
    }

    /// Returns the transpose: a CSR where `j` lists every `i` with an edge
    /// `i -> j`. `num_targets` is the number of rows of the transpose.
    ///
    /// Within each transposed row, sources appear in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if any target id is `>= num_targets`. Use
    /// [`Csr::try_transpose`] for untrusted data.
    pub fn transpose(&self, num_targets: usize) -> Csr {
        self.try_transpose(num_targets).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Csr::transpose`]: returns a typed [`ValidationError`]
    /// instead of panicking when a target id is `>= num_targets`.
    pub fn try_transpose(&self, num_targets: usize) -> Result<Csr, ValidationError> {
        let mut counts = vec![0u32; num_targets + 1];
        validate::validate_targets("CSR", &self.targets, num_targets)?;
        for &t in &self.targets {
            counts[t as usize + 1] += 1;
        }
        for i in 1..counts.len() {
            counts[i] += counts[i - 1];
        }
        let offsets = counts.clone();
        let mut cursor: Vec<u32> = offsets[..num_targets].to_vec();
        let mut targets = vec![0u32; self.targets.len()];
        for (src, row) in self.iter() {
            for &t in row {
                let slot = cursor[t as usize];
                // invariant: `src` indexes this CSR's rows, whose count is
                // bounded by u32 offsets.
                targets[slot as usize] = u32::try_from(src).expect("row id fits u32");
                cursor[t as usize] += 1;
            }
        }
        Ok(Csr { offsets, targets })
    }

    /// Approximate resident size in bytes (offsets + targets), used by the
    /// preprocessing/storage-overhead experiment (Fig. 21(b)).
    pub fn size_bytes(&self) -> usize {
        (self.offsets.len() + self.targets.len()) * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        Csr::from_adjacency(vec![vec![0, 4, 6], vec![1, 2, 3, 5], vec![0, 2, 4], vec![1, 3]])
    }

    #[test]
    fn from_adjacency_preserves_rows() {
        let csr = sample();
        assert_eq!(csr.len(), 4);
        assert_eq!(csr.num_edges(), 12);
        assert_eq!(csr.neighbors(0), &[0, 4, 6]);
        assert_eq!(csr.neighbors(3), &[1, 3]);
        assert_eq!(csr.degree(1), 4);
    }

    #[test]
    fn empty_csr() {
        let csr = Csr::new();
        assert!(csr.is_empty());
        assert_eq!(csr.num_edges(), 0);
        assert_eq!(Csr::default(), Csr { offsets: vec![], targets: vec![] });
    }

    #[test]
    fn target_range_matches_neighbors() {
        let csr = sample();
        let (lo, hi) = csr.target_range(2);
        assert_eq!(&csr.targets()[lo..hi], csr.neighbors(2));
    }

    #[test]
    fn transpose_inverts_edges() {
        let csr = sample();
        let t = csr.transpose(7);
        assert_eq!(t.len(), 7);
        assert_eq!(t.num_edges(), csr.num_edges());
        // v0 is in h0 and h2 (paper Fig. 4(c) vertex CSR).
        assert_eq!(t.neighbors(0), &[0, 2]);
        assert_eq!(t.neighbors(6), &[0]);
        assert_eq!(t.neighbors(5), &[1]);
    }

    #[test]
    fn double_transpose_is_identity_for_sorted_rows() {
        let csr = sample();
        let back = csr.transpose(7).transpose(4);
        assert_eq!(back, csr);
    }

    #[test]
    fn from_raw_validates() {
        let csr = Csr::from_raw(vec![0, 2, 3], vec![5, 6, 7]);
        assert_eq!(csr.neighbors(0), &[5, 6]);
        assert_eq!(csr.neighbors(1), &[7]);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn from_raw_rejects_non_monotone() {
        let _ = Csr::from_raw(vec![0, 3, 2], vec![1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "final CSR offset")]
    fn from_raw_rejects_bad_total() {
        let _ = Csr::from_raw(vec![0, 2], vec![1, 2, 3]);
    }

    #[test]
    fn try_from_raw_returns_typed_errors() {
        assert!(Csr::try_from_raw(vec![0, 2], vec![5, 6]).is_ok());
        assert!(matches!(
            Csr::try_from_raw(vec![], vec![]),
            Err(ValidationError::EmptyOffsets { .. })
        ));
        assert!(matches!(
            Csr::try_from_raw(vec![0, 3, 2], vec![1, 2, 3]),
            Err(ValidationError::NonMonotoneOffsets { index: 1, before: 3, after: 2, .. })
        ));
        assert!(matches!(
            Csr::try_from_raw(vec![0, 2], vec![1, 2, 3]),
            Err(ValidationError::TargetCountMismatch { final_offset: 2, num_targets: 3, .. })
        ));
    }

    #[test]
    fn try_transpose_rejects_out_of_range() {
        let csr = sample();
        assert!(csr.try_transpose(7).is_ok());
        assert!(matches!(
            csr.try_transpose(5),
            Err(ValidationError::TargetOutOfRange { target: 6, limit: 5, .. })
        ));
    }

    #[test]
    fn validate_checks_range() {
        let csr = sample();
        assert!(csr.validate("CSR", 7).is_ok());
        assert!(matches!(
            csr.validate("CSR", 6),
            Err(ValidationError::TargetOutOfRange { target: 6, limit: 6, .. })
        ));
    }

    #[test]
    fn size_bytes_counts_both_arrays() {
        let csr = sample();
        assert_eq!(csr.size_bytes(), (5 + 12) * 4);
    }
}
