//! Streaming FNV-1a checksums for the binary on-disk formats.
//!
//! The v2 binary formats (`hypergraph::io`, `oag::io`, and the bench
//! crate's cache entries) append a 64-bit FNV-1a digest of everything that
//! precedes it, so a truncated, torn or bit-flipped file is detected at
//! read time instead of being deserialized into silently wrong data. FNV-1a
//! is not cryptographic — the threat model is storage corruption, not an
//! adversary — but it is streaming, dependency-free and byte-order stable.
//!
//! [`HashingWriter`] and [`HashingReader`] wrap any `Write`/`Read` and
//! digest every byte that passes through, so the existing serializers
//! double as checksummers without buffering whole artifacts in memory.

use std::io::{Read, Write};

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64-bit hasher.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Fnv64 {
    /// A hasher in the initial (offset-basis) state.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Digests `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// The current digest value.
    pub fn digest(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// One-shot convenience: the FNV-1a digest of `bytes`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.digest()
}

/// A `Write` adapter that digests every byte it forwards to the inner
/// writer. Used by the v2 binary writers: serialize through the adapter,
/// then append [`HashingWriter::digest`] to the inner writer directly (the
/// trailing checksum bytes must not hash themselves).
pub struct HashingWriter<W> {
    inner: W,
    hash: Fnv64,
}

impl<W: Write> HashingWriter<W> {
    /// Wraps `inner`.
    pub fn new(inner: W) -> Self {
        HashingWriter { inner, hash: Fnv64::new() }
    }

    /// Digest of everything written so far.
    pub fn digest(&self) -> u64 {
        self.hash.digest()
    }

    /// Returns the inner writer (for appending the un-hashed trailer).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.hash.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

/// A `Read` adapter that digests every byte it yields. Used by the v2
/// binary readers: deserialize through the adapter, then read the trailing
/// stored checksum from [`HashingReader::get_mut`] (so the trailer itself
/// is not hashed) and compare it against [`HashingReader::digest`].
pub struct HashingReader<R> {
    inner: R,
    hash: Fnv64,
}

impl<R: Read> HashingReader<R> {
    /// Wraps `inner`.
    pub fn new(inner: R) -> Self {
        HashingReader { inner, hash: Fnv64::new() }
    }

    /// Digest of everything read so far.
    pub fn digest(&self) -> u64 {
        self.hash.digest()
    }

    /// The inner reader, bypassing the hash (for the checksum trailer).
    pub fn get_mut(&mut self) -> &mut R {
        &mut self.inner
    }
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.hash.update(&buf[..n]);
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let mut h = Fnv64::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.digest(), fnv1a(b"foobar"));
    }

    #[test]
    fn writer_and_reader_agree() {
        let mut w = HashingWriter::new(Vec::new());
        w.write_all(b"hello checksum world").unwrap();
        let wd = w.digest();
        let buf = w.into_inner();
        let mut r = HashingReader::new(&buf[..]);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, buf);
        assert_eq!(r.digest(), wd);
        assert_eq!(wd, fnv1a(b"hello checksum world"));
    }
}
