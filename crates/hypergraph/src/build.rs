//! Incremental construction of [`Hypergraph`]s.

use crate::{Csr, Hypergraph, VertexId};
use std::error::Error;
use std::fmt;

/// Error returned by [`HypergraphBuilder::add_hyperedge`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BuildHypergraphError {
    /// A hyperedge referenced a vertex id `>= num_vertices`.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// The declared number of vertices.
        num_vertices: usize,
    },
    /// A hyperedge contained no vertices.
    EmptyHyperedge,
}

impl fmt::Display for BuildHypergraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildHypergraphError::VertexOutOfRange { vertex, num_vertices } => {
                write!(f, "vertex {vertex} is out of range for {num_vertices} vertices")
            }
            BuildHypergraphError::EmptyHyperedge => f.write_str("hyperedge has no vertices"),
        }
    }
}

impl Error for BuildHypergraphError {}

/// Builder for [`Hypergraph`] values.
///
/// Hyperedges are appended one at a time and receive dense ids in insertion
/// order. Duplicate vertices within a single hyperedge are removed (a vertex
/// is either incident to a hyperedge or not); the first occurrence's position
/// is kept so incidence-list order stays deterministic.
///
/// ```
/// use hypergraph::{HypergraphBuilder, VertexId};
/// let mut b = HypergraphBuilder::new(3);
/// b.add_hyperedge([0, 2, 2].map(VertexId::new))?; // duplicate v2 dropped
/// let g = b.build();
/// assert_eq!(g.incident_vertices(hypergraph::HyperedgeId::new(0)).len(), 2);
/// # Ok::<(), hypergraph::BuildHypergraphError>(())
/// ```
#[derive(Clone, Debug)]
pub struct HypergraphBuilder {
    num_vertices: usize,
    hyperedges: Vec<Vec<u32>>,
    seen: Vec<u32>,
    stamp: u32,
}

impl HypergraphBuilder {
    /// Creates a builder for a hypergraph over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        HypergraphBuilder {
            num_vertices,
            hyperedges: Vec::new(),
            seen: vec![0; num_vertices],
            stamp: 0,
        }
    }

    /// Number of vertices this builder was created with.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of hyperedges added so far.
    pub fn num_hyperedges(&self) -> usize {
        self.hyperedges.len()
    }

    /// Appends a hyperedge incident to `vertices`.
    ///
    /// Duplicate vertices are dropped; the hyperedge receives the next dense
    /// [`HyperedgeId`](crate::HyperedgeId).
    ///
    /// # Errors
    ///
    /// Returns [`BuildHypergraphError::VertexOutOfRange`] if any vertex id is
    /// out of range, and [`BuildHypergraphError::EmptyHyperedge`] if the
    /// deduplicated vertex list is empty.
    pub fn add_hyperedge<I>(&mut self, vertices: I) -> Result<(), BuildHypergraphError>
    where
        I: IntoIterator<Item = VertexId>,
    {
        self.stamp += 1;
        let mut row = Vec::new();
        for v in vertices {
            if v.index() >= self.num_vertices {
                return Err(BuildHypergraphError::VertexOutOfRange {
                    vertex: v,
                    num_vertices: self.num_vertices,
                });
            }
            if self.seen[v.index()] != self.stamp {
                self.seen[v.index()] = self.stamp;
                row.push(v.raw());
            }
        }
        if row.is_empty() {
            return Err(BuildHypergraphError::EmptyHyperedge);
        }
        self.hyperedges.push(row);
        Ok(())
    }

    /// Finishes construction, producing both CSR sides.
    pub fn build(self) -> Hypergraph {
        let hyperedge_csr = Csr::from_adjacency(self.hyperedges);
        let vertex_csr = hyperedge_csr.transpose(self.num_vertices);
        Hypergraph::from_csr(hyperedge_csr, vertex_csr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HyperedgeId;

    #[test]
    fn builds_fig1() {
        let g = crate::fig1_example();
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_hyperedges(), 4);
        assert_eq!(g.num_bipartite_edges(), 12);
        assert_eq!(
            g.incident_vertices(HyperedgeId::new(1)),
            &[1, 2, 3, 5].map(|v| VertexId::new(v).raw())
        );
    }

    #[test]
    fn rejects_out_of_range_vertex() {
        let mut b = HypergraphBuilder::new(2);
        let err = b.add_hyperedge([VertexId::new(5)]).unwrap_err();
        assert_eq!(
            err,
            BuildHypergraphError::VertexOutOfRange { vertex: VertexId::new(5), num_vertices: 2 }
        );
        assert!(err.to_string().contains("out of range"));
    }

    #[test]
    fn rejects_empty_hyperedge() {
        let mut b = HypergraphBuilder::new(2);
        assert_eq!(b.add_hyperedge([]), Err(BuildHypergraphError::EmptyHyperedge));
    }

    #[test]
    fn dedups_within_hyperedge_keeping_order() {
        let mut b = HypergraphBuilder::new(4);
        b.add_hyperedge([3, 1, 3, 1, 2].map(VertexId::new)).unwrap();
        let g = b.build();
        assert_eq!(g.incident_vertices(HyperedgeId::new(0)), &[3, 1, 2]);
    }

    #[test]
    fn dedup_stamp_does_not_leak_across_hyperedges() {
        let mut b = HypergraphBuilder::new(3);
        b.add_hyperedge([0, 1].map(VertexId::new)).unwrap();
        b.add_hyperedge([0, 1].map(VertexId::new)).unwrap();
        let g = b.build();
        // v0 must be incident to both hyperedges.
        assert_eq!(g.vertex_degree(VertexId::new(0)), 2);
    }

    #[test]
    fn failed_add_does_not_append() {
        let mut b = HypergraphBuilder::new(2);
        let _ = b.add_hyperedge([VertexId::new(9)]);
        assert_eq!(b.num_hyperedges(), 0);
        b.add_hyperedge([VertexId::new(0)]).unwrap();
        assert_eq!(b.num_hyperedges(), 1);
    }
}
