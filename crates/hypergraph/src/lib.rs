#![warn(missing_docs)]

//! Hypergraph data model for the ChGraph (HPCA'22) reproduction.
//!
//! A hypergraph `G = <V, H>` consists of a set of vertices `V` and a set of
//! hyperedges `H`, where each hyperedge connects an arbitrary number of
//! vertices. Following the paper (§II-A, Fig. 4), hypergraphs are stored in
//! the **bipartite representation**: two compressed-sparse-row (CSR)
//! structures, one mapping each hyperedge to its incident vertices and one
//! mapping each vertex to its incident hyperedges.
//!
//! This crate provides:
//!
//! - [`Hypergraph`] — the immutable bipartite-CSR hypergraph, built through
//!   [`HypergraphBuilder`];
//! - [`Frontier`] — active vertex/hyperedge sets (bitmap + count) used by the
//!   iterative processing procedure of Algorithm 1;
//! - [`chunk`] — contiguous, load-balanced chunk partitioning for multicore
//!   processing;
//! - [`generate`] — deterministic synthetic hypergraph generators with
//!   controllable overlap, standing in for the SNAP/KONECT datasets;
//! - [`datasets`] — the five named stand-ins for Table II (FS, OK, LJ, WEB,
//!   OG) plus the two ordinary graphs of the generality study (AZ, PK);
//! - [`stats`] — overlap ("sharable ratio") statistics reproducing Fig. 8.
//!
//! # Example
//!
//! ```
//! use hypergraph::{HypergraphBuilder, VertexId};
//!
//! // The running example of the paper's Fig. 1: 7 vertices, 4 hyperedges.
//! let mut b = HypergraphBuilder::new(7);
//! b.add_hyperedge([0, 4, 6].map(VertexId::new))?; // h0
//! b.add_hyperedge([1, 2, 3, 5].map(VertexId::new))?; // h1
//! b.add_hyperedge([0, 2, 4].map(VertexId::new))?; // h2
//! b.add_hyperedge([1, 3].map(VertexId::new))?; // h3
//! let g = b.build();
//! assert_eq!(g.num_vertices(), 7);
//! assert_eq!(g.num_hyperedges(), 4);
//! assert_eq!(g.hyperedge_degree(hypergraph::HyperedgeId::new(0)), 3);
//! assert_eq!(g.vertex_degree(VertexId::new(0)), 2); // v0 in h0 and h2
//! # Ok::<(), hypergraph::BuildHypergraphError>(())
//! ```

mod build;
pub mod checksum;
pub mod chunk;
mod csr;
pub mod datasets;
pub mod directed;
pub mod epoch;
mod frontier;
pub mod generate;
mod graph;
mod ids;
pub mod io;
pub mod partition;
pub mod stats;
pub mod validate;

pub use build::{BuildHypergraphError, HypergraphBuilder};
pub use csr::Csr;
pub use frontier::Frontier;
pub use graph::Hypergraph;
pub use ids::{HyperedgeId, Side, VertexId};
pub use validate::ValidationError;

/// Constructs the 7-vertex, 4-hyperedge example hypergraph of the paper's
/// Fig. 1. Used pervasively in tests and doc examples.
///
/// ```
/// let g = hypergraph::fig1_example();
/// assert_eq!(g.num_bipartite_edges(), 12);
/// ```
pub fn fig1_example() -> Hypergraph {
    let mut b = HypergraphBuilder::new(7);
    for he in [&[0u32, 4, 6][..], &[1, 2, 3, 5], &[0, 2, 4], &[1, 3]] {
        // invariant: the literal ids above are all < 7 and every set is
        // non-empty.
        b.add_hyperedge(he.iter().copied().map(VertexId::new)).expect("fig1 hyperedges are valid");
    }
    b.build()
}
