//! Overlap-aware hyperedge partitioning.
//!
//! The GLA model is "compatible and flexible with other partitioning
//! methods" (paper §IV-B, citing hypergraph partitioners): since per-core
//! chunks carry their own OAGs, any partitioner that co-locates overlapping
//! hyperedges increases the chains available to each core. This module
//! provides a single-pass **streaming partitioner** in the spirit of linear
//! deterministic greedy (LDG) / Social Hash: each hyperedge joins the part
//! where most of its vertices' previous hyperedges went, discounted by how
//! full the part already is — and a renumbering step that turns any
//! assignment into contiguous id ranges, the form the chunked runtimes
//! consume.

use crate::{Csr, Hypergraph, Side};

/// Assigns every hyperedge to one of `num_parts` parts with a single
/// streaming pass (LDG-style): part affinity is the number of the
/// hyperedge's vertices whose most recent hyperedge landed in that part,
/// scaled by the part's remaining capacity.
///
/// Returns one part id (`0..num_parts`) per hyperedge. Deterministic.
///
/// # Panics
///
/// Panics if `num_parts == 0`.
///
/// ```
/// use hypergraph::partition::streaming_partition;
/// let g = hypergraph::fig1_example();
/// let parts = streaming_partition(&g, 2);
/// assert_eq!(parts.len(), 4);
/// assert!(parts.iter().all(|&p| p < 2));
/// // h0 and h2 share two vertices: the partitioner keeps them together.
/// assert_eq!(parts[0], parts[2]);
/// ```
pub fn streaming_partition(g: &Hypergraph, num_parts: usize) -> Vec<u32> {
    assert!(num_parts > 0, "cannot partition into zero parts");
    let nh = g.num_hyperedges();
    let capacity = nh.div_ceil(num_parts) + 1;
    let mut assignment = vec![0u32; nh];
    let mut part_size = vec![0usize; num_parts];
    // For each vertex: the part of the last hyperedge that contained it.
    let mut last_part = vec![u32::MAX; g.num_vertices()];
    let mut votes = vec![0u32; num_parts];
    for h in 0..nh as u32 {
        votes.fill(0);
        for &v in g.incidence(Side::Hyperedge, h) {
            let p = last_part[v as usize];
            if p != u32::MAX {
                votes[p as usize] += 1;
            }
        }
        // LDG score: affinity * remaining-capacity fraction; ties go to the
        // emptiest part, then the lowest id (deterministic).
        let mut best = 0usize;
        let mut best_score = f64::MIN;
        for p in 0..num_parts {
            let slack = 1.0 - part_size[p] as f64 / capacity as f64;
            if slack <= 0.0 {
                continue;
            }
            let score = (votes[p] as f64 + 0.01) * slack;
            if score > best_score + 1e-12
                || (score > best_score - 1e-12 && part_size[p] < part_size[best])
            {
                best = p;
                best_score = score;
            }
        }
        assignment[h as usize] = best as u32;
        part_size[best] += 1;
        for &v in g.incidence(Side::Hyperedge, h) {
            last_part[v as usize] = best as u32;
        }
    }
    assignment
}

/// Renumbers hyperedges so each part of `assignment` becomes one contiguous
/// id range (parts in ascending order, original relative order preserved
/// within each part), returning the reordered hypergraph and the mapping
/// `new_id[old_id]`.
///
/// Only valid for undirected hypergraphs (the vertex side is rebuilt as the
/// transpose).
///
/// # Panics
///
/// Panics if `assignment.len() != g.num_hyperedges()`.
pub fn apply_hyperedge_partition(g: &Hypergraph, assignment: &[u32]) -> (Hypergraph, Vec<u32>) {
    assert_eq!(assignment.len(), g.num_hyperedges(), "one part per hyperedge");
    let num_parts = assignment.iter().copied().max().map_or(1, |m| m as usize + 1);
    // Stable counting sort of hyperedges by part.
    let mut part_start = vec![0usize; num_parts + 1];
    for &p in assignment {
        part_start[p as usize + 1] += 1;
    }
    for p in 1..=num_parts {
        part_start[p] += part_start[p - 1];
    }
    let mut cursor = part_start[..num_parts].to_vec();
    let mut new_id = vec![0u32; g.num_hyperedges()];
    let mut rows: Vec<Vec<u32>> = vec![Vec::new(); g.num_hyperedges()];
    for old in 0..g.num_hyperedges() {
        let p = assignment[old] as usize;
        let slot = cursor[p];
        cursor[p] += 1;
        new_id[old] = slot as u32;
        rows[slot] = g.incidence(Side::Hyperedge, old as u32).to_vec();
    }
    let hyperedge_csr = Csr::from_adjacency(rows);
    let vertex_csr = hyperedge_csr.transpose(g.num_vertices());
    (Hypergraph::from_csr(hyperedge_csr, vertex_csr), new_id)
}

/// Fraction of overlapped hyperedge pairs (sharing at least `w_min`
/// vertices) whose two endpoints land in the same part — the partitioner's
/// quality metric for chain locality. Quadratic per shared vertex; intended
/// for evaluation and tests.
pub fn co_location_rate(g: &Hypergraph, assignment: &[u32], w_min: usize) -> f64 {
    let mut together = 0u64;
    let mut total = 0u64;
    let mut weight = vec![0u32; g.num_hyperedges()];
    let mut touched = Vec::new();
    for a in 0..g.num_hyperedges() as u32 {
        for &v in g.incidence(Side::Hyperedge, a) {
            for &b in g.incidence(Side::Vertex, v) {
                if b > a {
                    if weight[b as usize] == 0 {
                        touched.push(b);
                    }
                    weight[b as usize] += 1;
                }
            }
        }
        for &b in &touched {
            if weight[b as usize] as usize >= w_min {
                total += 1;
                if assignment[a as usize] == assignment[b as usize] {
                    together += 1;
                }
            }
            weight[b as usize] = 0;
        }
        touched.clear();
    }
    if total == 0 {
        0.0
    } else {
        together as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::GeneratorConfig;

    /// A family-structured input with all id locality destroyed, so
    /// contiguous chunking is blind to families — the case partitioners
    /// exist for.
    fn shuffled_families() -> Hypergraph {
        let g = GeneratorConfig::new(6_000, 3_000)
            .with_seed(17)
            .with_family_range(6, 48)
            .with_member_prob(0.85)
            .generate();
        global_shuffle(&g, 99)
    }

    /// Destroys all id locality: rebuilds `g` with hyperedges in a seeded
    /// global random order (the adversarial input partitioners exist for).
    fn global_shuffle(g: &Hypergraph, seed: u64) -> Hypergraph {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut order: Vec<u32> = (0..g.num_hyperedges() as u32).collect();
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut b = crate::HypergraphBuilder::new(g.num_vertices());
        for &h in &order {
            b.add_hyperedge(
                g.incidence(Side::Hyperedge, h).iter().map(|&v| crate::VertexId::new(v)),
            )
            // invariant: rows copied verbatim from a valid hypergraph of
            // the same vertex count cannot be empty or out of range.
            .expect("copied hyperedges are valid");
        }
        b.build()
    }

    #[test]
    fn partition_is_balanced() {
        let g = shuffled_families();
        for k in [2usize, 4, 16] {
            let parts = streaming_partition(&g, k);
            let mut sizes = vec![0usize; k];
            for &p in &parts {
                sizes[p as usize] += 1;
            }
            let cap = g.num_hyperedges().div_ceil(k) + 1;
            for (p, &s) in sizes.iter().enumerate() {
                assert!(s <= cap, "part {p} holds {s} > capacity {cap}");
            }
        }
    }

    #[test]
    fn partitioner_co_locates_overlapping_hyperedges() {
        let g = shuffled_families();
        let k = 16;
        let smart = streaming_partition(&g, k);
        // Contiguous chunking of the shuffled input as the baseline.
        let chunk = g.num_hyperedges().div_ceil(k);
        let contiguous: Vec<u32> = (0..g.num_hyperedges()).map(|h| (h / chunk) as u32).collect();
        let smart_rate = co_location_rate(&g, &smart, 3);
        let contiguous_rate = co_location_rate(&g, &contiguous, 3);
        assert!(
            smart_rate > contiguous_rate + 0.2,
            "streaming partitioner must co-locate families: {smart_rate:.3} vs {contiguous_rate:.3}"
        );
    }

    #[test]
    fn renumbering_preserves_structure_and_contiguity() {
        let g = shuffled_families();
        let parts = streaming_partition(&g, 8);
        let (r, new_id) = apply_hyperedge_partition(&g, &parts);
        assert_eq!(r.num_hyperedges(), g.num_hyperedges());
        assert_eq!(r.num_bipartite_edges(), g.num_bipartite_edges());
        // Every hyperedge keeps its incidence list.
        for old in 0..g.num_hyperedges() as u32 {
            assert_eq!(
                r.incidence(Side::Hyperedge, new_id[old as usize]),
                g.incidence(Side::Hyperedge, old)
            );
        }
        // Parts are contiguous under the new numbering: part id is
        // non-decreasing along new ids.
        let mut part_of_new = vec![0u32; g.num_hyperedges()];
        for old in 0..g.num_hyperedges() {
            part_of_new[new_id[old] as usize] = parts[old];
        }
        assert!(part_of_new.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "zero parts")]
    fn zero_parts_rejected() {
        let g = crate::fig1_example();
        let _ = streaming_partition(&g, 0);
    }
}
