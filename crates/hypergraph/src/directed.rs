//! Directed hypergraphs.
//!
//! Per the paper (§II-A), the incident vertices of a *directed* hyperedge
//! divide into a **source set** and a **destination set**; ChGraph supports
//! both directed and undirected inputs. In the bipartite-CSR encoding this
//! is natural: the vertex-side CSR lists, for each vertex, the hyperedges it
//! *sources* (the `HF` edges of Algorithm 1), while the hyperedge-side CSR
//! lists each hyperedge's *destination* vertices (the `VF` edges). The two
//! sides are no longer transposes of one another, and every runtime —
//! index-ordered or chain-driven — then executes directed semantics with no
//! changes: `HF` flows only out of source vertices, `VF` only into
//! destination vertices, and PageRank's `getOutDegree` is exactly the
//! CSR degree.

use crate::{Csr, Hypergraph, VertexId};
use std::error::Error;
use std::fmt;

/// Error returned by [`DirectedHypergraphBuilder::add_hyperedge`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BuildDirectedError {
    /// A source or destination vertex id was out of range.
    VertexOutOfRange {
        /// The offending vertex.
        vertex: VertexId,
        /// The declared number of vertices.
        num_vertices: usize,
    },
    /// Both vertex sets were empty after deduplication.
    EmptyHyperedge,
}

impl fmt::Display for BuildDirectedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildDirectedError::VertexOutOfRange { vertex, num_vertices } => {
                write!(f, "vertex {vertex} is out of range for {num_vertices} vertices")
            }
            BuildDirectedError::EmptyHyperedge => {
                f.write_str("directed hyperedge has neither sources nor destinations")
            }
        }
    }
}

impl Error for BuildDirectedError {}

/// Builder for directed hypergraphs.
///
/// The finished value is an ordinary [`Hypergraph`] whose two CSR sides
/// encode the direction (see the module docs), so it runs on every runtime
/// unchanged.
///
/// ```
/// use hypergraph::directed::DirectedHypergraphBuilder;
/// use hypergraph::VertexId;
///
/// let mut b = DirectedHypergraphBuilder::new(4);
/// // h0: {v0} -> {v1, v2}
/// b.add_hyperedge([0].map(VertexId::new), [1, 2].map(VertexId::new))?;
/// let g = b.build();
/// // v0 sources h0; v1 does not.
/// assert_eq!(g.incident_hyperedges(VertexId::new(0)), &[0]);
/// assert_eq!(g.incident_hyperedges(VertexId::new(1)), &[] as &[u32]);
/// // h0's destinations are v1 and v2.
/// assert_eq!(g.incident_vertices(hypergraph::HyperedgeId::new(0)), &[1, 2]);
/// # Ok::<(), hypergraph::directed::BuildDirectedError>(())
/// ```
#[derive(Clone, Debug)]
pub struct DirectedHypergraphBuilder {
    num_vertices: usize,
    /// Per-hyperedge destination vertices (hyperedge CSR rows).
    destinations: Vec<Vec<u32>>,
    /// Per-vertex sourced hyperedges (vertex CSR rows).
    sourced: Vec<Vec<u32>>,
}

impl DirectedHypergraphBuilder {
    /// Creates a builder over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        DirectedHypergraphBuilder {
            num_vertices,
            destinations: Vec::new(),
            sourced: vec![Vec::new(); num_vertices],
        }
    }

    /// Number of hyperedges added so far.
    pub fn num_hyperedges(&self) -> usize {
        self.destinations.len()
    }

    /// Appends a directed hyperedge with the given source and destination
    /// vertex sets (either may repeat ids; duplicates are dropped; a vertex
    /// may appear in both sets).
    ///
    /// # Errors
    ///
    /// Returns [`BuildDirectedError::VertexOutOfRange`] for out-of-range
    /// ids, and [`BuildDirectedError::EmptyHyperedge`] when both sets end up
    /// empty.
    pub fn add_hyperedge<S, D>(
        &mut self,
        sources: S,
        destinations: D,
    ) -> Result<(), BuildDirectedError>
    where
        S: IntoIterator<Item = VertexId>,
        D: IntoIterator<Item = VertexId>,
    {
        let h = self.destinations.len() as u32;
        let mut dst_row = Vec::new();
        let mut touched_sources = Vec::new();
        for v in sources {
            if v.index() >= self.num_vertices {
                // Roll back the source registrations of this hyperedge.
                for &u in &touched_sources {
                    self.sourced[u as usize].pop();
                }
                return Err(BuildDirectedError::VertexOutOfRange {
                    vertex: v,
                    num_vertices: self.num_vertices,
                });
            }
            if self.sourced[v.index()].last() != Some(&h) {
                self.sourced[v.index()].push(h);
                touched_sources.push(v.raw());
            }
        }
        let mut result = Ok(());
        for v in destinations {
            if v.index() >= self.num_vertices {
                result = Err(BuildDirectedError::VertexOutOfRange {
                    vertex: v,
                    num_vertices: self.num_vertices,
                });
                break;
            }
            if !dst_row.contains(&v.raw()) {
                dst_row.push(v.raw());
            }
        }
        if result.is_ok() && dst_row.is_empty() && touched_sources.is_empty() {
            result = Err(BuildDirectedError::EmptyHyperedge);
        }
        if result.is_err() {
            for &u in &touched_sources {
                self.sourced[u as usize].pop();
            }
            return result;
        }
        self.destinations.push(dst_row);
        Ok(())
    }

    /// Finishes construction. The resulting [`Hypergraph`]'s hyperedge CSR
    /// holds destination sets and its vertex CSR holds sourced hyperedges.
    pub fn build(self) -> Hypergraph {
        let hyperedge_csr = Csr::from_adjacency(self.destinations);
        let vertex_csr = Csr::from_adjacency(self.sourced);
        Hypergraph::from_directed_csr(hyperedge_csr, vertex_csr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::HyperedgeId;

    /// A three-stage directed pipeline: v0 -> h0 -> v1 -> h1 -> v2.
    fn pipeline() -> Hypergraph {
        let mut b = DirectedHypergraphBuilder::new(3);
        b.add_hyperedge([VertexId::new(0)], [VertexId::new(1)]).unwrap();
        b.add_hyperedge([VertexId::new(1)], [VertexId::new(2)]).unwrap();
        b.build()
    }

    #[test]
    fn direction_is_encoded_in_the_csrs() {
        let g = pipeline();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_hyperedges(), 2);
        // v1 sources only h1, even though it is a destination of h0.
        assert_eq!(g.incident_hyperedges(VertexId::new(1)), &[1]);
        assert_eq!(g.incident_vertices(HyperedgeId::new(0)), &[1]);
        // v2 sources nothing.
        assert_eq!(g.incident_hyperedges(VertexId::new(2)), &[] as &[u32]);
    }

    #[test]
    fn vertex_in_both_sets_is_allowed() {
        let mut b = DirectedHypergraphBuilder::new(2);
        b.add_hyperedge([0, 1].map(VertexId::new), [0].map(VertexId::new)).unwrap();
        let g = b.build();
        assert_eq!(g.incident_hyperedges(VertexId::new(0)), &[0]);
        assert_eq!(g.incident_vertices(HyperedgeId::new(0)), &[0]);
    }

    #[test]
    fn out_of_range_rolls_back_cleanly() {
        let mut b = DirectedHypergraphBuilder::new(2);
        let err = b.add_hyperedge([0, 5].map(VertexId::new), [1].map(VertexId::new)).unwrap_err();
        assert!(matches!(err, BuildDirectedError::VertexOutOfRange { .. }));
        assert_eq!(b.num_hyperedges(), 0);
        // v0's speculative registration must have been rolled back.
        b.add_hyperedge([VertexId::new(0)], [VertexId::new(1)]).unwrap();
        let g = b.build();
        assert_eq!(g.incident_hyperedges(VertexId::new(0)), &[0]);
    }

    #[test]
    fn empty_both_sets_rejected() {
        let mut b = DirectedHypergraphBuilder::new(2);
        assert_eq!(b.add_hyperedge([], []), Err(BuildDirectedError::EmptyHyperedge));
    }

    #[test]
    fn source_only_and_destination_only_hyperedges() {
        let mut b = DirectedHypergraphBuilder::new(3);
        b.add_hyperedge([VertexId::new(0)], []).unwrap(); // pure sink
        b.add_hyperedge([], [VertexId::new(1)]).unwrap(); // pure source
        let g = b.build();
        assert_eq!(g.incident_vertices(HyperedgeId::new(0)), &[] as &[u32]);
        assert_eq!(g.incident_vertices(HyperedgeId::new(1)), &[1]);
    }
}
