//! Structural validators for untrusted topology data.
//!
//! Construction through [`HypergraphBuilder`](crate::HypergraphBuilder) or
//! the generators cannot produce malformed structures, but data arriving
//! from *outside* — a deserialized cache artifact, a hand-written input
//! file, a fault-injected test fixture — can violate every invariant the
//! rest of the system assumes. The validators here turn each violation into
//! a typed [`ValidationError`] instead of an out-of-bounds panic (best case)
//! or a silently wrong answer (worst case).
//!
//! Three layers of checks build on one another:
//!
//! - [`validate_offsets`] / [`validate_targets`] — raw CSR array invariants
//!   (shared with the OAG crate, whose weighted CSR reuses them);
//! - [`Hypergraph::validate`](crate::Hypergraph::validate) — per-side CSR
//!   structure plus cross-side id ranges (accepts directed encodings);
//! - [`Hypergraph::validate_undirected`](crate::Hypergraph::validate_undirected)
//!   — additionally proves the two sides are mutual transposes, the deep
//!   check behind the `--validate` CLI flag.

use crate::Side;
use std::error::Error;
use std::fmt;

/// A structural invariant violation found by a validator.
///
/// The `what` fields name the array being checked (e.g. `"hyperedge CSR"`,
/// `"OAG"`), so one error type serves the hypergraph, OAG, and chain-cover
/// validators.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ValidationError {
    /// A CSR offsets array was empty (it must hold at least the single `0`
    /// of a zero-row structure).
    EmptyOffsets {
        /// The structure being checked.
        what: &'static str,
    },
    /// Adjacent CSR offsets decreased.
    NonMonotoneOffsets {
        /// The structure being checked.
        what: &'static str,
        /// Index `i` such that `offsets[i] > offsets[i + 1]`.
        index: usize,
        /// `offsets[index]`.
        before: u32,
        /// `offsets[index + 1]`.
        after: u32,
    },
    /// The final CSR offset disagrees with the length of the target array.
    TargetCountMismatch {
        /// The structure being checked.
        what: &'static str,
        /// The final offset value.
        final_offset: usize,
        /// The actual number of target entries.
        num_targets: usize,
    },
    /// A CSR target id is outside the opposite side's id range.
    TargetOutOfRange {
        /// The structure being checked.
        what: &'static str,
        /// Position within the flat target array.
        index: usize,
        /// The offending id.
        target: u32,
        /// Number of valid ids (targets must be `< limit`).
        limit: usize,
    },
    /// The two bipartite CSR sides disagree on the total edge count
    /// (undirected encodings only).
    EdgeCountMismatch {
        /// Edges stored by the hyperedge CSR.
        hyperedge_side: usize,
        /// Edges stored by the vertex CSR.
        vertex_side: usize,
    },
    /// The two bipartite CSR sides are not mutual transposes (undirected
    /// encodings only): `element`'s incidence list on `side` disagrees with
    /// the membership recorded by the opposite side.
    AsymmetricIncidence {
        /// The side whose incidence list is inconsistent.
        side: Side,
        /// First element id whose incidence set diverges.
        element: u32,
    },
    /// An OAG adjacency entry carries a weight below the construction
    /// threshold `W_min`.
    WeightBelowThreshold {
        /// The OAG row.
        element: u32,
        /// The neighbor whose edge is under-weighted.
        neighbor: u32,
        /// The stored weight.
        weight: u32,
        /// The minimum admissible weight.
        w_min: u32,
    },
    /// An OAG row is not sorted by descending weight (ties by ascending id),
    /// the order chain generation depends on (paper §IV-B).
    RowOrderViolation {
        /// The OAG row.
        element: u32,
        /// Position within the row of the first out-of-order entry.
        position: usize,
    },
    /// An OAG row lists the element itself as an overlap neighbor.
    SelfOverlap {
        /// The offending row/element id.
        element: u32,
    },
    /// The OAG edge and weight arrays have different lengths.
    WeightCountMismatch {
        /// Number of adjacency entries.
        num_edges: usize,
        /// Number of weight entries.
        num_weights: usize,
    },
    /// A chain schedule visited an element outside the chunk range it was
    /// generated for.
    ChainElementOutOfRange {
        /// The scheduled element.
        element: u32,
        /// Start of the chunk range (inclusive).
        start: u32,
        /// End of the chunk range (exclusive).
        end: u32,
    },
    /// A chain schedule visited an element that is not in the active set.
    ChainElementInactive {
        /// The scheduled element.
        element: u32,
    },
    /// A chain schedule visited the same element twice.
    ChainDuplicateVisit {
        /// The element visited more than once.
        element: u32,
    },
    /// A chain schedule failed to visit an active element of its range —
    /// the "dropped hyperedge" fault that would otherwise produce a
    /// silently wrong answer.
    ChainMissedElement {
        /// The active element the schedule never visits.
        element: u32,
    },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::EmptyOffsets { what } => {
                write!(f, "{what} offsets must contain at least one entry")
            }
            ValidationError::NonMonotoneOffsets { what, index, before, after } => write!(
                f,
                "{what} offsets must be non-decreasing: offsets[{}] = {after} < \
                 offsets[{index}] = {before}",
                index + 1
            ),
            ValidationError::TargetCountMismatch { what, final_offset, num_targets } => write!(
                f,
                "final CSR offset {final_offset} must equal the number of targets \
                 {num_targets} in {what}"
            ),
            ValidationError::TargetOutOfRange { what, index, target, limit } => {
                write!(f, "{what} target {target} at position {index} out of range {limit}")
            }
            ValidationError::EdgeCountMismatch { hyperedge_side, vertex_side } => write!(
                f,
                "bipartite edge count mismatch between CSR sides: hyperedge CSR stores \
                 {hyperedge_side}, vertex CSR stores {vertex_side}"
            ),
            ValidationError::AsymmetricIncidence { side, element } => write!(
                f,
                "asymmetric bipartite incidence: {side} {element}'s incidence list \
                 disagrees with the opposite CSR side"
            ),
            ValidationError::WeightBelowThreshold { element, neighbor, weight, w_min } => write!(
                f,
                "OAG edge {element} -> {neighbor} has weight {weight} below W_min {w_min}"
            ),
            ValidationError::RowOrderViolation { element, position } => write!(
                f,
                "OAG row {element} violates descending-weight (ties ascending-id) order \
                 at position {position}"
            ),
            ValidationError::SelfOverlap { element } => {
                write!(f, "OAG row {element} lists itself as an overlap neighbor")
            }
            ValidationError::WeightCountMismatch { num_edges, num_weights } => {
                write!(f, "OAG stores {num_edges} adjacency entries but {num_weights} weights")
            }
            ValidationError::ChainElementOutOfRange { element, start, end } => write!(
                f,
                "chain schedule visits element {element} outside its chunk range \
                 [{start}, {end})"
            ),
            ValidationError::ChainElementInactive { element } => {
                write!(f, "chain schedule visits inactive element {element}")
            }
            ValidationError::ChainDuplicateVisit { element } => {
                write!(f, "chain schedule visits element {element} more than once")
            }
            ValidationError::ChainMissedElement { element } => {
                write!(f, "chain schedule misses active element {element}")
            }
        }
    }
}

impl Error for ValidationError {}

/// Checks the CSR offsets-array invariants: non-empty, non-decreasing, and
/// ending at `num_targets`.
pub fn validate_offsets(
    what: &'static str,
    offsets: &[u32],
    num_targets: usize,
) -> Result<(), ValidationError> {
    let Some(&last) = offsets.last() else {
        return Err(ValidationError::EmptyOffsets { what });
    };
    if let Some(index) = offsets.windows(2).position(|w| w[0] > w[1]) {
        return Err(ValidationError::NonMonotoneOffsets {
            what,
            index,
            before: offsets[index],
            after: offsets[index + 1],
        });
    }
    if last as usize != num_targets {
        return Err(ValidationError::TargetCountMismatch {
            what,
            final_offset: last as usize,
            num_targets,
        });
    }
    Ok(())
}

/// Checks that every target id is `< limit`.
pub fn validate_targets(
    what: &'static str,
    targets: &[u32],
    limit: usize,
) -> Result<(), ValidationError> {
    match targets.iter().position(|&t| t as usize >= limit) {
        Some(index) => {
            Err(ValidationError::TargetOutOfRange { what, index, target: targets[index], limit })
        }
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_checks() {
        assert!(validate_offsets("t", &[0, 2, 5], 5).is_ok());
        assert_eq!(validate_offsets("t", &[], 0), Err(ValidationError::EmptyOffsets { what: "t" }));
        assert_eq!(
            validate_offsets("t", &[0, 3, 2], 2),
            Err(ValidationError::NonMonotoneOffsets { what: "t", index: 1, before: 3, after: 2 })
        );
        assert_eq!(
            validate_offsets("t", &[0, 2], 3),
            Err(ValidationError::TargetCountMismatch {
                what: "t",
                final_offset: 2,
                num_targets: 3
            })
        );
    }

    #[test]
    fn target_checks() {
        assert!(validate_targets("t", &[0, 1, 2], 3).is_ok());
        assert_eq!(
            validate_targets("t", &[0, 7, 2], 3),
            Err(ValidationError::TargetOutOfRange { what: "t", index: 1, target: 7, limit: 3 })
        );
    }

    #[test]
    fn display_phrases_match_legacy_panics() {
        // The infallible constructors panic with `Display` of these errors;
        // downstream `#[should_panic(expected = ...)]` tests pin the phrases.
        let e = ValidationError::NonMonotoneOffsets { what: "CSR", index: 0, before: 3, after: 2 };
        assert!(e.to_string().contains("non-decreasing"));
        let e =
            ValidationError::TargetCountMismatch { what: "CSR", final_offset: 2, num_targets: 3 };
        assert!(e.to_string().contains("final CSR offset"));
        let e = ValidationError::TargetOutOfRange { what: "CSR", index: 0, target: 9, limit: 4 };
        assert!(e.to_string().contains("out of range"));
        let e = ValidationError::EdgeCountMismatch { hyperedge_side: 2, vertex_side: 1 };
        assert!(e.to_string().contains("edge count mismatch"));
    }
}
