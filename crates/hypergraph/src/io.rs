//! Plain-text hypergraph serialization.
//!
//! The format is line-oriented, similar to hMETIS input files:
//!
//! ```text
//! # optional comments
//! <num_vertices> <num_hyperedges>
//! <v v v ...>      # one line per hyperedge, space-separated vertex ids
//! ```
//!
//! Hyperedges receive dense ids in line order. The format round-trips
//! exactly (incidence order preserved), so preprocessed inputs can be cached
//! on disk between benchmark runs.

use crate::validate::ValidationError;
use crate::{BuildHypergraphError, HyperedgeId, Hypergraph, HypergraphBuilder, VertexId};
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Read, Write};

/// Error returned by [`read_text`].
#[derive(Debug)]
pub enum ReadHypergraphError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The header line was missing or malformed.
    BadHeader(String),
    /// A vertex id failed to parse or was out of range.
    BadLine {
        /// 1-based line number in the input.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// The number of hyperedge lines did not match the header.
    WrongHyperedgeCount {
        /// Hyperedges promised by the header.
        expected: usize,
        /// Hyperedge lines actually present.
        found: usize,
    },
    /// The trailing v2 checksum did not match the file contents (bit rot,
    /// torn write, or truncation that happened to land on a field
    /// boundary).
    ChecksumMismatch {
        /// Digest stored in the file trailer.
        stored: u64,
        /// Digest computed over the bytes actually read.
        computed: u64,
    },
    /// The deserialized arrays passed the checksum but violate a structural
    /// invariant (non-monotone offsets, dangling targets, ...).
    Invalid(ValidationError),
}

impl fmt::Display for ReadHypergraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadHypergraphError::Io(e) => write!(f, "i/o error: {e}"),
            ReadHypergraphError::BadHeader(h) => write!(f, "malformed header line {h:?}"),
            ReadHypergraphError::BadLine { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            ReadHypergraphError::WrongHyperedgeCount { expected, found } => {
                write!(f, "expected {expected} hyperedge lines, found {found}")
            }
            ReadHypergraphError::ChecksumMismatch { stored, computed } => {
                write!(f, "checksum mismatch: file says {stored:#018x}, contents hash to {computed:#018x}")
            }
            ReadHypergraphError::Invalid(e) => write!(f, "invalid hypergraph structure: {e}"),
        }
    }
}

impl Error for ReadHypergraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadHypergraphError::Io(e) => Some(e),
            ReadHypergraphError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ReadHypergraphError {
    fn from(e: std::io::Error) -> Self {
        ReadHypergraphError::Io(e)
    }
}

impl From<ValidationError> for ReadHypergraphError {
    fn from(e: ValidationError) -> Self {
        ReadHypergraphError::Invalid(e)
    }
}

/// Writes `g` in the text format.
///
/// # Errors
///
/// Propagates any I/O error from `w`.
pub fn write_text<W: Write>(g: &Hypergraph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "# chgraph hypergraph: |V| |H|")?;
    writeln!(w, "{} {}", g.num_vertices(), g.num_hyperedges())?;
    for h in 0..g.num_hyperedges() {
        let vs = g.incident_vertices(HyperedgeId::from_index(h));
        let mut first = true;
        for v in vs {
            if !first {
                write!(w, " ")?;
            }
            write!(w, "{v}")?;
            first = false;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Reads a hypergraph from the text format.
///
/// Blank lines and lines starting with `#` are ignored.
///
/// # Errors
///
/// Returns a [`ReadHypergraphError`] describing the first problem found.
pub fn read_text<R: BufRead>(r: R) -> Result<Hypergraph, ReadHypergraphError> {
    let mut lines = r.lines().enumerate();
    // Header.
    let (nv, nh) = loop {
        let Some((_idx, line)) = lines.next() else {
            return Err(ReadHypergraphError::BadHeader(String::new()));
        };
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut it = t.split_whitespace();
        let parse = |s: Option<&str>, line: &str| {
            s.and_then(|x| x.parse::<usize>().ok())
                .ok_or_else(|| ReadHypergraphError::BadHeader(line.to_owned()))
        };
        let nv = parse(it.next(), t)?;
        let nh = parse(it.next(), t)?;
        if it.next().is_some() {
            return Err(ReadHypergraphError::BadHeader(t.to_owned()));
        }
        break (nv, nh);
    };

    let mut builder = HypergraphBuilder::new(nv);
    for (idx, line) in lines {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let mut vs = Vec::new();
        for tok in t.split_whitespace() {
            let raw: u32 = tok.parse().map_err(|_| ReadHypergraphError::BadLine {
                line: idx + 1,
                reason: format!("invalid vertex id {tok:?}"),
            })?;
            vs.push(VertexId::new(raw));
        }
        builder.add_hyperedge(vs).map_err(|e| ReadHypergraphError::BadLine {
            line: idx + 1,
            reason: match e {
                BuildHypergraphError::VertexOutOfRange { vertex, num_vertices } => {
                    format!("vertex {vertex} out of range (|V| = {num_vertices})")
                }
                BuildHypergraphError::EmptyHyperedge => "empty hyperedge".to_owned(),
            },
        })?;
    }
    if builder.num_hyperedges() != nh {
        return Err(ReadHypergraphError::WrongHyperedgeCount {
            expected: nh,
            found: builder.num_hyperedges(),
        });
    }
    Ok(builder.build())
}

/// Magic bytes of the binary hypergraph format.
const BINARY_MAGIC: &[u8; 4] = b"CHGH";
/// Version written by [`write_binary`]: v2 appends a trailing FNV-1a
/// checksum over everything before it. [`read_binary`] still accepts the
/// checksum-less v1.
const BINARY_VERSION: u32 = 2;
/// Oldest version [`read_binary`] accepts.
const BINARY_MIN_VERSION: u32 = 1;
/// Upper bound on a deserialized array length. Any real CSR fits well
/// under this (ids are `u32`); a declared length beyond it can only come
/// from corruption, so reject before attempting to read terabytes.
const MAX_ARRAY_LEN: u64 = 1 << 33;

fn write_u32s<W: Write>(w: &mut W, values: &[u32]) -> std::io::Result<()> {
    w.write_all(&(values.len() as u64).to_le_bytes())?;
    for &v in values {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_u32s<R: Read>(r: &mut R, what: &str) -> Result<Vec<u32>, ReadHypergraphError> {
    let mut len8 = [0u8; 8];
    r.read_exact(&mut len8)?;
    let len = u64::from_le_bytes(len8);
    if len > MAX_ARRAY_LEN {
        return Err(ReadHypergraphError::BadHeader(format!(
            "implausible {what} length {len} (corrupt length field?)"
        )));
    }
    let len = len as usize;
    let mut out = Vec::with_capacity(len.min(1 << 24));
    let mut buf = [0u8; 4];
    for _ in 0..len {
        r.read_exact(&mut buf)?;
        out.push(u32::from_le_bytes(buf));
    }
    Ok(out)
}

/// Writes `g` in the compact binary format (a magic/version header, the
/// four raw CSR arrays in little-endian, and a trailing FNV-1a checksum of
/// everything before it). Roughly 10x faster to load than the text format
/// — the representation a system would cache between the amortized
/// preprocessing and the many algorithm executions (paper SVI-G).
///
/// # Errors
///
/// Propagates any I/O error from `w`.
pub fn write_binary<W: Write>(g: &Hypergraph, w: W) -> std::io::Result<()> {
    let mut w = crate::checksum::HashingWriter::new(w);
    w.write_all(BINARY_MAGIC)?;
    w.write_all(&BINARY_VERSION.to_le_bytes())?;
    for side in [hypergraph_side::H, hypergraph_side::V] {
        let csr = match side {
            hypergraph_side::H => g.csr_for(crate::Side::Hyperedge),
            _ => g.csr_for(crate::Side::Vertex),
        };
        write_u32s(&mut w, csr.offsets())?;
        write_u32s(&mut w, csr.targets())?;
    }
    let digest = w.digest();
    w.into_inner().write_all(&digest.to_le_bytes())
}

mod hypergraph_side {
    pub const H: u8 = 0;
    pub const V: u8 = 1;
}

/// Reads a hypergraph written by [`write_binary`]. Accepts directed
/// encodings (the two sides need not be transposes) and both format
/// versions: v2 (current, trailing checksum verified) and the legacy
/// checksum-less v1.
///
/// Every deserialized offset and id is bounds-validated before the graph
/// is constructed, so a corrupt file yields a typed error, never a panic
/// or a structurally invalid graph.
///
/// # Errors
///
/// Returns [`ReadHypergraphError::BadHeader`] for wrong magic/version or an
/// implausible length field, [`ReadHypergraphError::Invalid`] when the
/// arrays violate a CSR invariant, [`ReadHypergraphError::ChecksumMismatch`]
/// when the v2 trailer disagrees with the contents, and propagates I/O
/// failures (including truncation).
pub fn read_binary<R: Read>(r: R) -> Result<Hypergraph, ReadHypergraphError> {
    let mut r = crate::checksum::HashingReader::new(r);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != BINARY_MAGIC {
        return Err(ReadHypergraphError::BadHeader(format!("bad magic {magic:?}")));
    }
    let mut ver = [0u8; 4];
    r.read_exact(&mut ver)?;
    let version = u32::from_le_bytes(ver);
    if !(BINARY_MIN_VERSION..=BINARY_VERSION).contains(&version) {
        return Err(ReadHypergraphError::BadHeader(format!("unsupported version {version}")));
    }
    let h_offsets = read_u32s(&mut r, "hyperedge offsets")?;
    let h_targets = read_u32s(&mut r, "hyperedge targets")?;
    let v_offsets = read_u32s(&mut r, "vertex offsets")?;
    let v_targets = read_u32s(&mut r, "vertex targets")?;
    if version >= 2 {
        let computed = r.digest();
        let mut trailer = [0u8; 8];
        r.get_mut().read_exact(&mut trailer)?;
        let stored = u64::from_le_bytes(trailer);
        if stored != computed {
            return Err(ReadHypergraphError::ChecksumMismatch { stored, computed });
        }
    }
    let h = crate::Csr::try_from_raw(h_offsets, h_targets)?;
    let v = crate::Csr::try_from_raw(v_offsets, v_targets)?;
    Ok(Hypergraph::try_from_directed_csr(h, v)?)
}

/// Rewrites a v2 binary blob as the legacy v1 format (patch the version
/// field, drop the checksum trailer). Exposed for compatibility tests and
/// migration tooling; new files should always be v2.
pub fn downgrade_binary_to_v1(v2: &[u8]) -> Option<Vec<u8>> {
    if v2.len() < 16 || &v2[..4] != BINARY_MAGIC {
        return None;
    }
    if u32::from_le_bytes([v2[4], v2[5], v2[6], v2[7]]) != 2 {
        return None;
    }
    let mut v1 = v2[..v2.len() - 8].to_vec();
    v1[4..8].copy_from_slice(&1u32.to_le_bytes());
    Some(v1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig1_example;

    #[test]
    fn roundtrip_fig1() {
        let g = fig1_example();
        let mut buf = Vec::new();
        write_text(&g, &mut buf).unwrap();
        let g2 = read_text(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn roundtrip_generated() {
        let g = crate::generate::GeneratorConfig::new(300, 200).with_seed(8).generate();
        let mut buf = Vec::new();
        write_text(&g, &mut buf).unwrap();
        assert_eq!(read_text(&buf[..]).unwrap(), g);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# hello\n\n3 2\n# body comment\n0 1\n\n2\n";
        let g = read_text(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_hyperedges(), 2);
    }

    #[test]
    fn bad_header_is_reported() {
        let err = read_text("nope\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadHypergraphError::BadHeader(_)), "{err}");
        let err = read_text("3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadHypergraphError::BadHeader(_)));
        let err = read_text("3 2 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadHypergraphError::BadHeader(_)));
        let err = read_text("".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadHypergraphError::BadHeader(_)));
    }

    #[test]
    fn out_of_range_vertex_reports_line() {
        let err = read_text("2 1\n0 5\n".as_bytes()).unwrap_err();
        match err {
            ReadHypergraphError::BadLine { line, reason } => {
                assert_eq!(line, 2);
                assert!(reason.contains("out of range"));
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn wrong_count_is_reported() {
        let err = read_text("3 5\n0 1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, ReadHypergraphError::WrongHyperedgeCount { expected: 5, found: 1 }));
    }

    #[test]
    fn invalid_token_is_reported() {
        let err = read_text("3 1\n0 x\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("invalid vertex id"));
    }

    #[test]
    fn binary_roundtrip() {
        let g = crate::generate::GeneratorConfig::new(300, 200).with_seed(8).generate();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), g);
    }

    #[test]
    fn binary_roundtrip_directed() {
        use crate::directed::DirectedHypergraphBuilder;
        use crate::VertexId;
        let mut b = DirectedHypergraphBuilder::new(4);
        b.add_hyperedge([0].map(VertexId::new), [1, 2].map(VertexId::new)).unwrap();
        b.add_hyperedge([2].map(VertexId::new), [3].map(VertexId::new)).unwrap();
        let g = b.build();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), g);
    }

    #[test]
    fn binary_rejects_bad_magic_and_truncation() {
        let g = crate::fig1_example();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(read_binary(&bad[..]).unwrap_err(), ReadHypergraphError::BadHeader(_)));
        let truncated = &buf[..buf.len() - 3];
        assert!(matches!(read_binary(truncated).unwrap_err(), ReadHypergraphError::Io(_)));
    }

    #[test]
    fn binary_flip_is_a_checksum_mismatch() {
        let g = crate::fig1_example();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Flip one payload bit (past the header, before the trailer).
        let mid = buf.len() / 2;
        buf[mid] ^= 0x10;
        assert!(
            matches!(
                read_binary(&buf[..]).unwrap_err(),
                ReadHypergraphError::ChecksumMismatch { .. } | ReadHypergraphError::BadHeader(_)
            ),
            "payload flip must be detected"
        );
    }

    #[test]
    fn v1_files_still_read() {
        let g = crate::generate::GeneratorConfig::new(120, 80).with_seed(5).generate();
        let mut v2 = Vec::new();
        write_binary(&g, &mut v2).unwrap();
        let v1 = downgrade_binary_to_v1(&v2).expect("well-formed v2 blob");
        assert_eq!(read_binary(&v1[..]).unwrap(), g, "v1 must remain readable");
    }

    #[test]
    fn implausible_length_is_rejected_quickly() {
        let g = crate::fig1_example();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Overwrite the first array length (directly after magic+version)
        // with an absurd value.
        buf[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn zero_length_input_is_an_io_error() {
        assert!(matches!(read_binary(&[][..]).unwrap_err(), ReadHypergraphError::Io(_)));
    }

    #[test]
    fn binary_rejects_dangling_targets() {
        let g = crate::fig1_example();
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).unwrap();
        // Corrupt a target in the hyperedge CSR (first target follows the
        // header + offsets block: 4 magic + 4 version + 8 len + 5*4 offsets
        // + 8 len = 44).
        buf[44] = 0xEE;
        buf[45] = 0xFF;
        buf[46] = 0xFF;
        buf[47] = 0x0F;
        assert!(read_binary(&buf[..]).is_err());
    }
}
