//! Epoch-tagged scratch arrays for hot preprocessing kernels.
//!
//! The preprocessing passes of this repository (two-hop overlap counting in
//! `oag::build`, the visited set of chain generation, schedule replays)
//! all need a per-round "have I seen element `i` this round?" structure
//! over a dense `u32` id universe. A `HashSet` pays a hash per probe; a
//! fresh `vec![false; n]` (or a `fill(false)`) pays an `O(n)` clear per
//! round, which dominates when rounds touch only a sparse subset.
//!
//! The classic fix — the idiom the ChGraph paper's own preprocessing cost
//! model assumes (§IV-A) — is an *epoch tag*: one dense array of `u32`
//! stamps plus a current-epoch counter. A slot is "set" iff its stamp
//! equals the current epoch, so "clear everything" is a counter bump, and
//! probes stay one indexed load. The tag wrapping around to a
//! previously-used value would make stale slots readable again, so both
//! structures detect exhaustion of their 32-bit tag space and fall back to
//! one real `O(n)` clear (once per `u32::MAX` rounds for [`EpochMarks`],
//! once per `2^31` units of count mass for [`EpochCounters`] — amortized
//! zero either way); the wraparound tests here and in the workspace root
//! force the tags to the edge and prove kernels stay identical across it.

/// A dense set over `0..universe` with `O(1)` clear via epoch bump.
///
/// ```
/// use hypergraph::epoch::EpochMarks;
/// let mut m = EpochMarks::new();
/// m.begin(8);
/// assert!(!m.mark(3)); // newly marked
/// assert!(m.mark(3)); // already marked this round
/// m.begin(8); // O(1) clear
/// assert!(!m.is_marked(3));
/// ```
#[derive(Clone, Debug, Default)]
pub struct EpochMarks {
    stamps: Vec<u32>,
    epoch: u32,
}

impl EpochMarks {
    /// Creates an empty scratch; the universe is sized by [`begin`](Self::begin).
    pub fn new() -> Self {
        EpochMarks::default()
    }

    /// Starts a new round over `0..universe`: grows the stamp array if
    /// needed and invalidates every previous mark (a counter bump, except
    /// once per `u32::MAX` rounds where the array is truly cleared).
    pub fn begin(&mut self, universe: usize) {
        if self.stamps.len() < universe {
            self.stamps.resize(universe, self.epoch);
        }
        if self.epoch == u32::MAX {
            self.stamps.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Marks `i`; returns `true` if it was **already** marked this round.
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the universe of the last [`begin`](Self::begin).
    #[inline]
    pub fn mark(&mut self, i: usize) -> bool {
        let slot = &mut self.stamps[i];
        if *slot == self.epoch {
            true
        } else {
            *slot = self.epoch;
            false
        }
    }

    /// Returns `true` if `i` was marked this round.
    #[inline]
    pub fn is_marked(&self, i: usize) -> bool {
        self.stamps[i] == self.epoch
    }

    /// Forces the epoch counter (test support for wraparound coverage:
    /// park the counter just below `u32::MAX` and keep running rounds).
    /// Invalidates all current marks.
    pub fn force_epoch(&mut self, epoch: u32) {
        self.stamps.fill(0);
        self.epoch = epoch.max(1);
    }

    /// The current epoch value (observability for wraparound tests).
    pub fn epoch(&self) -> u32 {
        self.epoch
    }
}

/// A dense `u32` counter array over `0..universe` with `O(1)` clear.
///
/// The epoch tag is an *offset*: a slot holding `v` encodes count
/// `v - base` when `v > base` and zero otherwise, and "reset all counts"
/// advances `base` past every value written so far. This keeps slots at
/// 4 bytes — the same random-scatter footprint as the plain `Vec<u32>`
/// counter it replaces (a `(tag, count)` pair per slot would double it,
/// which is exactly what the hot two-hop counting loop cannot afford) —
/// while reads never write (unlike the clear-as-you-drain idiom). Once
/// `base` reaches the top half of the `u32` range the array is truly
/// zeroed (amortized `O(1)`; counts per round are bounded by `2^31`,
/// far above any real row).
///
/// ```
/// use hypergraph::epoch::EpochCounters;
/// let mut c = EpochCounters::new();
/// c.begin(4);
/// assert_eq!(c.add(2), 1); // first touch this round
/// assert_eq!(c.add(2), 2);
/// assert_eq!(c.get(2), 2);
/// c.begin(4);
/// assert_eq!(c.get(2), 0); // cleared by epoch bump
/// ```
#[derive(Clone, Debug, Default)]
pub struct EpochCounters {
    /// `base + count` per touched slot; values `<= base` mean zero.
    slots: Vec<u32>,
    base: u32,
    /// Increments performed this round. Every slot value is bounded by
    /// `base + adds`, so the next round's base is `base + adds` — a pure
    /// register increment per [`add`](Self::add), deliberately *not* a
    /// running max of written values, which would chain every random slot
    /// load into one serial dependency and stall the scatter loop on
    /// memory latency.
    adds: u64,
}

/// Past this base the remaining headroom could no longer hold a round's
/// counts; [`EpochCounters::begin`] falls back to one real clear.
const COUNTER_WRAP_LIMIT: u32 = 1 << 31;

impl EpochCounters {
    /// Creates an empty scratch; the universe is sized by [`begin`](Self::begin).
    pub fn new() -> Self {
        EpochCounters::default()
    }

    /// Starts a new round over `0..universe` with all counts zero.
    pub fn begin(&mut self, universe: usize) {
        if self.slots.len() < universe {
            // Zero reads as count 0 under any base.
            self.slots.resize(universe, 0);
        }
        let next = self.base as u64 + self.adds;
        self.adds = 0;
        if next >= COUNTER_WRAP_LIMIT as u64 {
            self.slots.fill(0);
            self.base = 0;
        } else {
            self.base = next as u32;
        }
    }

    /// Increments slot `i`, returning the new count (1 on the first touch
    /// of a round).
    ///
    /// # Panics
    ///
    /// Panics if `i` is outside the universe of the last [`begin`](Self::begin).
    #[inline]
    pub fn add(&mut self, i: usize) -> u32 {
        self.adds += 1;
        let slot = &mut self.slots[i];
        let v = *slot;
        let count = if v > self.base { v - self.base + 1 } else { 1 };
        *slot = self.base + count;
        count
    }

    /// The count of slot `i` this round (0 if untouched). Read-only: no
    /// store, no clear obligation on the caller.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        let v = self.slots[i];
        v.saturating_sub(self.base)
    }

    /// Forces the epoch offset (test support for wraparound coverage: park
    /// it just below [`COUNTER_WRAP_LIMIT`] — or `u32::MAX` — and keep
    /// running rounds). Invalidates all current counts.
    pub fn force_epoch(&mut self, epoch: u32) {
        self.slots.fill(0);
        self.base = epoch.max(1);
        self.adds = 0;
    }

    /// The current epoch offset (observability for wraparound tests).
    pub fn epoch(&self) -> u32 {
        self.base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marks_round_trip() {
        let mut m = EpochMarks::new();
        m.begin(10);
        assert!(!m.is_marked(7));
        assert!(!m.mark(7));
        assert!(m.mark(7));
        assert!(m.is_marked(7));
        assert!(!m.is_marked(6));
        m.begin(10);
        assert!(!m.is_marked(7), "begin clears marks");
    }

    #[test]
    fn marks_grow_universe() {
        let mut m = EpochMarks::new();
        m.begin(4);
        m.mark(3);
        m.begin(16);
        assert!(!m.is_marked(3));
        assert!(!m.mark(15));
    }

    #[test]
    fn marks_survive_epoch_wraparound() {
        let mut m = EpochMarks::new();
        m.force_epoch(u32::MAX - 2);
        // Mark a slot, then run rounds across the wrap; stale stamps must
        // never read as marked.
        for round in 0..6 {
            m.begin(8);
            assert!(!m.is_marked(5), "round {round}: stale mark resurfaced");
            assert!(!m.mark(5));
            assert!(m.is_marked(5));
        }
        assert!(m.epoch() >= 1);
    }

    #[test]
    fn counters_round_trip() {
        let mut c = EpochCounters::new();
        c.begin(5);
        assert_eq!(c.get(1), 0);
        assert_eq!(c.add(1), 1);
        assert_eq!(c.add(1), 2);
        assert_eq!(c.add(4), 1);
        assert_eq!(c.get(1), 2);
        assert_eq!(c.get(4), 1);
        c.begin(5);
        assert_eq!(c.get(1), 0, "begin clears counts");
        assert_eq!(c.add(1), 1);
    }

    #[test]
    fn counters_survive_epoch_wraparound() {
        // Parked at the very top of the tag space: the first begin() must
        // fall back to a real clear.
        let mut c = EpochCounters::new();
        c.force_epoch(u32::MAX - 2);
        for round in 0..6 {
            c.begin(8);
            assert_eq!(c.get(3), 0, "round {round}: stale count resurfaced");
            assert_eq!(c.add(3), 1, "round {round}");
            assert_eq!(c.add(3), 2, "round {round}");
        }
        // Parked just below the wrap limit: the fallback clear triggers
        // mid-sequence, between rounds that carry live counts.
        let mut c = EpochCounters::new();
        c.force_epoch(COUNTER_WRAP_LIMIT - 3);
        for round in 0..6 {
            c.begin(8);
            assert_eq!(c.get(3), 0, "round {round}: stale count resurfaced");
            for expect in 1..=round + 1 {
                assert_eq!(c.add(3), expect, "round {round}");
            }
            assert_eq!(c.get(7), 0, "round {round}: untouched slot drifted");
        }
        assert!(c.epoch() < COUNTER_WRAP_LIMIT, "wrap must have reset the offset");
    }

    #[test]
    fn counters_grow_universe_mid_epoch_sequence() {
        let mut c = EpochCounters::new();
        c.begin(2);
        c.add(1);
        c.begin(6);
        // Newly grown slots must read zero even though the epoch advanced.
        for i in 0..6 {
            assert_eq!(c.get(i), 0, "slot {i}");
        }
    }
}
