//! The immutable bipartite-CSR hypergraph.

use crate::validate::ValidationError;
use crate::{Csr, HyperedgeId, Side, VertexId};
use serde::{Deserialize, Serialize};

/// An immutable hypergraph in the bipartite representation (paper §II-A).
///
/// Two CSR structures are kept (Fig. 4(c)):
///
/// - the **hyperedge CSR**: `hyperedge_offset` / `incident_vertex`, mapping
///   each hyperedge to its incident vertices;
/// - the **vertex CSR**: `vertex_offset` / `incident_hyperedge`, mapping each
///   vertex to its incident hyperedges.
///
/// Values (`hyperedge_value` / `vertex_value`) are owned by the runtimes, not
/// the topology, so a single `Hypergraph` can back many concurrent algorithm
/// executions.
///
/// Construct via [`HypergraphBuilder`](crate::HypergraphBuilder) or the
/// generators in [`generate`](crate::generate).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Hypergraph {
    hyperedge_csr: Csr,
    vertex_csr: Csr,
}

impl Hypergraph {
    /// Assembles a hypergraph from its two CSR sides.
    ///
    /// # Panics
    ///
    /// Panics if the two sides disagree on the bipartite edge count, or if
    /// either side references an id out of range of the other. Use
    /// [`Hypergraph::try_from_csr`] for untrusted data.
    pub fn from_csr(hyperedge_csr: Csr, vertex_csr: Csr) -> Self {
        Hypergraph::try_from_csr(hyperedge_csr, vertex_csr).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Hypergraph::from_csr`]: returns a typed
    /// [`ValidationError`] instead of panicking on mismatched sides or
    /// out-of-range ids.
    pub fn try_from_csr(hyperedge_csr: Csr, vertex_csr: Csr) -> Result<Self, ValidationError> {
        if hyperedge_csr.num_edges() != vertex_csr.num_edges() {
            return Err(ValidationError::EdgeCountMismatch {
                hyperedge_side: hyperedge_csr.num_edges(),
                vertex_side: vertex_csr.num_edges(),
            });
        }
        Hypergraph::try_from_directed_csr(hyperedge_csr, vertex_csr)
    }

    /// Assembles a hypergraph whose two CSR sides are **not** required to be
    /// transposes of one another — the directed encoding, where the
    /// hyperedge CSR holds destination vertex sets and the vertex CSR holds
    /// sourced hyperedges (see [`directed`](crate::directed)).
    ///
    /// # Panics
    ///
    /// Panics if either side references an id out of range of the other.
    /// Use [`Hypergraph::try_from_directed_csr`] for untrusted data.
    pub fn from_directed_csr(hyperedge_csr: Csr, vertex_csr: Csr) -> Self {
        Hypergraph::try_from_directed_csr(hyperedge_csr, vertex_csr)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Hypergraph::from_directed_csr`]: returns a typed
    /// [`ValidationError`] instead of panicking on out-of-range ids.
    pub fn try_from_directed_csr(
        hyperedge_csr: Csr,
        vertex_csr: Csr,
    ) -> Result<Self, ValidationError> {
        let g = Hypergraph { hyperedge_csr, vertex_csr };
        g.validate()?;
        Ok(g)
    }

    /// Checks the structural invariants every encoding (undirected *and*
    /// directed) must satisfy: both CSR sides well-formed, and every target
    /// id within the opposite side's range. Returns the first violation as a
    /// typed [`ValidationError`].
    ///
    /// Internally-built hypergraphs cannot violate these; the check exists
    /// for *untrusted* topologies — deserialized cache artifacts, parsed
    /// input files, fault-injection fixtures.
    pub fn validate(&self) -> Result<(), ValidationError> {
        self.hyperedge_csr.validate("hyperedge CSR", self.vertex_csr.len())?;
        self.vertex_csr.validate("vertex CSR", self.hyperedge_csr.len())
    }

    /// Deep check for undirected encodings: [`Hypergraph::validate`] plus
    /// the requirement that the two CSR sides are mutual transposes — every
    /// `<h, v>` incidence recorded by one side is recorded exactly once by
    /// the other. This is the check behind the `--validate` CLI flag.
    ///
    /// Directed hypergraphs (see [`directed`](crate::directed)) legitimately
    /// fail this; validate them with [`Hypergraph::validate`] instead.
    pub fn validate_undirected(&self) -> Result<(), ValidationError> {
        self.validate()?;
        if self.hyperedge_csr.num_edges() != self.vertex_csr.num_edges() {
            return Err(ValidationError::EdgeCountMismatch {
                hyperedge_side: self.hyperedge_csr.num_edges(),
                vertex_side: self.vertex_csr.num_edges(),
            });
        }
        // Transposing sorts each row ascending, so compare sorted incidence
        // multisets row by row (rows themselves may be stored in any order).
        let transposed = self.hyperedge_csr.try_transpose(self.vertex_csr.len())?;
        for v in 0..self.vertex_csr.len() {
            let mut stored: Vec<u32> = self.vertex_csr.neighbors(v).to_vec();
            stored.sort_unstable();
            if stored != transposed.neighbors(v) {
                // invariant: v indexes the vertex CSR, whose row count is
                // bounded by u32 offsets.
                let element = u32::try_from(v).expect("vertex id fits u32");
                return Err(ValidationError::AsymmetricIncidence { side: Side::Vertex, element });
            }
        }
        Ok(())
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.vertex_csr.len()
    }

    /// Number of hyperedges `|H|`.
    #[inline]
    pub fn num_hyperedges(&self) -> usize {
        self.hyperedge_csr.len()
    }

    /// Number of elements on `side`.
    #[inline]
    pub fn num_on(&self, side: Side) -> usize {
        match side {
            Side::Vertex => self.num_vertices(),
            Side::Hyperedge => self.num_hyperedges(),
        }
    }

    /// Number of bipartite edges (`#BEdges` in Table II).
    #[inline]
    pub fn num_bipartite_edges(&self) -> usize {
        self.hyperedge_csr.num_edges()
    }

    /// The incident vertices of hyperedge `h` (`N(h)`), as raw ids.
    ///
    /// # Panics
    ///
    /// Panics if `h` is out of range.
    #[inline]
    pub fn incident_vertices(&self, h: HyperedgeId) -> &[u32] {
        self.hyperedge_csr.neighbors(h.index())
    }

    /// The incident hyperedges of vertex `v` (`N(v)`), as raw ids.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn incident_hyperedges(&self, v: VertexId) -> &[u32] {
        self.vertex_csr.neighbors(v.index())
    }

    /// Degree of hyperedge `h`: `deg(h) = |N(h)|`.
    #[inline]
    pub fn hyperedge_degree(&self, h: HyperedgeId) -> usize {
        self.hyperedge_csr.degree(h.index())
    }

    /// Degree of vertex `v`: `deg(v) = |N(v)|`.
    #[inline]
    pub fn vertex_degree(&self, v: VertexId) -> usize {
        self.vertex_csr.degree(v.index())
    }

    /// The CSR whose *sources* live on `side` (its rows are `side` elements).
    ///
    /// `csr_for(Side::Hyperedge)` is the hyperedge CSR
    /// (`hyperedge_offset`/`incident_vertex`); `csr_for(Side::Vertex)` is the
    /// vertex CSR.
    #[inline]
    pub fn csr_for(&self, side: Side) -> &Csr {
        match side {
            Side::Vertex => &self.vertex_csr,
            Side::Hyperedge => &self.hyperedge_csr,
        }
    }

    /// Incidence list of element `id` on `side`, as raw opposite-side ids.
    #[inline]
    pub fn incidence(&self, side: Side, id: u32) -> &[u32] {
        self.csr_for(side).neighbors(id as usize)
    }

    /// Degree of element `id` on `side`.
    #[inline]
    pub fn degree(&self, side: Side, id: u32) -> usize {
        self.csr_for(side).degree(id as usize)
    }

    /// Returns `true` if hyperedges `a` and `b` are *overlapped*, i.e. share
    /// at least one incident vertex (paper §II-A).
    ///
    /// This is a reference implementation used by tests; production overlap
    /// discovery happens in the `oag` crate.
    pub fn hyperedges_overlap(&self, a: HyperedgeId, b: HyperedgeId) -> bool {
        let (sa, sb) = (self.incident_vertices(a), self.incident_vertices(b));
        sa.iter().any(|v| sb.contains(v))
    }

    /// Mean hyperedge degree (bipartite edges per hyperedge).
    pub fn mean_hyperedge_degree(&self) -> f64 {
        if self.num_hyperedges() == 0 {
            return 0.0;
        }
        self.num_bipartite_edges() as f64 / self.num_hyperedges() as f64
    }

    /// Approximate in-memory size in bytes of the topology (both CSR sides),
    /// the quantity Hygra stores; used as the baseline for the OAG storage
    /// overhead of Fig. 21(b).
    pub fn size_bytes(&self) -> usize {
        self.hyperedge_csr.size_bytes() + self.vertex_csr.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig1_example;

    #[test]
    fn fig1_degrees_match_paper() {
        let g = fig1_example();
        // deg(h0) = 3, deg(v0) = 2 (paper §II-A).
        assert_eq!(g.hyperedge_degree(HyperedgeId::new(0)), 3);
        assert_eq!(g.vertex_degree(VertexId::new(0)), 2);
    }

    #[test]
    fn fig1_overlap_matches_paper() {
        let g = fig1_example();
        // h0 and h2 share {v0, v4}.
        assert!(g.hyperedges_overlap(HyperedgeId::new(0), HyperedgeId::new(2)));
        // h0 and h1 share nothing.
        assert!(!g.hyperedges_overlap(HyperedgeId::new(0), HyperedgeId::new(1)));
        assert!(g.hyperedges_overlap(HyperedgeId::new(1), HyperedgeId::new(3)));
    }

    #[test]
    fn side_accessors_agree_with_direct_ones() {
        let g = fig1_example();
        assert_eq!(g.num_on(Side::Vertex), g.num_vertices());
        assert_eq!(g.num_on(Side::Hyperedge), g.num_hyperedges());
        assert_eq!(g.incidence(Side::Hyperedge, 0), g.incident_vertices(HyperedgeId::new(0)));
        assert_eq!(g.incidence(Side::Vertex, 5), g.incident_hyperedges(VertexId::new(5)));
        assert_eq!(g.degree(Side::Vertex, 0), 2);
    }

    #[test]
    fn mean_degree() {
        let g = fig1_example();
        assert!((g.mean_hyperedge_degree() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn validate_accepts_builder_output() {
        let g = fig1_example();
        assert!(g.validate().is_ok());
        assert!(g.validate_undirected().is_ok());
    }

    #[test]
    fn validate_undirected_rejects_asymmetric_sides() {
        // Edge counts agree (2 each) but v0's incidence list claims h1
        // while h1 claims only v1 — an asymmetric bipartite encoding.
        let h = Csr::from_adjacency(vec![vec![0], vec![1]]);
        let v = Csr::from_adjacency(vec![vec![0, 1], vec![]]);
        let g = Hypergraph::try_from_directed_csr(h, v).expect("ids are in range");
        assert!(g.validate().is_ok(), "directed-compatible checks pass");
        assert_eq!(
            g.validate_undirected(),
            Err(ValidationError::AsymmetricIncidence { side: Side::Vertex, element: 0 })
        );
    }

    #[test]
    fn try_from_csr_rejects_mismatched_sides() {
        let h = Csr::from_adjacency(vec![vec![0, 1]]);
        let v = Csr::from_adjacency(vec![vec![0]]);
        assert_eq!(
            Hypergraph::try_from_csr(h, v),
            Err(ValidationError::EdgeCountMismatch { hyperedge_side: 2, vertex_side: 1 })
        );
    }

    #[test]
    #[should_panic(expected = "edge count mismatch")]
    fn from_csr_rejects_mismatched_sides() {
        let h = Csr::from_adjacency(vec![vec![0, 1]]);
        let v = Csr::from_adjacency(vec![vec![0]]);
        let _ = Hypergraph::from_csr(h, v);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_csr_rejects_dangling_vertex() {
        let h = Csr::from_adjacency(vec![vec![5]]);
        let v = Csr::from_adjacency(vec![vec![0]]);
        let _ = Hypergraph::from_csr(h, v);
    }
}
