//! Deterministic synthetic hypergraph generators.
//!
//! The paper evaluates on five SNAP/KONECT hypergraphs (Table II). Those
//! datasets are not redistributable inside this repository, so this module
//! provides a seeded **family-model** generator whose overlap is
//! *structural*, matching the mechanism the paper exploits.
//!
//! Real hypergraphs overlap because groups of hyperedges are near-copies of
//! one another — papers by the same authors, posts in the same group,
//! trackers on the same site. The generator reproduces this directly:
//! hyperedges are produced in **families**; each family draws a *template*
//! vertex set, and every member hyperedge keeps each template vertex with
//! probability `member_prob` plus a few uniformly random *noise* vertices.
//! Hyperedge ids are globally shuffled afterwards, so index order carries no
//! family locality (as with crawl-ordered real datasets): index-ordered
//! systems re-fetch each family's shared vertices from memory over and over,
//! while chain-driven scheduling can line family members up back-to-back.
//!
//! Two knobs set a dataset's place on the Fig. 8 overlap spectrum:
//! `family_size` (how many hyperedges share a template — vertex sharing
//! depth) and `member_prob` (how much consecutive members overlap).
//! Generation is deterministic for a given [`GeneratorConfig`].

use crate::{Hypergraph, HypergraphBuilder, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the family-model hypergraph generator.
///
/// ```
/// use hypergraph::generate::GeneratorConfig;
/// let g = GeneratorConfig::new(1_000, 400).with_seed(7).generate();
/// assert_eq!(g.num_vertices(), 1_000);
/// assert_eq!(g.num_hyperedges(), 400);
/// ```
#[derive(Clone, PartialEq, Debug, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of vertices `|V|`.
    pub num_vertices: usize,
    /// Number of hyperedges `|H|`.
    pub num_hyperedges: usize,
    /// Minimum family size (hyperedges per template).
    pub family_min: usize,
    /// Maximum family size. Real datasets have heavy-tailed family sizes:
    /// a few very large groups of near-duplicate hyperedges dominate the
    /// bipartite edges even when most *vertices* are shared only shallowly
    /// (the paper's Fig. 8 profile).
    pub family_max: usize,
    /// Exponent of the truncated power-law family-size distribution
    /// (smaller = heavier tail = more edge mass in large families).
    pub family_exponent: f64,
    /// Minimum template size (distinct vertices underlying a family).
    pub template_min: usize,
    /// Maximum template size.
    pub template_max: usize,
    /// Exponent of the truncated power-law template-size distribution.
    pub template_exponent: f64,
    /// Minimum fraction of the template a member keeps. Each member keeps a
    /// uniformly-drawn prefix fraction in `member_prob..=1.0` of its
    /// family's template — the pairwise overlap strength within a family.
    pub member_prob: f64,
    /// Uniformly random extra vertices added to each hyperedge.
    pub noise_vertices: usize,
    /// Hyperedge ids are shuffled within windows of this size (0 selects
    /// the default, `|H| / 32` clamped to at least 512). Windowed rather
    /// than global shuffling models crawl/discovery order: related
    /// hyperedges land in the same region of the id space — and therefore
    /// the same processing chunk — but thousands of ids apart, far beyond
    /// the reach of an LRU cache under index-ordered scheduling.
    pub shuffle_window: usize,
    /// RNG seed.
    pub seed: u64,
}

impl GeneratorConfig {
    /// Creates a config with moderate-overlap defaults.
    pub fn new(num_vertices: usize, num_hyperedges: usize) -> Self {
        GeneratorConfig {
            num_vertices,
            num_hyperedges,
            family_min: 1,
            family_max: 128,
            family_exponent: 2.0,
            template_min: 4,
            template_max: 48,
            template_exponent: 2.2,
            member_prob: 0.8,
            noise_vertices: 1,
            shuffle_window: 0,
            seed: 0xC4A1,
        }
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the family-size bounds.
    ///
    /// # Panics
    ///
    /// Panics if `min == 0` or `min > max`.
    pub fn with_family_range(mut self, min: usize, max: usize) -> Self {
        assert!(min >= 1 && min <= max, "family range must satisfy 1 <= min <= max");
        self.family_min = min;
        self.family_max = max;
        self
    }

    /// Sets the family-size power-law exponent (clamped to `>= 1.05`).
    pub fn with_family_exponent(mut self, a: f64) -> Self {
        self.family_exponent = a.max(1.05);
        self
    }

    /// Sets the template size bounds.
    ///
    /// # Panics
    ///
    /// Panics if `min < 2` or `min > max`.
    pub fn with_template_range(mut self, min: usize, max: usize) -> Self {
        assert!(min >= 2 && min <= max, "template range must satisfy 2 <= min <= max");
        self.template_min = min;
        self.template_max = max;
        self
    }

    /// Sets the minimum kept template fraction (clamped to `0.05..=1.0`).
    pub fn with_member_prob(mut self, p: f64) -> Self {
        self.member_prob = p.clamp(0.05, 1.0);
        self
    }

    /// Sets the number of noise vertices per hyperedge.
    pub fn with_noise(mut self, n: usize) -> Self {
        self.noise_vertices = n;
        self
    }

    /// Sets the id-shuffle window (see [`GeneratorConfig::shuffle_window`]).
    pub fn with_shuffle_window(mut self, w: usize) -> Self {
        self.shuffle_window = w;
        self
    }

    /// Runs the generator, producing a hypergraph.
    ///
    /// # Panics
    ///
    /// Panics if `num_vertices < template_max + noise_vertices` or either
    /// count is zero.
    pub fn generate(&self) -> Hypergraph {
        assert!(self.num_vertices > 0 && self.num_hyperedges > 0, "empty generator config");
        assert!(
            self.num_vertices >= self.template_max + self.noise_vertices,
            "vertex pool smaller than a maximal hyperedge"
        );
        let mut rng = SmallRng::seed_from_u64(self.seed);
        // (vertex-window id, members): hyperedges are later grouped by the
        // vertex region they were discovered with.
        let mut hyperedges: Vec<(u32, Vec<u32>)> = Vec::with_capacity(self.num_hyperedges);
        let mut template: Vec<u32> = Vec::new();
        let mut in_template = vec![false; self.num_vertices];
        while hyperedges.len() < self.num_hyperedges {
            // Draw this family's template: `tsize` distinct vertices.
            let tsize = sample_truncated_power_law(
                self.template_min,
                self.template_max,
                self.template_exponent,
                &mut rng,
            );
            // Vertex-id discovery locality: a family's template vertices
            // come from one region of the vertex id space (co-discovered
            // entities receive nearby ids in real crawls). The region is a
            // 1/32 slice of the id space: wide enough that index-ordered
            // scheduling finds no free reuse between family members, narrow
            // enough to nest inside one per-core chunk, so a cache line's
            // vertices are written by a single core (no pathological false
            // sharing).
            let span = (self.num_vertices / 16).max(tsize * 4).clamp(tsize, self.num_vertices);
            // Windows are span-aligned so they nest inside the contiguous
            // per-core chunks of any power-of-two core count up to 32: a
            // family's vertices — and hence a hyperedge's writers — belong
            // to one core, as with real partitioners that respect discovery
            // order.
            let nwin = (self.num_vertices / span).max(1) as u32;
            let base = span as u32 * rng.gen_range(0..nwin);
            template.clear();
            while template.len() < tsize {
                let v = base + rng.gen_range(0..span as u32);
                if !in_template[v as usize] {
                    in_template[v as usize] = true;
                    template.push(v);
                }
            }
            // Family size ~ truncated power law: heavy-tailed, so large
            // near-duplicate groups carry most bipartite edges.
            let fsize = sample_truncated_power_law(
                self.family_min,
                self.family_max,
                self.family_exponent,
                &mut rng,
            )
            .min(self.num_hyperedges - hyperedges.len());
            for _ in 0..fsize {
                // Members keep a *prefix* of the template: families have a
                // shared core plus optional extras (nested, like tracker
                // bundles or author groups with occasional guests). Nesting
                // maximizes pairwise co-occurrence for a given vertex depth,
                // which is what real near-duplicate hyperedge groups look
                // like and what the OAG's W_min threshold keys on.
                let frac = rng.gen_range(self.member_prob..=1.0);
                let keep = ((tsize as f64 * frac).round() as usize).clamp(2, tsize);
                let mut members: Vec<u32> = template[..keep].to_vec();
                for _ in 0..self.noise_vertices {
                    // Noise is window-local too (incidental co-occurrences
                    // happen between co-discovered entities): collisions
                    // within the window give tail vertices the shallow
                    // depth-2..3 sharing of Fig. 8's k = 2 level without
                    // creating chain structure, and writes to a cache line
                    // stay with the line's owning chunk/core.
                    members.push(base + rng.gen_range(0..span as u32));
                }
                hyperedges.push((base, members));
            }
            for &v in &template {
                in_template[v as usize] = false;
            }
        }
        // Discovery-order id assignment: hyperedges are grouped by the
        // vertex region they belong to (entities and their relationships
        // are crawled together), then shuffled *within* each group. Within
        // a group, family members sit far enough apart that index-ordered
        // scheduling finds no cache reuse, while a group — and therefore
        // every cache line of values its hyperedges update — stays inside
        // one processing chunk, as with real partitioned inputs. The
        // `shuffle_window` cap bounds the mixing radius for very large
        // groups.
        hyperedges.sort_by_key(|(win, _)| *win);
        let window = if self.shuffle_window == 0 {
            (self.num_hyperedges / 32).max(512)
        } else {
            self.shuffle_window
        };
        let n = hyperedges.len();
        let mut start = 0usize;
        while start < n {
            let win = hyperedges[start].0;
            let mut end = start;
            while end < n && hyperedges[end].0 == win && end - start < window {
                end += 1;
            }
            for i in (start + 1..end).rev() {
                let j = rng.gen_range(start..=i);
                hyperedges.swap(i, j);
            }
            start = end;
        }
        let mut builder = HypergraphBuilder::new(self.num_vertices);
        for (_, members) in hyperedges {
            builder
                .add_hyperedge(members.into_iter().map(VertexId::new))
                // invariant: the generator samples non-empty member sets
                // with ids below self.num_vertices, the only two ways
                // add_hyperedge can fail.
                .expect("generated hyperedge is valid");
        }
        builder.build()
    }
}

/// Samples from a truncated discrete power law on `[min, max]`.
fn sample_truncated_power_law(min: usize, max: usize, alpha: f64, rng: &mut SmallRng) -> usize {
    if min >= max {
        return min;
    }
    let alpha = alpha.max(1.01);
    let u: f64 = rng.gen_range(0.0..1.0);
    let a = 1.0 - alpha;
    let lo = (min as f64).powf(a);
    let hi = (max as f64).powf(a);
    let d = (lo + u * (hi - lo)).powf(1.0 / a);
    (d.floor() as usize).clamp(min, max)
}

/// Generates an ordinary graph as a **2-uniform hypergraph**: every
/// hyperedge connects exactly two vertices. Used by the generality study
/// (paper §VI-I), where conventional graphs are the special case of the
/// hypergraph.
///
/// The graph is a preferential-attachment-style power-law graph with
/// `num_edges` undirected edges over `num_vertices` vertices.
///
/// ```
/// let g = hypergraph::generate::two_uniform_graph(100, 300, 42);
/// assert_eq!(g.num_hyperedges(), 300);
/// assert!(g.incident_vertices(hypergraph::HyperedgeId::new(0)).len() <= 2);
/// ```
pub fn two_uniform_graph(num_vertices: usize, num_edges: usize, seed: u64) -> Hypergraph {
    assert!(num_vertices >= 2, "a graph needs at least two vertices");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = HypergraphBuilder::new(num_vertices);
    // Repeated-endpoint list gives preferential attachment in O(E).
    let mut endpoints: Vec<u32> = vec![0, 1];
    for _ in 0..num_edges {
        let a = if rng.gen_bool(0.7) {
            endpoints[rng.gen_range(0..endpoints.len())]
        } else {
            rng.gen_range(0..num_vertices as u32)
        };
        let mut b = rng.gen_range(0..num_vertices as u32);
        if b == a {
            b = (b + 1) % num_vertices as u32;
        }
        builder
            .add_hyperedge([VertexId::new(a), VertexId::new(b)])
            // invariant: both endpoints were just sampled/wrapped modulo
            // num_vertices, so they are in range and the pair is
            // non-empty.
            .expect("two distinct in-range endpoints");
        endpoints.push(a);
        endpoints.push(b);
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HyperedgeId, Side};

    #[test]
    fn generator_is_deterministic() {
        let cfg = GeneratorConfig::new(500, 300).with_seed(11);
        assert_eq!(cfg.generate(), cfg.generate());
    }

    #[test]
    fn different_seeds_differ() {
        let a = GeneratorConfig::new(500, 300).with_seed(1).generate();
        let b = GeneratorConfig::new(500, 300).with_seed(2).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn sizes_match_config() {
        let g = GeneratorConfig::new(1234, 777).with_seed(3).generate();
        assert_eq!(g.num_vertices(), 1234);
        assert_eq!(g.num_hyperedges(), 777);
    }

    #[test]
    fn hyperedge_degrees_bounded_by_template_plus_noise() {
        let cfg =
            GeneratorConfig::new(2_000, 500).with_template_range(4, 12).with_noise(2).with_seed(5);
        let g = cfg.generate();
        for h in 0..g.num_hyperedges() {
            let d = g.hyperedge_degree(HyperedgeId::from_index(h));
            assert!((1..=14).contains(&d), "degree {d} out of bounds");
        }
    }

    #[test]
    fn larger_families_mean_more_strong_overlap() {
        let small =
            GeneratorConfig::new(4_000, 2_000).with_family_range(1, 3).with_seed(9).generate();
        let large =
            GeneratorConfig::new(4_000, 2_000).with_family_range(8, 64).with_seed(9).generate();
        // Family size controls how many hyperedge pairs share >= 3 vertices:
        // a family of f contributes ~f^2/2 strongly-overlapped pairs.
        let strong = |g: &Hypergraph| {
            crate::stats::overlapped_hyperedge_pairs(g, 3) as f64 / g.num_hyperedges() as f64
        };
        assert!(
            strong(&large) > 2.0 * strong(&small),
            "families of 12 must create far more strong pairs ({:.2} vs {:.2})",
            strong(&large),
            strong(&small)
        );
    }

    #[test]
    fn families_create_structural_hyperedge_overlap() {
        let g = GeneratorConfig::new(4_000, 1_000)
            .with_family_range(4, 32)
            .with_member_prob(0.85)
            .with_seed(4)
            .generate();
        // A healthy fraction of hyperedges must overlap another hyperedge in
        // >= 3 vertices (the paper's default W_min).
        let pairs = crate::stats::overlapped_hyperedge_pairs(&g, 3);
        assert!(pairs > g.num_hyperedges() / 4, "only {pairs} strongly-overlapped pairs");
    }

    #[test]
    fn hyperedge_ids_are_shuffled() {
        // Consecutive hyperedges should rarely belong to the same family:
        // count strongly-overlapped *adjacent-id* pairs. (Sized so that
        // discovery regions hold many families; tiny inputs cannot mix.)
        let g = GeneratorConfig::new(16_000, 8_000)
            .with_family_range(4, 32)
            .with_member_prob(0.9)
            .with_seed(4)
            .generate();
        let adjacent_overlapped = (0..g.num_hyperedges() - 1)
            .filter(|&h| {
                let a = g.incidence(Side::Hyperedge, h as u32);
                let b = g.incidence(Side::Hyperedge, h as u32 + 1);
                a.iter().filter(|v| b.contains(v)).count() >= 3
            })
            .count();
        assert!(
            adjacent_overlapped < g.num_hyperedges() / 10,
            "{adjacent_overlapped} adjacent pairs share a family — ids not shuffled?"
        );
    }

    #[test]
    fn two_uniform_graph_has_arity_at_most_two() {
        let g = two_uniform_graph(50, 200, 17);
        for h in 0..g.num_hyperedges() {
            let deg = g.hyperedge_degree(HyperedgeId::from_index(h));
            assert!((1..=2).contains(&deg));
        }
    }

    #[test]
    fn power_law_sampler_within_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let d = sample_truncated_power_law(4, 32, 2.2, &mut rng);
            assert!((4..=32).contains(&d));
        }
        assert_eq!(sample_truncated_power_law(5, 5, 2.0, &mut rng), 5);
    }

    #[test]
    fn family_sampler_is_heavy_tailed() {
        let mut rng = SmallRng::seed_from_u64(2);
        let n = 20_000;
        let sizes: Vec<usize> =
            (0..n).map(|_| sample_truncated_power_law(1, 256, 1.8, &mut rng)).collect();
        let big = sizes.iter().filter(|&&s| s >= 32).count();
        assert!(big > n / 200, "power law must produce large families ({big})");
        assert!(sizes.iter().all(|&s| (1..=256).contains(&s)));
    }
}
