//! Strongly-typed identifiers for the two element kinds of a hypergraph.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a vertex in a [`Hypergraph`](crate::Hypergraph).
///
/// Vertex ids are dense: a hypergraph with `n` vertices uses ids `0..n`.
///
/// ```
/// use hypergraph::VertexId;
/// let v = VertexId::new(3);
/// assert_eq!(v.index(), 3);
/// assert_eq!(format!("{v}"), "v3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct VertexId(u32);

/// Identifier of a hyperedge in a [`Hypergraph`](crate::Hypergraph).
///
/// Hyperedge ids are dense: a hypergraph with `m` hyperedges uses ids `0..m`.
///
/// ```
/// use hypergraph::HyperedgeId;
/// let h = HyperedgeId::new(2);
/// assert_eq!(h.index(), 2);
/// assert_eq!(format!("{h}"), "h2");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct HyperedgeId(u32);

macro_rules! impl_id {
    ($ty:ident, $letter:literal) => {
        impl $ty {
            /// Creates an id from its dense index.
            #[inline]
            pub const fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the dense index as a `usize`, suitable for array indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Returns the raw `u32` value.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }

            /// Creates an id from a `usize` index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index exceeds u32::MAX"))
            }
        }

        impl From<u32> for $ty {
            #[inline]
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$ty> for u32 {
            #[inline]
            fn from(id: $ty) -> u32 {
                id.0
            }
        }

        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($letter, "{}"), self.0)
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($letter, "{}"), self.0)
            }
        }
    };
}

impl_id!(VertexId, "v");
impl_id!(HyperedgeId, "h");

/// The two element kinds of a hypergraph.
///
/// Hypergraph processing alternates between *hyperedge computation* (active
/// vertices update incident hyperedges) and *vertex computation* (active
/// hyperedges update incident vertices); many structures in this workspace are
/// parameterized by which side they refer to.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum Side {
    /// The vertex side (`V`).
    Vertex,
    /// The hyperedge side (`H`).
    Hyperedge,
}

impl Side {
    /// Returns the opposite side.
    ///
    /// ```
    /// use hypergraph::Side;
    /// assert_eq!(Side::Vertex.opposite(), Side::Hyperedge);
    /// ```
    #[inline]
    pub const fn opposite(self) -> Side {
        match self {
            Side::Vertex => Side::Hyperedge,
            Side::Hyperedge => Side::Vertex,
        }
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Vertex => f.write_str("vertex"),
            Side::Hyperedge => f.write_str("hyperedge"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::new(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v.raw(), 42);
        assert_eq!(VertexId::from(42u32), v);
        assert_eq!(u32::from(v), 42);
        assert_eq!(VertexId::from_index(42), v);
    }

    #[test]
    fn hyperedge_id_roundtrip() {
        let h = HyperedgeId::new(7);
        assert_eq!(h.index(), 7);
        assert_eq!(HyperedgeId::from_index(7), h);
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let set: HashSet<VertexId> = (0..10).map(VertexId::new).collect();
        assert_eq!(set.len(), 10);
        assert!(VertexId::new(1) < VertexId::new(2));
    }

    #[test]
    fn display_and_debug_prefixes() {
        assert_eq!(format!("{}", VertexId::new(5)), "v5");
        assert_eq!(format!("{:?}", HyperedgeId::new(5)), "h5");
        assert_eq!(format!("{}", Side::Hyperedge), "hyperedge");
    }

    #[test]
    fn side_opposite_is_involutive() {
        for side in [Side::Vertex, Side::Hyperedge] {
            assert_eq!(side.opposite().opposite(), side);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn from_index_panics_on_overflow() {
        let _ = VertexId::from_index(u32::MAX as usize + 1);
    }
}
