//! Overlap and degree statistics.
//!
//! Reproduces the characterization of §II-D: the *sharable ratio* curves of
//! Fig. 8, which show what fraction of vertices (hyperedges) are shared by at
//! least `k` hyperedges (vertices).

use crate::{Hypergraph, Side};

/// Fraction of `side` elements incident to at least `k` opposite-side
/// elements — the sharable ratio of Fig. 8.
///
/// `sharable_ratio(g, Side::Vertex, 2)` is "the ratio of vertices that can be
/// shared by two hyperedges" (Fig. 8(a)).
///
/// ```
/// use hypergraph::{Side, stats::sharable_ratio};
/// let g = hypergraph::fig1_example();
/// // 5 of 7 vertices (v0..v4) belong to two hyperedges.
/// assert!((sharable_ratio(&g, Side::Vertex, 2) - 5.0 / 7.0).abs() < 1e-12);
/// ```
pub fn sharable_ratio(g: &Hypergraph, side: Side, k: usize) -> f64 {
    let n = g.num_on(side);
    if n == 0 {
        return 0.0;
    }
    let csr = g.csr_for(side); // rows of csr_for(side) are exactly the `side` elements
    let shared = (0..n).filter(|&i| csr.degree(i) >= k).count();
    shared as f64 / n as f64
}

/// The full sharable-ratio curve for `k` in `ks`, e.g. `2..=10` for Fig. 8.
pub fn sharable_curve(
    g: &Hypergraph,
    side: Side,
    ks: impl IntoIterator<Item = usize>,
) -> Vec<(usize, f64)> {
    ks.into_iter().map(|k| (k, sharable_ratio(g, side, k))).collect()
}

/// Summary degree statistics of one side of a hypergraph.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
}

/// Computes degree statistics for the `side` elements of `g`.
pub fn degree_stats(g: &Hypergraph, side: Side) -> DegreeStats {
    let csr = g.csr_for(side);
    let n = csr.len();
    if n == 0 {
        return DegreeStats::default();
    }
    let mut degrees: Vec<usize> = (0..n).map(|i| csr.degree(i)).collect();
    degrees.sort_unstable();
    DegreeStats {
        min: degrees[0],
        max: degrees[n - 1],
        mean: degrees.iter().sum::<usize>() as f64 / n as f64,
        median: degrees[n / 2],
    }
}

/// Counts the number of *overlapped pairs* of hyperedges sharing at least
/// `w_min` vertices, by exact enumeration. Quadratic in the worst case —
/// intended for tests and small inputs; production overlap discovery lives in
/// the `oag` crate.
pub fn overlapped_hyperedge_pairs(g: &Hypergraph, w_min: usize) -> usize {
    let mut count = 0usize;
    let mut weights = vec![0u32; g.num_hyperedges()];
    let mut touched = Vec::new();
    for h in 0..g.num_hyperedges() {
        for &v in g.incidence(Side::Hyperedge, h as u32) {
            for &h2 in g.incidence(Side::Vertex, v) {
                if (h2 as usize) > h {
                    if weights[h2 as usize] == 0 {
                        touched.push(h2);
                    }
                    weights[h2 as usize] += 1;
                }
            }
        }
        for &h2 in &touched {
            if weights[h2 as usize] as usize >= w_min {
                count += 1;
            }
            weights[h2 as usize] = 0;
        }
        touched.clear();
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig1_example;

    #[test]
    fn fig1_sharable_ratios() {
        let g = fig1_example();
        // Vertices v0..v4 have degree 2; v5, v6 have degree 1.
        assert!((sharable_ratio(&g, Side::Vertex, 1) - 1.0).abs() < 1e-12);
        assert!((sharable_ratio(&g, Side::Vertex, 2) - 5.0 / 7.0).abs() < 1e-12);
        assert_eq!(sharable_ratio(&g, Side::Vertex, 3), 0.0);
        // Every hyperedge has degree >= 2.
        assert!((sharable_ratio(&g, Side::Hyperedge, 2) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn curve_is_monotone_nonincreasing() {
        let g = crate::generate::GeneratorConfig::new(2000, 1500).with_seed(4).generate();
        for side in [Side::Vertex, Side::Hyperedge] {
            let curve = sharable_curve(&g, side, 1..=12);
            for w in curve.windows(2) {
                assert!(w[0].1 >= w[1].1, "sharable curve must be non-increasing");
            }
        }
    }

    #[test]
    fn degree_stats_fig1() {
        let g = fig1_example();
        let hs = degree_stats(&g, Side::Hyperedge);
        assert_eq!(hs.min, 2);
        assert_eq!(hs.max, 4);
        assert!((hs.mean - 3.0).abs() < 1e-12);
        let vs = degree_stats(&g, Side::Vertex);
        assert_eq!(vs.max, 2);
        assert!((vs.mean - 12.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn overlapped_pairs_fig1() {
        let g = fig1_example();
        // Overlapped pairs: (h0,h2) share {v0,v4}; (h1,h2) share {v2};
        // (h1,h3) share {v1,v3}.
        assert_eq!(overlapped_hyperedge_pairs(&g, 1), 3);
        assert_eq!(overlapped_hyperedge_pairs(&g, 2), 2);
        assert_eq!(overlapped_hyperedge_pairs(&g, 3), 0);
    }

    #[test]
    fn empty_side_yields_zero() {
        // A hypergraph with isolated vertices only is impossible through the
        // builder (hyperedges are non-empty), but ratios must handle
        // out-of-range k gracefully.
        let g = fig1_example();
        assert_eq!(sharable_ratio(&g, Side::Vertex, 1000), 0.0);
    }
}
