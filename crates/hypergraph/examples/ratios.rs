use hypergraph::{datasets::Dataset, stats::sharable_ratio, Side};
fn main() {
    for ds in Dataset::ALL {
        let g = ds.load();
        println!(
            "{ds}: V={} H={} BE={} k2={:.2} k7={:.2}",
            g.num_vertices(),
            g.num_hyperedges(),
            g.num_bipartite_edges(),
            sharable_ratio(&g, Side::Vertex, 2),
            sharable_ratio(&g, Side::Vertex, 7)
        );
    }
}
