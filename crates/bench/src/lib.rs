#![warn(missing_docs)]

//! Benchmark harness for the ChGraph reproduction.
//!
//! Every table and figure of the paper's evaluation (§VI) has a
//! regeneration function in [`figures`] that executes the corresponding
//! workloads on the simulated machine and returns (and pretty-prints) the
//! same rows/series the paper reports. The `figures` binary of the
//! workspace root dispatches to these functions:
//!
//! ```text
//! cargo run --release --bin figures -- fig14 --scale 0.5
//! cargo run --release --bin figures -- all
//! ```
//!
//! Absolute numbers differ from the paper (the substrate is this
//! repository's simulator, not the authors' ZSim testbed, and the datasets
//! are synthetic stand-ins); the *shapes* — who wins, by what rough factor,
//! where crossovers fall — are asserted by the integration tests in
//! `tests/`.

pub mod cache;
#[cfg(any(test, feature = "fault-injection"))]
pub mod faultutil;
pub mod figures;
pub mod hostmeta;
mod scale;
mod table;

pub use cache::{CacheStats, PreprocessCache};
pub use hostmeta::HostMeta;
pub use scale::{load_graph_scaled, load_scaled, Scale};
pub use table::Table;

/// Default worker-thread count for the CLI binaries: the host's available
/// parallelism, clamped to at least 1. BENCH_parallel.json measured a 1.33×
/// oversubscription penalty when a fixed default exceeded the host's cores,
/// so every binary that fans out defaults to this and lets an explicit
/// `--threads` value win.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}
