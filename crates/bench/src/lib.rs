#![warn(missing_docs)]

//! Benchmark harness for the ChGraph reproduction.
//!
//! Every table and figure of the paper's evaluation (§VI) has a
//! regeneration function in [`figures`] that executes the corresponding
//! workloads on the simulated machine and returns (and pretty-prints) the
//! same rows/series the paper reports. The `figures` binary of the
//! workspace root dispatches to these functions:
//!
//! ```text
//! cargo run --release --bin figures -- fig14 --scale 0.5
//! cargo run --release --bin figures -- all
//! ```
//!
//! Absolute numbers differ from the paper (the substrate is this
//! repository's simulator, not the authors' ZSim testbed, and the datasets
//! are synthetic stand-ins); the *shapes* — who wins, by what rough factor,
//! where crossovers fall — are asserted by the integration tests in
//! `tests/`.

pub mod cache;
#[cfg(any(test, feature = "fault-injection"))]
pub mod faultutil;
pub mod figures;
pub mod hostmeta;
mod scale;
mod table;

pub use cache::{CacheStats, PreprocessCache};
pub use hostmeta::HostMeta;
pub use scale::{load_graph_scaled, load_scaled, Scale};
pub use table::Table;
