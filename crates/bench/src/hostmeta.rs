//! Host metadata for benchmark artifacts.
//!
//! Committed `BENCH_*.json` records are only interpretable with the host
//! they were produced on: `BENCH_parallel.json` was measured in a 1-core
//! container, where no wall-clock speedup is physically possible, and
//! nothing in the file said so until a human annotated it. Every emitter
//! embeds a [`HostMeta`] block so the provenance travels with the numbers.

use std::time::{SystemTime, UNIX_EPOCH};

/// A snapshot of the measuring host, collected at emit time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostMeta {
    /// CPU model string (from `/proc/cpuinfo`; `"unknown"` elsewhere).
    pub cpu: String,
    /// Cores available to this process (`std::thread::available_parallelism`).
    pub available_cores: usize,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Seconds since the Unix epoch at collection time.
    pub unix_timestamp: u64,
    /// Where the timestamp came from — `"system-clock"` normally,
    /// `"unavailable"` when the clock reads before the epoch (the
    /// timestamp is then 0, visibly sentinel rather than silently wrong).
    pub timestamp_source: String,
}

impl HostMeta {
    /// Collects the current host's metadata. Infallible: every field
    /// degrades to an explicit `"unknown"`/zero rather than erroring, so
    /// emitters never lose a benchmark record to missing `/proc`.
    pub fn collect() -> HostMeta {
        let cpu = std::fs::read_to_string("/proc/cpuinfo")
            .ok()
            .and_then(|s| {
                s.lines()
                    .find(|l| l.starts_with("model name"))
                    .and_then(|l| l.split_once(':').map(|(_, model)| model.trim().to_string()))
            })
            .unwrap_or_else(|| "unknown".to_string());
        let available_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let (unix_timestamp, timestamp_source) = match SystemTime::now().duration_since(UNIX_EPOCH)
        {
            Ok(d) => (d.as_secs(), "system-clock".to_string()),
            Err(_) => (0, "unavailable".to_string()),
        };
        HostMeta {
            cpu,
            available_cores,
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            unix_timestamp,
            timestamp_source,
        }
    }

    /// Renders this snapshot as a JSON object (the `"host"` block of a
    /// `BENCH_*.json` record), indented for a two-level enclosing document.
    pub fn to_json(&self) -> String {
        format!(
            "{{\n    \"cpu\": \"{}\",\n    \"available_cores\": {},\n    \"os\": \"{}\",\n    \
             \"arch\": \"{}\",\n    \"unix_timestamp\": {},\n    \"timestamp_source\": \"{}\"\n  }}",
            json_escape(&self.cpu),
            self.available_cores,
            json_escape(&self.os),
            json_escape(&self.arch),
            self.unix_timestamp,
            json_escape(&self.timestamp_source),
        )
    }

    /// `YYYY-MM-DD` (UTC) of [`HostMeta::unix_timestamp`] — `"unknown"`
    /// when the clock was unavailable.
    pub fn date(&self) -> String {
        if self.timestamp_source != "system-clock" {
            return "unknown".to_string();
        }
        let (y, m, d) = civil_from_days((self.unix_timestamp / 86_400) as i64);
        format!("{y:04}-{m:02}-{d:02}")
    }
}

/// Escapes `"` and `\` (the only characters that can plausibly appear in a
/// CPU model string and break the JSON framing).
fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Days-since-epoch to civil date (Howard Hinnant's algorithm).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_is_total() {
        let m = HostMeta::collect();
        assert!(m.available_cores >= 1);
        assert!(!m.cpu.is_empty());
        assert!(!m.os.is_empty());
        assert!(!m.arch.is_empty());
        assert!(m.timestamp_source == "system-clock" || m.timestamp_source == "unavailable");
        if m.timestamp_source == "system-clock" {
            // Sanity: after 2020-01-01, before 2100.
            assert!(m.unix_timestamp > 1_577_836_800 && m.unix_timestamp < 4_102_444_800);
        }
    }

    #[test]
    fn json_rendering_escapes_and_parses() {
        let m = HostMeta {
            cpu: "Weird \"CPU\" \\ model".to_string(),
            available_cores: 4,
            os: "linux".to_string(),
            arch: "x86_64".to_string(),
            unix_timestamp: 1_754_524_800, // 2026-08-07 UTC
            timestamp_source: "system-clock".to_string(),
        };
        let j = m.to_json();
        assert!(j.contains("\\\"CPU\\\""));
        assert!(j.contains("\\\\ model"));
        assert!(j.contains("\"available_cores\": 4"));
    }

    #[test]
    fn civil_date_conversion() {
        // 2026-08-07 00:00:00 UTC == 1786406400; spot-check epoch too.
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(1_786_406_400 / 86_400), (2026, 8, 7));
        let m = HostMeta {
            cpu: String::new(),
            available_cores: 1,
            os: String::new(),
            arch: String::new(),
            unix_timestamp: 1_786_406_400,
            timestamp_source: "system-clock".to_string(),
        };
        assert_eq!(m.date(), "2026-08-07");
        let unknown = HostMeta { timestamp_source: "unavailable".to_string(), ..m };
        assert_eq!(unknown.date(), "unknown");
    }
}
