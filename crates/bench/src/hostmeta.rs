//! Host metadata for benchmark artifacts.
//!
//! Committed `BENCH_*.json` records are only interpretable with the host
//! they were produced on: `BENCH_parallel.json` was measured in a 1-core
//! container, where no wall-clock speedup is physically possible, and
//! nothing in the file said so until a human annotated it. Every emitter
//! embeds a [`HostMeta`] block so the provenance travels with the numbers.

use std::time::{SystemTime, UNIX_EPOCH};

/// A snapshot of the measuring host, collected at emit time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HostMeta {
    /// CPU model string (from `/proc/cpuinfo`; `"unknown"` elsewhere).
    pub cpu: String,
    /// Cores available to this process (`std::thread::available_parallelism`).
    pub available_cores: usize,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Seconds since the Unix epoch at collection time.
    pub unix_timestamp: u64,
    /// Where the timestamp came from — `"system-clock"` normally,
    /// `"unavailable"` when the clock reads before the epoch (the
    /// timestamp is then 0, visibly sentinel rather than silently wrong).
    pub timestamp_source: String,
}

impl HostMeta {
    /// Collects the current host's metadata. Infallible: every field
    /// degrades to an explicit `"unknown"`/zero rather than erroring, so
    /// emitters never lose a benchmark record to missing `/proc`.
    pub fn collect() -> HostMeta {
        let cpu = std::fs::read_to_string("/proc/cpuinfo")
            .ok()
            .and_then(|s| {
                s.lines()
                    .find(|l| l.starts_with("model name"))
                    .and_then(|l| l.split_once(':').map(|(_, model)| model.trim().to_string()))
            })
            .unwrap_or_else(|| "unknown".to_string());
        let available_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        let (unix_timestamp, timestamp_source) = match SystemTime::now().duration_since(UNIX_EPOCH)
        {
            Ok(d) => (d.as_secs(), "system-clock".to_string()),
            Err(_) => (0, "unavailable".to_string()),
        };
        HostMeta {
            cpu,
            available_cores,
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            unix_timestamp,
            timestamp_source,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collect_is_total() {
        let m = HostMeta::collect();
        assert!(m.available_cores >= 1);
        assert!(!m.cpu.is_empty());
        assert!(!m.os.is_empty());
        assert!(!m.arch.is_empty());
        assert!(m.timestamp_source == "system-clock" || m.timestamp_source == "unavailable");
        if m.timestamp_source == "system-clock" {
            // Sanity: after 2020-01-01, before 2100.
            assert!(m.unix_timestamp > 1_577_836_800 && m.unix_timestamp < 4_102_444_800);
        }
    }
}
