//! On-disk preprocessing cache for the figure harness.
//!
//! OAG construction dominates harness start-up (it is the preprocessing the
//! paper amortizes across algorithm executions, §VI-G); the stand-in
//! datasets themselves are also regenerated on every invocation. This cache
//! persists both artifacts between `figures` runs using the existing binary
//! codecs (`hypergraph::io`, `oag::io`), so a repeated invocation skips
//! straight to simulation.
//!
//! Correctness: cache keys are FNV-1a fingerprints of the *content* that
//! produced an artifact — for graphs the generator configuration and scale,
//! for OAGs the full binary serialization of the source hypergraph plus the
//! `OagConfig` and side. Any change to a generator, a dataset definition or
//! an OAG parameter changes the key, so a stale entry can only miss; and
//! both binary codecs round-trip exactly (`Eq`-tested in their own crates),
//! so a hit returns bit-identical artifacts and every downstream report is
//! unchanged. Hit/miss counters are reported in the run log.
//!
//! Fault tolerance (DESIGN.md §"Fault tolerance"): the v2 binary formats
//! carry trailing FNV-1a checksums, so a truncated, torn or bit-flipped
//! entry is *detected* on read. A corrupt entry is quarantined — renamed to
//! `<entry>.corrupt` so it is never re-read and remains available for
//! post-mortems — the event is logged to stderr, and the caller
//! transparently recomputes. A corrupt cache can therefore never change
//! results, only cost time.

use crate::Scale;
use hypergraph::checksum::{Fnv64, HashingReader, HashingWriter};
use hypergraph::datasets::Dataset;
use hypergraph::{Hypergraph, Side};
use oag::{Oag, OagBuildStats, OagConfig};
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, SystemTime};

const OAG_ENTRY_MAGIC: &[u8; 4] = b"CHGC";
/// Entry version written by [`PreprocessCache::store_oag`]: v2 appends a
/// trailing FNV-1a checksum over the whole entry (covering the stats
/// prefix, which the inner OAG blob's own checksum does not). v1 entries
/// (no entry checksum, v1 inner blob) remain readable.
const OAG_ENTRY_VERSION: u32 = 2;
const OAG_ENTRY_MIN_VERSION: u32 = 1;

/// Stale `*.tmp.<pid>` files older than this at cache-open time are swept:
/// they can only be leftovers of a writer that died mid-write (a live
/// concurrent writer renames its tmp file within seconds).
const DEFAULT_TMP_TTL: Duration = Duration::from_secs(600);

/// An `io::Write` sink that FNV-1a fingerprints everything written to it,
/// so the existing binary writers double as fingerprinters. Infallible:
/// every write is accepted in full.
struct FnvSink(Fnv64);

impl FnvSink {
    fn new() -> Self {
        FnvSink(Fnv64::new())
    }

    fn push_bytes(&mut self, bytes: &[u8]) {
        self.0.update(bytes);
    }

    fn digest(&self) -> u64 {
        self.0.digest()
    }
}

impl Write for FnvSink {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.update(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Content fingerprint of a hypergraph (its exact binary serialization).
pub fn graph_fingerprint(g: &Hypergraph) -> u64 {
    let mut w = FnvSink::new();
    // FnvSink::write never fails, so the serializer cannot return an
    // error; ignore the Result instead of panicking on the impossible.
    let _ = hypergraph::io::write_binary(g, &mut w);
    w.digest()
}

/// A snapshot of a cache's hit/miss/quarantine counters, split per artifact
/// kind — the machine-readable complement to [`PreprocessCache::summary`],
/// consumed by the serving layer's stats endpoint.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Graph entries served from disk.
    pub graph_hits: u64,
    /// Graph lookups that missed (absent or quarantined).
    pub graph_misses: u64,
    /// OAG entries served from disk.
    pub oag_hits: u64,
    /// OAG lookups that missed (absent or quarantined).
    pub oag_misses: u64,
    /// Corrupt entries quarantined.
    pub quarantined: u64,
}

/// A directory of cached preprocessing artifacts with hit/miss accounting.
pub struct PreprocessCache {
    dir: PathBuf,
    graph_hits: AtomicU64,
    graph_misses: AtomicU64,
    oag_hits: AtomicU64,
    oag_misses: AtomicU64,
    quarantined: AtomicU64,
    /// When set, [`quarantine`](Self::quarantine) deletes corrupt entries
    /// instead of renaming them to `*.corrupt`. Long-lived daemons enable
    /// this so recovery converges to a residue-free cache directory; the
    /// harness default keeps the rename for post-mortems.
    remove_corrupt: AtomicBool,
}

impl PreprocessCache {
    /// Opens (creating if needed) a cache rooted at `dir`, sweeping stale
    /// temp files left behind by writers that died mid-write.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let cache = PreprocessCache {
            dir,
            graph_hits: AtomicU64::new(0),
            graph_misses: AtomicU64::new(0),
            oag_hits: AtomicU64::new(0),
            oag_misses: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
            remove_corrupt: AtomicBool::new(false),
        };
        cache.sweep_stale_tmp(DEFAULT_TMP_TTL);
        Ok(cache)
    }

    /// Selects what [`quarantine`](Self::quarantine) does with a corrupt
    /// entry: `false` (default) renames it to `*.corrupt` for post-mortems;
    /// `true` deletes it outright — the policy for long-lived daemons whose
    /// cache directory must stay residue-free across crash recovery.
    pub fn set_remove_corrupt(&self, remove: bool) {
        self.remove_corrupt.store(remove, Ordering::Relaxed);
    }

    /// Deletes every `*.corrupt` quarantine file in the cache directory,
    /// returning how many were removed. Failures are ignored — this is
    /// hygiene, never a correctness dependency.
    pub fn purge_corrupt(&self) -> usize {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return 0;
        };
        let mut removed = 0;
        for entry in entries.flatten() {
            let path = entry.path();
            let is_corrupt =
                path.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.ends_with(".corrupt"));
            if is_corrupt && fs::remove_file(&path).is_ok() {
                removed += 1;
            }
        }
        removed
    }

    /// Crash recovery after an unclean shutdown (e.g. SIGKILL mid-write):
    /// sweeps **every** `*.tmp.*` leftover regardless of age (no writer from
    /// a previous life can still be live) and purges `*.corrupt` residue.
    /// Torn final entries need no sweep — their checksums fail on first read
    /// and the normal quarantine-and-recompute path self-heals them.
    /// Returns `(tmp_swept, corrupt_purged)`.
    pub fn recover(&self) -> (usize, usize) {
        (self.sweep_stale_tmp(Duration::ZERO), self.purge_corrupt())
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Removes `*.tmp.<pid>` files older than `ttl`. Anything that old
    /// predates this process (which was just started when the cache was
    /// opened), so its writer is gone and never renamed it into place.
    /// Returns the number of files removed. Failures are ignored — the
    /// sweep is hygiene, never a correctness dependency.
    pub fn sweep_stale_tmp(&self, ttl: Duration) -> usize {
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return 0;
        };
        let now = SystemTime::now();
        let mut removed = 0;
        for entry in entries.flatten() {
            let path = entry.path();
            let is_tmp =
                path.file_name().and_then(|n| n.to_str()).is_some_and(|n| n.contains(".tmp."));
            if !is_tmp {
                continue;
            }
            let stale = entry
                .metadata()
                .and_then(|m| m.modified())
                .ok()
                .and_then(|mtime| now.duration_since(mtime).ok())
                .is_some_and(|age| age >= ttl);
            if stale && fs::remove_file(&path).is_ok() {
                removed += 1;
            }
        }
        removed
    }

    fn graph_path(&self, ds: Dataset, scale: Scale) -> PathBuf {
        // Key on the generator configuration (not just the dataset name):
        // retuning a stand-in invalidates its cached graphs.
        let mut fp = FnvSink::new();
        fp.push_bytes(format!("{:?}", ds.config()).as_bytes());
        fp.push_bytes(&scale.factor().to_bits().to_le_bytes());
        self.dir.join(format!("graph_{}_{:016x}.bin", ds.abbrev().to_lowercase(), fp.digest()))
    }

    fn oag_path(&self, g: &Hypergraph, cfg: &OagConfig, side: Side) -> PathBuf {
        let mut fp = FnvSink::new();
        fp.push_bytes(&graph_fingerprint(g).to_le_bytes());
        fp.push_bytes(format!("{cfg:?}/{side:?}").as_bytes());
        self.dir.join(format!("oag_{:016x}.bin", fp.digest()))
    }

    /// Loads the cached stand-in for `(ds, scale)`, if present and intact.
    /// A present-but-corrupt entry is quarantined and reported as a miss,
    /// so the caller regenerates and overwrites it.
    pub fn load_graph(&self, ds: Dataset, scale: Scale) -> Option<Hypergraph> {
        let path = self.graph_path(ds, scale);
        let g = match File::open(&path) {
            Err(_) => None,
            Ok(f) => match hypergraph::io::read_binary(BufReader::new(f)) {
                Ok(g) => Some(g),
                Err(e) => {
                    self.quarantine(&path, &e.to_string());
                    None
                }
            },
        };
        self.count(g.is_some(), &self.graph_hits, &self.graph_misses);
        g
    }

    /// Persists the stand-in for `(ds, scale)`. Failures are ignored — the
    /// cache is an accelerator, never a correctness dependency.
    pub fn store_graph(&self, ds: Dataset, scale: Scale, g: &Hypergraph) {
        let _ = self
            .write_atomically(&self.graph_path(ds, scale), |w| hypergraph::io::write_binary(g, w));
    }

    /// Loads the cached OAG (and its build statistics) for `g` under
    /// `cfg`/`side`, if present and intact. A present-but-corrupt entry is
    /// quarantined and reported as a miss.
    pub fn load_oag(
        &self,
        g: &Hypergraph,
        cfg: &OagConfig,
        side: Side,
    ) -> Option<(Oag, OagBuildStats)> {
        let path = self.oag_path(g, cfg, side);
        let loaded = match File::open(&path) {
            Err(_) => None,
            Ok(f) => match read_oag_entry(BufReader::new(f)) {
                Ok(entry) => Some(entry),
                Err(e) => {
                    self.quarantine(&path, &e.to_string());
                    None
                }
            },
        };
        self.count(loaded.is_some(), &self.oag_hits, &self.oag_misses);
        loaded
    }

    /// Persists one side's OAG and build statistics.
    pub fn store_oag(
        &self,
        g: &Hypergraph,
        cfg: &OagConfig,
        side: Side,
        oag: &Oag,
        stats: &OagBuildStats,
    ) {
        let _ =
            self.write_atomically(&self.oag_path(g, cfg, side), |w| write_oag_entry(w, oag, stats));
    }

    /// Moves a corrupt entry out of the lookup path (to `<entry>.corrupt`)
    /// so it can never be re-read, logging the event. The caller treats
    /// the lookup as a miss and recomputes, so corruption costs time, not
    /// correctness.
    fn quarantine(&self, path: &Path, reason: &str) {
        self.quarantined.fetch_add(1, Ordering::Relaxed);
        let mut target = path.as_os_str().to_owned();
        target.push(".corrupt");
        let outcome = if self.remove_corrupt.load(Ordering::Relaxed) {
            if fs::remove_file(path).is_ok() {
                "removed"
            } else {
                "could not remove"
            }
        } else if fs::rename(path, &target).is_ok() {
            "quarantined"
        } else if fs::remove_file(path).is_ok() {
            // Rename can fail (e.g. a stale .corrupt file is in the way on
            // some platforms); removal equally keeps the entry from being
            // re-read.
            "removed"
        } else {
            "could not quarantine"
        };
        eprintln!(
            "[preprocess cache: corrupt entry {} ({reason}) — {outcome}, will recompute]",
            path.display()
        );
    }

    fn count(&self, hit: bool, hits: &AtomicU64, misses: &AtomicU64) {
        if hit { hits } else { misses }.fetch_add(1, Ordering::Relaxed);
    }

    /// Write-to-temp + rename so concurrent harness processes never observe
    /// a torn entry. The temp file is removed if the write closure or the
    /// rename fails, so failed writes leave nothing behind.
    fn write_atomically(
        &self,
        path: &Path,
        write: impl FnOnce(&mut BufWriter<File>) -> io::Result<()>,
    ) -> io::Result<()> {
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let result = (|| {
            let mut w = BufWriter::new(File::create(&tmp)?);
            write(&mut w)?;
            w.flush()?;
            drop(w);
            fs::rename(&tmp, path)
        })();
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    /// One-line hit/miss summary for the run log.
    pub fn summary(&self) -> String {
        let quarantined = self.quarantined.load(Ordering::Relaxed);
        let tail = if quarantined > 0 {
            format!(
                ", {quarantined} corrupt entr{} quarantined",
                if quarantined == 1 { "y" } else { "ies" }
            )
        } else {
            String::new()
        };
        format!(
            "preprocess cache [{}]: graphs {} hit / {} miss, oags {} hit / {} miss{tail}",
            self.dir.display(),
            self.graph_hits.load(Ordering::Relaxed),
            self.graph_misses.load(Ordering::Relaxed),
            self.oag_hits.load(Ordering::Relaxed),
            self.oag_misses.load(Ordering::Relaxed),
        )
    }

    /// Total artifact hits (graphs + OAGs).
    pub fn hits(&self) -> u64 {
        self.graph_hits.load(Ordering::Relaxed) + self.oag_hits.load(Ordering::Relaxed)
    }

    /// Total artifact misses (graphs + OAGs).
    pub fn misses(&self) -> u64 {
        self.graph_misses.load(Ordering::Relaxed) + self.oag_misses.load(Ordering::Relaxed)
    }

    /// Number of corrupt entries quarantined so far.
    pub fn quarantined(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Per-kind counter snapshot (see [`CacheStats`]).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            graph_hits: self.graph_hits.load(Ordering::Relaxed),
            graph_misses: self.graph_misses.load(Ordering::Relaxed),
            oag_hits: self.oag_hits.load(Ordering::Relaxed),
            oag_misses: self.oag_misses.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
        }
    }
}

fn write_oag_entry<W: Write>(w: W, oag: &Oag, stats: &OagBuildStats) -> io::Result<()> {
    let mut w = HashingWriter::new(w);
    w.write_all(OAG_ENTRY_MAGIC)?;
    w.write_all(&OAG_ENTRY_VERSION.to_le_bytes())?;
    w.write_all(&stats.two_hop_steps.to_le_bytes())?;
    w.write_all(&stats.pairs_considered.to_le_bytes())?;
    w.write_all(&(stats.edges_kept as u64).to_le_bytes())?;
    w.write_all(&stats.pivots_skipped.to_le_bytes())?;
    w.write_all(&(stats.size_bytes as u64).to_le_bytes())?;
    oag::io::write_binary(oag, &mut w)?;
    let digest = w.digest();
    w.into_inner().write_all(&digest.to_le_bytes())
}

fn read_oag_entry<R: Read>(r: R) -> io::Result<(Oag, OagBuildStats)> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let mut r = HashingReader::new(r);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != OAG_ENTRY_MAGIC {
        return Err(bad("bad cache entry magic"));
    }
    let mut word = [0u8; 4];
    r.read_exact(&mut word)?;
    let version = u32::from_le_bytes(word);
    if !(OAG_ENTRY_MIN_VERSION..=OAG_ENTRY_VERSION).contains(&version) {
        return Err(bad("unsupported cache entry version"));
    }
    let mut u64_field = || -> io::Result<u64> {
        let mut b = [0u8; 8];
        r.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    };
    let stats = OagBuildStats {
        two_hop_steps: u64_field()?,
        pairs_considered: u64_field()?,
        edges_kept: u64_field()? as usize,
        pivots_skipped: u64_field()?,
        size_bytes: u64_field()? as usize,
    };
    let oag = oag::io::read_binary(&mut r)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    if version >= 2 {
        let computed = r.digest();
        let mut trailer = [0u8; 8];
        r.get_mut().read_exact(&mut trailer)?;
        let stored = u64::from_le_bytes(trailer);
        if stored != computed {
            return Err(bad("cache entry checksum mismatch"));
        }
    }
    Ok((oag, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("chg-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn oag_roundtrip_is_exact() {
        let dir = tmpdir("oag");
        let cache = PreprocessCache::new(&dir).unwrap();
        let g = crate::load_scaled(Dataset::LiveJournal, Scale(0.05));
        let cfg = OagConfig::new();
        let (oag, stats) = cfg.build_with_stats(&g, Side::Hyperedge);
        assert!(cache.load_oag(&g, &cfg, Side::Hyperedge).is_none());
        cache.store_oag(&g, &cfg, Side::Hyperedge, &oag, &stats);
        let (oag2, stats2) = cache.load_oag(&g, &cfg, Side::Hyperedge).expect("hit");
        assert_eq!(oag, oag2);
        assert_eq!(stats, stats2);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_and_side_distinguish_entries() {
        let dir = tmpdir("keys");
        let cache = PreprocessCache::new(&dir).unwrap();
        let g = crate::load_scaled(Dataset::LiveJournal, Scale(0.05));
        let cfg = OagConfig::new();
        let (oag, stats) = cfg.build_with_stats(&g, Side::Hyperedge);
        cache.store_oag(&g, &cfg, Side::Hyperedge, &oag, &stats);
        assert!(cache.load_oag(&g, &cfg, Side::Vertex).is_none(), "side must key");
        let other = cfg.with_w_min(7);
        assert!(cache.load_oag(&g, &other, Side::Hyperedge).is_none(), "config must key");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn graph_roundtrip_is_exact() {
        let dir = tmpdir("graph");
        let cache = PreprocessCache::new(&dir).unwrap();
        let g = crate::load_scaled(Dataset::Friendster, Scale(0.05));
        assert!(cache.load_graph(Dataset::Friendster, Scale(0.05)).is_none());
        cache.store_graph(Dataset::Friendster, Scale(0.05), &g);
        let g2 = cache.load_graph(Dataset::Friendster, Scale(0.05)).expect("hit");
        assert_eq!(g, g2);
        assert!(cache.load_graph(Dataset::Friendster, Scale(0.1)).is_none(), "scale must key");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_graph_entry_is_quarantined_and_recomputed() {
        let dir = tmpdir("quarantine");
        let cache = PreprocessCache::new(&dir).unwrap();
        let g = crate::load_scaled(Dataset::Friendster, Scale(0.05));
        cache.store_graph(Dataset::Friendster, Scale(0.05), &g);
        let path = cache.graph_path(Dataset::Friendster, Scale(0.05));
        // Flip one payload bit on disk.
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(cache.load_graph(Dataset::Friendster, Scale(0.05)).is_none(), "corrupt => miss");
        assert_eq!(cache.quarantined(), 1);
        assert!(!path.exists(), "corrupt entry must leave the lookup path");
        let mut corrupt = path.as_os_str().to_owned();
        corrupt.push(".corrupt");
        assert!(Path::new(&corrupt).exists(), "quarantined copy kept for post-mortems");
        // The standard store-after-miss flow self-heals the entry.
        cache.store_graph(Dataset::Friendster, Scale(0.05), &g);
        assert_eq!(cache.load_graph(Dataset::Friendster, Scale(0.05)).expect("healed"), g);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_oag_entry_is_quarantined() {
        let dir = tmpdir("truncated");
        let cache = PreprocessCache::new(&dir).unwrap();
        let g = crate::load_scaled(Dataset::LiveJournal, Scale(0.05));
        let cfg = OagConfig::new();
        let (oag, stats) = cfg.build_with_stats(&g, Side::Hyperedge);
        cache.store_oag(&g, &cfg, Side::Hyperedge, &oag, &stats);
        let path = cache.oag_path(&g, &cfg, Side::Hyperedge);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 3]).unwrap();
        assert!(cache.load_oag(&g, &cfg, Side::Hyperedge).is_none(), "torn => miss");
        assert_eq!(cache.quarantined(), 1);
        assert!(!path.exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_write_leaves_no_tmp_files() {
        let dir = tmpdir("tmpclean");
        let cache = PreprocessCache::new(&dir).unwrap();
        let err = cache.write_atomically(&dir.join("never.bin"), |_w| {
            Err(io::Error::other("injected write failure"))
        });
        assert!(err.is_err());
        let leftovers: Vec<_> = fs::read_dir(&dir).unwrap().flatten().collect();
        assert!(leftovers.is_empty(), "failed write must clean up its tmp file: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_files_are_swept_at_open() {
        let dir = tmpdir("tmpsweep");
        fs::create_dir_all(&dir).unwrap();
        let stale = dir.join("graph_x.tmp.99999");
        fs::write(&stale, b"half-written").unwrap();
        // Age the file so the TTL check sees it as predating the process.
        let old = SystemTime::now() - Duration::from_secs(24 * 3600);
        let f = File::options().write(true).open(&stale).unwrap();
        f.set_times(fs::FileTimes::new().set_modified(old)).unwrap();
        drop(f);
        let _cache = PreprocessCache::new(&dir).unwrap();
        assert!(!stale.exists(), "stale tmp file must be swept at cache open");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recover_sweeps_fresh_tmp_and_purges_corrupt() {
        let dir = tmpdir("recover");
        fs::create_dir_all(&dir).unwrap();
        // A fresh tmp file (as if SIGKILL hit mid-write) and a quarantine
        // leftover from a previous life.
        fs::write(dir.join("graph_z.tmp.4242"), b"torn write").unwrap();
        fs::write(dir.join("oag_dead.bin.corrupt"), b"old quarantine").unwrap();
        let cache = PreprocessCache::new(&dir).unwrap();
        assert_eq!(cache.recover(), (1, 1));
        let leftovers: Vec<_> = fs::read_dir(&dir).unwrap().flatten().collect();
        assert!(leftovers.is_empty(), "recovery must leave no residue: {leftovers:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_corrupt_mode_deletes_instead_of_renaming() {
        let dir = tmpdir("removecorrupt");
        let cache = PreprocessCache::new(&dir).unwrap();
        cache.set_remove_corrupt(true);
        let g = crate::load_scaled(Dataset::Friendster, Scale(0.05));
        cache.store_graph(Dataset::Friendster, Scale(0.05), &g);
        let path = cache.graph_path(Dataset::Friendster, Scale(0.05));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(cache.load_graph(Dataset::Friendster, Scale(0.05)).is_none());
        assert_eq!(cache.quarantined(), 1);
        assert!(!path.exists());
        let mut corrupt = path.as_os_str().to_owned();
        corrupt.push(".corrupt");
        assert!(!Path::new(&corrupt).exists(), "remove mode must not leave *.corrupt behind");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_tmp_files_survive_the_sweep() {
        let dir = tmpdir("tmpfresh");
        fs::create_dir_all(&dir).unwrap();
        let fresh = dir.join("graph_y.tmp.12345");
        fs::write(&fresh, b"concurrent writer in flight").unwrap();
        let cache = PreprocessCache::new(&dir).unwrap();
        assert!(fresh.exists(), "a just-written tmp file may belong to a live writer");
        assert_eq!(cache.sweep_stale_tmp(Duration::ZERO), 1, "ttl=0 sweeps everything");
        assert!(!fresh.exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
