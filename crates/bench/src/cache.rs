//! On-disk preprocessing cache for the figure harness.
//!
//! OAG construction dominates harness start-up (it is the preprocessing the
//! paper amortizes across algorithm executions, §VI-G); the stand-in
//! datasets themselves are also regenerated on every invocation. This cache
//! persists both artifacts between `figures` runs using the existing binary
//! codecs (`hypergraph::io`, `oag::io`), so a repeated invocation skips
//! straight to simulation.
//!
//! Correctness: cache keys are FNV-1a fingerprints of the *content* that
//! produced an artifact — for graphs the generator configuration and scale,
//! for OAGs the full binary serialization of the source hypergraph plus the
//! `OagConfig` and side. Any change to a generator, a dataset definition or
//! an OAG parameter changes the key, so a stale entry can only miss; and
//! both binary codecs round-trip exactly (`Eq`-tested in their own crates),
//! so a hit returns bit-identical artifacts and every downstream report is
//! unchanged. Hit/miss counters are reported in the run log.

use crate::Scale;
use hypergraph::datasets::Dataset;
use hypergraph::{Hypergraph, Side};
use oag::{Oag, OagBuildStats, OagConfig};
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const OAG_ENTRY_MAGIC: &[u8; 4] = b"CHGC";
const OAG_ENTRY_VERSION: u32 = 1;

/// FNV-1a over a byte stream, usable as an `io::Write` sink so existing
/// binary writers double as fingerprinters.
struct FnvWriter(u64);

impl FnvWriter {
    fn new() -> Self {
        FnvWriter(0xcbf2_9ce4_8422_2325)
    }

    fn push_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
}

impl Write for FnvWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.push_bytes(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Content fingerprint of a hypergraph (its exact binary serialization).
pub fn graph_fingerprint(g: &Hypergraph) -> u64 {
    let mut w = FnvWriter::new();
    hypergraph::io::write_binary(g, &mut w).expect("fingerprint sink cannot fail");
    w.0
}

/// A directory of cached preprocessing artifacts with hit/miss accounting.
pub struct PreprocessCache {
    dir: PathBuf,
    graph_hits: AtomicU64,
    graph_misses: AtomicU64,
    oag_hits: AtomicU64,
    oag_misses: AtomicU64,
}

impl PreprocessCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(PreprocessCache {
            dir,
            graph_hits: AtomicU64::new(0),
            graph_misses: AtomicU64::new(0),
            oag_hits: AtomicU64::new(0),
            oag_misses: AtomicU64::new(0),
        })
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn graph_path(&self, ds: Dataset, scale: Scale) -> PathBuf {
        // Key on the generator configuration (not just the dataset name):
        // retuning a stand-in invalidates its cached graphs.
        let mut fp = FnvWriter::new();
        fp.push_bytes(format!("{:?}", ds.config()).as_bytes());
        fp.push_bytes(&scale.factor().to_bits().to_le_bytes());
        self.dir.join(format!("graph_{}_{:016x}.bin", ds.abbrev().to_lowercase(), fp.0))
    }

    fn oag_path(&self, g: &Hypergraph, cfg: &OagConfig, side: Side) -> PathBuf {
        let mut fp = FnvWriter::new();
        fp.push_bytes(&graph_fingerprint(g).to_le_bytes());
        fp.push_bytes(format!("{cfg:?}/{side:?}").as_bytes());
        self.dir.join(format!("oag_{:016x}.bin", fp.0))
    }

    /// Loads the cached stand-in for `(ds, scale)`, if present and intact.
    pub fn load_graph(&self, ds: Dataset, scale: Scale) -> Option<Hypergraph> {
        let g = File::open(self.graph_path(ds, scale))
            .ok()
            .and_then(|f| hypergraph::io::read_binary(BufReader::new(f)).ok());
        self.count(g.is_some(), &self.graph_hits, &self.graph_misses);
        g
    }

    /// Persists the stand-in for `(ds, scale)`. Failures are ignored — the
    /// cache is an accelerator, never a correctness dependency.
    pub fn store_graph(&self, ds: Dataset, scale: Scale, g: &Hypergraph) {
        let _ = self
            .write_atomically(&self.graph_path(ds, scale), |w| hypergraph::io::write_binary(g, w));
    }

    /// Loads the cached OAG (and its build statistics) for `g` under
    /// `cfg`/`side`, if present and intact.
    pub fn load_oag(
        &self,
        g: &Hypergraph,
        cfg: &OagConfig,
        side: Side,
    ) -> Option<(Oag, OagBuildStats)> {
        let loaded = File::open(self.oag_path(g, cfg, side))
            .ok()
            .and_then(|f| read_oag_entry(BufReader::new(f)).ok());
        self.count(loaded.is_some(), &self.oag_hits, &self.oag_misses);
        loaded
    }

    /// Persists one side's OAG and build statistics.
    pub fn store_oag(
        &self,
        g: &Hypergraph,
        cfg: &OagConfig,
        side: Side,
        oag: &Oag,
        stats: &OagBuildStats,
    ) {
        let _ =
            self.write_atomically(&self.oag_path(g, cfg, side), |w| write_oag_entry(w, oag, stats));
    }

    fn count(&self, hit: bool, hits: &AtomicU64, misses: &AtomicU64) {
        if hit { hits } else { misses }.fetch_add(1, Ordering::Relaxed);
    }

    /// Write-to-temp + rename so concurrent harness processes never observe
    /// a torn entry.
    fn write_atomically(
        &self,
        path: &Path,
        write: impl FnOnce(&mut BufWriter<File>) -> io::Result<()>,
    ) -> io::Result<()> {
        let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
        let mut w = BufWriter::new(File::create(&tmp)?);
        write(&mut w)?;
        w.flush()?;
        drop(w);
        fs::rename(&tmp, path)
    }

    /// One-line hit/miss summary for the run log.
    pub fn summary(&self) -> String {
        format!(
            "preprocess cache [{}]: graphs {} hit / {} miss, oags {} hit / {} miss",
            self.dir.display(),
            self.graph_hits.load(Ordering::Relaxed),
            self.graph_misses.load(Ordering::Relaxed),
            self.oag_hits.load(Ordering::Relaxed),
            self.oag_misses.load(Ordering::Relaxed),
        )
    }

    /// Total artifact hits (graphs + OAGs).
    pub fn hits(&self) -> u64 {
        self.graph_hits.load(Ordering::Relaxed) + self.oag_hits.load(Ordering::Relaxed)
    }

    /// Total artifact misses (graphs + OAGs).
    pub fn misses(&self) -> u64 {
        self.graph_misses.load(Ordering::Relaxed) + self.oag_misses.load(Ordering::Relaxed)
    }
}

fn write_oag_entry<W: Write>(mut w: W, oag: &Oag, stats: &OagBuildStats) -> io::Result<()> {
    w.write_all(OAG_ENTRY_MAGIC)?;
    w.write_all(&OAG_ENTRY_VERSION.to_le_bytes())?;
    w.write_all(&stats.two_hop_steps.to_le_bytes())?;
    w.write_all(&stats.pairs_considered.to_le_bytes())?;
    w.write_all(&(stats.edges_kept as u64).to_le_bytes())?;
    w.write_all(&stats.pivots_skipped.to_le_bytes())?;
    w.write_all(&(stats.size_bytes as u64).to_le_bytes())?;
    oag::io::write_binary(oag, w)
}

fn read_oag_entry<R: Read>(mut r: R) -> io::Result<(Oag, OagBuildStats)> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != OAG_ENTRY_MAGIC {
        return Err(bad("bad cache entry magic"));
    }
    let mut word = [0u8; 4];
    r.read_exact(&mut word)?;
    if u32::from_le_bytes(word) != OAG_ENTRY_VERSION {
        return Err(bad("unsupported cache entry version"));
    }
    let mut u64_field = || -> io::Result<u64> {
        let mut b = [0u8; 8];
        r.read_exact(&mut b)?;
        Ok(u64::from_le_bytes(b))
    };
    let stats = OagBuildStats {
        two_hop_steps: u64_field()?,
        pairs_considered: u64_field()?,
        edges_kept: u64_field()? as usize,
        pivots_skipped: u64_field()?,
        size_bytes: u64_field()? as usize,
    };
    let oag = oag::io::read_binary(BufReader::new(r))
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok((oag, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("chg-cache-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn oag_roundtrip_is_exact() {
        let dir = tmpdir("oag");
        let cache = PreprocessCache::new(&dir).unwrap();
        let g = crate::load_scaled(Dataset::LiveJournal, Scale(0.05));
        let cfg = OagConfig::new();
        let (oag, stats) = cfg.build_with_stats(&g, Side::Hyperedge);
        assert!(cache.load_oag(&g, &cfg, Side::Hyperedge).is_none());
        cache.store_oag(&g, &cfg, Side::Hyperedge, &oag, &stats);
        let (oag2, stats2) = cache.load_oag(&g, &cfg, Side::Hyperedge).expect("hit");
        assert_eq!(oag, oag2);
        assert_eq!(stats, stats2);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn config_and_side_distinguish_entries() {
        let dir = tmpdir("keys");
        let cache = PreprocessCache::new(&dir).unwrap();
        let g = crate::load_scaled(Dataset::LiveJournal, Scale(0.05));
        let cfg = OagConfig::new();
        let (oag, stats) = cfg.build_with_stats(&g, Side::Hyperedge);
        cache.store_oag(&g, &cfg, Side::Hyperedge, &oag, &stats);
        assert!(cache.load_oag(&g, &cfg, Side::Vertex).is_none(), "side must key");
        let other = cfg.with_w_min(7);
        assert!(cache.load_oag(&g, &other, Side::Hyperedge).is_none(), "config must key");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn graph_roundtrip_is_exact() {
        let dir = tmpdir("graph");
        let cache = PreprocessCache::new(&dir).unwrap();
        let g = crate::load_scaled(Dataset::Friendster, Scale(0.05));
        assert!(cache.load_graph(Dataset::Friendster, Scale(0.05)).is_none());
        cache.store_graph(Dataset::Friendster, Scale(0.05), &g);
        let g2 = cache.load_graph(Dataset::Friendster, Scale(0.05)).expect("hit");
        assert_eq!(g, g2);
        assert!(cache.load_graph(Dataset::Friendster, Scale(0.1)).is_none(), "scale must key");
        let _ = fs::remove_dir_all(&dir);
    }
}
