//! Deterministic I/O fault injection for the fault-tolerance test suite.
//!
//! [`FaultReader`] and [`FaultWriter`] wrap any `Read`/`Write` and inject
//! one configured [`Fault`] at an exact byte offset, so every recovery
//! path — truncation, bit flips, short reads, injected `io::Error`s, torn
//! writes — can be exercised reproducibly: the same `(stream, fault)` pair
//! always produces the same byte sequence. Test support; compiled under
//! the `fault-injection` feature (always on for this crate's own tests).

use std::io::{self, Read, Write};

/// One deterministic fault, keyed to a byte offset in the stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// The stream ends at `offset`: reads report EOF, writes silently
    /// drop everything past it (a torn write).
    Truncate {
        /// Byte offset at which the stream ends.
        offset: u64,
    },
    /// Flip bit `bit` (0–7) of the byte at `offset`; the stream otherwise
    /// flows unmodified.
    FlipBit {
        /// Byte offset of the corrupted byte.
        offset: u64,
        /// Which bit of that byte to flip.
        bit: u8,
    },
    /// From `offset` on, every read/write call transfers at most one byte
    /// (data stays intact — exercises partial-transfer handling).
    Short {
        /// Byte offset at which transfers become single-byte.
        offset: u64,
    },
    /// The call that would reach `offset` fails with [`io::ErrorKind::Other`],
    /// and keeps failing (a dead disk, not a transient hiccup).
    Error {
        /// Byte offset at which the stream starts erroring.
        offset: u64,
    },
}

fn injected_error() -> io::Error {
    io::Error::other("injected fault")
}

/// Flips the configured bit in `buf` if the fault's offset falls inside
/// the `[pos, pos + buf.len())` window just transferred.
fn apply_flip(fault: Fault, pos: u64, buf: &mut [u8]) {
    if let Fault::FlipBit { offset, bit } = fault {
        if offset >= pos && offset < pos + buf.len() as u64 {
            buf[(offset - pos) as usize] ^= 1 << (bit & 7);
        }
    }
}

/// A `Read` wrapper that injects its [`Fault`] at the configured offset.
pub struct FaultReader<R> {
    inner: R,
    fault: Fault,
    pos: u64,
}

impl<R: Read> FaultReader<R> {
    /// Wraps `inner` with the given fault.
    pub fn new(inner: R, fault: Fault) -> Self {
        FaultReader { inner, fault, pos: 0 }
    }

    /// Bytes yielded so far.
    pub fn position(&self) -> u64 {
        self.pos
    }
}

impl<R: Read> Read for FaultReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut limit = buf.len();
        match self.fault {
            Fault::Truncate { offset } => {
                if self.pos >= offset {
                    return Ok(0);
                }
                limit = limit.min((offset - self.pos) as usize);
            }
            Fault::Short { offset } => {
                if self.pos >= offset {
                    limit = limit.min(1);
                }
            }
            Fault::Error { offset } => {
                if self.pos + buf.len() as u64 > offset {
                    return Err(injected_error());
                }
            }
            Fault::FlipBit { .. } => {}
        }
        let n = self.inner.read(&mut buf[..limit])?;
        apply_flip(self.fault, self.pos, &mut buf[..n]);
        self.pos += n as u64;
        Ok(n)
    }
}

/// A `Write` wrapper that injects its [`Fault`] at the configured offset.
pub struct FaultWriter<W> {
    inner: W,
    fault: Fault,
    pos: u64,
}

impl<W: Write> FaultWriter<W> {
    /// Wraps `inner` with the given fault.
    pub fn new(inner: W, fault: Fault) -> Self {
        FaultWriter { inner, fault, pos: 0 }
    }

    /// Bytes accepted so far (including silently dropped ones).
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// The inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.fault {
            Fault::Truncate { offset } => {
                // Pretend success but drop everything past the offset — a
                // torn write the caller cannot see until read-back.
                let keep = if self.pos >= offset {
                    0
                } else {
                    buf.len().min((offset - self.pos) as usize)
                };
                self.inner.write_all(&buf[..keep])?;
                self.pos += buf.len() as u64;
                Ok(buf.len())
            }
            Fault::FlipBit { .. } => {
                let mut copy = buf.to_vec();
                apply_flip(self.fault, self.pos, &mut copy);
                let n = self.inner.write(&copy)?;
                self.pos += n as u64;
                Ok(n)
            }
            Fault::Short { offset } => {
                let limit = if self.pos >= offset { buf.len().min(1) } else { buf.len() };
                let n = self.inner.write(&buf[..limit])?;
                self.pos += n as u64;
                Ok(n)
            }
            Fault::Error { offset } => {
                if self.pos + buf.len() as u64 > offset {
                    return Err(injected_error());
                }
                let n = self.inner.write(buf)?;
                self.pos += n as u64;
                Ok(n)
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncating_reader_ends_early() {
        let data = [1u8, 2, 3, 4, 5, 6];
        let mut r = FaultReader::new(&data[..], Fault::Truncate { offset: 4 });
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, &data[..4]);
    }

    #[test]
    fn flipping_reader_corrupts_exactly_one_bit() {
        let data = [0u8; 8];
        let mut r = FaultReader::new(&data[..], Fault::FlipBit { offset: 5, bit: 3 });
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        let mut want = data;
        want[5] = 1 << 3;
        assert_eq!(out, want);
    }

    #[test]
    fn short_reader_preserves_data() {
        let data: Vec<u8> = (0..64).collect();
        let mut r = FaultReader::new(&data[..], Fault::Short { offset: 10 });
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, data, "short reads degrade throughput, not data");
    }

    #[test]
    fn erroring_reader_fails_at_offset() {
        let data = [0u8; 32];
        let mut r = FaultReader::new(&data[..], Fault::Error { offset: 8 });
        let mut first = [0u8; 8];
        r.read_exact(&mut first).unwrap();
        assert!(r.read_exact(&mut first).is_err(), "reads past the offset must error");
    }

    #[test]
    fn torn_writer_reports_success_but_drops_the_tail() {
        let mut w = FaultWriter::new(Vec::new(), Fault::Truncate { offset: 3 });
        w.write_all(b"abcdef").unwrap();
        assert_eq!(w.into_inner(), b"abc");
    }

    #[test]
    fn erroring_writer_fails_at_offset() {
        let mut w = FaultWriter::new(Vec::new(), Fault::Error { offset: 4 });
        assert!(w.write_all(b"abcd").is_ok());
        assert!(w.write_all(b"e").is_err());
    }
}
