//! Minimal aligned-table pretty printer for harness output.

use std::fmt;

/// A simple text table: a header row plus data rows, padded per column.
///
/// ```
/// use chg_bench::Table;
/// let mut t = Table::new(&["dataset", "speedup"]);
/// t.row(&["WEB".into(), "4.39".into()]);
/// let s = t.to_string();
/// assert!(s.contains("dataset"));
/// assert!(s.contains("4.39"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: appends a row from `Display` items.
    pub fn row_display<D: fmt::Display>(&mut self, cells: &[D]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.header.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            width[i] = h.len();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let print_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            for (i, c) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{c:<w$}", w = width[i])?;
            }
            writeln!(f)
        };
        print_row(f, &self.header)?;
        let total: usize = width.iter().sum::<usize>() + 2 * (ncols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            print_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["xxxxx".into(), "1".into()]);
        t.row_display(&[1.5, 2.25]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a    "));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
