//! Regeneration functions, one per table and figure of the paper.
//!
//! All functions take a [`Harness`], which owns the scale factor, the
//! machine configuration and a memo of executed reports, so composite
//! artifacts (Figs. 14, 15, 16, 22 share the same underlying runs) do not
//! re-simulate.

mod alternatives;
mod chains;
mod energy;
mod main_results;
mod motivation;
mod preprocessing;
mod sensitivity;
mod statics;

pub use alternatives::{fig23, fig24, fig25, Fig23, Fig24, Fig25};
pub use chains::{chains, ChainsFigure};
pub use energy::{energy, EnergyFigure};
pub use main_results::{fig14, fig15, fig16, fig22, Fig14, Fig15, Fig16, Fig22};
pub use motivation::{fig2, fig3, fig5, fig7, fig8, Fig2, Fig3, Fig5, Fig7, Fig8};
pub use preprocessing::{fig21, Fig21};
pub use sensitivity::{fig17, fig18, fig19, fig20, Fig17, Fig18, Fig19, Fig20};
pub use statics::{area_table, table1, table2, AreaTable, Table1, Table2};

use crate::{load_scaled, Scale};
use chgraph::{
    ChGraphRuntime, ExecutionReport, GlaRuntime, HatsVRuntime, HygraRuntime, PrefetcherRuntime,
    RunConfig, Runtime,
};
use hyperalgos::{run_workload, Workload};
use hypergraph::datasets::Dataset;
use hypergraph::Hypergraph;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// The systems compared across the evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum System {
    /// Hygra (index-ordered baseline).
    Hygra,
    /// Pure-software GLA.
    Gla,
    /// Full ChGraph (HCG + CP).
    ChGraph,
    /// HCG-only ablation.
    HcgOnly,
    /// HATS-V.
    HatsV,
    /// Event-driven hardware prefetcher.
    Prefetcher,
}

impl System {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            System::Hygra => "Hygra",
            System::Gla => "GLA",
            System::ChGraph => "ChGraph",
            System::HcgOnly => "HCG-only",
            System::HatsV => "HATS-V",
            System::Prefetcher => "Prefetcher",
        }
    }

    fn runtime(self) -> Box<dyn Runtime> {
        match self {
            System::Hygra => Box::new(HygraRuntime),
            System::Gla => Box::new(GlaRuntime),
            System::ChGraph => Box::new(ChGraphRuntime::new()),
            System::HcgOnly => Box::new(ChGraphRuntime::hcg_only()),
            System::HatsV => Box::new(HatsVRuntime),
            System::Prefetcher => Box::new(PrefetcherRuntime),
        }
    }
}

/// Execution context of the harness: scale, machine configuration, and a
/// memo of `(dataset, workload, system)` reports.
pub struct Harness {
    /// Dataset scale.
    pub scale: Scale,
    /// Run configuration used for every memoized execution.
    pub cfg: RunConfig,
    graphs: RefCell<HashMap<Dataset, Rc<Hypergraph>>>,
    reports: RefCell<HashMap<(Dataset, Workload, System), Rc<ExecutionReport>>>,
}

impl Harness {
    /// Creates a harness at the given scale with the default 16-core scaled
    /// machine. For sub-unity scales the cache capacities are shrunk by the
    /// same factor (to the nearest viable power of two), keeping the
    /// working-set:cache ratio — the property every result depends on — in
    /// the full-scale regime.
    pub fn new(scale: Scale) -> Self {
        let mut cfg = RunConfig::new();
        if scale.factor() < 1.0 {
            let shrink = |bytes: usize, f: f64, min: usize| {
                let target = (bytes as f64 * f) as usize;
                target.next_power_of_two().max(min)
            };
            // Private caches shrink faster than the LLC: the generator's
            // discovery regions scale with |V|, and index-order defeat
            // requires the region footprint to exceed the private caches.
            cfg.system.l1.size_bytes =
                shrink(cfg.system.l1.size_bytes, scale.factor() / 2.0, 1 << 10);
            cfg.system.l2.size_bytes =
                shrink(cfg.system.l2.size_bytes, scale.factor() / 2.0, 2 << 10);
            cfg.system.l3.size_bytes = shrink(cfg.system.l3.size_bytes, scale.factor(), 16 << 10);
        }
        Harness::with_config(scale, cfg)
    }

    /// Creates a harness with an explicit configuration.
    pub fn with_config(scale: Scale, cfg: RunConfig) -> Self {
        Harness {
            scale,
            cfg,
            graphs: RefCell::new(HashMap::new()),
            reports: RefCell::new(HashMap::new()),
        }
    }

    /// The (cached) scaled stand-in hypergraph for `ds`.
    pub fn graph(&self, ds: Dataset) -> Rc<Hypergraph> {
        self.graphs
            .borrow_mut()
            .entry(ds)
            .or_insert_with(|| Rc::new(load_scaled(ds, self.scale)))
            .clone()
    }

    /// The (memoized) execution report of `workload` on `ds` under `sys`.
    pub fn report(&self, ds: Dataset, workload: Workload, sys: System) -> Rc<ExecutionReport> {
        if let Some(r) = self.reports.borrow().get(&(ds, workload, sys)) {
            return r.clone();
        }
        let g = self.graph(ds);
        let runtime = sys.runtime();
        let report = Rc::new(run_workload(workload, runtime.as_ref(), &g, &self.cfg));
        self.reports.borrow_mut().insert((ds, workload, sys), report.clone());
        report
    }

    /// Runs `workload` on `ds` under `sys` with an explicit non-memoized
    /// configuration (sensitivity sweeps).
    pub fn run_with(
        &self,
        ds: Dataset,
        workload: Workload,
        sys: System,
        cfg: &RunConfig,
    ) -> ExecutionReport {
        let g = self.graph(ds);
        run_workload(workload, sys.runtime().as_ref(), &g, cfg)
    }
}

/// Formats a ratio as `N.NNx`.
pub(crate) fn fx(r: f64) -> String {
    format!("{r:.2}x")
}

/// Formats a fraction as a percentage.
pub(crate) fn pct(r: f64) -> String {
    format!("{:.1}%", r * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_memoizes_reports() {
        let h = Harness::new(Scale(0.05));
        let a = h.report(Dataset::LiveJournal, Workload::Cc, System::Hygra);
        let b = h.report(Dataset::LiveJournal, Workload::Cc, System::Hygra);
        assert!(Rc::ptr_eq(&a, &b), "second lookup must hit the memo");
    }

    #[test]
    fn graphs_are_cached() {
        let h = Harness::new(Scale(0.05));
        let a = h.graph(Dataset::Friendster);
        let b = h.graph(Dataset::Friendster);
        assert!(Rc::ptr_eq(&a, &b));
    }

    #[test]
    fn system_labels() {
        assert_eq!(System::ChGraph.label(), "ChGraph");
        assert_eq!(System::HatsV.label(), "HATS-V");
    }
}
