//! Regeneration functions, one per table and figure of the paper.
//!
//! All functions take a [`Harness`], which owns the scale factor, the
//! machine configuration and a memo of executed reports, so composite
//! artifacts (Figs. 14, 15, 16, 22 share the same underlying runs) do not
//! re-simulate.
//!
//! # Parallel evaluation
//!
//! The `(dataset, workload, system)` cells of the evaluation grid are
//! independent cycle-level simulations, so the harness fans them out across
//! worker threads ([`Harness::prefetch`], [`Harness::run_batch`]) with
//! single-flight memoization: each key is computed exactly once no matter
//! how many workers race for it, and every simulation itself is a pure
//! function of its key plus the harness configuration. Figures are emitted
//! serially from the warmed memo, so **output is bit-identical for any
//! thread count** — parallelism only changes wall-clock time. See
//! DESIGN.md §"Parallel evaluation".
//!
//! # Fault tolerance
//!
//! Each grid cell runs under `catch_unwind` with one retry, so a panicking
//! workload cannot abort the rest of a multi-hour grid: the failing cell is
//! recorded as a [`CellError`] (see [`Harness::prefetch`]'s [`GridOutcome`]
//! and [`Harness::cell_failures`]) while every other cell completes with
//! bit-identical output. Memo tables recover from mutex poisoning instead
//! of propagating it, and failures are *not* memoized — a later attempt of
//! the same cell may succeed (e.g. after a transient fault). See DESIGN.md
//! §"Fault tolerance".

mod alternatives;
mod chains;
mod energy;
mod main_results;
mod motivation;
mod preprocessing;
mod sensitivity;
mod statics;

pub use alternatives::{fig23, fig24, fig25, Fig23, Fig24, Fig25};
pub use chains::{chains, ChainsFigure};
pub use energy::{energy, EnergyFigure};
pub use main_results::{fig14, fig15, fig16, fig22, Fig14, Fig15, Fig16, Fig22};
pub use motivation::{fig2, fig3, fig5, fig7, fig8, Fig2, Fig3, Fig5, Fig7, Fig8};
pub use preprocessing::{fig21, Fig21};
pub use sensitivity::{fig17, fig18, fig19, fig20, Fig17, Fig18, Fig19, Fig20};
pub use statics::{area_table, table1, table2, AreaTable, Table1, Table2};

use crate::cache::PreprocessCache;
use crate::{load_scaled, Scale};
use chgraph::{
    ChGraphRuntime, ExecutionReport, GlaRuntime, HatsVRuntime, HygraRuntime, PrefetcherRuntime,
    PreparedOags, RunConfig, Runtime,
};
use hyperalgos::{run_workload_prepared, self_check_prepared, Workload};
use hypergraph::datasets::Dataset;
use hypergraph::{Hypergraph, Side};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// The systems compared across the evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum System {
    /// Hygra (index-ordered baseline).
    Hygra,
    /// Pure-software GLA.
    Gla,
    /// Full ChGraph (HCG + CP).
    ChGraph,
    /// HCG-only ablation.
    HcgOnly,
    /// HATS-V.
    HatsV,
    /// Event-driven hardware prefetcher.
    Prefetcher,
}

impl System {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            System::Hygra => "Hygra",
            System::Gla => "GLA",
            System::ChGraph => "ChGraph",
            System::HcgOnly => "HCG-only",
            System::HatsV => "HATS-V",
            System::Prefetcher => "Prefetcher",
        }
    }

    fn runtime(self) -> Box<dyn Runtime> {
        match self {
            System::Hygra => Box::new(HygraRuntime),
            System::Gla => Box::new(GlaRuntime),
            System::ChGraph => Box::new(ChGraphRuntime::new()),
            System::HcgOnly => Box::new(ChGraphRuntime::hcg_only()),
            System::HatsV => Box::new(HatsVRuntime),
            System::Prefetcher => Box::new(PrefetcherRuntime),
        }
    }

    /// Whether this system's runtime builds OAGs (and so benefits from the
    /// harness's shared [`PreparedOags`]).
    fn uses_oags(self) -> bool {
        matches!(self, System::Gla | System::ChGraph | System::HcgOnly)
    }
}

/// One evaluation-grid cell.
pub type Job = (Dataset, Workload, System);

/// How often a failed cell is re-attempted before being reported as
/// failed: one retry, so a cell is tried at most twice.
const CELL_RETRIES: u32 = 1;

/// A cell of the evaluation grid that panicked (workload bug, resource
/// exhaustion, injected fault) after all retries.
#[derive(Clone, Debug)]
pub struct CellError {
    /// The `(dataset, workload, system)` cell that failed.
    pub job: Job,
    /// Total attempts made (initial run plus retries).
    pub attempts: u32,
    /// Rendered panic payload of the last attempt.
    pub message: String,
}

impl fmt::Display for CellError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (ds, w, sys) = self.job;
        write!(
            f,
            "{:?}/{:?}/{} failed after {} attempt(s): {}",
            ds,
            w,
            sys.label(),
            self.attempts,
            self.message
        )
    }
}

/// Structured result of warming an evaluation grid: how many cells
/// completed, and a per-cell error for every cell that kept panicking
/// after its retry. One bad cell no longer kills the run — the caller
/// decides whether partial results are acceptable.
#[derive(Clone, Debug, Default)]
pub struct GridOutcome {
    /// Number of distinct cells whose report is now memoized.
    pub completed: usize,
    /// Cells that failed even after retrying, in job-submission order.
    pub failed: Vec<CellError>,
}

impl GridOutcome {
    /// `true` when every cell completed.
    pub fn is_complete(&self) -> bool {
        self.failed.is_empty()
    }
}

/// Renders a `catch_unwind` payload (typically a `&str` or `String` from
/// `panic!`) for error reports.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// A single-flight memo slot: cloned out of the table under the lock,
/// initialized outside it. `OnceLock::get_or_init` blocks latecomers until
/// the winner finishes, so each key is computed exactly once.
type Slot<T> = Arc<OnceLock<T>>;

fn slot_for<K, V>(table: &Mutex<HashMap<K, Slot<V>>>, key: K) -> Slot<V>
where
    K: std::hash::Hash + Eq,
{
    // Recover from poisoning rather than propagating it: the table layout
    // is an insert-only map of Arc slots, which stays consistent even if a
    // panic unwound through a past lock holder.
    table.lock().unwrap_or_else(PoisonError::into_inner).entry(key).or_default().clone()
}

/// Execution context of the harness: scale, machine configuration, worker
/// threads, an optional on-disk preprocessing cache, and memos of loaded
/// graphs, prepared OAGs and `(dataset, workload, system)` reports.
///
/// The harness is `Sync`: all memo state is behind `Mutex`/`OnceLock`, and
/// artifacts are handed out as `Arc`s shared between workers and figure
/// emission.
pub struct Harness {
    /// Dataset scale.
    pub scale: Scale,
    /// Run configuration used for every memoized execution.
    pub cfg: RunConfig,
    threads: usize,
    self_check: bool,
    cache: Option<Arc<PreprocessCache>>,
    graphs: Mutex<HashMap<Dataset, Slot<Arc<Hypergraph>>>>,
    prepared: Mutex<HashMap<Dataset, Slot<Arc<PreparedOags>>>>,
    reports: Mutex<HashMap<Job, Slot<Arc<ExecutionReport>>>>,
    cell_failures: Mutex<Vec<CellError>>,
    #[cfg(any(test, feature = "fault-injection"))]
    fault_hook: Option<Arc<dyn Fn(Job) + Send + Sync>>,
}

impl Harness {
    /// Creates a harness at the given scale with the default 16-core scaled
    /// machine. For sub-unity scales the cache capacities are shrunk by the
    /// same factor (to the nearest viable power of two), keeping the
    /// working-set:cache ratio — the property every result depends on — in
    /// the full-scale regime.
    pub fn new(scale: Scale) -> Self {
        let mut cfg = RunConfig::new();
        if scale.factor() < 1.0 {
            let shrink = |bytes: usize, f: f64, min: usize| {
                let target = (bytes as f64 * f) as usize;
                target.next_power_of_two().max(min)
            };
            // Private caches shrink faster than the LLC: the generator's
            // discovery regions scale with |V|, and index-order defeat
            // requires the region footprint to exceed the private caches.
            cfg.system.l1.size_bytes =
                shrink(cfg.system.l1.size_bytes, scale.factor() / 2.0, 1 << 10);
            cfg.system.l2.size_bytes =
                shrink(cfg.system.l2.size_bytes, scale.factor() / 2.0, 2 << 10);
            cfg.system.l3.size_bytes = shrink(cfg.system.l3.size_bytes, scale.factor(), 16 << 10);
        }
        Harness::with_config(scale, cfg)
    }

    /// Creates a harness with an explicit configuration.
    pub fn with_config(scale: Scale, cfg: RunConfig) -> Self {
        Harness {
            scale,
            cfg,
            threads: 1,
            self_check: false,
            cache: None,
            graphs: Mutex::new(HashMap::new()),
            prepared: Mutex::new(HashMap::new()),
            reports: Mutex::new(HashMap::new()),
            cell_failures: Mutex::new(Vec::new()),
            #[cfg(any(test, feature = "fault-injection"))]
            fault_hook: None,
        }
    }

    /// Installs a fault-injection hook invoked at the start of every cell
    /// computation (test support, behind the `fault-injection` feature).
    /// A hook that panics simulates a panicking workload; the harness must
    /// isolate it exactly like a real one.
    #[cfg(any(test, feature = "fault-injection"))]
    pub fn with_fault_hook(mut self, hook: impl Fn(Job) + Send + Sync + 'static) -> Self {
        self.fault_hook = Some(Arc::new(hook));
        self
    }

    /// Enables differential self-checking: every execution is diffed
    /// against the naive reference implementation
    /// ([`hyperalgos::self_check`]), and a divergence fails the cell.
    /// Reports are bit-identical either way; a failing cell surfaces as a
    /// [`CellError`] through the usual fault-isolation machinery (retried
    /// once, recorded in the [`GridOutcome`]) instead of aborting the grid.
    pub fn with_self_check(mut self, on: bool) -> Self {
        self.self_check = on;
        self
    }

    /// Sets the worker-thread count used by [`prefetch`](Self::prefetch),
    /// [`run_batch`](Self::run_batch) and OAG construction (minimum 1).
    ///
    /// Every figure, report and OAG is bit-identical for any value.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Attaches an on-disk preprocessing cache: loaded graphs and built
    /// OAGs are persisted and restored across harness instances/processes.
    pub fn with_cache(mut self, cache: Arc<PreprocessCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The attached preprocessing cache, if any (for run-log summaries).
    pub fn cache(&self) -> Option<&PreprocessCache> {
        self.cache.as_deref()
    }

    /// The (cached) scaled stand-in hypergraph for `ds`.
    pub fn graph(&self, ds: Dataset) -> Arc<Hypergraph> {
        slot_for(&self.graphs, ds)
            .get_or_init(|| {
                if let Some(cache) = &self.cache {
                    if let Some(g) = cache.load_graph(ds, self.scale) {
                        return Arc::new(g);
                    }
                }
                let g = load_scaled(ds, self.scale);
                if let Some(cache) = &self.cache {
                    cache.store_graph(ds, self.scale, &g);
                }
                Arc::new(g)
            })
            .clone()
    }

    /// The (cached) pre-built OAG pair for `ds` under the harness
    /// configuration, shared by every chain-driven cell of the grid.
    pub fn prepared(&self, ds: Dataset) -> Arc<PreparedOags> {
        slot_for(&self.prepared, ds)
            .get_or_init(|| {
                let g = self.graph(ds);
                let oag_cfg = self.cfg.oag;
                let build_side = |side: Side| {
                    if let Some(cache) = &self.cache {
                        if let Some(hit) = cache.load_oag(&g, &oag_cfg, side) {
                            return hit;
                        }
                    }
                    let built = oag_cfg.build_with_stats_threads(&g, side, self.threads);
                    if let Some(cache) = &self.cache {
                        cache.store_oag(&g, &oag_cfg, side, &built.0, &built.1);
                    }
                    built
                };
                let hyperedge = build_side(Side::Hyperedge);
                let vertex = build_side(Side::Vertex);
                Arc::new(PreparedOags::from_parts(&g, oag_cfg, hyperedge, vertex))
            })
            .clone()
    }

    /// The (memoized) execution report of `workload` on `ds` under `sys`.
    ///
    /// Panics if the cell keeps failing after [`try_report`](Self::try_report)'s
    /// retry — use `try_report` where a structured error is wanted.
    pub fn report(&self, ds: Dataset, workload: Workload, sys: System) -> Arc<ExecutionReport> {
        self.try_report(ds, workload, sys).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fault-isolated variant of [`report`](Self::report): the simulation
    /// runs under `catch_unwind`, a panicking cell is retried once, and a
    /// cell that still fails yields a [`CellError`] (also recorded in
    /// [`cell_failures`](Self::cell_failures)) instead of unwinding into
    /// the caller. Failures are not memoized, so a later call may succeed.
    pub fn try_report(
        &self,
        ds: Dataset,
        workload: Workload,
        sys: System,
    ) -> Result<Arc<ExecutionReport>, CellError> {
        let job = (ds, workload, sys);
        let slot = slot_for(&self.reports, job);
        if let Some(r) = slot.get() {
            return Ok(r.clone());
        }
        let mut last = None;
        for _attempt in 0..=CELL_RETRIES {
            // `OnceLock::get_or_init` leaves the cell uninitialized when
            // the initializer panics, so the retry re-runs it; if another
            // worker won the race meanwhile, we just get its value.
            let run = catch_unwind(AssertUnwindSafe(|| {
                slot.get_or_init(|| Arc::new(self.compute_report(job))).clone()
            }));
            match run {
                Ok(r) => return Ok(r),
                Err(payload) => last = Some(panic_message(payload)),
            }
        }
        let err = CellError {
            job,
            attempts: CELL_RETRIES + 1,
            message: last.unwrap_or_else(|| "unknown panic".into()),
        };
        self.record_failure(err.clone());
        Err(err)
    }

    /// The uninsulated cell computation (runs inside `catch_unwind`).
    fn compute_report(&self, (ds, workload, sys): Job) -> ExecutionReport {
        #[cfg(any(test, feature = "fault-injection"))]
        if let Some(hook) = &self.fault_hook {
            hook((ds, workload, sys));
        }
        let g = self.graph(ds);
        let prepared = sys.uses_oags().then(|| self.prepared(ds));
        let runtime = sys.runtime();
        self.execute(workload, runtime.as_ref(), &g, &self.cfg, prepared.as_deref())
    }

    /// Runs one execution, self-checked when the harness asks for it. A
    /// self-check failure (divergence, budget trip, validation error)
    /// panics with the typed error's message so the surrounding
    /// `catch_unwind` layers convert it into a [`CellError`].
    fn execute(
        &self,
        workload: Workload,
        runtime: &dyn Runtime,
        g: &Hypergraph,
        cfg: &RunConfig,
        prepared: Option<&PreparedOags>,
    ) -> ExecutionReport {
        if self.self_check {
            match self_check_prepared(workload, runtime, g, cfg, prepared) {
                Ok(checked) => checked.report,
                Err(e) => panic!("self-check failed: {e}"),
            }
        } else {
            run_workload_prepared(workload, runtime, g, cfg, prepared)
        }
    }

    /// Records a post-retry cell failure (deduplicated by job, since the
    /// figure-emission layer may re-attempt a cell prefetch already gave
    /// up on).
    fn record_failure(&self, err: CellError) {
        let mut failures = self.cell_failures.lock().unwrap_or_else(PoisonError::into_inner);
        if !failures.iter().any(|f| f.job == err.job) {
            failures.push(err);
        }
    }

    /// Every cell that failed after retries over the life of this harness
    /// (across all `prefetch`/`try_report` calls), deduplicated by job.
    /// Empty for a fully healthy run.
    pub fn cell_failures(&self) -> Vec<CellError> {
        self.cell_failures.lock().unwrap_or_else(PoisonError::into_inner).clone()
    }

    /// Warms the report memo for `jobs` across the harness's worker
    /// threads. Duplicate keys are deduplicated up front and raced keys are
    /// single-flighted, so each simulation runs exactly once; the memo
    /// contents — and therefore everything later emitted from it — are
    /// bit-identical to computing the same keys serially.
    ///
    /// Cells are panic-isolated: a failing cell is retried once and then
    /// reported in the returned [`GridOutcome`] while every other cell
    /// completes normally.
    pub fn prefetch(&self, jobs: impl IntoIterator<Item = Job>) -> GridOutcome {
        let mut seen = HashSet::new();
        let jobs: Vec<Job> = jobs.into_iter().filter(|j| seen.insert(*j)).collect();
        let failed: Vec<Mutex<Option<CellError>>> =
            (0..jobs.len()).map(|_| Mutex::new(None)).collect();
        self.for_each_parallel(jobs.len(), |i| {
            let (ds, w, sys) = jobs[i];
            if let Err(e) = self.try_report(ds, w, sys) {
                *failed[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(e);
            }
        });
        // Collect in job-submission order so the outcome is deterministic
        // regardless of worker completion order.
        let failed: Vec<CellError> = failed
            .into_iter()
            .filter_map(|slot| slot.into_inner().unwrap_or_else(PoisonError::into_inner))
            .collect();
        GridOutcome { completed: jobs.len() - failed.len(), failed }
    }

    /// Runs `workload` on `ds` under `sys` with an explicit non-memoized
    /// configuration (sensitivity sweeps). Reuses the harness's prepared
    /// OAGs when `cfg` keeps the harness's OAG parameters — permitted by
    /// the `execute_prepared` bit-identity contract.
    pub fn run_with(
        &self,
        ds: Dataset,
        workload: Workload,
        sys: System,
        cfg: &RunConfig,
    ) -> ExecutionReport {
        let g = self.graph(ds);
        let prepared = (sys.uses_oags() && cfg.oag == self.cfg.oag).then(|| self.prepared(ds));
        self.execute(workload, sys.runtime().as_ref(), &g, cfg, prepared.as_deref())
    }

    /// Runs a batch of independent explicit-configuration jobs across the
    /// worker threads, returning reports **in job order** (results are
    /// written into per-index slots, so completion order is irrelevant and
    /// the output is bit-identical to a serial loop).
    ///
    /// Each job is panic-isolated and retried once, so a transient fault
    /// costs one re-run; a job that fails both attempts re-raises its
    /// panic after the rest of the batch has finished (sensitivity sweeps
    /// need every point, so there is no partial-result shape here — the
    /// figures binary isolates the artifact instead).
    pub fn run_batch(
        &self,
        jobs: &[(Dataset, Workload, System, RunConfig)],
    ) -> Vec<ExecutionReport> {
        let slots: Vec<OnceLock<ExecutionReport>> =
            (0..jobs.len()).map(|_| OnceLock::new()).collect();
        let first_panic: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
        self.for_each_parallel(jobs.len(), |i| {
            let (ds, w, sys, cfg) = &jobs[i];
            let attempt = || catch_unwind(AssertUnwindSafe(|| self.run_with(*ds, *w, *sys, cfg)));
            match attempt().or_else(|_| attempt()) {
                Ok(report) => {
                    let _ = slots[i].set(report);
                }
                Err(payload) => {
                    let mut first = first_panic.lock().unwrap_or_else(PoisonError::into_inner);
                    first.get_or_insert(payload);
                }
            }
        });
        if let Some(payload) = first_panic.into_inner().unwrap_or_else(PoisonError::into_inner) {
            resume_unwind(payload);
        }
        slots
            .into_iter()
            .map(|s| {
                // invariant: every worker either filled its slot or
                // recorded a panic, and panics re-raised above.
                s.into_inner().expect("batch worker filled its slot")
            })
            .collect()
    }

    /// Work-queue fan-out: indexes `0..n` are claimed from a shared atomic
    /// counter by `min(threads, n)` scoped workers (or run inline when one
    /// worker suffices). Work items are expected to do their own panic
    /// isolation (`try_report`, `run_batch`'s catch); an item that unwinds
    /// anyway propagates out of the scope join.
    fn for_each_parallel(&self, n: usize, work: impl Fn(usize) + Sync) {
        let workers = self.threads.min(n);
        if workers <= 1 {
            for i in 0..n {
                work(i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    work(i);
                });
            }
        });
    }
}

/// The cross product of workloads × datasets × systems, for
/// [`Harness::prefetch`].
pub(crate) fn grid(workloads: &[Workload], datasets: &[Dataset], systems: &[System]) -> Vec<Job> {
    let mut jobs = Vec::with_capacity(workloads.len() * datasets.len() * systems.len());
    for &w in workloads {
        for &ds in datasets {
            for &sys in systems {
                jobs.push((ds, w, sys));
            }
        }
    }
    jobs
}

/// Formats a ratio as `N.NNx`.
pub(crate) fn fx(r: f64) -> String {
    format!("{r:.2}x")
}

/// Formats a fraction as a percentage.
pub(crate) fn pct(r: f64) -> String {
    format!("{:.1}%", r * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_memoizes_reports() {
        let h = Harness::new(Scale(0.05));
        let a = h.report(Dataset::LiveJournal, Workload::Cc, System::Hygra);
        let b = h.report(Dataset::LiveJournal, Workload::Cc, System::Hygra);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the memo");
    }

    #[test]
    fn graphs_are_cached() {
        let h = Harness::new(Scale(0.05));
        let a = h.graph(Dataset::Friendster);
        let b = h.graph(Dataset::Friendster);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn system_labels() {
        assert_eq!(System::ChGraph.label(), "ChGraph");
        assert_eq!(System::HatsV.label(), "HATS-V");
    }

    #[test]
    fn prefetch_parallel_matches_serial_reports() {
        let jobs = grid(
            &[Workload::Cc, Workload::Bfs],
            &[Dataset::LiveJournal],
            &[System::Hygra, System::ChGraph],
        );
        let serial = Harness::new(Scale(0.05));
        let parallel = Harness::new(Scale(0.05)).with_threads(4);
        parallel.prefetch(jobs.iter().copied());
        for (ds, w, sys) in jobs {
            assert_eq!(
                *serial.report(ds, w, sys),
                *parallel.report(ds, w, sys),
                "{ds:?}/{w:?}/{sys:?} diverged between serial and parallel harness"
            );
        }
    }

    #[test]
    fn prefetch_single_flights_duplicates() {
        let h = Harness::new(Scale(0.05)).with_threads(4);
        let job = (Dataset::LiveJournal, Workload::Cc, System::Hygra);
        h.prefetch([job, job, job, job]);
        let a = h.report(job.0, job.1, job.2);
        let b = h.report(job.0, job.1, job.2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn run_batch_preserves_job_order() {
        let h = Harness::new(Scale(0.05)).with_threads(3);
        let jobs: Vec<_> = [Workload::Cc, Workload::Bfs, Workload::Mis]
            .into_iter()
            .map(|w| (Dataset::LiveJournal, w, System::Hygra, h.cfg))
            .collect();
        let batch = h.run_batch(&jobs);
        assert_eq!(batch.len(), 3);
        for ((ds, w, sys, cfg), got) in jobs.iter().zip(&batch) {
            assert_eq!(*got, h.run_with(*ds, *w, *sys, cfg), "{w:?} out of order");
        }
    }

    #[test]
    fn persistent_cell_panic_is_isolated_and_reported() {
        let bad = (Dataset::LiveJournal, Workload::Cc, System::ChGraph);
        let h = Harness::new(Scale(0.05)).with_threads(4).with_fault_hook(move |job| {
            if job == bad {
                panic!("injected persistent fault");
            }
        });
        let jobs = grid(
            &[Workload::Cc, Workload::Bfs],
            &[Dataset::LiveJournal],
            &[System::Hygra, System::ChGraph],
        );
        let outcome = h.prefetch(jobs.iter().copied());
        assert_eq!(outcome.failed.len(), 1, "exactly the injected cell fails");
        assert_eq!(outcome.failed[0].job, bad);
        assert_eq!(outcome.failed[0].attempts, 2, "one retry before giving up");
        assert!(outcome.failed[0].message.contains("injected persistent fault"));
        assert_eq!(outcome.completed, jobs.len() - 1);
        assert_eq!(h.cell_failures().len(), 1);
        // Healthy cells are untouched by the neighbor's failure.
        let clean = Harness::new(Scale(0.05));
        for &(ds, w, sys) in jobs.iter().filter(|&&j| j != bad) {
            assert_eq!(*h.report(ds, w, sys), *clean.report(ds, w, sys));
        }
    }

    #[test]
    fn transient_cell_panic_is_retried_to_success() {
        use std::sync::atomic::AtomicU32;
        let bad = (Dataset::LiveJournal, Workload::Cc, System::Hygra);
        let calls = Arc::new(AtomicU32::new(0));
        let seen = calls.clone();
        let h = Harness::new(Scale(0.05)).with_fault_hook(move |job| {
            if job == bad && seen.fetch_add(1, Ordering::SeqCst) == 0 {
                panic!("injected transient fault");
            }
        });
        let outcome = h.prefetch([bad]);
        assert!(outcome.is_complete(), "retry must recover: {:?}", outcome.failed);
        assert_eq!(calls.load(Ordering::SeqCst), 2, "initial attempt plus one retry");
        assert!(h.cell_failures().is_empty());
        let clean = Harness::new(Scale(0.05));
        assert_eq!(*h.report(bad.0, bad.1, bad.2), *clean.report(bad.0, bad.1, bad.2));
    }

    #[test]
    fn failures_are_not_memoized() {
        use std::sync::atomic::AtomicBool;
        let bad = (Dataset::LiveJournal, Workload::Bfs, System::Hygra);
        let arm = Arc::new(AtomicBool::new(true));
        let armed = arm.clone();
        let h = Harness::new(Scale(0.05)).with_fault_hook(move |job| {
            if job == bad && armed.load(Ordering::SeqCst) {
                panic!("injected while armed");
            }
        });
        assert!(h.try_report(bad.0, bad.1, bad.2).is_err());
        arm.store(false, Ordering::SeqCst);
        let recovered = h.try_report(bad.0, bad.1, bad.2).expect("fault cleared");
        let clean = Harness::new(Scale(0.05));
        assert_eq!(*recovered, *clean.report(bad.0, bad.1, bad.2));
    }

    #[test]
    fn self_checked_reports_are_bit_identical_to_unchecked() {
        let plain = Harness::new(Scale(0.05));
        let checked = Harness::new(Scale(0.05)).with_self_check(true);
        for (w, sys) in [(Workload::Cc, System::Hygra), (Workload::Bfs, System::ChGraph)] {
            assert_eq!(
                *plain.report(Dataset::LiveJournal, w, sys),
                *checked.report(Dataset::LiveJournal, w, sys),
                "{w:?}/{sys:?}: self-checking must not change the report"
            );
        }
    }

    #[test]
    fn guard_trips_become_cell_errors_not_grid_aborts() {
        // A one-cycle budget trips the watchdog in every cell; the grid
        // must finish with structured per-cell errors rather than unwind.
        let cfg = RunConfig::new().with_max_cycles(1);
        let h = Harness::with_config(Scale(0.05), cfg).with_self_check(true);
        let jobs = grid(&[Workload::Cc, Workload::Bfs], &[Dataset::LiveJournal], &[System::Hygra]);
        let outcome = h.prefetch(jobs.iter().copied());
        assert_eq!(outcome.completed, 0);
        assert_eq!(outcome.failed.len(), jobs.len());
        for f in &outcome.failed {
            assert!(
                f.message.contains("cycle budget exceeded"),
                "cell error must carry the typed watchdog message: {}",
                f.message
            );
        }
    }

    #[test]
    fn prepared_reuse_is_bit_identical() {
        // The memoized path (prepared OAGs) must equal a direct
        // run_workload with per-execution OAG builds.
        let h = Harness::new(Scale(0.05));
        let ds = Dataset::LiveJournal;
        let g = h.graph(ds);
        let direct = hyperalgos::run_workload(Workload::Cc, &ChGraphRuntime::new(), &g, &h.cfg);
        let memoized = h.report(ds, Workload::Cc, System::ChGraph);
        assert_eq!(direct, *memoized);
    }
}
