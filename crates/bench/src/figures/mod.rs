//! Regeneration functions, one per table and figure of the paper.
//!
//! All functions take a [`Harness`], which owns the scale factor, the
//! machine configuration and a memo of executed reports, so composite
//! artifacts (Figs. 14, 15, 16, 22 share the same underlying runs) do not
//! re-simulate.
//!
//! # Parallel evaluation
//!
//! The `(dataset, workload, system)` cells of the evaluation grid are
//! independent cycle-level simulations, so the harness fans them out across
//! worker threads ([`Harness::prefetch`], [`Harness::run_batch`]) with
//! single-flight memoization: each key is computed exactly once no matter
//! how many workers race for it, and every simulation itself is a pure
//! function of its key plus the harness configuration. Figures are emitted
//! serially from the warmed memo, so **output is bit-identical for any
//! thread count** — parallelism only changes wall-clock time. See
//! DESIGN.md §"Parallel evaluation".

mod alternatives;
mod chains;
mod energy;
mod main_results;
mod motivation;
mod preprocessing;
mod sensitivity;
mod statics;

pub use alternatives::{fig23, fig24, fig25, Fig23, Fig24, Fig25};
pub use chains::{chains, ChainsFigure};
pub use energy::{energy, EnergyFigure};
pub use main_results::{fig14, fig15, fig16, fig22, Fig14, Fig15, Fig16, Fig22};
pub use motivation::{fig2, fig3, fig5, fig7, fig8, Fig2, Fig3, Fig5, Fig7, Fig8};
pub use preprocessing::{fig21, Fig21};
pub use sensitivity::{fig17, fig18, fig19, fig20, Fig17, Fig18, Fig19, Fig20};
pub use statics::{area_table, table1, table2, AreaTable, Table1, Table2};

use crate::cache::PreprocessCache;
use crate::{load_scaled, Scale};
use chgraph::{
    ChGraphRuntime, ExecutionReport, GlaRuntime, HatsVRuntime, HygraRuntime, PrefetcherRuntime,
    PreparedOags, RunConfig, Runtime,
};
use hyperalgos::{run_workload_prepared, Workload};
use hypergraph::datasets::Dataset;
use hypergraph::{Hypergraph, Side};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// The systems compared across the evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum System {
    /// Hygra (index-ordered baseline).
    Hygra,
    /// Pure-software GLA.
    Gla,
    /// Full ChGraph (HCG + CP).
    ChGraph,
    /// HCG-only ablation.
    HcgOnly,
    /// HATS-V.
    HatsV,
    /// Event-driven hardware prefetcher.
    Prefetcher,
}

impl System {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            System::Hygra => "Hygra",
            System::Gla => "GLA",
            System::ChGraph => "ChGraph",
            System::HcgOnly => "HCG-only",
            System::HatsV => "HATS-V",
            System::Prefetcher => "Prefetcher",
        }
    }

    fn runtime(self) -> Box<dyn Runtime> {
        match self {
            System::Hygra => Box::new(HygraRuntime),
            System::Gla => Box::new(GlaRuntime),
            System::ChGraph => Box::new(ChGraphRuntime::new()),
            System::HcgOnly => Box::new(ChGraphRuntime::hcg_only()),
            System::HatsV => Box::new(HatsVRuntime),
            System::Prefetcher => Box::new(PrefetcherRuntime),
        }
    }

    /// Whether this system's runtime builds OAGs (and so benefits from the
    /// harness's shared [`PreparedOags`]).
    fn uses_oags(self) -> bool {
        matches!(self, System::Gla | System::ChGraph | System::HcgOnly)
    }
}

/// One evaluation-grid cell.
pub type Job = (Dataset, Workload, System);

/// A single-flight memo slot: cloned out of the table under the lock,
/// initialized outside it. `OnceLock::get_or_init` blocks latecomers until
/// the winner finishes, so each key is computed exactly once.
type Slot<T> = Arc<OnceLock<T>>;

fn slot_for<K, V>(table: &Mutex<HashMap<K, Slot<V>>>, key: K) -> Slot<V>
where
    K: std::hash::Hash + Eq,
{
    table.lock().expect("memo poisoned").entry(key).or_default().clone()
}

/// Execution context of the harness: scale, machine configuration, worker
/// threads, an optional on-disk preprocessing cache, and memos of loaded
/// graphs, prepared OAGs and `(dataset, workload, system)` reports.
///
/// The harness is `Sync`: all memo state is behind `Mutex`/`OnceLock`, and
/// artifacts are handed out as `Arc`s shared between workers and figure
/// emission.
pub struct Harness {
    /// Dataset scale.
    pub scale: Scale,
    /// Run configuration used for every memoized execution.
    pub cfg: RunConfig,
    threads: usize,
    cache: Option<Arc<PreprocessCache>>,
    graphs: Mutex<HashMap<Dataset, Slot<Arc<Hypergraph>>>>,
    prepared: Mutex<HashMap<Dataset, Slot<Arc<PreparedOags>>>>,
    reports: Mutex<HashMap<Job, Slot<Arc<ExecutionReport>>>>,
}

impl Harness {
    /// Creates a harness at the given scale with the default 16-core scaled
    /// machine. For sub-unity scales the cache capacities are shrunk by the
    /// same factor (to the nearest viable power of two), keeping the
    /// working-set:cache ratio — the property every result depends on — in
    /// the full-scale regime.
    pub fn new(scale: Scale) -> Self {
        let mut cfg = RunConfig::new();
        if scale.factor() < 1.0 {
            let shrink = |bytes: usize, f: f64, min: usize| {
                let target = (bytes as f64 * f) as usize;
                target.next_power_of_two().max(min)
            };
            // Private caches shrink faster than the LLC: the generator's
            // discovery regions scale with |V|, and index-order defeat
            // requires the region footprint to exceed the private caches.
            cfg.system.l1.size_bytes =
                shrink(cfg.system.l1.size_bytes, scale.factor() / 2.0, 1 << 10);
            cfg.system.l2.size_bytes =
                shrink(cfg.system.l2.size_bytes, scale.factor() / 2.0, 2 << 10);
            cfg.system.l3.size_bytes = shrink(cfg.system.l3.size_bytes, scale.factor(), 16 << 10);
        }
        Harness::with_config(scale, cfg)
    }

    /// Creates a harness with an explicit configuration.
    pub fn with_config(scale: Scale, cfg: RunConfig) -> Self {
        Harness {
            scale,
            cfg,
            threads: 1,
            cache: None,
            graphs: Mutex::new(HashMap::new()),
            prepared: Mutex::new(HashMap::new()),
            reports: Mutex::new(HashMap::new()),
        }
    }

    /// Sets the worker-thread count used by [`prefetch`](Self::prefetch),
    /// [`run_batch`](Self::run_batch) and OAG construction (minimum 1).
    ///
    /// Every figure, report and OAG is bit-identical for any value.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Attaches an on-disk preprocessing cache: loaded graphs and built
    /// OAGs are persisted and restored across harness instances/processes.
    pub fn with_cache(mut self, cache: Arc<PreprocessCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The attached preprocessing cache, if any (for run-log summaries).
    pub fn cache(&self) -> Option<&PreprocessCache> {
        self.cache.as_deref()
    }

    /// The (cached) scaled stand-in hypergraph for `ds`.
    pub fn graph(&self, ds: Dataset) -> Arc<Hypergraph> {
        slot_for(&self.graphs, ds)
            .get_or_init(|| {
                if let Some(cache) = &self.cache {
                    if let Some(g) = cache.load_graph(ds, self.scale) {
                        return Arc::new(g);
                    }
                }
                let g = load_scaled(ds, self.scale);
                if let Some(cache) = &self.cache {
                    cache.store_graph(ds, self.scale, &g);
                }
                Arc::new(g)
            })
            .clone()
    }

    /// The (cached) pre-built OAG pair for `ds` under the harness
    /// configuration, shared by every chain-driven cell of the grid.
    pub fn prepared(&self, ds: Dataset) -> Arc<PreparedOags> {
        slot_for(&self.prepared, ds)
            .get_or_init(|| {
                let g = self.graph(ds);
                let oag_cfg = self.cfg.oag;
                let build_side = |side: Side| {
                    if let Some(cache) = &self.cache {
                        if let Some(hit) = cache.load_oag(&g, &oag_cfg, side) {
                            return hit;
                        }
                    }
                    let built = oag_cfg.build_with_stats_threads(&g, side, self.threads);
                    if let Some(cache) = &self.cache {
                        cache.store_oag(&g, &oag_cfg, side, &built.0, &built.1);
                    }
                    built
                };
                let hyperedge = build_side(Side::Hyperedge);
                let vertex = build_side(Side::Vertex);
                Arc::new(PreparedOags::from_parts(&g, oag_cfg, hyperedge, vertex))
            })
            .clone()
    }

    /// The (memoized) execution report of `workload` on `ds` under `sys`.
    pub fn report(&self, ds: Dataset, workload: Workload, sys: System) -> Arc<ExecutionReport> {
        slot_for(&self.reports, (ds, workload, sys))
            .get_or_init(|| {
                let g = self.graph(ds);
                let prepared = sys.uses_oags().then(|| self.prepared(ds));
                let runtime = sys.runtime();
                Arc::new(run_workload_prepared(
                    workload,
                    runtime.as_ref(),
                    &g,
                    &self.cfg,
                    prepared.as_deref(),
                ))
            })
            .clone()
    }

    /// Warms the report memo for `jobs` across the harness's worker
    /// threads. Duplicate keys are deduplicated up front and raced keys are
    /// single-flighted, so each simulation runs exactly once; the memo
    /// contents — and therefore everything later emitted from it — are
    /// bit-identical to computing the same keys serially.
    pub fn prefetch(&self, jobs: impl IntoIterator<Item = Job>) {
        let mut seen = HashSet::new();
        let jobs: Vec<Job> = jobs.into_iter().filter(|j| seen.insert(*j)).collect();
        self.for_each_parallel(jobs.len(), |i| {
            let (ds, w, sys) = jobs[i];
            self.report(ds, w, sys);
        });
    }

    /// Runs `workload` on `ds` under `sys` with an explicit non-memoized
    /// configuration (sensitivity sweeps). Reuses the harness's prepared
    /// OAGs when `cfg` keeps the harness's OAG parameters — permitted by
    /// the `execute_prepared` bit-identity contract.
    pub fn run_with(
        &self,
        ds: Dataset,
        workload: Workload,
        sys: System,
        cfg: &RunConfig,
    ) -> ExecutionReport {
        let g = self.graph(ds);
        let prepared = (sys.uses_oags() && cfg.oag == self.cfg.oag).then(|| self.prepared(ds));
        run_workload_prepared(workload, sys.runtime().as_ref(), &g, cfg, prepared.as_deref())
    }

    /// Runs a batch of independent explicit-configuration jobs across the
    /// worker threads, returning reports **in job order** (results are
    /// written into per-index slots, so completion order is irrelevant and
    /// the output is bit-identical to a serial loop).
    pub fn run_batch(
        &self,
        jobs: &[(Dataset, Workload, System, RunConfig)],
    ) -> Vec<ExecutionReport> {
        let slots: Vec<OnceLock<ExecutionReport>> =
            (0..jobs.len()).map(|_| OnceLock::new()).collect();
        self.for_each_parallel(jobs.len(), |i| {
            let (ds, w, sys, cfg) = &jobs[i];
            let report = self.run_with(*ds, *w, *sys, cfg);
            let _ = slots[i].set(report);
        });
        slots.into_iter().map(|s| s.into_inner().expect("batch worker filled its slot")).collect()
    }

    /// Work-queue fan-out: indexes `0..n` are claimed from a shared atomic
    /// counter by `min(threads, n)` scoped workers (or run inline when one
    /// worker suffices). A worker panic propagates to the caller.
    fn for_each_parallel(&self, n: usize, work: impl Fn(usize) + Sync) {
        let workers = self.threads.min(n);
        if workers <= 1 {
            for i in 0..n {
                work(i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    work(i);
                });
            }
        });
    }
}

/// The cross product of workloads × datasets × systems, for
/// [`Harness::prefetch`].
pub(crate) fn grid(workloads: &[Workload], datasets: &[Dataset], systems: &[System]) -> Vec<Job> {
    let mut jobs = Vec::with_capacity(workloads.len() * datasets.len() * systems.len());
    for &w in workloads {
        for &ds in datasets {
            for &sys in systems {
                jobs.push((ds, w, sys));
            }
        }
    }
    jobs
}

/// Formats a ratio as `N.NNx`.
pub(crate) fn fx(r: f64) -> String {
    format!("{r:.2}x")
}

/// Formats a fraction as a percentage.
pub(crate) fn pct(r: f64) -> String {
    format!("{:.1}%", r * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_memoizes_reports() {
        let h = Harness::new(Scale(0.05));
        let a = h.report(Dataset::LiveJournal, Workload::Cc, System::Hygra);
        let b = h.report(Dataset::LiveJournal, Workload::Cc, System::Hygra);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must hit the memo");
    }

    #[test]
    fn graphs_are_cached() {
        let h = Harness::new(Scale(0.05));
        let a = h.graph(Dataset::Friendster);
        let b = h.graph(Dataset::Friendster);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn system_labels() {
        assert_eq!(System::ChGraph.label(), "ChGraph");
        assert_eq!(System::HatsV.label(), "HATS-V");
    }

    #[test]
    fn prefetch_parallel_matches_serial_reports() {
        let jobs = grid(
            &[Workload::Cc, Workload::Bfs],
            &[Dataset::LiveJournal],
            &[System::Hygra, System::ChGraph],
        );
        let serial = Harness::new(Scale(0.05));
        let parallel = Harness::new(Scale(0.05)).with_threads(4);
        parallel.prefetch(jobs.iter().copied());
        for (ds, w, sys) in jobs {
            assert_eq!(
                *serial.report(ds, w, sys),
                *parallel.report(ds, w, sys),
                "{ds:?}/{w:?}/{sys:?} diverged between serial and parallel harness"
            );
        }
    }

    #[test]
    fn prefetch_single_flights_duplicates() {
        let h = Harness::new(Scale(0.05)).with_threads(4);
        let job = (Dataset::LiveJournal, Workload::Cc, System::Hygra);
        h.prefetch([job, job, job, job]);
        let a = h.report(job.0, job.1, job.2);
        let b = h.report(job.0, job.1, job.2);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn run_batch_preserves_job_order() {
        let h = Harness::new(Scale(0.05)).with_threads(3);
        let jobs: Vec<_> = [Workload::Cc, Workload::Bfs, Workload::Mis]
            .into_iter()
            .map(|w| (Dataset::LiveJournal, w, System::Hygra, h.cfg))
            .collect();
        let batch = h.run_batch(&jobs);
        assert_eq!(batch.len(), 3);
        for ((ds, w, sys, cfg), got) in jobs.iter().zip(&batch) {
            assert_eq!(*got, h.run_with(*ds, *w, *sys, cfg), "{w:?} out of order");
        }
    }

    #[test]
    fn prepared_reuse_is_bit_identical() {
        // The memoized path (prepared OAGs) must equal a direct
        // run_workload with per-execution OAG builds.
        let h = Harness::new(Scale(0.05));
        let ds = Dataset::LiveJournal;
        let g = h.graph(ds);
        let direct = hyperalgos::run_workload(Workload::Cc, &ChGraphRuntime::new(), &g, &h.cfg);
        let memoized = h.report(ds, Workload::Cc, System::ChGraph);
        assert_eq!(direct, *memoized);
    }
}
