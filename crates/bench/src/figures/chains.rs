//! Chain-quality analysis (extension artifact).
//!
//! Quantifies the property every result in the paper rests on: how much of
//! each element's incidence a chain-driven schedule can reuse from its
//! predecessor, per dataset — without running the architectural simulator.

use super::{pct, Harness};
use crate::Table;
use hypergraph::chunk::partition;
use hypergraph::datasets::Dataset;
use hypergraph::{Frontier, Side};
use oag::quality::{chain_stats, chained_incidence_fraction, shared_incidence_fraction};
use oag::{generate_chains, ChainConfig, OagConfig};
use std::fmt;

/// The chain-quality artifact.
#[derive(Debug)]
pub struct ChainsFigure {
    /// Rendered table.
    pub table: Table,
    /// `(dataset, chained reuse fraction, index-order reuse fraction)`.
    pub rows: Vec<(Dataset, f64, f64)>,
}

/// Regenerates the chain-quality artifact (hyperedge side, 16 chunks, the
/// default `W_min`/`D_max`).
pub fn chains(h: &Harness) -> ChainsFigure {
    let mut table = Table::new(&[
        "dataset",
        "OAG deg",
        "chains",
        "mean len",
        "elem-wt len",
        "singletons",
        "chained reuse",
        "index reuse",
    ]);
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let g = h.graph(ds);
        // Reuse the harness's prepared hyperedge-side OAG when it was built
        // with the figure's config; build fresh otherwise.
        let prepared = (h.cfg.oag == OagConfig::new()).then(|| h.prepared(ds));
        let built = prepared.is_none().then(|| OagConfig::new().build(&g, Side::Hyperedge));
        let oag = prepared
            .as_deref()
            .map(|p| &p.hyperedge)
            .or(built.as_ref())
            // invariant: `built` is Some exactly when `prepared` is None,
            // so one branch always supplies the OAG.
            .expect("one of the two sources is set");
        let chunks = partition(&g, Side::Hyperedge, 16);
        let frontier = Frontier::full(g.num_hyperedges());
        let mut merged = oag::ChainSet::new();
        let mut all = Vec::new();
        for c in &chunks {
            let cs = generate_chains(oag, &frontier, c.first..c.last, &ChainConfig::default());
            all.push(cs);
        }
        // Merge stats across chunks by re-walking each set.
        let mut num_chains = 0usize;
        let mut elements = 0usize;
        let mut weighted = 0usize;
        let mut singles = 0usize;
        let mut shared = 0.0f64;
        let mut denom = 0.0f64;
        for cs in &all {
            let s = chain_stats(cs);
            num_chains += s.num_chains;
            elements += s.num_elements;
            weighted += (s.element_weighted_len * s.num_elements as f64) as usize;
            singles += (s.singleton_fraction * s.num_elements as f64) as usize;
            let f = chained_incidence_fraction(&g, Side::Hyperedge, cs);
            shared += f * s.num_elements as f64;
            denom += s.num_elements as f64;
        }
        let _ = &mut merged;
        let chained = shared / denom.max(1.0);
        let index_sched: Vec<u32> = (0..g.num_hyperedges() as u32).collect();
        let index = shared_incidence_fraction(&g, Side::Hyperedge, &index_sched);
        rows.push((ds, chained, index));
        table.row(&[
            ds.abbrev().into(),
            format!("{:.1}", oag.num_edge_entries() as f64 / oag.len() as f64),
            num_chains.to_string(),
            format!("{:.1}", elements as f64 / num_chains.max(1) as f64),
            format!("{:.1}", weighted as f64 / elements.max(1) as f64),
            pct(singles as f64 / elements.max(1) as f64),
            pct(chained),
            pct(index),
        ]);
    }
    ChainsFigure { table, rows }
}

impl fmt::Display for ChainsFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Chain quality (extension): predecessor-covered incidence under chain vs index order"
        )?;
        write!(f, "{}", self.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn chains_beat_index_order_on_the_light_datasets() {
        // At reduced scale the heavy stand-ins' discovery regions are tiny,
        // so index order inherits some adjacency reuse; the light datasets
        // (the paper's headliners) are the regime-robust comparison.
        let h = Harness::new(Scale(0.15));
        let c = chains(&h);
        assert_eq!(c.rows.len(), 5);
        for &(ds, chained, index) in &c.rows {
            assert!((0.0..=1.0).contains(&chained) && (0.0..=1.0).contains(&index), "{ds}");
            if !ds.heavy_overlap() {
                assert!(
                    chained > index,
                    "{ds}: chained reuse {chained:.3} must beat index {index:.3}"
                );
            }
        }
    }
}
