//! Energy comparison (extension artifact).
//!
//! The paper's §VI-A describes the energy methodology (McPAT for chip
//! components, Micron datasheets for DRAM) but reports no energy figure;
//! this extension completes the accounting: memory-system + core-static
//! energy from [`archsim::EnergyModel`], plus the ChGraph engine's own
//! power (the §VI-E 61 mW per core-engine) integrated over the run.

use super::{fx, grid, Harness, System};
use crate::Table;
use archsim::EnergyModel;
use chgraph::engine::EngineCostModel;
use chgraph::ExecutionReport;
use hyperalgos::Workload;
use hypergraph::datasets::Dataset;
use std::fmt;

/// Energy of one execution, in millijoules (model units).
fn energy_mj(r: &ExecutionReport, cores: usize, with_engine: bool) -> f64 {
    let base = EnergyModel::default_65nm().estimate(&r.mem, r.cycles, cores);
    let mut total = base.total_mj();
    if with_engine {
        // 61 mW per engine x cores, over `cycles` at the paper's 1 GHz
        // engine clock: mW * ns = pJ.
        let engine_pj = EngineCostModel::paper().power_mw * cores as f64 * r.cycles as f64;
        total += engine_pj / 1e9;
    }
    total
}

/// The energy-comparison artifact: PageRank across the five datasets.
#[derive(Debug)]
pub struct EnergyFigure {
    /// Rendered table.
    pub table: Table,
    /// `(dataset, hygra_mj, chgraph_mj)` rows.
    pub rows: Vec<(Dataset, f64, f64)>,
}

/// Regenerates the energy artifact.
pub fn energy(h: &Harness) -> EnergyFigure {
    h.prefetch(grid(&[Workload::Pr], &Dataset::ALL, &[System::Hygra, System::ChGraph]));
    let cores = h.cfg.system.num_cores;
    let mut table =
        Table::new(&["dataset", "Hygra (mJ)", "ChGraph (mJ)", "energy ratio", "dram share"]);
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let hygra = h.report(ds, Workload::Pr, System::Hygra);
        let chg = h.report(ds, Workload::Pr, System::ChGraph);
        let e_h = energy_mj(&hygra, cores, false);
        let e_c = energy_mj(&chg, cores, true);
        let dram_share = {
            let m = EnergyModel::default_65nm();
            let dynamic = m.estimate(&chg.mem, 0, cores);
            dynamic.dram_line_transfers as f64 * m.dram_pj / 1e9 / e_c
        };
        rows.push((ds, e_h, e_c));
        table.row(&[
            ds.abbrev().into(),
            format!("{e_h:.2}"),
            format!("{e_c:.2}"),
            fx(e_h / e_c),
            super::pct(dram_share),
        ]);
    }
    EnergyFigure { table, rows }
}

impl EnergyFigure {
    /// Mean energy-efficiency gain of ChGraph over Hygra.
    pub fn mean_ratio(&self) -> f64 {
        self.rows.iter().map(|r| r.1 / r.2).sum::<f64>() / self.rows.len() as f64
    }
}

impl fmt::Display for EnergyFigure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Energy (extension): PR energy incl. the engine's 61 mW/core (no paper counterpart)"
        )?;
        write!(f, "{}", self.table)?;
        writeln!(f, "mean energy ratio: {}", fx(self.mean_ratio()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn chgraph_saves_energy_through_cycles_and_dram() {
        let h = Harness::new(Scale(0.1));
        let e = energy(&h);
        assert_eq!(e.rows.len(), 5);
        for &(ds, eh, ec) in &e.rows {
            assert!(eh > 0.0 && ec > 0.0, "{ds}");
        }
        // Shorter runs plus the tiny engine adder must net out to savings on
        // at least most datasets.
        assert!(e.mean_ratio() > 1.0, "mean energy ratio {:.2}", e.mean_ratio());
    }
}
