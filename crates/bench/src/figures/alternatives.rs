//! Alternatives: Figs. 23 (hardware prefetcher), 24 (reordering), and 25
//! (ordinary-graph generality).

use super::{fx, grid, Harness, System};
use crate::{load_graph_scaled, Table};
use chgraph::baseline::reorder::run_reordered;
use chgraph::{ChGraphRuntime, HatsVRuntime, HygraRuntime};
use hyperalgos::{run_workload, Workload};
use hypergraph::datasets::{Dataset, GraphDataset};
use std::fmt;

/// Fig. 23: ChGraph vs the event-driven hardware prefetcher.
#[derive(Debug)]
pub struct Fig23 {
    /// Rendered table.
    pub table: Table,
    /// Per-workload ChGraph speedup over the prefetcher (paper:
    /// 1.56x-2.88x).
    pub speedups: Vec<(Workload, f64)>,
}

/// Regenerates Fig. 23 on the Web-trackers stand-in.
pub fn fig23(h: &Harness) -> Fig23 {
    h.prefetch(grid(
        &Workload::HYPERGRAPH,
        &[Dataset::WebTrackers],
        &[System::Hygra, System::Prefetcher, System::ChGraph],
    ));
    let mut table = Table::new(&[
        "workload",
        "Hygra cyc",
        "prefetcher speedup",
        "ChGraph speedup",
        "ChGraph vs prefetcher",
    ]);
    let mut speedups = Vec::new();
    for w in Workload::HYPERGRAPH {
        let hygra = h.report(Dataset::WebTrackers, w, System::Hygra);
        let pf = h.report(Dataset::WebTrackers, w, System::Prefetcher);
        let chg = h.report(Dataset::WebTrackers, w, System::ChGraph);
        let vs_pf = chg.speedup_over(&pf);
        speedups.push((w, vs_pf));
        table.row(&[
            w.abbrev().into(),
            hygra.cycles.to_string(),
            fx(pf.speedup_over(&hygra)),
            fx(chg.speedup_over(&hygra)),
            fx(vs_pf),
        ]);
    }
    Fig23 { table, speedups }
}

impl fmt::Display for Fig23 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 23: ChGraph vs event-driven prefetcher on WEB (paper: 1.56x-2.88x)")?;
        write!(f, "{}", self.table)
    }
}

/// Fig. 24: the reordering technique, with its overhead included.
#[derive(Debug)]
pub struct Fig24 {
    /// Rendered table.
    pub table: Table,
    /// `(dataset, hygra_reorder_total_speedup, chgraph_total_speedup,
    /// chgraph_reorder_total_speedup)` normalized to plain Hygra.
    pub cells: Vec<(Dataset, f64, f64, f64)>,
}

/// Regenerates Fig. 24 with PageRank across the datasets.
pub fn fig24(h: &Harness) -> Fig24 {
    h.prefetch(grid(&[Workload::Pr], &Dataset::ALL, &[System::Hygra, System::ChGraph]));
    let mut table =
        Table::new(&["dataset", "Hygra", "Hygra+Reorder", "ChGraph", "ChGraph+Reorder"]);
    let mut cells = Vec::new();
    for ds in Dataset::ALL {
        let g = h.graph(ds);
        let hygra = h.report(ds, Workload::Pr, System::Hygra);
        let chg = h.report(ds, Workload::Pr, System::ChGraph);
        let hygra_re = run_reordered(&HygraRuntime, &g, &hyperalgos::PageRank::new(), &h.cfg);
        let chg_re =
            run_reordered(&ChGraphRuntime::new(), &g, &hyperalgos::PageRank::new(), &h.cfg);
        let s_hr = hygra_re.total_speedup_over(&hygra);
        let s_c = chg.total_speedup_over(&hygra);
        let s_cr = chg_re.total_speedup_over(&hygra);
        cells.push((ds, s_hr, s_c, s_cr));
        table.row(&[ds.abbrev().into(), "1.00x".into(), fx(s_hr), fx(s_c), fx(s_cr)]);
    }
    Fig24 { table, cells }
}

impl fmt::Display for Fig24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 24: reordering comparison, total time incl. overheads (paper: reordering does not pay off)"
        )?;
        write!(f, "{}", self.table)
    }
}

/// Fig. 25: ordinary-graph generality study (Adsorption and SSSP on AZ/PK).
#[derive(Debug)]
pub struct Fig25 {
    /// Rendered table.
    pub table: Table,
    /// `(workload, dataset, chgraph_vs_ligra, chgraph_vs_hats)` total
    /// speedups.
    pub cells: Vec<(Workload, GraphDataset, f64, f64)>,
}

/// Regenerates Fig. 25. "Ligra" is the index-ordered runtime on the
/// 2-uniform input (a conventional graph framework is exactly Hygra's
/// special case); HATS is the hardware traversal scheduler.
pub fn fig25(h: &Harness) -> Fig25 {
    let mut table =
        Table::new(&["workload", "graph", "Ligra cyc", "HATS", "ChGraph", "ChGraph vs HATS"]);
    let mut cells = Vec::new();
    for w in Workload::GRAPH {
        for gd in GraphDataset::ALL {
            let g = load_graph_scaled(gd, h.scale);
            let ligra = run_workload(w, &HygraRuntime, &g, &h.cfg);
            let hats = run_workload(w, &HatsVRuntime, &g, &h.cfg);
            let chg = run_workload(w, &ChGraphRuntime::new(), &g, &h.cfg);
            let vs_ligra = chg.total_speedup_over(&ligra);
            let vs_hats = chg.total_speedup_over(&hats);
            cells.push((w, gd, vs_ligra, vs_hats));
            table.row(&[
                w.abbrev().into(),
                gd.abbrev().into(),
                ligra.cycles.to_string(),
                fx(hats.total_speedup_over(&ligra)),
                fx(vs_ligra),
                fx(vs_hats),
            ]);
        }
    }
    Fig25 { table, cells }
}

impl Fig25 {
    /// Mean ChGraph total speedup over Ligra (paper: 2.13x).
    pub fn mean_vs_ligra(&self) -> f64 {
        self.cells.iter().map(|c| c.2).sum::<f64>() / self.cells.len() as f64
    }
}

impl fmt::Display for Fig25 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 25: graph applications (paper: ChGraph 2.13x over Ligra, ~parity with HATS)"
        )?;
        write!(f, "{}", self.table)?;
        writeln!(f, "mean ChGraph vs Ligra: {}", fx(self.mean_vs_ligra()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn fig25_smoke() {
        let h = Harness::new(Scale(0.05));
        let f = fig25(&h);
        assert_eq!(f.cells.len(), 4);
        assert!(f.mean_vs_ligra() > 0.0);
        assert!(f.to_string().contains("SSSP"));
    }
}
