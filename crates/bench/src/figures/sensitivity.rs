//! Sensitivity studies: Figs. 17 (`D_max`), 18 (`W_min`), 19 (LLC size),
//! and 20 (core count).

use super::{fx, Harness, System};
use crate::Table;
use hyperalgos::Workload;
use hypergraph::datasets::Dataset;
use oag::{ChainConfig, OagConfig};
use std::fmt;

/// Fig. 17: ChGraph PageRank performance across `D_max`.
#[derive(Debug)]
pub struct Fig17 {
    /// Rendered table.
    pub table: Table,
    /// `(d_max, dataset, cycles)` samples.
    pub samples: Vec<(usize, Dataset, u64)>,
}

/// Regenerates Fig. 17 (`D_max` in 2..=64).
pub fn fig17(h: &Harness) -> Fig17 {
    let sweep = [2usize, 4, 8, 16, 32, 64];
    let jobs: Vec<_> = Dataset::ALL
        .into_iter()
        .flat_map(|ds| {
            sweep
                .map(|d| (ds, Workload::Pr, System::ChGraph, h.cfg.with_chain(ChainConfig::new(d))))
        })
        .collect();
    let mut reports = h.run_batch(&jobs).into_iter();
    let mut header = vec!["dataset".to_string()];
    header.extend(sweep.iter().map(|d| format!("D_max={d}")));
    let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&hdr);
    let mut samples = Vec::new();
    for ds in Dataset::ALL {
        let mut row = vec![ds.abbrev().to_string()];
        let mut base = 0u64;
        for (i, &d) in sweep.iter().enumerate() {
            // invariant: run_batch returns exactly one report per
            // submitted job, in order.
            let r = reports.next().expect("one report per job");
            samples.push((d, ds, r.cycles));
            if i == 0 {
                base = r.cycles;
            }
            row.push(fx(base as f64 / r.cycles as f64));
        }
        table.row(&row);
    }
    Fig17 { table, samples }
}

impl fmt::Display for Fig17 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 17: ChGraph PR speedup vs D_max=2 (paper: sweet spot at 16)")?;
        write!(f, "{}", self.table)
    }
}

/// Fig. 18: ChGraph PageRank performance across `W_min`.
#[derive(Debug)]
pub struct Fig18 {
    /// Rendered table.
    pub table: Table,
    /// `(w_min, dataset, cycles)` samples.
    pub samples: Vec<(u32, Dataset, u64)>,
}

/// Regenerates Fig. 18 (`W_min` in 1..=9), normalized to `W_min = 1`.
pub fn fig18(h: &Harness) -> Fig18 {
    let sweep = [1u32, 3, 5, 7, 9];
    let jobs: Vec<_> = Dataset::ALL
        .into_iter()
        .flat_map(|ds| {
            sweep.map(|w| {
                (ds, Workload::Pr, System::ChGraph, h.cfg.with_oag(OagConfig::new().with_w_min(w)))
            })
        })
        .collect();
    let mut reports = h.run_batch(&jobs).into_iter();
    let mut header = vec!["dataset".to_string()];
    header.extend(sweep.iter().map(|w| format!("W_min={w}")));
    let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&hdr);
    let mut samples = Vec::new();
    for ds in Dataset::ALL {
        let mut row = vec![ds.abbrev().to_string()];
        let mut base = 0u64;
        for (i, &w) in sweep.iter().enumerate() {
            // invariant: run_batch returns exactly one report per
            // submitted job, in order.
            let r = reports.next().expect("one report per job");
            samples.push((w, ds, r.cycles));
            if i == 0 {
                base = r.cycles;
            }
            row.push(super::pct(base as f64 / r.cycles as f64));
        }
        table.row(&row);
    }
    Fig18 { table, samples }
}

impl fmt::Display for Fig18 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 18: ChGraph PR performance vs W_min=1 (paper: 98.7% at W_min=3, degrading beyond)"
        )?;
        write!(f, "{}", self.table)
    }
}

/// Fig. 19: execution time on WEB across LLC sizes.
#[derive(Debug)]
pub struct Fig19 {
    /// Rendered table.
    pub table: Table,
    /// `(llc_bytes, workload, chgraph_cycles, hygra_cycles)` samples.
    pub samples: Vec<(usize, Workload, u64, u64)>,
}

/// Regenerates Fig. 19. The paper sweeps 8–32 MB (a 1:4 range below the
/// working set); the scaled machine sweeps 32 KB–1 MB, which brackets the
/// corresponding transition at stand-in scale.
pub fn fig19(h: &Harness) -> Fig19 {
    let sweep = [32usize << 10, 64 << 10, 256 << 10, 1 << 20];
    let workloads = [Workload::Pr, Workload::Bfs, Workload::Cc];
    let llc_cfg = |llc: usize| {
        let scaled_llc = ((llc as f64 * h.scale.factor()) as usize).next_power_of_two();
        h.cfg.with_system(h.cfg.system.with_llc_bytes(scaled_llc.max(16 << 10)))
    };
    let jobs: Vec<_> = workloads
        .into_iter()
        .flat_map(|w| {
            [System::ChGraph, System::Hygra]
                .into_iter()
                .flat_map(move |sys| sweep.map(|llc| (Dataset::WebTrackers, w, sys, llc)))
        })
        .map(|(ds, w, sys, llc)| (ds, w, sys, llc_cfg(llc)))
        .collect();
    let mut reports = h.run_batch(&jobs).into_iter();
    let mut header = vec!["workload".to_string(), "system".to_string()];
    header.extend(sweep.iter().map(|b| format!("{} KB", b >> 10)));
    let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&hdr);
    let mut samples = Vec::new();
    for w in workloads {
        for sys in [System::ChGraph, System::Hygra] {
            let mut row = vec![w.abbrev().to_string(), sys.label().to_string()];
            let mut base = 0u64;
            for (i, &llc) in sweep.iter().enumerate() {
                // invariant: run_batch returns exactly one report per
                // submitted job, in order.
                let r = reports.next().expect("one report per job");
                samples.push((llc, w, r.cycles, 0));
                if i == 0 {
                    base = r.cycles;
                }
                row.push(fx(base as f64 / r.cycles as f64));
            }
            table.row(&row);
        }
    }
    Fig19 { table, samples }
}

impl fmt::Display for Fig19 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 19: WEB speedup vs the smallest LLC (paper: ChGraph gains 1.30x from 8->32 MB)"
        )?;
        write!(f, "{}", self.table)
    }
}

/// Fig. 20: PageRank scaling with core count.
#[derive(Debug)]
pub struct Fig20 {
    /// Rendered table.
    pub table: Table,
    /// `(cores, dataset, system-label, cycles)` samples.
    pub samples: Vec<(usize, Dataset, &'static str, u64)>,
}

/// Regenerates Fig. 20 (1..16 cores, ChGraph vs Hygra).
pub fn fig20(h: &Harness) -> Fig20 {
    let sweep = [1usize, 2, 4, 8, 16];
    let datasets = [Dataset::WebTrackers, Dataset::LiveJournal];
    let jobs: Vec<_> = datasets
        .into_iter()
        .flat_map(|ds| {
            [System::ChGraph, System::Hygra]
                .into_iter()
                .flat_map(move |sys| sweep.map(move |c| (ds, Workload::Pr, sys, c)))
        })
        .map(|(ds, w, sys, c)| (ds, w, sys, h.cfg.with_system(h.cfg.system.with_cores(c))))
        .collect();
    let mut reports = h.run_batch(&jobs).into_iter();
    let mut header = vec!["dataset".to_string(), "system".to_string()];
    header.extend(sweep.iter().map(|c| format!("{c} cores")));
    let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&hdr);
    let mut samples = Vec::new();
    for ds in datasets {
        for sys in [System::ChGraph, System::Hygra] {
            let mut row = vec![ds.abbrev().to_string(), sys.label().to_string()];
            let mut base = 0u64;
            for (i, &c) in sweep.iter().enumerate() {
                // invariant: run_batch returns exactly one report per
                // submitted job, in order.
                let r = reports.next().expect("one report per job");
                samples.push((c, ds, sys.label(), r.cycles));
                if i == 0 {
                    base = r.cycles;
                }
                row.push(fx(base as f64 / r.cycles as f64));
            }
            table.row(&row);
        }
    }
    Fig20 { table, samples }
}

impl fmt::Display for Fig20 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 20: PR speedup vs 1 core (paper: ChGraph scales better than the baseline)"
        )?;
        write!(f, "{}", self.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn dmax_sweep_smoke() {
        let h = Harness::new(Scale(0.04));
        let f = fig17(&h);
        assert_eq!(f.samples.len(), 30);
        assert!(f.samples.iter().all(|s| s.2 > 0));
    }

    #[test]
    fn core_sweep_monotone_smoke() {
        let h = Harness::new(Scale(0.04));
        let f = fig20(&h);
        // More cores must never be catastrophically slower: compare 1 vs 16.
        for ds in [Dataset::WebTrackers, Dataset::LiveJournal] {
            let one =
                f.samples.iter().find(|s| s.0 == 1 && s.1 == ds && s.2 == "ChGraph").unwrap().3;
            let sixteen =
                f.samples.iter().find(|s| s.0 == 16 && s.1 == ds && s.2 == "ChGraph").unwrap().3;
            assert!(sixteen < one, "{ds}: 16 cores must beat 1 core");
        }
    }
}
