//! Static artifacts: Table I, Table II, and the §VI-E area/power table.

use crate::{load_scaled, Scale, Table};
use archsim::SystemConfig;
use chgraph::engine::EngineCostModel;
use hypergraph::datasets::Dataset;
use hypergraph::stats::sharable_ratio;
use hypergraph::Side;
use std::fmt;

/// Table I: configuration of the simulated system (paper values plus the
/// capacity-scaled variant used with the stand-in datasets).
#[derive(Debug)]
pub struct Table1 {
    /// Rendered table.
    pub table: Table,
}

/// Regenerates Table I.
pub fn table1() -> Table1 {
    let paper = SystemConfig::paper();
    let scaled = SystemConfig::scaled16();
    let mut t = Table::new(&["structure", "paper (Table I)", "scaled (this repo)"]);
    let kb = |b: usize| {
        if b >= 1 << 20 {
            format!("{} MB", b >> 20)
        } else {
            format!("{} KB", b >> 10)
        }
    };
    t.row(&[
        "cores".into(),
        format!("{} x OOO x86-64, 2.2 GHz", paper.num_cores),
        format!("{} (cost model, MLP {})", scaled.num_cores, scaled.mlp),
    ]);
    t.row(&[
        "L1".into(),
        format!(
            "{}/core, {}-way, {} cyc",
            kb(paper.l1.size_bytes),
            paper.l1.ways,
            paper.l1.latency
        ),
        format!(
            "{}/core, {}-way, {} cyc",
            kb(scaled.l1.size_bytes),
            scaled.l1.ways,
            scaled.l1.latency
        ),
    ]);
    t.row(&[
        "L2".into(),
        format!(
            "{}/core, {}-way, {} cyc",
            kb(paper.l2.size_bytes),
            paper.l2.ways,
            paper.l2.latency
        ),
        format!(
            "{}/core, {}-way, {} cyc",
            kb(scaled.l2.size_bytes),
            scaled.l2.ways,
            scaled.l2.latency
        ),
    ]);
    t.row(&[
        "L3".into(),
        format!(
            "{} shared, {} banks, {}-way, {} cyc",
            kb(paper.l3.size_bytes),
            paper.l3_banks,
            paper.l3.ways,
            paper.l3.latency
        ),
        format!(
            "{} shared, {} banks, {}-way, {} cyc",
            kb(scaled.l3.size_bytes),
            scaled.l3_banks,
            scaled.l3.ways,
            scaled.l3.latency
        ),
    ]);
    t.row(&[
        "NoC".into(),
        format!(
            "{}x{} mesh, {}-cyc routers, {}-cyc links",
            paper.noc.width, paper.noc.height, paper.noc.router_latency, paper.noc.link_latency
        ),
        "same".into(),
    ]);
    t.row(&[
        "memory".into(),
        format!(
            "{} controllers, {} cyc latency, 1 line / {} cyc",
            paper.dram.controllers, paper.dram.base_latency, paper.dram.cycles_per_line
        ),
        "same".into(),
    ]);
    Table1 { table: t }
}

impl fmt::Display for Table1 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table I: simulated system configuration")?;
        write!(f, "{}", self.table)
    }
}

/// Table II: the stand-in datasets and their overlap profiles.
#[derive(Debug)]
pub struct Table2 {
    /// Rendered table.
    pub table: Table,
    /// `(dataset, |V|, |H|, #BEdges)` rows for programmatic checks.
    pub rows: Vec<(Dataset, usize, usize, usize)>,
}

/// Regenerates Table II at the given scale.
pub fn table2(scale: Scale) -> Table2 {
    let mut t = Table::new(&[
        "dataset",
        "#vertices",
        "#hyperedges",
        "#bedges",
        "size",
        "k=2 shared",
        "k=7 shared",
    ]);
    let mut rows = Vec::new();
    for ds in Dataset::ALL {
        let g = load_scaled(ds, scale);
        let bytes = g.size_bytes() + 8 * (g.num_vertices() + g.num_hyperedges());
        t.row(&[
            format!("{} ({})", ds.full_name(), ds.abbrev()),
            g.num_vertices().to_string(),
            g.num_hyperedges().to_string(),
            g.num_bipartite_edges().to_string(),
            format!("{:.1} MB", bytes as f64 / 1e6),
            super::pct(sharable_ratio(&g, Side::Vertex, 2)),
            super::pct(sharable_ratio(&g, Side::Vertex, 7)),
        ]);
        rows.push((ds, g.num_vertices(), g.num_hyperedges(), g.num_bipartite_edges()));
    }
    Table2 { table: t, rows }
}

impl fmt::Display for Table2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Table II: stand-in hypergraph datasets")?;
        write!(f, "{}", self.table)
    }
}

/// The §VI-E area/power accounting of the ChGraph engine.
#[derive(Debug)]
pub struct AreaTable {
    /// Rendered table.
    pub table: Table,
    /// The cost model used.
    pub model: EngineCostModel,
}

/// Regenerates the §VI-E engine cost table.
pub fn area_table() -> AreaTable {
    let model = EngineCostModel::paper();
    let mut t = Table::new(&["structure", "entries", "bytes", "area (mm^2)"]);
    for b in model.buffers() {
        t.row(&[
            b.name.into(),
            b.entries.to_string(),
            b.bytes().to_string(),
            format!("{:.4}", model.buffer_area_mm2(&b)),
        ]);
    }
    t.row(&[
        "total engine".into(),
        "-".into(),
        model.total_storage_bytes().to_string(),
        format!("{:.3}", model.area_mm2),
    ]);
    AreaTable { table: t, model }
}

impl fmt::Display for AreaTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "SVI-E: ChGraph engine area/power (65 nm)")?;
        write!(f, "{}", self.table)?;
        writeln!(
            f,
            "area {:.3} mm^2 ({:.2}% of core); power {:.0} mW ({:.2}% of TDP)",
            self.model.area_mm2,
            self.model.area_fraction_of_core() * 100.0,
            self.model.power_mw,
            self.model.power_fraction_of_tdp() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_six_structures() {
        let t = table1();
        assert_eq!(t.table.num_rows(), 6);
        let s = t.to_string();
        assert!(s.contains("4x4 mesh"));
        assert!(s.contains("32 MB"));
    }

    #[test]
    fn table2_lists_all_datasets() {
        let t = table2(Scale(0.05));
        assert_eq!(t.rows.len(), 5);
        assert!(t.to_string().contains("Web-trackers"));
    }

    #[test]
    fn area_matches_paper_totals() {
        let a = area_table();
        assert!((a.model.area_mm2 - 0.094).abs() < 1e-12);
        assert!(a.to_string().contains("0.26% of core"));
    }
}
