//! Main results: Figs. 14 (performance), 15 (memory-access breakdown),
//! 16 (HCG/CP ablation), and 22 (total time including preprocessing).

use super::{fx, grid, Harness, System};
use crate::Table;
use archsim::RegionGroup;
use hyperalgos::Workload;
use hypergraph::datasets::Dataset;
use std::fmt;

/// Fig. 14: performance of GLA and ChGraph normalized to Hygra, per
/// workload and dataset.
#[derive(Debug)]
pub struct Fig14 {
    /// Rendered table.
    pub table: Table,
    /// `(workload, dataset, gla_speedup, chgraph_speedup)` cells.
    pub cells: Vec<(Workload, Dataset, f64, f64)>,
}

/// Regenerates Fig. 14.
pub fn fig14(h: &Harness) -> Fig14 {
    h.prefetch(grid(
        &Workload::HYPERGRAPH,
        &Dataset::ALL,
        &[System::Hygra, System::Gla, System::ChGraph],
    ));
    let mut table =
        Table::new(&["workload", "dataset", "Hygra cyc", "GLA", "ChGraph", "paper ChGraph"]);
    let mut cells = Vec::new();
    for w in Workload::HYPERGRAPH {
        for ds in Dataset::ALL {
            let hygra = h.report(ds, w, System::Hygra);
            let gla = h.report(ds, w, System::Gla);
            let chg = h.report(ds, w, System::ChGraph);
            let gs = gla.speedup_over(&hygra);
            let cs = chg.speedup_over(&hygra);
            cells.push((w, ds, gs, cs));
            table.row(&[
                w.abbrev().into(),
                ds.abbrev().into(),
                hygra.cycles.to_string(),
                fx(gs),
                fx(cs),
                "3.39x-4.73x".into(),
            ]);
        }
    }
    Fig14 { table, cells }
}

impl Fig14 {
    /// Mean ChGraph speedup over Hygra across all cells (paper: 4.12x).
    pub fn mean_chgraph_speedup(&self) -> f64 {
        self.cells.iter().map(|c| c.3).sum::<f64>() / self.cells.len() as f64
    }

    /// Mean GLA speedup over Hygra (paper: 0.62x-0.88x, i.e. a slowdown).
    pub fn mean_gla_speedup(&self) -> f64 {
        self.cells.iter().map(|c| c.2).sum::<f64>() / self.cells.len() as f64
    }
}

impl fmt::Display for Fig14 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 14: speedup over Hygra (paper: GLA slower, ChGraph 3.39x-4.73x)")?;
        write!(f, "{}", self.table)?;
        writeln!(
            f,
            "mean: GLA {}, ChGraph {}",
            fx(self.mean_gla_speedup()),
            fx(self.mean_chgraph_speedup())
        )
    }
}

/// Fig. 15: off-chip main-memory accesses by data-array group, Hygra vs
/// ChGraph.
#[derive(Debug)]
pub struct Fig15 {
    /// Rendered table.
    pub table: Table,
    /// `(workload, dataset, reduction factor)` cells.
    pub reductions: Vec<(Workload, Dataset, f64)>,
}

/// Regenerates Fig. 15.
pub fn fig15(h: &Harness) -> Fig15 {
    h.prefetch(grid(&Workload::HYPERGRAPH, &Dataset::ALL, &[System::Hygra, System::ChGraph]));
    let mut table = Table::new(&[
        "workload",
        "dataset",
        "system",
        "offsets",
        "incident",
        "values",
        "OAG",
        "other",
        "total",
        "reduction",
    ]);
    let mut reductions = Vec::new();
    for w in Workload::HYPERGRAPH {
        for ds in Dataset::ALL {
            let hygra = h.report(ds, w, System::Hygra);
            let chg = h.report(ds, w, System::ChGraph);
            let red = chg.mem_reduction_over(&hygra);
            reductions.push((w, ds, red));
            for (sys, r, red_str) in [("H", &hygra, "1.00x".to_string()), ("C", &chg, fx(red))] {
                let mut row = vec![w.abbrev().into(), ds.abbrev().into(), sys.into()];
                for grp in RegionGroup::ALL {
                    row.push(r.mem.main_memory_accesses_of_group(grp).to_string());
                }
                row.push(r.mem.main_memory_accesses().to_string());
                row.push(red_str);
                table.row(&row);
            }
        }
    }
    Fig15 { table, reductions }
}

impl Fig15 {
    /// Mean reduction factor (paper: 3.51x, range 2.77x-4.56x).
    pub fn mean_reduction(&self) -> f64 {
        self.reductions.iter().map(|c| c.2).sum::<f64>() / self.reductions.len() as f64
    }
}

impl fmt::Display for Fig15 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 15: main-memory accesses by array group (paper reduction: 2.77x-4.56x)")?;
        write!(f, "{}", self.table)?;
        writeln!(f, "mean reduction: {}", fx(self.mean_reduction()))
    }
}

/// Fig. 16: ablation — software GLA, +HCG, +HCG+CP (full ChGraph).
#[derive(Debug)]
pub struct Fig16 {
    /// Rendered table.
    pub table: Table,
    /// `(workload, dataset, hcg_speedup_over_gla, full_speedup_over_gla)`.
    pub cells: Vec<(Workload, Dataset, f64, f64)>,
}

/// Regenerates Fig. 16.
pub fn fig16(h: &Harness) -> Fig16 {
    h.prefetch(grid(
        &Workload::HYPERGRAPH,
        &Dataset::ALL,
        &[System::Gla, System::HcgOnly, System::ChGraph],
    ));
    let mut table = Table::new(&["workload", "dataset", "GLA cyc", "+HCG", "+HCG+CP", "CP share"]);
    let mut cells = Vec::new();
    for w in Workload::HYPERGRAPH {
        for ds in Dataset::ALL {
            let gla = h.report(ds, w, System::Gla);
            let hcg = h.report(ds, w, System::HcgOnly);
            let full = h.report(ds, w, System::ChGraph);
            let hs = hcg.speedup_over(&gla);
            let fs_ = full.speedup_over(&gla);
            let cp_share = if fs_ > 1.0 { (fs_ - hs).max(0.0) / (fs_ - 1.0) } else { 0.0 };
            cells.push((w, ds, hs, fs_));
            table.row(&[
                w.abbrev().into(),
                ds.abbrev().into(),
                gla.cycles.to_string(),
                fx(hs),
                fx(fs_),
                super::pct(cp_share),
            ]);
        }
    }
    Fig16 { table, cells }
}

impl Fig16 {
    /// Mean speedup of HCG alone over software GLA (paper: 4.42x).
    pub fn mean_hcg_speedup(&self) -> f64 {
        self.cells.iter().map(|c| c.2).sum::<f64>() / self.cells.len() as f64
    }

    /// Mean additional speedup of the CP over HCG-only (paper: 1.37x).
    pub fn mean_cp_speedup(&self) -> f64 {
        self.cells.iter().map(|c| c.3 / c.2).sum::<f64>() / self.cells.len() as f64
    }
}

impl fmt::Display for Fig16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 16: ablation over software GLA (paper: HCG 4.42x, CP adds 1.37x)")?;
        write!(f, "{}", self.table)?;
        writeln!(
            f,
            "mean: HCG {}, CP adds {}",
            fx(self.mean_hcg_speedup()),
            fx(self.mean_cp_speedup())
        )
    }
}

/// Fig. 22: total running time (preprocessing included) of ChGraph vs
/// Hygra.
#[derive(Debug)]
pub struct Fig22 {
    /// Rendered table.
    pub table: Table,
    /// `(workload, dataset, total speedup)` cells.
    pub cells: Vec<(Workload, Dataset, f64)>,
}

/// Regenerates Fig. 22.
pub fn fig22(h: &Harness) -> Fig22 {
    h.prefetch(grid(&Workload::HYPERGRAPH, &Dataset::ALL, &[System::Hygra, System::ChGraph]));
    let mut table =
        Table::new(&["workload", "dataset", "exec speedup", "total speedup (incl. preprocessing)"]);
    let mut cells = Vec::new();
    for w in Workload::HYPERGRAPH {
        for ds in Dataset::ALL {
            let hygra = h.report(ds, w, System::Hygra);
            let chg = h.report(ds, w, System::ChGraph);
            let total = chg.total_speedup_over(&hygra);
            cells.push((w, ds, total));
            table.row(&[
                w.abbrev().into(),
                ds.abbrev().into(),
                fx(chg.speedup_over(&hygra)),
                fx(total),
            ]);
        }
    }
    Fig22 { table, cells }
}

impl Fig22 {
    /// Mean total speedup (paper: 2.20x-3.89x).
    pub fn mean_total_speedup(&self) -> f64 {
        self.cells.iter().map(|c| c.2).sum::<f64>() / self.cells.len() as f64
    }
}

impl fmt::Display for Fig22 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 22: total running time incl. preprocessing (paper: 2.20x-3.89x)")?;
        write!(f, "{}", self.table)?;
        writeln!(f, "mean total speedup: {}", fx(self.mean_total_speedup()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;
    use hyperalgos::Workload;

    /// Tiny-scale smoke check that the composite figures share memoized
    /// runs and produce plausible shapes.
    #[test]
    fn composite_figures_smoke() {
        let h = Harness::new(Scale(0.05));
        // Restrict to one workload/dataset pair by priming the memo.
        let _ = h.report(Dataset::LiveJournal, Workload::Cc, System::Hygra);
        let f14 = fig14(&h);
        assert_eq!(f14.cells.len(), 30);
        assert!(f14.mean_chgraph_speedup() > 0.0);
        let f16 = fig16(&h);
        assert_eq!(f16.cells.len(), 30);
        let f22 = fig22(&h);
        assert!(f22.mean_total_speedup() > 0.0);
        let f15 = fig15(&h);
        assert!(f15.mean_reduction() > 0.0);
    }
}
