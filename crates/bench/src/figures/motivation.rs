//! Motivation artifacts: Figs. 2, 3, 5, 7 and 8.

use super::{fx, grid, pct, Harness, System};
use crate::Table;
use hyperalgos::Workload;
use hypergraph::datasets::Dataset;
use hypergraph::stats::sharable_curve;
use hypergraph::Side;
use std::fmt;

/// Fig. 2: main-memory accesses of GLA vs Hygra, PageRank on Web-trackers.
#[derive(Debug)]
pub struct Fig2 {
    /// Hygra's off-chip accesses.
    pub hygra_accesses: u64,
    /// Software GLA's off-chip accesses.
    pub gla_accesses: u64,
    /// Reduction factor (paper: 4.09x).
    pub reduction: f64,
}

/// Regenerates Fig. 2.
pub fn fig2(h: &Harness) -> Fig2 {
    let hygra = h.report(Dataset::WebTrackers, Workload::Pr, System::Hygra);
    let gla = h.report(Dataset::WebTrackers, Workload::Pr, System::Gla);
    Fig2 {
        hygra_accesses: hygra.mem.main_memory_accesses(),
        gla_accesses: gla.mem.main_memory_accesses(),
        reduction: gla.mem_reduction_over(&hygra),
    }
}

impl fmt::Display for Fig2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 2: GLA vs Hygra main-memory accesses (PR on WEB)")?;
        writeln!(f, "  Hygra: {} line transfers", self.hygra_accesses)?;
        writeln!(f, "  GLA:   {} line transfers", self.gla_accesses)?;
        writeln!(f, "  reduction: {} (paper: 4.09x)", fx(self.reduction))
    }
}

/// Fig. 3: execution time of GLA and ChGraph vs Hygra, PR on Web-trackers.
#[derive(Debug)]
pub struct Fig3 {
    /// Hygra cycles.
    pub hygra_cycles: u64,
    /// Software GLA cycles.
    pub gla_cycles: u64,
    /// ChGraph cycles.
    pub chgraph_cycles: u64,
    /// GLA speedup over Hygra (paper: 1 / 1.14 = 0.88x).
    pub gla_speedup: f64,
    /// ChGraph speedup over Hygra (paper: 4.39x).
    pub chgraph_speedup: f64,
}

/// Regenerates Fig. 3.
pub fn fig3(h: &Harness) -> Fig3 {
    h.prefetch(grid(
        &[Workload::Pr],
        &[Dataset::WebTrackers],
        &[System::Hygra, System::Gla, System::ChGraph],
    ));
    let hygra = h.report(Dataset::WebTrackers, Workload::Pr, System::Hygra);
    let gla = h.report(Dataset::WebTrackers, Workload::Pr, System::Gla);
    let chg = h.report(Dataset::WebTrackers, Workload::Pr, System::ChGraph);
    Fig3 {
        hygra_cycles: hygra.cycles,
        gla_cycles: gla.cycles,
        chgraph_cycles: chg.cycles,
        gla_speedup: gla.speedup_over(&hygra),
        chgraph_speedup: chg.speedup_over(&hygra),
    }
}

impl fmt::Display for Fig3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 3: runtime of GLA / ChGraph vs Hygra (PR on WEB)")?;
        writeln!(f, "  Hygra:   {} cycles (1.00x)", self.hygra_cycles)?;
        writeln!(f, "  GLA:     {} cycles ({})", self.gla_cycles, fx(self.gla_speedup))?;
        writeln!(
            f,
            "  ChGraph: {} cycles ({}, paper: 4.39x)",
            self.chgraph_cycles,
            fx(self.chgraph_speedup)
        )
    }
}

/// Fig. 5: fraction of execution time stalled on main memory under Hygra.
#[derive(Debug)]
pub struct Fig5 {
    /// Rendered table.
    pub table: Table,
    /// `(workload, dataset, stall fraction)` cells.
    pub cells: Vec<(Workload, Dataset, f64)>,
}

/// Regenerates Fig. 5 (BFS, PR, BC, CC across the five datasets).
pub fn fig5(h: &Harness) -> Fig5 {
    let workloads = [Workload::Bfs, Workload::Pr, Workload::Bc, Workload::Cc];
    h.prefetch(grid(&workloads, &Dataset::ALL, &[System::Hygra]));
    let mut table = Table::new(&["workload", "FS", "OK", "LJ", "WEB", "OG", "mean"]);
    let mut cells = Vec::new();
    for w in workloads {
        let mut row = vec![w.abbrev().to_string()];
        let mut sum = 0.0;
        for ds in Dataset::ALL {
            let r = h.report(ds, w, System::Hygra);
            let frac = r.mem_stall_fraction();
            cells.push((w, ds, frac));
            sum += frac;
            row.push(pct(frac));
        }
        row.push(pct(sum / Dataset::ALL.len() as f64));
        table.row(&row);
    }
    Fig5 { table, cells }
}

impl fmt::Display for Fig5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 5: Hygra time stalled on main-memory accesses (paper mean: 51.1%)")?;
        write!(f, "{}", self.table)
    }
}

/// Fig. 7: ChGraph vs the HATS-V variant.
#[derive(Debug)]
pub struct Fig7 {
    /// Rendered table.
    pub table: Table,
    /// Per-workload ChGraph speedup over HATS-V (paper: 2.56x–3.01x).
    pub speedups: Vec<(Workload, f64)>,
}

/// Regenerates Fig. 7 on the Web-trackers stand-in.
pub fn fig7(h: &Harness) -> Fig7 {
    h.prefetch(grid(
        &Workload::HYPERGRAPH,
        &[Dataset::WebTrackers],
        &[System::HatsV, System::ChGraph],
    ));
    let mut table = Table::new(&["workload", "HATS-V cycles", "ChGraph cycles", "ChGraph speedup"]);
    let mut speedups = Vec::new();
    for w in Workload::HYPERGRAPH {
        let hats = h.report(Dataset::WebTrackers, w, System::HatsV);
        let chg = h.report(Dataset::WebTrackers, w, System::ChGraph);
        let s = chg.speedup_over(&hats);
        speedups.push((w, s));
        table.row(&[w.abbrev().into(), hats.cycles.to_string(), chg.cycles.to_string(), fx(s)]);
    }
    Fig7 { table, speedups }
}

impl fmt::Display for Fig7 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 7: ChGraph vs HATS-V on WEB (paper: 2.56x-3.01x)")?;
        write!(f, "{}", self.table)
    }
}

/// Fig. 8: sharable-ratio curves.
#[derive(Debug)]
pub struct Fig8 {
    /// Vertex-side table (Fig. 8(a)).
    pub vertices: Table,
    /// Hyperedge-side table (Fig. 8(b)).
    pub hyperedges: Table,
}

/// Regenerates Fig. 8 from the harness's scaled datasets.
pub fn fig8(h: &Harness) -> Fig8 {
    let ks: Vec<usize> = (2..=10).collect();
    let build = |side: Side| {
        let mut header = vec!["dataset".to_string()];
        header.extend(ks.iter().map(|k| format!("k={k}")));
        let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(&hdr);
        for ds in Dataset::ALL {
            let g = h.graph(ds);
            let mut row = vec![ds.abbrev().to_string()];
            for (_, r) in sharable_curve(&g, side, ks.iter().copied()) {
                row.push(pct(r));
            }
            t.row(&row);
        }
        t
    };
    Fig8 { vertices: build(Side::Vertex), hyperedges: build(Side::Hyperedge) }
}

impl fmt::Display for Fig8 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 8(a): ratio of vertices shared by >= k hyperedges")?;
        write!(f, "{}", self.vertices)?;
        writeln!(f, "Fig. 8(b): ratio of hyperedges shared by >= k vertices")?;
        write!(f, "{}", self.hyperedges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn fig8_smoke() {
        let h = Harness::new(Scale(0.05));
        let f = fig8(&h);
        assert_eq!(f.vertices.num_rows(), 5);
        assert!(f.to_string().contains("k=7"));
    }

    #[test]
    fn fig2_and_fig3_smoke() {
        let h = Harness::new(Scale(0.05));
        let f2 = fig2(&h);
        assert!(f2.hygra_accesses > 0 && f2.gla_accesses > 0);
        let f3 = fig3(&h);
        assert!(f3.chgraph_speedup > 0.0);
        assert!(f3.to_string().contains("ChGraph"));
    }
}
