//! Fig. 21: preprocessing time and storage overheads.

use super::{pct, Harness};
use crate::Table;
use chgraph::preprocess::{bipartite_build_cycles, merge_stats, oag_build_cycles};
use hypergraph::datasets::Dataset;
use hypergraph::Side;
use oag::OagConfig;
use std::fmt;

/// Fig. 21: (a) preprocessing-time overhead and (b) storage overhead of
/// ChGraph's OAGs over Hygra's bipartite-only preprocessing.
#[derive(Debug)]
pub struct Fig21 {
    /// Rendered table.
    pub table: Table,
    /// `(dataset, time overhead fraction, storage overhead fraction)`.
    pub overheads: Vec<(Dataset, f64, f64)>,
}

/// Regenerates Fig. 21.
pub fn fig21(h: &Harness) -> Fig21 {
    let mut table = Table::new(&[
        "dataset",
        "Hygra pre (cyc)",
        "ChGraph pre (cyc)",
        "time overhead",
        "paper",
        "storage overhead",
    ]);
    let paper_time = ["39.4%", "46.1%", "23.9%", "13.6%", "43.1%"];
    let mut overheads = Vec::new();
    for (i, ds) in Dataset::ALL.into_iter().enumerate() {
        let g = h.graph(ds);
        // Reuse the harness's prepared (possibly disk-cached) OAGs when they
        // were built with the figure's config; build fresh otherwise.
        let (oag_stats, oag_bytes) = if h.cfg.oag == OagConfig::new() {
            let p = h.prepared(ds);
            // invariant: PreparedOags::from_parts always records build
            // stats in its report.
            let merged = p.report.oag_build.expect("prepared report carries OAG stats");
            (merged, p.hyperedge.size_bytes() + p.vertex.size_bytes())
        } else {
            let (ho, hs) = OagConfig::new().build_with_stats(&g, Side::Hyperedge);
            let (vo, vs) = OagConfig::new().build_with_stats(&g, Side::Vertex);
            (merge_stats(hs, vs), ho.size_bytes() + vo.size_bytes())
        };
        let base = bipartite_build_cycles(&g);
        let oag = oag_build_cycles(&oag_stats);
        let time_ov = oag as f64 / base as f64;
        let storage_ov = oag_bytes as f64 / g.size_bytes() as f64;
        overheads.push((ds, time_ov, storage_ov));
        table.row(&[
            ds.abbrev().into(),
            base.to_string(),
            (base + oag).to_string(),
            pct(time_ov),
            paper_time[i].into(),
            pct(storage_ov),
        ]);
    }
    Fig21 { table, overheads }
}

impl fmt::Display for Fig21 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fig. 21: OAG preprocessing overhead (paper time: 13.6%-46.1%; storage: 13.9%-20.4%)"
        )?;
        write!(f, "{}", self.table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn overheads_are_positive_and_web_is_not_worst() {
        let h = Harness::new(Scale(0.1));
        let f = fig21(&h);
        assert_eq!(f.overheads.len(), 5);
        for &(ds, t, s) in &f.overheads {
            assert!(t > 0.0 && s > 0.0, "{ds}: non-positive overheads");
        }
        let web = f.overheads.iter().find(|o| o.0 == Dataset::WebTrackers).unwrap().1;
        let max = f.overheads.iter().map(|o| o.1).fold(0.0f64, f64::max);
        assert!(web < max, "WEB must not pay the largest time overhead");
    }
}
