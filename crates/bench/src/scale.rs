//! Dataset scaling for quick harness runs.

use hypergraph::datasets::{Dataset, GraphDataset};
use hypergraph::Hypergraph;

/// A multiplicative scale applied to the stand-in dataset sizes, letting the
/// harness run quickly (`Scale(0.2)`) or at full stand-in size
/// (`Scale::FULL`). Cache capacities are *not* rescaled — sub-unity scales
/// soften the capacity-miss regime and are meant for smoke runs only.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Scale(pub f64);

impl Scale {
    /// Full stand-in size (the configuration EXPERIMENTS.md records).
    pub const FULL: Scale = Scale(1.0);

    /// Clamped scale value.
    pub fn factor(self) -> f64 {
        self.0.clamp(0.02, 4.0)
    }

    fn apply(self, n: usize) -> usize {
        ((n as f64 * self.factor()) as usize).max(64)
    }
}

impl Default for Scale {
    fn default() -> Self {
        Scale::FULL
    }
}

/// Loads the stand-in for `ds` at the given scale (element counts scaled,
/// structure parameters untouched).
pub fn load_scaled(ds: Dataset, scale: Scale) -> Hypergraph {
    let mut cfg = ds.config();
    cfg.num_vertices = scale.apply(cfg.num_vertices).max(cfg.template_max + cfg.noise_vertices);
    cfg.num_hyperedges = scale.apply(cfg.num_hyperedges);
    cfg.generate()
}

/// Loads the ordinary-graph stand-in for `gd` at the given scale.
pub fn load_graph_scaled(gd: GraphDataset, scale: Scale) -> Hypergraph {
    let (v, e, seed) = match gd {
        GraphDataset::ComAmazon => (6_000usize, 18_000usize, 0xA2u64),
        GraphDataset::SocPokec => (8_000, 60_000, 0x9C),
    };
    hypergraph::generate::two_uniform_graph(scale.apply(v), scale.apply(e), seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_dataset_loader() {
        let a = load_scaled(Dataset::LiveJournal, Scale::FULL);
        let b = Dataset::LiveJournal.load();
        assert_eq!(a, b);
    }

    #[test]
    fn scaling_shrinks() {
        let small = load_scaled(Dataset::LiveJournal, Scale(0.25));
        let full = Dataset::LiveJournal.load();
        assert!(small.num_hyperedges() < full.num_hyperedges() / 2);
        assert!(small.num_vertices() >= 64);
    }

    #[test]
    fn graph_scaling() {
        let g = load_graph_scaled(GraphDataset::ComAmazon, Scale(0.5));
        assert!(g.num_hyperedges() <= 9_000);
    }

    #[test]
    fn scale_is_clamped() {
        assert_eq!(Scale(0.0).factor(), 0.02);
        assert_eq!(Scale(100.0).factor(), 4.0);
    }
}
