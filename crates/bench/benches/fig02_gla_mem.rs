//! Bench harness for Fig. 2: wall time of the simulations behind the
//! GLA-vs-Hygra memory comparison (PR on the WEB stand-in, reduced scale).

use chg_bench::figures::{fig2, Harness};
use chg_bench::Scale;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig02_gla_mem");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.bench_function("pr_web_hygra_vs_gla", |b| {
        b.iter(|| {
            let h = Harness::new(Scale(0.15));
            let f = fig2(&h);
            assert!(f.hygra_accesses > 0);
            f.reduction
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
