//! Bench harness for Fig. 14: per-system simulation cost of one
//! representative cell (PR on LJ, reduced scale).

use chg_bench::figures::{Harness, System};
use chg_bench::Scale;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperalgos::Workload;
use hypergraph::datasets::Dataset;

fn bench_fig14_cell(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig14_performance");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for sys in [System::Hygra, System::Gla, System::ChGraph] {
        group.bench_with_input(BenchmarkId::new("pr_lj", sys.label()), &sys, |b, &sys| {
            b.iter(|| {
                let h = Harness::new(Scale(0.15));
                let r = h.report(Dataset::LiveJournal, Workload::Pr, sys);
                r.cycles
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig14_cell);
criterion_main!(benches);
