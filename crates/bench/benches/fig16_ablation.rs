//! Bench harness for Fig. 16: the HCG/CP ablation on one cell.

use chg_bench::figures::{Harness, System};
use chg_bench::Scale;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperalgos::Workload;
use hypergraph::datasets::Dataset;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig16_ablation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for sys in [System::Gla, System::HcgOnly, System::ChGraph] {
        group.bench_with_input(BenchmarkId::new("cc_web", sys.label()), &sys, |b, &sys| {
            b.iter(|| {
                let h = Harness::new(Scale(0.15));
                h.report(Dataset::WebTrackers, Workload::Cc, sys).cycles
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
