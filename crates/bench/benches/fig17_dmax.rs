//! Bench harness for Fig. 17: ChGraph PR across the D_max sweep.

use chg_bench::figures::{Harness, System};
use chg_bench::Scale;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hyperalgos::Workload;
use hypergraph::datasets::Dataset;
use oag::ChainConfig;

fn bench_dmax(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig17_dmax");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for d_max in [2usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(d_max), &d_max, |b, &d_max| {
            b.iter(|| {
                let h = Harness::new(Scale(0.15));
                let cfg = h.cfg.with_chain(ChainConfig::new(d_max));
                h.run_with(Dataset::LiveJournal, Workload::Pr, System::ChGraph, &cfg).cycles
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dmax);
criterion_main!(benches);
