//! Microbenchmark: chain generation (Algorithm 3) — the operation the HCG
//! turns into hardware.

use chg_bench::{load_scaled, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypergraph::chunk::partition;
use hypergraph::datasets::Dataset;
use hypergraph::{Frontier, Side};
use oag::{generate_chains, ChainConfig, OagConfig};

fn bench_chain_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("chain_gen");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(8));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let g = load_scaled(Dataset::WebTrackers, Scale(0.5));
    let oag = OagConfig::new().build(&g, Side::Hyperedge);
    let n = g.num_hyperedges();
    let full = Frontier::full(n);
    let sparse = Frontier::from_iter(n, (0..n as u32).filter(|h| h % 13 == 0));
    for (name, frontier) in [("all_active", &full), ("sparse", &sparse)] {
        for d_max in [4usize, 16, 64] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("dmax_{d_max}")),
                &d_max,
                |b, &d_max| {
                    b.iter(|| {
                        generate_chains(&oag, frontier, 0..n as u32, &ChainConfig::new(d_max))
                    })
                },
            );
        }
    }
    // Per-chunk generation (the per-core work of one phase).
    let chunks = partition(&g, Side::Hyperedge, 16);
    group.bench_function("chunked_16", |b| {
        b.iter(|| {
            chunks
                .iter()
                .map(|c| {
                    generate_chains(&oag, &full, c.first..c.last, &ChainConfig::default())
                        .num_elements()
                })
                .sum::<usize>()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_chain_gen);
criterion_main!(benches);
