//! Microbenchmark: OAG construction (the preprocessing the paper amortizes,
//! SIV-A / Fig. 21).

use chg_bench::figures::{Harness, System};
use chg_bench::{load_scaled, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyperalgos::Workload;
use hypergraph::datasets::Dataset;
use hypergraph::Side;
use oag::OagConfig;

fn bench_oag_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("oag_build");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for ds in [Dataset::LiveJournal, Dataset::WebTrackers] {
        let g = load_scaled(ds, Scale(0.5));
        group.bench_with_input(BenchmarkId::new("hyperedge_side", ds.abbrev()), &g, |b, g| {
            b.iter(|| OagConfig::new().build(g, Side::Hyperedge))
        });
        group.bench_with_input(BenchmarkId::new("vertex_side", ds.abbrev()), &g, |b, g| {
            b.iter(|| OagConfig::new().build(g, Side::Vertex))
        });
        for w_min in [1u32, 3, 7] {
            group.bench_with_input(
                BenchmarkId::new(format!("wmin_{w_min}"), ds.abbrev()),
                &g,
                |b, g| b.iter(|| OagConfig::new().with_w_min(w_min).build(g, Side::Hyperedge)),
            );
        }
    }
    group.finish();
}

/// Parallel vs serial OAG construction across thread counts (the result is
/// bit-identical — only wall-clock changes; `tests/parallel_determinism.rs`
/// pins the equivalence).
fn bench_oag_build_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("oag_build_threads");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for ds in [Dataset::LiveJournal, Dataset::WebTrackers] {
        let g = load_scaled(ds, Scale(0.5));
        for threads in [1usize, 2, 4, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("threads_{threads}"), ds.abbrev()),
                &g,
                |b, g| b.iter(|| OagConfig::new().build_threads(g, Side::Hyperedge, threads)),
            );
        }
    }
    group.finish();
}

/// Throughput of the figure harness's fanned-out evaluation grid (the
/// Fig. 14 workload x dataset x system cells), serial vs parallel.
fn bench_harness_grid(c: &mut Criterion) {
    let mut group = c.benchmark_group("harness_grid");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(10));
    group.warm_up_time(std::time::Duration::from_secs(1));
    let datasets = [Dataset::LiveJournal, Dataset::WebTrackers];
    let workloads = [Workload::Cc, Workload::Bfs];
    let systems = [System::Hygra, System::ChGraph];
    let jobs: Vec<_> = datasets
        .into_iter()
        .flat_map(|ds| {
            workloads
                .into_iter()
                .flat_map(move |w| systems.into_iter().map(move |sys| (ds, w, sys)))
        })
        .collect();
    group.throughput(Throughput::Elements(jobs.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &jobs, |b, jobs| {
            b.iter(|| {
                // Fresh harness per iteration: the memo makes repeated
                // prefetches free, which would measure nothing.
                let h = Harness::new(Scale(0.05)).with_threads(threads);
                h.prefetch(jobs.iter().copied());
                h
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_oag_build, bench_oag_build_threads, bench_harness_grid);
criterion_main!(benches);
