//! Microbenchmark: OAG construction (the preprocessing the paper amortizes,
//! SIV-A / Fig. 21).

use chg_bench::{load_scaled, Scale};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hypergraph::datasets::Dataset;
use hypergraph::Side;
use oag::OagConfig;

fn bench_oag_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("oag_build");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    group.warm_up_time(std::time::Duration::from_secs(1));
    for ds in [Dataset::LiveJournal, Dataset::WebTrackers] {
        let g = load_scaled(ds, Scale(0.5));
        group.bench_with_input(BenchmarkId::new("hyperedge_side", ds.abbrev()), &g, |b, g| {
            b.iter(|| OagConfig::new().build(g, Side::Hyperedge))
        });
        group.bench_with_input(BenchmarkId::new("vertex_side", ds.abbrev()), &g, |b, g| {
            b.iter(|| OagConfig::new().build(g, Side::Vertex))
        });
        for w_min in [1u32, 3, 7] {
            group.bench_with_input(
                BenchmarkId::new(format!("wmin_{w_min}"), ds.abbrev()),
                &g,
                |b, g| b.iter(|| OagConfig::new().with_w_min(w_min).build(g, Side::Hyperedge)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_oag_build);
criterion_main!(benches);
