//! Hot-path kernel benchmark: the three flattened kernels measured against
//! their retained pre-rewrite implementations.
//!
//! The flattening PR rewrote the hottest loops of the repository — the
//! set-associative cache lookup every simulated memory reference funnels
//! through, OAG two-hop counting, and the chain-generation walk — with
//! flat, cache-friendly layouts, keeping the originals under the
//! `reference-kernels` feature (`archsim::reference`, `oag::reference`).
//! This benchmark times both sides on identical inputs, proves the outputs
//! equal while doing so, and writes the committed record
//! `BENCH_hotpath.json` (with the measuring host's [`HostMeta`] embedded,
//! since the numbers are meaningless without it).
//!
//! Run modes:
//!
//! - `cargo bench -p chg-bench --features reference-kernels --bench hotpath`
//!   — full measurement; writes `BENCH_hotpath.json` into the current
//!   directory (override with `-- --out <path>`).
//! - `... --bench hotpath -- --test` — CI smoke mode: tiny inputs, one
//!   repetition, identity assertions only, no JSON.

use chg_bench::{load_scaled, HostMeta, Scale};
use hypergraph::datasets::Dataset;
use hypergraph::{Frontier, Hypergraph, Side};
use oag::{generate_chains_with_scratch, ChainConfig, ChainScratch, OagConfig};
use std::time::Instant;

/// One measured kernel: reference vs optimized wall-clock and the work unit
/// count for context.
struct KernelResult {
    name: &'static str,
    reference_ms: f64,
    optimized_ms: f64,
    units: u64,
    unit_name: &'static str,
}

impl KernelResult {
    fn speedup(&self) -> f64 {
        self.reference_ms / self.optimized_ms.max(1e-9)
    }
}

/// Times `fa` and `fb` interleaved — a/b/a/b across `reps` rounds, after
/// one untimed warmup each — and returns each side's best wall-clock in
/// milliseconds plus the final outputs. Interleaving matters more than the
/// rep count: timing one side to completion and then the other lets any
/// drift in machine load (thermal throttling, a background build) land
/// entirely on one side and silently skew the ratio, while alternating
/// makes both sides sample the same noise. Best-of, not mean: the kernels
/// are deterministic, so the minimum is the least-noise estimate.
fn time_pair<T>(
    reps: usize,
    mut fa: impl FnMut() -> T,
    mut fb: impl FnMut() -> T,
) -> (f64, f64, T, T) {
    let mut a_out = fa(); // warmup
    let mut b_out = fb();
    let mut best_a = f64::INFINITY;
    let mut best_b = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        a_out = fa();
        best_a = best_a.min(t.elapsed().as_secs_f64() * 1e3);
        let t = Instant::now();
        b_out = fb();
        best_b = best_b.min(t.elapsed().as_secs_f64() * 1e3);
    }
    (best_a, best_b, a_out, b_out)
}

/// Deterministic 64-bit LCG (same constants as the archsim unit tests).
fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    *state
}

/// Folds a [`archsim::CacheAccess`] into a running checksum so the access
/// loop cannot be dead-code-eliminated and the two implementations can be
/// diffed cheaply.
fn fold_access(sum: u64, a: archsim::CacheAccess) -> u64 {
    sum.wrapping_mul(31)
        .wrapping_add(a.hit as u64)
        .wrapping_add(a.writeback.unwrap_or(u64::MAX).wrapping_mul(3))
        .wrapping_add(a.evicted.unwrap_or(u64::MAX).wrapping_mul(7))
}

/// Kernel 1: the set-associative cache, timed on both geometries the
/// simulated machine instantiates (`archsim::MachineConfig` defaults): the
/// 32 KiB 8-way L1 every core-side reference funnels through, and the
/// 2 MiB 16-way L3 bank (32 MiB shared L3 across 16 banks) every L1 miss
/// lands in. A mixed read/write/probe stream (the same op mix the identity
/// tests replay); the two geometries' times are summed — a simulated
/// memory reference pays both lookups on the miss path, and the L3 bank is
/// where the flat layout matters most (its line metadata alone overflows
/// the host L2, so the victim scan's footprint is the bottleneck).
fn bench_cache(smoke: bool, reps: usize) -> KernelResult {
    let geometries = [
        archsim::CacheConfig { size_bytes: 32 * 1024, ways: 8, latency: 1 },
        archsim::CacheConfig { size_bytes: 2 * 1024 * 1024, ways: 16, latency: 1 },
    ];
    let accesses: u64 = if smoke { 20_000 } else { 4_000_000 };
    let mut reference_ms = 0.0;
    let mut optimized_ms = 0.0;
    for cfg in &geometries {
        let run_ref = || {
            let mut c = archsim::reference::Cache::new(cfg, 64);
            let mut state = 0x243F_6A88_85A3_08D3u64;
            let mut sum = 0u64;
            for _ in 0..accesses {
                let s = lcg(&mut state);
                let addr = (s >> 16) % (cfg.size_bytes as u64 * 8);
                match s % 16 {
                    0 => sum = sum.wrapping_add(c.invalidate(addr).map_or(2, u64::from)),
                    1 => sum = sum.wrapping_add(c.mark_dirty(addr) as u64),
                    2 => sum = sum.wrapping_add(c.contains(addr) as u64),
                    _ => sum = fold_access(sum, c.access(addr, s & 1 == 1)),
                }
            }
            sum.wrapping_add(c.resident_lines() as u64)
        };
        let run_opt = || {
            let mut c = archsim::Cache::new(cfg, 64);
            let mut state = 0x243F_6A88_85A3_08D3u64;
            let mut sum = 0u64;
            for _ in 0..accesses {
                let s = lcg(&mut state);
                let addr = (s >> 16) % (cfg.size_bytes as u64 * 8);
                match s % 16 {
                    0 => sum = sum.wrapping_add(c.invalidate(addr).map_or(2, u64::from)),
                    1 => sum = sum.wrapping_add(c.mark_dirty(addr) as u64),
                    2 => sum = sum.wrapping_add(c.contains(addr) as u64),
                    _ => sum = fold_access(sum, c.access(addr, s & 1 == 1)),
                }
            }
            sum.wrapping_add(c.resident_lines() as u64)
        };
        let (r_ms, o_ms, ref_sum, opt_sum) = time_pair(reps, run_ref, run_opt);
        assert_eq!(ref_sum, opt_sum, "cache kernels diverged ({} B)", cfg.size_bytes);
        reference_ms += r_ms;
        optimized_ms += o_ms;
    }
    KernelResult {
        name: "cache_sim",
        reference_ms,
        optimized_ms,
        units: accesses * geometries.len() as u64,
        unit_name: "accesses",
    }
}

/// Kernel 2: OAG construction (two-hop counting + per-row degree capping)
/// on the Web-trackers stand-in, the densest-overlap dataset in the suite,
/// at the two endpoints of the Fig. 18 `W_min` sweep the figure harness
/// rebuilds on every regeneration: the paper default (`W_min = 3`, sparse
/// candidate rows) and `W_min = 1` (every two-hop neighbor survives the
/// filter — the heaviest rows, where the bounded top-k degree cap replaces
/// the reference's full-row sort). Times are summed across the two
/// configurations.
fn bench_oag_build(g: &Hypergraph, reps: usize) -> KernelResult {
    let mut reference_ms = 0.0;
    let mut optimized_ms = 0.0;
    for w_min in [3u32, 1] {
        let cfg = OagConfig::new().with_w_min(w_min);
        let (r_ms, o_ms, ref_out, opt_out) = time_pair(
            reps,
            || oag::reference::build_with_stats(&cfg, g, Side::Hyperedge),
            || cfg.build_with_stats(g, Side::Hyperedge),
        );
        assert_eq!(ref_out, opt_out, "OAG build kernels diverged (w_min={w_min})");
        reference_ms += r_ms;
        optimized_ms += o_ms;
    }
    KernelResult {
        name: "oag_build",
        reference_ms,
        optimized_ms,
        units: 2 * g.num_bipartite_edges() as u64,
        unit_name: "bipartite_edges",
    }
}

/// Kernel 3: chain generation as the execution driver issues it — per-core
/// chunks, a sparse frontier, many iterations — where the rewrite's reused
/// epoch-tagged visited scratch replaces an `O(chunk width)` allocation per
/// call.
fn bench_chain_gen(g: &Hypergraph, smoke: bool, reps: usize) -> KernelResult {
    let oag = OagConfig::new().build(g, Side::Hyperedge);
    let n = g.num_hyperedges() as u32;
    // Every 64th element active: the mid-to-late-round frontier shape of a
    // frontier-driven execution (BFS/SSSP), where the driver still issues a
    // chain-generation call per chunk per round but most of each chunk is
    // inactive — exactly where the reference's per-call visited allocation
    // stops being amortized by walk work.
    let frontier = Frontier::from_iter(n as usize, (0..n).step_by(64));
    let cfg = ChainConfig::default();
    let cores = 16u32;
    let chunk = n.div_ceil(cores);
    let iterations = if smoke { 2 } else { 200 };
    let chunks: Vec<std::ops::Range<u32>> =
        (0..cores).map(|c| (c * chunk).min(n)..((c + 1) * chunk).min(n)).collect();
    let run_ref = || {
        let mut total = 0usize;
        for _ in 0..iterations {
            for r in &chunks {
                total += oag::reference::generate_chains(&oag, &frontier, r.clone(), &cfg)
                    .num_elements();
            }
        }
        total
    };
    let run_opt = || {
        let mut scratch = ChainScratch::new();
        let mut total = 0usize;
        for _ in 0..iterations {
            for r in &chunks {
                total +=
                    generate_chains_with_scratch(&oag, &frontier, r.clone(), &cfg, &mut scratch)
                        .num_elements();
            }
        }
        total
    };
    let (reference_ms, optimized_ms, ref_total, opt_total) = time_pair(reps, run_ref, run_opt);
    assert_eq!(ref_total, opt_total, "chain generation kernels diverged");
    KernelResult {
        name: "chain_gen",
        reference_ms,
        optimized_ms,
        units: (ref_total / iterations) as u64,
        unit_name: "scheduled_elements_per_iteration",
    }
}

fn emit_json(path: &str, results: &[KernelResult]) {
    let host = HostMeta::collect();
    let mut body = String::new();
    body.push_str("{\n");
    body.push_str(
        "  \"description\": \"Hot-path kernel speedups: the flat-layout rewrites \
         (SoA set-associative cache, epoch-tagged OAG two-hop counting with bounded top-k \
         degree capping, chain generation with reused epoch-tagged visited scratch) timed \
         against the retained pre-rewrite reference kernels on identical inputs. Outputs \
         are asserted bit-identical in the same run; the workspace identity test suite \
         (tests/hotpath_identity.rs) pins the equivalence independently.\",\n",
    );
    body.push_str(
        "  \"command\": \"cargo bench -p chg-bench --features reference-kernels --bench hotpath\",\n",
    );
    body.push_str(&format!("  \"date\": \"{}\",\n", host.date()));
    body.push_str(&format!("  \"host\": {},\n", host.to_json()));
    body.push_str("  \"results\": {\n");
    for (i, r) in results.iter().enumerate() {
        body.push_str(&format!(
            "    \"{}\": {{ \"reference_ms\": {:.2}, \"optimized_ms\": {:.2}, \
             \"speedup\": {:.2}, \"{}\": {} }}{}\n",
            r.name,
            r.reference_ms,
            r.optimized_ms,
            r.speedup(),
            r.unit_name,
            r.units,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    body.push_str("  }\n}\n");
    std::fs::write(path, body).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {path}");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `cargo bench` forwards libtest-style flags (`--bench`); ignore
    // anything unrecognized rather than failing the whole bench run.
    let smoke = args.iter().any(|a| a == "--test");
    // `cargo bench` runs the binary with the *package* root as CWD, so the
    // default lands the record next to the other BENCH_*.json at the
    // workspace root rather than inside crates/bench/.
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json").to_string()
        });
    let reps = if smoke { 1 } else { 7 };
    let scale = if smoke { Scale(0.05) } else { Scale(0.5) };
    let g = load_scaled(Dataset::WebTrackers, scale);

    let results =
        [bench_cache(smoke, reps), bench_oag_build(&g, reps), bench_chain_gen(&g, smoke, reps)];
    for r in &results {
        println!(
            "{:<10} reference {:>9.2} ms   optimized {:>9.2} ms   speedup {:>5.2}x   ({} {})",
            r.name,
            r.reference_ms,
            r.optimized_ms,
            r.speedup(),
            r.units,
            r.unit_name,
        );
    }
    if smoke {
        println!("smoke mode: kernel outputs identical; skipping JSON emission");
    } else {
        emit_json(&out, &results);
    }
}
