//! Microbenchmark: simulator throughput — accesses per second through the
//! full cache hierarchy (the cost of every experiment in this repository).

use archsim::{AccessKind, AddressMap, Level, Machine, Region, SystemConfig};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

fn machine(cores: usize) -> Machine {
    let cfg = SystemConfig::scaled(cores);
    let mut map = AddressMap::new(cfg.line_bytes);
    map.add(Region::VertexValue, 8, 1 << 18);
    Machine::new(cfg, map)
}

fn bench_access_streams(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_sim");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(8));
    group.warm_up_time(std::time::Duration::from_secs(1));
    const N: u64 = 100_000;
    group.throughput(Throughput::Elements(N));
    group.bench_function("sequential_reads_1core", |b| {
        let mut m = machine(1);
        b.iter(|| {
            for i in 0..N {
                m.access(0, Region::VertexValue, i % (1 << 18), AccessKind::Read, Level::L1, i);
            }
        })
    });
    group.bench_function("strided_writes_16core", |b| {
        let mut m = machine(16);
        b.iter(|| {
            for i in 0..N {
                let core = (i % 16) as usize;
                let idx = (i * 7919) % (1 << 18);
                m.access(core, Region::VertexValue, idx, AccessKind::Write, Level::L1, i);
            }
        })
    });
    group.bench_function("engine_entry_reads", |b| {
        let mut m = machine(4);
        b.iter(|| {
            for i in 0..N {
                let idx = (i * 31) % (1 << 18);
                m.access(0, Region::VertexValue, idx, AccessKind::Read, Level::L2, i);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_access_streams);
criterion_main!(benches);
