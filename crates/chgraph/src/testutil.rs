//! Test-support workloads shared by this crate's unit tests.

use crate::{Algorithm, State, UpdateOutcome};
use hypergraph::{Frontier, HyperedgeId, Hypergraph, VertexId};

/// A PageRank-like all-active accumulation workload: every element is active
/// every iteration, values are reset per phase, and every bipartite edge
/// both reads and writes its destination. This is the regime of the paper's
/// Fig. 2 (PR) and the most memory-intensive shape the runtimes face.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct PrLike {
    /// Number of iterations to run.
    pub iterations: usize,
}

impl Algorithm for PrLike {
    fn name(&self) -> &'static str {
        "pr-like"
    }

    fn init(&self, g: &Hypergraph) -> (State, Frontier) {
        (State::filled(g, 1.0 / g.num_vertices() as f64, 0.0), Frontier::full(g.num_vertices()))
    }

    fn begin_iteration(&self, _g: &Hypergraph, state: &mut State, _iteration: usize) {
        state.hyperedge_value.fill(0.0);
    }

    fn begin_vertex_phase(&self, _g: &Hypergraph, state: &mut State, _iteration: usize) {
        state.vertex_value.fill(0.0);
    }

    fn apply_hf(&self, g: &Hypergraph, state: &mut State, v: u32, h: u32) -> UpdateOutcome {
        state.hyperedge_value[h as usize] +=
            state.vertex_value[v as usize] / g.vertex_degree(VertexId::new(v)).max(1) as f64;
        UpdateOutcome::WROTE_AND_ACTIVATED
    }

    fn apply_vf(&self, g: &Hypergraph, state: &mut State, h: u32, v: u32) -> UpdateOutcome {
        state.vertex_value[v as usize] += state.hyperedge_value[h as usize]
            / g.hyperedge_degree(HyperedgeId::new(h)).max(1) as f64;
        UpdateOutcome::WROTE_AND_ACTIVATED
    }

    fn max_iterations(&self) -> usize {
        self.iterations
    }

    fn all_active(&self) -> bool {
        true
    }
}
