//! Runtime guardrails: execution watchdogs and typed execution errors.
//!
//! Simulated executions can livelock in ways ordinary unit tests never
//! exercise — a non-monotone algorithm whose frontier never drains, a
//! mis-built OAG that sends the chain walk in circles, a FIFO coupling bug
//! that stalls the engine forever. The [`Watchdog`] converts those hangs
//! into a typed [`ExecError::BudgetExceeded`] carrying an [`ExecProgress`]
//! snapshot (partial statistics at the moment the guard tripped), so
//! long-running evaluation grids report a structured per-cell failure
//! instead of wedging the whole harness.
//!
//! All budgets are opt-in: a default [`WatchdogConfig`] never trips.

use hypergraph::ValidationError;
use std::fmt;
use std::time::{Duration, Instant};

/// Budgets for one execution. Each budget is optional; the default
/// configuration has none, so a watchdog built from it never trips.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct WatchdogConfig {
    /// Maximum simulated cycles before the run is aborted.
    pub max_cycles: Option<u64>,
    /// Maximum host wall-clock time before the run is aborted.
    pub max_wall: Option<Duration>,
    /// Maximum consecutive iterations during which the frontier fails to
    /// shrink before the run is declared livelocked. Frontiers legitimately
    /// grow while an algorithm expands (e.g. BFS's first `diameter`
    /// iterations), so set this above the expected expansion span.
    pub max_stalled_iterations: Option<usize>,
}

impl WatchdogConfig {
    /// A configuration with no budgets (never trips).
    pub fn new() -> Self {
        WatchdogConfig::default()
    }

    /// Caps simulated cycles.
    pub fn with_max_cycles(mut self, cycles: u64) -> Self {
        self.max_cycles = Some(cycles);
        self
    }

    /// Caps host wall-clock time.
    pub fn with_max_wall(mut self, wall: Duration) -> Self {
        self.max_wall = Some(wall);
        self
    }

    /// Caps consecutive non-shrinking-frontier iterations.
    pub fn with_max_stalled_iterations(mut self, iterations: usize) -> Self {
        self.max_stalled_iterations = Some(iterations);
        self
    }

    /// Whether any budget is set.
    pub fn is_enabled(&self) -> bool {
        self.max_cycles.is_some()
            || self.max_wall.is_some()
            || self.max_stalled_iterations.is_some()
    }
}

/// Which budget a watchdog tripped on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Budget {
    /// The simulated-cycle budget ([`WatchdogConfig::max_cycles`]).
    Cycles,
    /// The host wall-clock budget ([`WatchdogConfig::max_wall`]).
    WallClock,
    /// The frontier-stall budget ([`WatchdogConfig::max_stalled_iterations`]).
    StalledFrontier,
}

impl fmt::Display for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Budget::Cycles => "cycle budget",
            Budget::WallClock => "wall-clock budget",
            Budget::StalledFrontier => "frontier stall budget",
        })
    }
}

/// Snapshot of execution progress at the moment a guard tripped — the
/// partial statistics a caller can still report for an aborted run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ExecProgress {
    /// Completed iterations of the outer procedure (or elements processed,
    /// for engine-model phases).
    pub iterations: usize,
    /// Simulated cycles elapsed so far.
    pub cycles: u64,
    /// Active elements in the most recent frontier (or queue entries, for
    /// engine-model phases).
    pub frontier_len: usize,
}

/// Typed execution failure. Produced by the fallible execution paths
/// ([`Runtime::try_execute`](crate::Runtime::try_execute)); the infallible
/// paths panic with this error's [`Display`](fmt::Display) message.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExecError {
    /// A watchdog budget was exhausted. `progress` carries the partial
    /// statistics accumulated before the guard tripped.
    BudgetExceeded {
        /// Which execution phase tripped the guard.
        phase: &'static str,
        /// Which budget was exhausted.
        budget: Budget,
        /// Progress at the moment the guard tripped.
        progress: ExecProgress,
    },
    /// A generated chain schedule failed its §IV cover invariant (caught by
    /// [`oag::ChainSet::validate_cover`] before execution could consume the
    /// corrupt schedule).
    InvalidChainCover {
        /// Which execution phase produced the schedule.
        phase: &'static str,
        /// The specific cover violation.
        source: ValidationError,
    },
    /// An input structure (hypergraph or OAG) failed validation.
    InvalidInput(ValidationError),
    /// The run configuration cannot be simulated (e.g. more cores than the
    /// sharer directory supports).
    InvalidConfig(String),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::BudgetExceeded { phase, budget, progress } => write!(
                f,
                "{budget} exceeded during {phase}: {} iterations, {} cycles, frontier {}",
                progress.iterations, progress.cycles, progress.frontier_len
            ),
            ExecError::InvalidChainCover { phase, source } => {
                write!(f, "invalid chain cover during {phase}: {source}")
            }
            ExecError::InvalidInput(e) => write!(f, "invalid input structure: {e}"),
            ExecError::InvalidConfig(msg) => write!(f, "invalid run configuration: {msg}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::InvalidChainCover { source, .. } => Some(source),
            ExecError::InvalidInput(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidationError> for ExecError {
    fn from(e: ValidationError) -> Self {
        ExecError::InvalidInput(e)
    }
}

/// Runtime state of the guardrails: wall-clock origin plus the frontier
/// stall counter. Construct one per execution and feed it every iteration
/// boundary through [`Watchdog::observe_iteration`].
#[derive(Clone, Debug)]
pub struct Watchdog {
    cfg: WatchdogConfig,
    started: Instant,
    prev_frontier: Option<usize>,
    stalled: usize,
}

impl Watchdog {
    /// Starts a watchdog (the wall clock begins now).
    pub fn new(cfg: WatchdogConfig) -> Self {
        Watchdog { cfg, started: Instant::now(), prev_frontier: None, stalled: 0 }
    }

    /// Whether any budget is being enforced.
    pub fn is_enabled(&self) -> bool {
        self.cfg.is_enabled()
    }

    /// Checks the cycle budget alone — usable mid-iteration, where the
    /// frontier is not yet known.
    pub fn check_cycles(
        &self,
        phase: &'static str,
        progress: ExecProgress,
    ) -> Result<(), ExecError> {
        match self.cfg.max_cycles {
            Some(max) if progress.cycles > max => {
                Err(ExecError::BudgetExceeded { phase, budget: Budget::Cycles, progress })
            }
            _ => Ok(()),
        }
    }

    /// Checks every budget at an iteration boundary and advances the
    /// frontier stall counter. `progress.frontier_len` must be the size of
    /// the frontier the *next* iteration would process.
    pub fn observe_iteration(
        &mut self,
        phase: &'static str,
        progress: ExecProgress,
    ) -> Result<(), ExecError> {
        self.check_cycles(phase, progress)?;
        if let Some(max) = self.cfg.max_wall {
            if self.started.elapsed() > max {
                return Err(ExecError::BudgetExceeded {
                    phase,
                    budget: Budget::WallClock,
                    progress,
                });
            }
        }
        if let Some(max) = self.cfg.max_stalled_iterations {
            let stalled_now = match self.prev_frontier {
                Some(prev) => progress.frontier_len > 0 && progress.frontier_len >= prev,
                None => false,
            };
            self.stalled = if stalled_now { self.stalled + 1 } else { 0 };
            self.prev_frontier = Some(progress.frontier_len);
            if self.stalled > max {
                return Err(ExecError::BudgetExceeded {
                    phase,
                    budget: Budget::StalledFrontier,
                    progress,
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn progress(iterations: usize, cycles: u64, frontier_len: usize) -> ExecProgress {
        ExecProgress { iterations, cycles, frontier_len }
    }

    #[test]
    fn default_watchdog_never_trips() {
        let mut w = Watchdog::new(WatchdogConfig::new());
        assert!(!w.is_enabled());
        for i in 0..1_000 {
            assert!(w.observe_iteration("iteration", progress(i, u64::MAX, 100)).is_ok());
        }
    }

    #[test]
    fn cycle_budget_trips_with_partial_stats() {
        let mut w = Watchdog::new(WatchdogConfig::new().with_max_cycles(1_000));
        assert!(w.observe_iteration("iteration", progress(1, 900, 5)).is_ok());
        let err = w.observe_iteration("iteration", progress(2, 1_001, 5)).unwrap_err();
        assert_eq!(
            err,
            ExecError::BudgetExceeded {
                phase: "iteration",
                budget: Budget::Cycles,
                progress: progress(2, 1_001, 5),
            }
        );
    }

    #[test]
    fn stalled_frontier_trips_only_after_budget() {
        let mut w = Watchdog::new(WatchdogConfig::new().with_max_stalled_iterations(2));
        // Shrinking frontier: fine forever.
        for (i, len) in [100usize, 80, 60, 40].into_iter().enumerate() {
            assert!(w.observe_iteration("iteration", progress(i, 0, len)).is_ok());
        }
        // Constant frontier: two stalls tolerated, the third trips.
        assert!(w.observe_iteration("iteration", progress(4, 0, 40)).is_ok());
        assert!(w.observe_iteration("iteration", progress(5, 0, 40)).is_ok());
        let err = w.observe_iteration("iteration", progress(6, 0, 40)).unwrap_err();
        assert!(matches!(err, ExecError::BudgetExceeded { budget: Budget::StalledFrontier, .. }));
    }

    #[test]
    fn a_shrink_resets_the_stall_counter() {
        let mut w = Watchdog::new(WatchdogConfig::new().with_max_stalled_iterations(1));
        assert!(w.observe_iteration("iteration", progress(0, 0, 10)).is_ok());
        assert!(w.observe_iteration("iteration", progress(1, 0, 10)).is_ok()); // stall 1
        assert!(w.observe_iteration("iteration", progress(2, 0, 9)).is_ok()); // reset
        assert!(w.observe_iteration("iteration", progress(3, 0, 9)).is_ok()); // stall 1
        assert!(w.observe_iteration("iteration", progress(4, 0, 9)).is_err());
    }

    #[test]
    fn empty_frontier_never_counts_as_a_stall() {
        let mut w = Watchdog::new(WatchdogConfig::new().with_max_stalled_iterations(0));
        assert!(w.observe_iteration("iteration", progress(0, 0, 0)).is_ok());
        assert!(w.observe_iteration("iteration", progress(1, 0, 0)).is_ok());
    }

    #[test]
    fn wall_clock_budget_trips() {
        let mut w = Watchdog::new(WatchdogConfig::new().with_max_wall(Duration::ZERO));
        std::thread::sleep(Duration::from_millis(1));
        let err = w.observe_iteration("iteration", progress(0, 0, 1)).unwrap_err();
        assert!(matches!(err, ExecError::BudgetExceeded { budget: Budget::WallClock, .. }));
    }

    #[test]
    fn error_display_names_phase_and_budget() {
        let err = ExecError::BudgetExceeded {
            phase: "vertex computation",
            budget: Budget::Cycles,
            progress: progress(3, 42, 7),
        };
        let msg = err.to_string();
        assert!(msg.contains("cycle budget"), "{msg}");
        assert!(msg.contains("vertex computation"), "{msg}");
        assert!(msg.contains("42 cycles"), "{msg}");
    }

    #[test]
    fn config_builders_compose() {
        let c = WatchdogConfig::new()
            .with_max_cycles(5)
            .with_max_wall(Duration::from_secs(1))
            .with_max_stalled_iterations(3);
        assert_eq!(c.max_cycles, Some(5));
        assert_eq!(c.max_wall, Some(Duration::from_secs(1)));
        assert_eq!(c.max_stalled_iterations, Some(3));
        assert!(c.is_enabled());
        assert!(!WatchdogConfig::default().is_enabled());
    }
}
