//! Address-space layout of the hypergraph working set (Fig. 13).

use archsim::{AddressMap, Region};
use hypergraph::Hypergraph;
use oag::Oag;

/// Element sizes, in bytes, of the simulated data arrays.
pub mod elem {
    /// CSR offsets (`u32`).
    pub const OFFSET: u32 = 4;
    /// CSR targets (`u32`).
    pub const INCIDENT: u32 = 4;
    /// Values (`f64`).
    pub const VALUE: u32 = 8;
    /// OAG offsets/edges/weights (`u32`).
    pub const OAG: u32 = 4;
    /// Bitmap words (`u64`).
    pub const BITMAP_WORD: u32 = 8;
    /// Scratch bytes (visited flags, chain queue entries).
    pub const OTHER: u32 = 4;
}

/// Lays out every data array of one execution in the simulated address
/// space: the six bipartite arrays, the six OAG arrays (when OAGs are in
/// use), the active bitmaps, and a scratch region for runtime-private
/// structures (software visited flags, the in-memory chain queue).
///
/// ```
/// use chgraph::layout::layout_for;
/// let g = hypergraph::fig1_example();
/// let map = layout_for(&g, None, None, 64);
/// assert!(map.len_of(archsim::Region::VertexValue).unwrap() >= 7);
/// assert!(map.len_of(archsim::Region::HOagEdge).is_none());
/// ```
pub fn layout_for(
    g: &Hypergraph,
    h_oag: Option<&Oag>,
    v_oag: Option<&Oag>,
    line_bytes: usize,
) -> AddressMap {
    let nv = g.num_vertices();
    let nh = g.num_hyperedges();
    // The two incident arrays are sized independently: for directed
    // hypergraphs the sides are not transposes and their edge counts differ.
    let h_edges = g.csr_for(hypergraph::Side::Hyperedge).num_edges();
    let v_edges = g.csr_for(hypergraph::Side::Vertex).num_edges();
    let mut map = AddressMap::new(line_bytes);
    map.add(Region::HyperedgeOffset, elem::OFFSET, nh + 1);
    map.add(Region::IncidentVertex, elem::INCIDENT, h_edges.max(1));
    map.add(Region::HyperedgeValue, elem::VALUE, nh);
    map.add(Region::VertexOffset, elem::OFFSET, nv + 1);
    map.add(Region::IncidentHyperedge, elem::INCIDENT, v_edges.max(1));
    map.add(Region::VertexValue, elem::VALUE, nv);
    if let Some(oag) = h_oag {
        map.add(Region::HOagOffset, elem::OAG, oag.len() + 1);
        map.add(Region::HOagEdge, elem::OAG, oag.num_edge_entries().max(1));
        map.add(Region::HOagWeight, elem::OAG, oag.num_edge_entries().max(1));
    }
    if let Some(oag) = v_oag {
        map.add(Region::VOagOffset, elem::OAG, oag.len() + 1);
        map.add(Region::VOagEdge, elem::OAG, oag.num_edge_entries().max(1));
        map.add(Region::VOagWeight, elem::OAG, oag.num_edge_entries().max(1));
    }
    // Current + next bitmap for each side, in 64-bit words.
    let bitmap_words = 2 * (nv.div_ceil(64) + nh.div_ceil(64));
    map.add(Region::Bitmap, elem::BITMAP_WORD, bitmap_words.max(1));
    // Scratch: visited flags and the shared chain queue (one u32 slot per
    // element of the larger side, doubled for safety).
    map.add(Region::Other, elem::OTHER, 2 * nv.max(nh).max(1));
    map
}

/// Word index within the [`Region::Bitmap`] region of element `id`'s bit.
///
/// The region packs four bitmaps back to back:
/// `[cur_vertex, cur_hyperedge, next_vertex, next_hyperedge]`.
pub fn bitmap_word(g: &Hypergraph, side: hypergraph::Side, next: bool, id: u32) -> u64 {
    let vw = g.num_vertices().div_ceil(64) as u64;
    let hw = g.num_hyperedges().div_ceil(64) as u64;
    let base = match (next, side) {
        (false, hypergraph::Side::Vertex) => 0,
        (false, hypergraph::Side::Hyperedge) => vw,
        (true, hypergraph::Side::Vertex) => vw + hw,
        (true, hypergraph::Side::Hyperedge) => 2 * vw + hw,
    };
    base + id as u64 / 64
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::Side;
    use oag::OagConfig;

    #[test]
    fn layout_without_oag_omits_oag_regions() {
        let g = hypergraph::fig1_example();
        let map = layout_for(&g, None, None, 64);
        assert!(map.len_of(Region::HOagOffset).is_none());
        assert_eq!(map.len_of(Region::IncidentVertex), Some(12));
        assert_eq!(map.len_of(Region::VertexValue), Some(7));
    }

    #[test]
    fn layout_with_oags_includes_all_regions() {
        let g = hypergraph::fig1_example();
        let ho = OagConfig::new().with_w_min(1).build(&g, Side::Hyperedge);
        let vo = OagConfig::new().with_w_min(1).build(&g, Side::Vertex);
        let map = layout_for(&g, Some(&ho), Some(&vo), 64);
        assert_eq!(map.len_of(Region::HOagEdge), Some(ho.num_edge_entries() as u64));
        assert_eq!(map.len_of(Region::VOagOffset), Some(vo.len() as u64 + 1));
        for r in Region::ALL {
            assert!(map.len_of(r).is_some(), "{r:?} missing");
        }
    }

    #[test]
    fn bitmap_words_are_disjoint_across_sides_and_epochs() {
        let g = hypergraph::generate::GeneratorConfig::new(200, 150).with_seed(1).generate();
        let mut words = vec![
            bitmap_word(&g, Side::Vertex, false, 0),
            bitmap_word(&g, Side::Hyperedge, false, 0),
            bitmap_word(&g, Side::Vertex, true, 0),
            bitmap_word(&g, Side::Hyperedge, true, 0),
        ];
        words.dedup();
        assert_eq!(words.len(), 4, "bitmap bases must differ");
        // Last word of each sub-bitmap stays within the region.
        let map = layout_for(&g, None, None, 64);
        let last = bitmap_word(&g, Side::Hyperedge, true, 149);
        assert!(last < map.len_of(Region::Bitmap).unwrap());
    }

    #[test]
    fn bitmap_word_advances_every_64_ids() {
        let g = hypergraph::generate::GeneratorConfig::new(200, 150).with_seed(1).generate();
        let w0 = bitmap_word(&g, Side::Vertex, false, 0);
        assert_eq!(bitmap_word(&g, Side::Vertex, false, 63), w0);
        assert_eq!(bitmap_word(&g, Side::Vertex, false, 64), w0 + 1);
    }
}
