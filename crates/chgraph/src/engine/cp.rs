//! A cycle-stepped reference model of the chain-driven prefetcher.
//!
//! The paper's CP (§V-B) is a 4-stage pipeline — *element acquisition*,
//! *offsets fetching*, *neighbors fetching*, *values fetching* — that pops
//! elements from the chain FIFO, walks their bipartite edges, and packs
//! `{src, dst, src_value, dst_value}` tuples into the 32-entry
//! bipartite-edge FIFO the core drains with `CH_FETCH_BIPARTITE_EDGE`.
//! As with [`HcgModel`](crate::engine::HcgModel), the execution `Driver`
//! charges the CP through a calibrated cost model; this module is the
//! explicit reference with parametric latencies and both-sided FIFO
//! coupling.

use crate::engine::Fifo;
use crate::guard::{Budget, ExecError, ExecProgress};
use hypergraph::{Hypergraph, Side};

/// Memory latencies (in engine cycles) seen by the CP's stages.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CpLatencies {
    /// Reading a bipartite offset pair.
    pub offset: u64,
    /// Reading one cacheline (16 ids) of the incident array.
    pub incident_line: u64,
    /// Reading one destination value (the random access chains optimize).
    pub value: u64,
}

impl Default for CpLatencies {
    fn default() -> Self {
        CpLatencies { offset: 4, incident_line: 4, value: 8 }
    }
}

/// A tuple delivered through the bipartite-edge FIFO.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Tuple {
    /// Source element (chain element).
    pub src: u32,
    /// Destination element (incident opposite-side element).
    pub dst: u32,
    /// Engine cycle the tuple became available to the core.
    pub ready_at: u64,
}

/// Result of one CP model run.
#[derive(Clone, Debug)]
pub struct CpRun {
    /// Tuples in delivery order.
    pub tuples: Vec<Tuple>,
    /// Total engine cycles.
    pub cycles: u64,
    /// Cycles stalled waiting for the chain FIFO (HCG too slow).
    pub chain_fifo_empty_stalls: u64,
    /// Cycles stalled on a full bipartite-edge FIFO (core too slow).
    pub edge_fifo_full_stalls: u64,
}

/// Configuration of the CP model.
#[derive(Clone, Copy, Debug)]
pub struct CpModel {
    /// Bipartite-edge FIFO capacity (paper: 32).
    pub fifo_capacity: usize,
    /// Stage latencies.
    pub latencies: CpLatencies,
    /// Optional engine-cycle budget: [`CpModel::try_run`] aborts with a
    /// typed [`ExecError::BudgetExceeded`] once the model clock passes it.
    /// `None` (the default) never trips.
    pub cycle_budget: Option<u64>,
}

impl Default for CpModel {
    fn default() -> Self {
        CpModel { fifo_capacity: 32, latencies: CpLatencies::default(), cycle_budget: None }
    }
}

impl CpModel {
    /// Runs the CP over a chain schedule. `emit_times[i]` is the engine
    /// cycle at which schedule position `i` entered the chain FIFO (from an
    /// [`HcgRun`](crate::engine::HcgRun)); `core_period` is the cycles the
    /// core needs per tuple (its `Apply` cost).
    ///
    /// # Panics
    ///
    /// Panics if `emit_times.len() != schedule.len()`, or if a configured
    /// [`CpModel::cycle_budget`] is exhausted.
    pub fn run(
        &self,
        g: &Hypergraph,
        side: Side,
        schedule: &[u32],
        emit_times: &[u64],
        core_period: u64,
    ) -> CpRun {
        self.try_run(g, side, schedule, emit_times, core_period).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`CpModel::run`], but converts an exhausted
    /// [`CpModel::cycle_budget`] into a typed
    /// [`ExecError::BudgetExceeded`] whose progress snapshot counts the
    /// tuples delivered before the stall.
    ///
    /// # Panics
    ///
    /// Panics if `emit_times.len() != schedule.len()`.
    pub fn try_run(
        &self,
        g: &Hypergraph,
        side: Side,
        schedule: &[u32],
        emit_times: &[u64],
        core_period: u64,
    ) -> Result<CpRun, ExecError> {
        assert_eq!(schedule.len(), emit_times.len(), "one emit time per scheduled element");
        let lat = self.latencies;
        let mut fifo: Fifo<()> = Fifo::new(self.fifo_capacity);
        // One tuple per bipartite edge of the schedule: size the delivery
        // buffer once instead of growing it in doublings mid-run.
        let total_edges: usize = schedule.iter().map(|&e| g.incidence(side, e).len()).sum();
        let mut tuples = Vec::with_capacity(total_edges);
        let mut cycle: u64 = 0;
        let mut empty_stalls: u64 = 0;
        let mut full_stalls: u64 = 0;
        // The core drains one tuple every `core_period` cycles once data
        // exists.
        let mut next_core_pop: u64 = 0;
        let drain = |fifo: &mut Fifo<()>, cycle: u64, next_core_pop: &mut u64| {
            while *next_core_pop <= cycle && !fifo.is_empty() {
                fifo.try_pop();
                *next_core_pop += core_period.max(1);
            }
        };
        let check_budget =
            |cycle: u64, delivered: usize, pending: usize| -> Result<(), ExecError> {
                match self.cycle_budget {
                    Some(max) if cycle > max => Err(ExecError::BudgetExceeded {
                        phase: "chain-driven prefetch",
                        budget: Budget::Cycles,
                        progress: ExecProgress {
                            iterations: delivered,
                            cycles: cycle,
                            frontier_len: pending,
                        },
                    }),
                    _ => Ok(()),
                }
            };

        for (&e, &emitted) in schedule.iter().zip(emit_times) {
            // Element acquisition: wait for the HCG's emission.
            if emitted > cycle {
                empty_stalls += emitted - cycle;
                cycle = emitted;
            }
            cycle += 1; // pop from the chain FIFO
            cycle += 1 + lat.offset; // offsets fetching
            let incidence = g.incidence(side, e);
            for (k, &d) in incidence.iter().enumerate() {
                if k % 16 == 0 {
                    cycle += 1 + lat.incident_line; // neighbors fetching
                }
                cycle += 1 + lat.value; // values fetching + tuple packing
                drain(&mut fifo, cycle, &mut next_core_pop);
                while !fifo.try_push(()) {
                    let stall = next_core_pop.saturating_sub(cycle).max(1);
                    cycle += stall;
                    full_stalls += stall;
                    check_budget(cycle, tuples.len(), fifo.len())?;
                    drain(&mut fifo, cycle, &mut next_core_pop);
                }
                next_core_pop = next_core_pop.max(cycle);
                tuples.push(Tuple { src: e, dst: d, ready_at: cycle });
            }
            check_budget(cycle, tuples.len(), fifo.len())?;
        }
        Ok(CpRun {
            tuples,
            cycles: cycle,
            chain_fifo_empty_stalls: empty_stalls,
            edge_fifo_full_stalls: full_stalls,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{HcgModel, HcgRun};
    use hypergraph::Frontier;
    use oag::OagConfig;

    fn setup() -> (Hypergraph, HcgRun) {
        let g = hypergraph::generate::GeneratorConfig::new(1_500, 900)
            .with_seed(8)
            .with_family_range(6, 48)
            .generate();
        let oag = OagConfig::new().build(&g, Side::Hyperedge);
        let frontier = Frontier::full(g.num_hyperedges());
        let run = HcgModel::default().run(&oag, &frontier, 0..g.num_hyperedges() as u32, 0);
        (g, run)
    }

    #[test]
    fn delivers_every_bipartite_edge_exactly_once() {
        let (g, hcg) = setup();
        let cp =
            CpModel::default().run(&g, Side::Hyperedge, hcg.chains.schedule(), &hcg.emit_times, 1);
        assert_eq!(cp.tuples.len(), g.num_bipartite_edges());
        // Each (src, dst) pair appears exactly as often as in the CSR:
        // dense delivery counts indexed by (src, dst), no hashing.
        let stride = g.num_vertices();
        let mut seen = vec![0u32; g.num_hyperedges() * stride];
        for t in &cp.tuples {
            seen[t.src as usize * stride + t.dst as usize] += 1;
        }
        for h in 0..g.num_hyperedges() as u32 {
            for &v in g.incidence(Side::Hyperedge, h) {
                assert_eq!(seen[h as usize * stride + v as usize], 1, "({h},{v})");
            }
        }
    }

    #[test]
    fn tuple_times_are_monotone() {
        let (g, hcg) = setup();
        let cp =
            CpModel::default().run(&g, Side::Hyperedge, hcg.chains.schedule(), &hcg.emit_times, 1);
        assert!(cp.tuples.windows(2).all(|w| w[0].ready_at <= w[1].ready_at));
        assert!(cp.cycles >= cp.tuples.last().unwrap().ready_at);
    }

    #[test]
    fn slow_core_back_pressures_the_cp() {
        let (g, hcg) = setup();
        let fast =
            CpModel::default().run(&g, Side::Hyperedge, hcg.chains.schedule(), &hcg.emit_times, 1);
        let slow = CpModel::default().run(
            &g,
            Side::Hyperedge,
            hcg.chains.schedule(),
            &hcg.emit_times,
            500,
        );
        assert!(slow.edge_fifo_full_stalls > fast.edge_fifo_full_stalls);
        assert!(slow.cycles > fast.cycles);
        assert_eq!(slow.tuples.len(), fast.tuples.len());
    }

    #[test]
    fn starved_cp_reports_empty_stalls() {
        let (g, hcg) = setup();
        // Pretend the HCG were pathologically slow: inflate emission times.
        let late: Vec<u64> = hcg.emit_times.iter().map(|t| t * 1_000).collect();
        let cp = CpModel::default().run(&g, Side::Hyperedge, hcg.chains.schedule(), &late, 1);
        assert!(cp.chain_fifo_empty_stalls > 0);
    }

    #[test]
    fn cycle_budget_converts_slow_runs_into_typed_errors() {
        let (g, hcg) = setup();
        let unbounded = CpModel::default().run(
            &g,
            Side::Hyperedge,
            hcg.chains.schedule(),
            &hcg.emit_times,
            500,
        );
        let mut model = CpModel::default();
        model.cycle_budget = Some(unbounded.cycles / 2);
        let err = model
            .try_run(&g, Side::Hyperedge, hcg.chains.schedule(), &hcg.emit_times, 500)
            .unwrap_err();
        match err {
            crate::guard::ExecError::BudgetExceeded {
                phase: "chain-driven prefetch",
                budget: crate::guard::Budget::Cycles,
                progress,
            } => {
                assert!(progress.iterations < unbounded.tuples.len(), "must have stopped early");
            }
            other => panic!("unexpected error: {other:?}"),
        }
        model.cycle_budget = Some(unbounded.cycles + 1);
        assert!(model
            .try_run(&g, Side::Hyperedge, hcg.chains.schedule(), &hcg.emit_times, 500)
            .is_ok());
    }

    #[test]
    #[should_panic(expected = "one emit time per scheduled element")]
    fn mismatched_inputs_are_rejected() {
        let (g, hcg) = setup();
        let _ = CpModel::default().run(&g, Side::Hyperedge, hcg.chains.schedule(), &[0, 1], 1);
    }
}
