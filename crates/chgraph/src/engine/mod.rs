//! The ChGraph engine: hardware cost model (§VI-E) and cycle-stepped
//! reference models of the two pipelines (§V-B).
//!
//! The paper prototypes ChGraph in Verilog RTL, synthesizes it with the
//! Synopsys toolchain on the TSMC 65 nm library, and estimates buffers with
//! CACTI 6.5. This module reproduces the resulting *accounting*: the
//! engine's storage inventory (stack, chain FIFO, bipartite-edge FIFO,
//! configuration registers), its area, and its power, calibrated to the
//! paper's reported totals — 0.094 mm² and 61 mW at 65 nm, i.e. 0.26 % of
//! the area and 0.19 % of the TDP of a 65 nm general-purpose core (Intel
//! Core2 E6750 class).

mod cp;
mod fifo;
mod hcg;

pub use cp::{CpLatencies, CpModel, CpRun, Tuple};
pub use fifo::Fifo;
pub use hcg::{HcgLatencies, HcgModel, HcgRun};

use serde::{Deserialize, Serialize};

/// One storage structure of the engine.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct BufferSpec {
    /// Structure name.
    pub name: &'static str,
    /// Entries.
    pub entries: usize,
    /// Bytes per entry.
    pub entry_bytes: usize,
}

impl BufferSpec {
    /// Total bytes of the structure.
    pub fn bytes(&self) -> usize {
        self.entries * self.entry_bytes
    }

    /// Total kilobytes (KiB).
    pub fn kib(&self) -> f64 {
        self.bytes() as f64 / 1024.0
    }
}

/// The engine's hardware inventory and cost model.
#[derive(Clone, Copy, PartialEq, Debug, Serialize, Deserialize)]
pub struct EngineCostModel {
    /// Stack depth of the hardware chain generator (paper: 16).
    pub stack_depth: usize,
    /// Chain FIFO entries (paper: 32).
    pub chain_fifo_entries: usize,
    /// Bipartite-edge FIFO entries (paper: 32).
    pub edge_fifo_entries: usize,
    /// Total engine area in mm² at 65 nm (paper: 0.094).
    pub area_mm2: f64,
    /// Total engine power in mW (paper: 61).
    pub power_mw: f64,
    /// Reference general-purpose core area in mm² at 65 nm.
    pub core_area_mm2: f64,
    /// Reference per-core TDP in mW.
    pub core_tdp_mw: f64,
}

impl EngineCostModel {
    /// The paper's configuration and synthesis results.
    pub fn paper() -> Self {
        EngineCostModel {
            stack_depth: 16,
            chain_fifo_entries: 32,
            edge_fifo_entries: 32,
            area_mm2: 0.094,
            power_mw: 61.0,
            // 0.094 mm² is 0.26 % of the core; 61 mW is 0.19 % of TDP.
            core_area_mm2: 0.094 / 0.0026,
            core_tdp_mw: 61.0 / 0.0019,
        }
    }

    /// The storage inventory of §VI-E. Each stack level holds a vertex
    /// index (4 B), beginning and end offsets (4 B each), and one cacheline
    /// of neighbor ids (64 B); chain FIFO entries are 4-B element ids;
    /// bipartite-edge FIFO entries are 24-B tuples; plus 84 B of
    /// memory-mapped configuration registers (Fig. 13).
    pub fn buffers(&self) -> [BufferSpec; 4] {
        [
            BufferSpec {
                name: "HCG stack",
                entries: self.stack_depth,
                entry_bytes: 4 + 4 + 4 + 64,
            },
            BufferSpec { name: "chain FIFO", entries: self.chain_fifo_entries, entry_bytes: 4 },
            BufferSpec {
                name: "bipartite-edge FIFO",
                entries: self.edge_fifo_entries,
                entry_bytes: 24,
            },
            BufferSpec { name: "config registers", entries: 1, entry_bytes: 84 },
        ]
    }

    /// Total engine storage in bytes.
    pub fn total_storage_bytes(&self) -> usize {
        self.buffers().iter().map(BufferSpec::bytes).sum()
    }

    /// Area as a fraction of the reference core.
    pub fn area_fraction_of_core(&self) -> f64 {
        self.area_mm2 / self.core_area_mm2
    }

    /// Power as a fraction of the reference core's TDP.
    pub fn power_fraction_of_tdp(&self) -> f64 {
        self.power_mw / self.core_tdp_mw
    }

    /// Per-buffer area estimate (mm²): storage-proportional split of the
    /// buffer share of total area, CACTI-style, with the remainder
    /// attributed to datapath logic.
    pub fn buffer_area_mm2(&self, buffer: &BufferSpec) -> f64 {
        // Buffers take roughly half the engine area; logic the rest.
        let buffer_area = self.area_mm2 * 0.5;
        buffer_area * buffer.bytes() as f64 / self.total_storage_bytes() as f64
    }
}

impl Default for EngineCostModel {
    fn default() -> Self {
        EngineCostModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_inventory_matches_paper() {
        let m = EngineCostModel::paper();
        let b = m.buffers();
        // Stack: 16 levels x 76 B = 1216 B ≈ 1.19 KB.
        assert_eq!(b[0].bytes(), 1216);
        assert!((b[0].kib() - 1.1875).abs() < 1e-9);
        // Chain FIFO: 32 x 4 B = 128 B ≈ 0.13 KB.
        assert_eq!(b[1].bytes(), 128);
        // Bipartite-edge FIFO: 32 x 24 B = 768 B = 0.75 KB.
        assert_eq!(b[2].bytes(), 768);
        assert!((b[2].kib() - 0.75).abs() < 1e-9);
        // Registers: 84 B.
        assert_eq!(b[3].bytes(), 84);
    }

    #[test]
    fn area_and_power_fractions_match_paper() {
        let m = EngineCostModel::paper();
        assert!((m.area_fraction_of_core() - 0.0026).abs() < 1e-9);
        assert!((m.power_fraction_of_tdp() - 0.0019).abs() < 1e-9);
        assert!((m.area_mm2 - 0.094).abs() < 1e-12);
        assert!((m.power_mw - 61.0).abs() < 1e-12);
    }

    #[test]
    fn buffer_areas_sum_to_half_total() {
        let m = EngineCostModel::paper();
        let sum: f64 = m.buffers().iter().map(|b| m.buffer_area_mm2(b)).sum();
        assert!((sum - m.area_mm2 * 0.5).abs() < 1e-9);
    }

    #[test]
    fn engine_is_cheap() {
        let m = EngineCostModel::paper();
        assert!(m.total_storage_bytes() < 4096, "engine storage must be a few KB");
        assert!(m.area_fraction_of_core() < 0.01);
    }
}
