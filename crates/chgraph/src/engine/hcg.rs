//! A cycle-stepped reference model of the hardware chain generator.
//!
//! The paper's HCG (§V-B) is a 4-stage pipeline — *root setting*, *offsets
//! fetching*, *active-neighbors fetching*, *neighbor selection* — over a
//! 16-entry stack, emitting selected elements into the chain FIFO. The
//! `Driver` in `exec` charges the HCG through a calibrated cost model (one
//! pipeline action per cycle, one edge-array fetch per cacheline); this
//! module is the *reference* the calibration is validated against: an
//! explicit stage-by-stage interpreter with parametric memory latencies and
//! FIFO back-pressure, producing the exact schedule of
//! [`oag::generate_chains`] together with per-element emission times.

use crate::engine::Fifo;
use crate::guard::{Budget, ExecError, ExecProgress};
use hypergraph::Frontier;
use oag::{ChainSet, Oag};
use std::ops::Range;

/// Memory latencies (in engine cycles) seen by the HCG's stages. These are
/// effective latencies after the engine's decoupled overlap, not raw DRAM
/// latencies.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct HcgLatencies {
    /// Reading one 64-element word of the active bitmap.
    pub bitmap_word: u64,
    /// Reading an `OAG_offset` entry pair.
    pub oag_offset: u64,
    /// Reading one cacheline (16 ids) of `OAG_edge`.
    pub oag_edge_line: u64,
}

impl Default for HcgLatencies {
    fn default() -> Self {
        // L2-hit-dominated steady state with deep decoupling.
        HcgLatencies { bitmap_word: 2, oag_offset: 4, oag_edge_line: 4 }
    }
}

/// Result of one HCG model run.
#[derive(Clone, Debug)]
pub struct HcgRun {
    /// The generated chains (identical to [`oag::generate_chains`]).
    pub chains: ChainSet,
    /// Engine cycle at which each schedule position was emitted into the
    /// chain FIFO (monotonically non-decreasing).
    pub emit_times: Vec<u64>,
    /// Total engine cycles.
    pub cycles: u64,
    /// Cycles spent stalled on a full chain FIFO.
    pub fifo_full_stall_cycles: u64,
    /// Peak chain-FIFO occupancy observed.
    pub fifo_peak: usize,
}

/// Configuration of the HCG model.
#[derive(Clone, Copy, Debug)]
pub struct HcgModel {
    /// Stack depth (= maximum chain length; paper: 16).
    pub stack_depth: usize,
    /// Chain FIFO capacity (paper: 32).
    pub fifo_capacity: usize,
    /// Stage memory latencies.
    pub latencies: HcgLatencies,
    /// Optional engine-cycle budget: [`HcgModel::try_run`] aborts with a
    /// typed [`ExecError::BudgetExceeded`] once the model clock passes it —
    /// the guard that turns a consumer deadlock (FIFO stalled forever) into
    /// a reportable failure. `None` (the default) never trips.
    pub cycle_budget: Option<u64>,
}

impl Default for HcgModel {
    fn default() -> Self {
        HcgModel {
            stack_depth: 16,
            fifo_capacity: 32,
            latencies: HcgLatencies::default(),
            cycle_budget: None,
        }
    }
}

impl HcgModel {
    /// Runs the model over one chunk (`range`) of `oag`, with the consumer
    /// (the CP) popping one chain-FIFO entry every `consumer_period` cycles
    /// starting from cycle 0. A very large period models a blocked consumer;
    /// period 0 models an always-ready one.
    ///
    /// # Panics
    ///
    /// Panics if `range` exceeds the OAG or the frontier universe is too
    /// small (same contract as [`oag::generate_chains`]), or if a
    /// configured [`HcgModel::cycle_budget`] is exhausted.
    pub fn run(
        &self,
        oag: &Oag,
        frontier: &Frontier,
        range: Range<u32>,
        consumer_period: u64,
    ) -> HcgRun {
        self.try_run(oag, frontier, range, consumer_period).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Like [`HcgModel::run`], but converts an exhausted
    /// [`HcgModel::cycle_budget`] into a typed
    /// [`ExecError::BudgetExceeded`] whose progress snapshot counts the
    /// elements emitted before the stall.
    pub fn try_run(
        &self,
        oag: &Oag,
        frontier: &Frontier,
        range: Range<u32>,
        consumer_period: u64,
    ) -> Result<HcgRun, ExecError> {
        let chain_cfg = oag::ChainConfig::new(self.stack_depth);
        // The schedule itself is pure; the model adds timing around it.
        let chains = oag::generate_chains(oag, frontier, range.clone(), &chain_cfg);

        let mut fifo: Fifo<u32> = Fifo::new(self.fifo_capacity);
        let mut cycle: u64 = 0;
        let mut full_stalls: u64 = 0;
        let mut emit_times = Vec::with_capacity(chains.num_elements());
        let mut next_consume: u64 = consumer_period;
        let lat = self.latencies;

        // The root-setting stage scans the bitmap ahead of the walk; its
        // cost is charged per 64-element word, overlapped with selection
        // work by taking the max of the two clocks.
        let mut scanner_cycle: u64 = 0;
        let mut last_word: u64 = u64::MAX;

        let drain = |fifo: &mut Fifo<u32>, cycle: u64, next_consume: &mut u64| {
            while *next_consume <= cycle && !fifo.is_empty() {
                fifo.try_pop();
                *next_consume += consumer_period.max(1);
            }
        };
        let check_budget = |cycle: u64, emitted: usize| -> Result<(), ExecError> {
            match self.cycle_budget {
                Some(max) if cycle > max => Err(ExecError::BudgetExceeded {
                    phase: "hardware chain generation",
                    budget: Budget::Cycles,
                    progress: ExecProgress {
                        iterations: emitted,
                        cycles: cycle,
                        frontier_len: frontier.len(),
                    },
                }),
                _ => Ok(()),
            }
        };

        let mut visited = vec![false; (range.end - range.start) as usize];
        let vis = |e: u32| (e - range.start) as usize;
        for root in range.clone() {
            let word = root as u64 / 64;
            if word != last_word {
                scanner_cycle += 1 + lat.bitmap_word;
                last_word = word;
            }
            if visited[vis(root)] || !frontier.contains(root) {
                continue;
            }
            cycle = cycle.max(scanner_cycle);
            // Walk the chain rooted here, one pipeline step per element.
            let mut current = root;
            let mut depth = 0usize;
            loop {
                visited[vis(current)] = true;
                depth += 1;
                // Neighbor-selection stage: emit into the chain FIFO,
                // stalling while the consumer has not made space.
                cycle += 1;
                drain(&mut fifo, cycle, &mut next_consume);
                while !fifo.try_push(current) {
                    let stall = next_consume.saturating_sub(cycle).max(1);
                    cycle += stall;
                    full_stalls += stall;
                    check_budget(cycle, emit_times.len())?;
                    drain(&mut fifo, cycle, &mut next_consume);
                }
                emit_times.push(cycle);
                if depth >= self.stack_depth {
                    break;
                }
                // Offsets-fetching stage.
                cycle += 1 + lat.oag_offset;
                let (lo, hi) = oag.edge_range(current);
                // Active-neighbors fetching + selection: scan edge lines
                // until a valid successor appears.
                let mut next_elem = None;
                for (scanned, j) in (lo..hi).enumerate() {
                    if scanned.is_multiple_of(16) {
                        cycle += 1 + lat.oag_edge_line;
                    }
                    let cand = oag.edges()[j];
                    if (range.start..range.end).contains(&cand)
                        && !visited[vis(cand)]
                        && frontier.contains(cand)
                    {
                        next_elem = Some(cand);
                        break;
                    }
                }
                match next_elem {
                    Some(cand) => current = cand,
                    None => break,
                }
            }
            // Stack pop / NEWCHAIN boundary.
            cycle += 1;
            check_budget(cycle.max(scanner_cycle), emit_times.len())?;
        }
        debug_assert_eq!(emit_times.len(), chains.num_elements());
        Ok(HcgRun {
            fifo_peak: fifo.peak_occupancy,
            chains,
            emit_times,
            cycles: cycle.max(scanner_cycle),
            fifo_full_stall_cycles: full_stalls,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::Side;
    use oag::OagConfig;

    fn oag_and_frontier() -> (Oag, Frontier, u32) {
        let g = hypergraph::generate::GeneratorConfig::new(2_000, 1_200)
            .with_seed(5)
            .with_family_range(6, 48)
            .generate();
        let n = g.num_hyperedges() as u32;
        (OagConfig::new().build(&g, Side::Hyperedge), Frontier::full(n as usize), n)
    }

    #[test]
    fn schedule_matches_pure_chain_generation() {
        let (oag, frontier, n) = oag_and_frontier();
        let model = HcgModel::default();
        let run = model.run(&oag, &frontier, 0..n, 0);
        let pure = oag::generate_chains(&oag, &frontier, 0..n, &oag::ChainConfig::new(16));
        assert_eq!(run.chains.schedule(), pure.schedule());
        assert_eq!(run.chains.num_chains(), pure.num_chains());
    }

    #[test]
    fn emit_times_are_monotone_and_bounded_by_total() {
        let (oag, frontier, n) = oag_and_frontier();
        let run = HcgModel::default().run(&oag, &frontier, 0..n, 0);
        assert!(run.emit_times.windows(2).all(|w| w[0] <= w[1]));
        assert!(run.emit_times.last().copied().unwrap_or(0) <= run.cycles);
        assert_eq!(run.emit_times.len(), n as usize);
    }

    #[test]
    fn slow_consumer_causes_back_pressure() {
        let (oag, frontier, n) = oag_and_frontier();
        let fast = HcgModel::default().run(&oag, &frontier, 0..n, 1);
        let slow = HcgModel::default().run(&oag, &frontier, 0..n, 200);
        assert_eq!(fast.fifo_full_stall_cycles, 0, "a fast consumer never backs up");
        assert!(slow.fifo_full_stall_cycles > 0, "a slow consumer must back-pressure the HCG");
        assert!(slow.cycles > fast.cycles);
        assert_eq!(slow.chains.schedule(), fast.chains.schedule(), "timing never changes order");
        assert!(slow.fifo_peak <= 32);
    }

    #[test]
    fn per_element_cost_matches_calibrated_model_to_first_order() {
        // The Driver charges ~1 cycle per pipeline action plus one edge
        // fetch per cacheline; the reference model must land in the same
        // regime (a few cycles per emitted element for default latencies).
        let (oag, frontier, n) = oag_and_frontier();
        let run = HcgModel::default().run(&oag, &frontier, 0..n, 0);
        let per_element = run.cycles as f64 / n as f64;
        assert!(
            (2.0..40.0).contains(&per_element),
            "per-element HCG cost {per_element:.1} cycles is out of the calibrated regime"
        );
    }

    #[test]
    fn cycle_budget_converts_slow_runs_into_typed_errors() {
        let (oag, frontier, n) = oag_and_frontier();
        let unbounded = HcgModel::default().run(&oag, &frontier, 0..n, 200);
        let mut model = HcgModel::default();
        // A budget below the known total must trip, with partial progress.
        model.cycle_budget = Some(unbounded.cycles / 2);
        let err = model.try_run(&oag, &frontier, 0..n, 200).unwrap_err();
        match err {
            crate::guard::ExecError::BudgetExceeded {
                phase: "hardware chain generation",
                budget: crate::guard::Budget::Cycles,
                progress,
            } => {
                assert!(progress.cycles > unbounded.cycles / 2);
                assert!(progress.iterations < n as usize, "must have stopped early");
            }
            other => panic!("unexpected error: {other:?}"),
        }
        // A budget above the total must not trip.
        model.cycle_budget = Some(unbounded.cycles + 1);
        assert!(model.try_run(&oag, &frontier, 0..n, 200).is_ok());
    }

    #[test]
    fn sparse_frontier_costs_are_dominated_by_the_scanner() {
        let (oag, _, n) = oag_and_frontier();
        let sparse = Frontier::from_iter(n as usize, (0..n).filter(|x| x % 97 == 0));
        let run = HcgModel::default().run(&oag, &sparse, 0..n, 0);
        assert_eq!(run.chains.num_elements(), sparse.len());
        // The scanner must walk every bitmap word even when almost nothing
        // is active.
        let min_scan = (n as u64 / 64) * (1 + HcgLatencies::default().bitmap_word);
        assert!(run.cycles >= min_scan);
    }
}
