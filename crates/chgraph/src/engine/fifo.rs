//! A bounded FIFO with occupancy statistics — the chain FIFO and
//! bipartite-edge FIFO of the ChGraph engine (§V-A, Fig. 12).

/// A bounded FIFO tracking stall statistics for its producer and consumer.
#[derive(Clone, Debug)]
pub struct Fifo<T> {
    items: std::collections::VecDeque<T>,
    capacity: usize,
    /// Producer attempts rejected because the FIFO was full.
    pub full_rejections: u64,
    /// Consumer attempts rejected because the FIFO was empty.
    pub empty_rejections: u64,
    /// Running peak occupancy.
    pub peak_occupancy: usize,
    /// Total successful pushes.
    pub total_pushed: u64,
}

impl<T> Fifo<T> {
    /// Creates an empty FIFO with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "FIFO capacity must be positive");
        Fifo {
            items: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            full_rejections: 0,
            empty_rejections: 0,
            peak_occupancy: 0,
            total_pushed: 0,
        }
    }

    /// Attempts to push; returns `false` (and records a rejection) when full.
    pub fn try_push(&mut self, item: T) -> bool {
        if self.items.len() == self.capacity {
            self.full_rejections += 1;
            return false;
        }
        self.items.push_back(item);
        self.total_pushed += 1;
        self.peak_occupancy = self.peak_occupancy.max(self.items.len());
        true
    }

    /// Attempts to pop; returns `None` (and records a rejection) when empty.
    pub fn try_pop(&mut self) -> Option<T> {
        match self.items.pop_front() {
            Some(item) => Some(item),
            None => {
                self.empty_rejections += 1;
                None
            }
        }
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Returns `true` when at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_order() {
        let mut f = Fifo::new(2);
        assert!(f.try_push(1));
        assert!(f.try_push(2));
        assert!(!f.try_push(3), "full");
        assert_eq!(f.full_rejections, 1);
        assert_eq!(f.try_pop(), Some(1));
        assert_eq!(f.try_pop(), Some(2));
        assert_eq!(f.try_pop(), None);
        assert_eq!(f.empty_rejections, 1);
    }

    #[test]
    fn occupancy_stats() {
        let mut f = Fifo::new(4);
        for i in 0..3 {
            f.try_push(i);
        }
        f.try_pop();
        f.try_push(9);
        assert_eq!(f.peak_occupancy, 3);
        assert_eq!(f.total_pushed, 4);
        assert_eq!(f.len(), 3);
        assert!(!f.is_full() && !f.is_empty());
        assert_eq!(f.capacity(), 4);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Fifo::<u32>::new(0);
    }
}
