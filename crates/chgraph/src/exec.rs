//! The shared execution driver.
//!
//! All runtimes (Hygra, software GLA, HCG-only, full ChGraph, HATS-V, the
//! prefetcher baseline) execute the same iterative procedure — Algorithm 1
//! of the paper — and differ only in *how the schedule of active elements is
//! produced* and *which component (core or engine) performs each memory
//! access*. [`Driver`] implements the procedure once, parameterized by
//! [`ExecMode`], so every comparison in the evaluation holds everything else
//! equal, exactly as the paper's simulated testbed does.
//!
//! Timing model: each general-purpose core owns a [`CoreTimer`]; ChGraph's
//! per-core engine owns two more (HCG and CP). Within a phase, cores process
//! their chunks element-by-element, interleaved round-robin so the shared
//! L3/NoC/DRAM observe realistic interference. Decoupling is modelled with
//! completion-time synchronization: the CP cannot start an element before
//! the HCG emitted it (chain FIFO), the core cannot apply a tuple before the
//! CP fetched it (bipartite-edge FIFO), and the CP cannot run more than the
//! FIFO capacity ahead of the core (back-pressure). Phases end with a
//! barrier across all timers.

use crate::guard::{ExecError, ExecProgress, Watchdog};
use crate::layout::{bitmap_word, layout_for};
use crate::{Algorithm, EngineReport, RunConfig, State};
use archsim::{AccessKind, CoreTimer, Level, Machine, Region};
use hypergraph::chunk::{partition, Chunk};
use hypergraph::{Frontier, Hypergraph, Side};
use oag::{generate_chains_observed_with_scratch, ChainObserver, ChainScratch, Oag};
use std::collections::VecDeque;

/// How the schedule is produced and who performs loads.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ExecMode {
    /// Hygra: ascending index order; the core does everything.
    IndexOrdered,
    /// Hygra order plus an event-driven hardware prefetcher running
    /// `prefetcher_distance` elements ahead of the core (§VI-H baseline).
    IndexOrderedPrefetch,
    /// Software GLA: the core generates chains (Algorithm 3) and then
    /// processes them itself.
    SoftwareChains,
    /// ChGraph family: the HCG generates chains in hardware; with
    /// `prefetch`, the CP also fetches tuples so the core only applies.
    HardwareChains {
        /// Enable the chain-driven prefetcher (full ChGraph) or leave data
        /// loading to the core (the HCG-only ablation of Fig. 16).
        prefetch: bool,
    },
    /// HATS-V: hardware bounded-DFS traversal over the *bipartite*
    /// structure (no OAG), traversing two bipartite edges per neighbor
    /// candidate (§II-C).
    HatsTraversal,
}

/// Cycle costs of schedule-generation micro-ops.
mod cost {
    /// Core cycles per software chain-gen candidate test (branch + mask).
    pub const SW_SCAN: u64 = 2;
    /// Core cycles per software edge examination (load-compare-branch).
    pub const SW_EDGE: u64 = 3;
    /// Core cycles per software chain emit (queue append, stack ops).
    pub const SW_EMIT: u64 = 10;
    /// Engine cycles per HCG pipeline action (one stage per cycle).
    pub const HW_OP: u64 = 1;
    /// OAG edge ids examined per hardware edge-fetch (one 64-B line of
    /// `u32` ids).
    pub const IDS_PER_LINE: u64 = 16;
}

#[inline]
fn core_read(m: &mut Machine, t: &mut CoreTimer, core: usize, r: Region, i: u64) {
    let a = m.access(core, r, i, AccessKind::Read, Level::L1, t.now());
    t.charge(a);
}

#[inline]
fn core_read_dep(m: &mut Machine, t: &mut CoreTimer, core: usize, r: Region, i: u64) {
    let a = m.access(core, r, i, AccessKind::Read, Level::L1, t.now());
    t.charge_dependent(a);
}

#[inline]
fn core_write(m: &mut Machine, t: &mut CoreTimer, core: usize, r: Region, i: u64) {
    let a = m.access(core, r, i, AccessKind::Write, Level::L1, t.now());
    t.charge(a);
}

#[inline]
fn engine_read(m: &mut Machine, t: &mut CoreTimer, core: usize, r: Region, i: u64) {
    let a = m.access(core, r, i, AccessKind::Read, Level::L2, t.now());
    t.charge(a);
}

/// Region quartet of one computation phase, keyed by the source side.
#[derive(Clone, Copy, Debug)]
struct PhaseRegions {
    src_offset: Region,
    src_incident: Region,
    src_value: Region,
    dst_value: Region,
    oag_offset: Region,
    oag_edge: Region,
}

fn phase_regions(src: Side) -> PhaseRegions {
    match src {
        Side::Vertex => PhaseRegions {
            src_offset: Region::VertexOffset,
            src_incident: Region::IncidentHyperedge,
            src_value: Region::VertexValue,
            dst_value: Region::HyperedgeValue,
            oag_offset: Region::VOagOffset,
            oag_edge: Region::VOagEdge,
        },
        Side::Hyperedge => PhaseRegions {
            src_offset: Region::HyperedgeOffset,
            src_incident: Region::IncidentVertex,
            src_value: Region::HyperedgeValue,
            dst_value: Region::VertexValue,
            oag_offset: Region::HOagOffset,
            oag_edge: Region::HOagEdge,
        },
    }
}

/// One core's schedule for a phase, plus (for hardware generation) the
/// engine-time at which each element was emitted into the chain FIFO.
#[derive(Clone, Debug, Default)]
struct CoreSchedule {
    elements: Vec<u32>,
    emit_time: Vec<u64>,
    chains: u64,
}

/// Everything produced by one [`Driver::run`] call, before the runtime adds
/// preprocessing accounting.
pub(crate) struct DriverOutput {
    pub state: State,
    pub iterations: usize,
    pub cycles: u64,
    pub core_busy_cycles: u64,
    pub mem_stall_cycles: u64,
    pub mem: archsim::MemStats,
    pub engine: EngineReport,
}

pub(crate) struct Driver<'a> {
    g: &'a Hypergraph,
    algo: &'a dyn Algorithm,
    cfg: &'a RunConfig,
    mode: ExecMode,
    h_oag: Option<&'a Oag>,
    v_oag: Option<&'a Oag>,
    machine: Machine,
    cores: Vec<CoreTimer>,
    hcg: Vec<CoreTimer>,
    cp: Vec<CoreTimer>,
    chunks_v: Vec<Chunk>,
    chunks_h: Vec<Chunk>,
    state: State,
    /// Cached schedules for all-active algorithms: `[vertex, hyperedge]`.
    schedule_cache: [Option<Vec<CoreSchedule>>; 2],
    engine: EngineReport,
    total_cycles: u64,
    core_busy: u64,
    watchdog: Watchdog,
    /// Iterations completed so far (for watchdog progress snapshots).
    iterations_done: usize,
    /// Reused visited-set scratch for chain generation: epoch-tagged, so
    /// per-iteration clearing is a counter bump instead of an O(chunk)
    /// allocation per core per phase.
    chain_scratch: ChainScratch,
}

impl<'a> Driver<'a> {
    /// Infallible construction; see [`Driver::try_new`].
    ///
    /// # Panics
    ///
    /// Panics if the system configuration cannot be simulated.
    #[cfg(test)]
    pub(crate) fn new(
        g: &'a Hypergraph,
        algo: &'a dyn Algorithm,
        cfg: &'a RunConfig,
        mode: ExecMode,
        h_oag: Option<&'a Oag>,
        v_oag: Option<&'a Oag>,
    ) -> Self {
        Driver::try_new(g, algo, cfg, mode, h_oag, v_oag).unwrap_or_else(|e| panic!("{e}"))
    }

    pub(crate) fn try_new(
        g: &'a Hypergraph,
        algo: &'a dyn Algorithm,
        cfg: &'a RunConfig,
        mode: ExecMode,
        h_oag: Option<&'a Oag>,
        v_oag: Option<&'a Oag>,
    ) -> Result<Self, ExecError> {
        let n = cfg.system.num_cores;
        let map = layout_for(g, h_oag, v_oag, cfg.system.line_bytes);
        let machine = Machine::try_new(cfg.system, map)
            .map_err(|e| ExecError::InvalidConfig(e.to_string()))?;
        let core_mlp = cfg.system.mlp;
        let (state, _) = algo.init(g);
        Ok(Driver {
            g,
            algo,
            cfg,
            mode,
            h_oag,
            v_oag,
            machine,
            cores: vec![CoreTimer::new(core_mlp); n],
            hcg: vec![CoreTimer::new(cfg.engine_mlp); n],
            cp: vec![CoreTimer::new(cfg.engine_mlp); n],
            chunks_v: partition(g, Side::Vertex, n),
            chunks_h: partition(g, Side::Hyperedge, n),
            state,
            schedule_cache: [None, None],
            engine: EngineReport::default(),
            total_cycles: 0,
            core_busy: 0,
            watchdog: Watchdog::new(cfg.watchdog),
            iterations_done: 0,
            chain_scratch: ChainScratch::new(),
        })
    }

    fn oag_for(&self, src: Side) -> Option<&'a Oag> {
        match src {
            Side::Vertex => self.v_oag,
            Side::Hyperedge => self.h_oag,
        }
    }

    fn chunks_for(&self, src: Side) -> &[Chunk] {
        match src {
            Side::Vertex => &self.chunks_v,
            Side::Hyperedge => &self.chunks_h,
        }
    }

    /// Infallible execution; see [`Driver::try_run`].
    ///
    /// # Panics
    ///
    /// Panics with the [`ExecError`] message if a guardrail trips.
    #[cfg(test)]
    pub(crate) fn run(self) -> DriverOutput {
        self.try_run().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Validates the execution inputs — the hypergraph's bipartite CSRs and
    /// any OAG the mode will walk — before the first simulated cycle.
    fn validate_inputs(&self) -> Result<(), ExecError> {
        self.g.validate()?;
        for oag in [self.h_oag, self.v_oag].into_iter().flatten() {
            oag.validate()?;
        }
        Ok(())
    }

    /// Runs the full iterative procedure. Returns a typed [`ExecError`]
    /// when a watchdog budget is exhausted (carrying partial statistics) or
    /// when deep validation (`cfg.validate`) rejects an input structure or
    /// a generated chain schedule.
    pub(crate) fn try_run(mut self) -> Result<DriverOutput, ExecError> {
        if self.cfg.validate {
            self.validate_inputs()?;
        }
        let max_iter = self.cfg.max_iterations.unwrap_or_else(|| self.algo.max_iterations());
        let (state, frontier0) = self.algo.init(self.g);
        self.state = state;
        let all_active = self.algo.all_active();
        let mut frontier_v =
            if all_active { Frontier::full(self.g.num_vertices()) } else { frontier0 };
        let mut iterations = 0usize;
        while iterations < max_iter && !frontier_v.is_empty() {
            self.algo.begin_iteration(self.g, &mut self.state, iterations);
            let frontier_e = self.run_phase(Side::Vertex, &frontier_v)?;
            let frontier_e =
                if all_active { Frontier::full(self.g.num_hyperedges()) } else { frontier_e };
            let mut fv = if frontier_e.is_empty() {
                Frontier::empty(self.g.num_vertices())
            } else {
                self.algo.begin_vertex_phase(self.g, &mut self.state, iterations);
                self.run_phase(Side::Hyperedge, &frontier_e)?
            };
            // end_iteration runs even when the hyperedge frontier was empty:
            // multi-round algorithms (e.g. core decomposition) reseed here.
            self.algo.end_iteration(self.g, &mut self.state, &mut fv, iterations);
            frontier_v = if all_active { Frontier::full(self.g.num_vertices()) } else { fv };
            iterations += 1;
            self.iterations_done = iterations;
            self.watchdog.observe_iteration(
                "iteration",
                ExecProgress {
                    iterations,
                    cycles: self.total_cycles,
                    frontier_len: frontier_v.len(),
                },
            )?;
        }
        let mem_stall = self.cores.iter().map(CoreTimer::mem_stall_cycles).sum();
        Ok(DriverOutput {
            state: self.state,
            iterations,
            cycles: self.total_cycles,
            core_busy_cycles: self.core_busy,
            mem_stall_cycles: mem_stall,
            mem: self.machine.stats().clone(),
            engine: self.engine,
        })
    }

    /// Executes one computation phase (hyperedge computation when
    /// `src == Vertex`, vertex computation when `src == Hyperedge`),
    /// returning the next frontier of the destination side.
    fn run_phase(&mut self, src: Side, frontier: &Frontier) -> Result<Frontier, ExecError> {
        let phase = match src {
            Side::Vertex => "hyperedge computation",
            Side::Hyperedge => "vertex computation",
        };
        let phase_start = self.cores[0].now();
        let n_cores = self.cfg.system.num_cores;
        let num_dst = self.g.num_on(src.opposite());
        let mut next = Frontier::empty(num_dst);

        let hcg_start: Vec<u64> = self.hcg.iter().map(CoreTimer::now).collect();
        let cp_start: Vec<u64> = self.cp.iter().map(CoreTimer::now).collect();
        let schedules = self.make_schedules(src, frontier, phase)?;

        // Ring buffers implementing the bipartite-edge FIFO back-pressure.
        let mut tuple_ring: Vec<VecDeque<u64>> =
            (0..n_cores).map(|_| VecDeque::with_capacity(self.cfg.fifo_capacity)).collect();
        let prefetch_mode = self.mode == ExecMode::IndexOrderedPrefetch;
        if prefetch_mode {
            // Warm-up: prefetch the first `distance` elements of each core.
            for (core, schedule) in schedules.iter().enumerate().take(n_cores) {
                let n = self.cfg.prefetcher_distance.min(schedule.elements.len());
                for pos in 0..n {
                    let elem = schedule.elements[pos];
                    self.prefetch_element(core, src, elem, pos);
                }
            }
        }

        let mut pos = vec![0usize; n_cores];
        loop {
            let mut progressed = false;
            for core in 0..n_cores {
                let sched = &schedules[core];
                if pos[core] >= sched.elements.len() {
                    continue;
                }
                progressed = true;
                let p = pos[core];
                let e = sched.elements[p];
                pos[core] += 1;

                if prefetch_mode {
                    // Prefetch `distance` elements ahead of the core. Late
                    // prefetches do not stall the core — its demand loads
                    // simply find fewer lines already staged in the L2.
                    let target = p + self.cfg.prefetcher_distance;
                    if target < sched.elements.len() {
                        self.prefetch_element(core, src, sched.elements[target], target);
                    }
                }

                match self.mode {
                    ExecMode::IndexOrdered | ExecMode::IndexOrderedPrefetch => {
                        self.process_element_core(core, src, e, &mut next);
                    }
                    ExecMode::SoftwareChains => {
                        // Software chain order: one schedule-queue
                        // indirection per element before processing it.
                        {
                            let m = &mut self.machine;
                            let t = &mut self.cores[core];
                            t.compute(cost::SW_SCAN);
                            core_read(m, t, core, Region::Other, p as u64);
                        }
                        self.process_element_core(core, src, e, &mut next);
                    }
                    ExecMode::HardwareChains { prefetch: false } => {
                        // The core consumes elements from the chain FIFO.
                        let emitted = sched.emit_time.get(p).copied().unwrap_or(0);
                        self.cores[core].sync_to(emitted);
                        self.process_element_core(core, src, e, &mut next);
                    }
                    ExecMode::HardwareChains { prefetch: true } | ExecMode::HatsTraversal => {
                        // HATS, like ChGraph, is a decoupled engine: the
                        // traversal scheduler delivers data to the core; its
                        // handicap is the redundant two-hop generation.
                        let emitted = sched.emit_time.get(p).copied().unwrap_or(0);
                        self.process_element_decoupled(
                            core,
                            src,
                            e,
                            emitted,
                            &mut next,
                            &mut tuple_ring[core],
                        );
                    }
                }
            }
            if !progressed {
                break;
            }
        }

        // Engine busy accounting.
        for core in 0..n_cores {
            self.engine.hcg_cycles += self.hcg[core].now().saturating_sub(hcg_start[core]);
            self.engine.cp_cycles += self.cp[core].now().saturating_sub(cp_start[core]);
            self.engine.chains_generated += schedules[core].chains;
        }

        // Phase barrier: every timer advances to the slowest component.
        let mut max_now = phase_start;
        for t in self.cores.iter().chain(&self.hcg).chain(&self.cp) {
            max_now = max_now.max(t.now());
        }
        for core in 0..n_cores {
            self.core_busy += self.cores[core].now().saturating_sub(phase_start);
            self.cores[core].sync_to(max_now);
            self.hcg[core].sync_to(max_now);
            self.cp[core].sync_to(max_now);
        }
        self.total_cycles += max_now - phase_start;
        self.watchdog.check_cycles(
            phase,
            ExecProgress {
                iterations: self.iterations_done,
                cycles: self.total_cycles,
                frontier_len: frontier.len(),
            },
        )?;
        Ok(next)
    }

    /// Core-side processing of one element: read offsets, stream the
    /// incidence list, read each destination value, apply, write back.
    ///
    /// Under chain order (`SoftwareChains` / HCG-only) the element id comes
    /// from an indirection, so the leading offset fetch is serially
    /// dependent — the OOO core cannot overlap it the way it overlaps an
    /// index-ordered stream.
    fn process_element_core(&mut self, core: usize, src: Side, e: u32, next: &mut Frontier) {
        let pr = phase_regions(src);
        let indirect = matches!(
            self.mode,
            ExecMode::SoftwareChains | ExecMode::HardwareChains { prefetch: false }
        );
        let (lo, hi) = self.g.csr_for(src).target_range(e as usize);
        let m = &mut self.machine;
        let t = &mut self.cores[core];
        if indirect {
            core_read_dep(m, t, core, pr.src_offset, e as u64);
        } else {
            core_read(m, t, core, pr.src_offset, e as u64);
        }
        core_read(m, t, core, pr.src_offset, e as u64 + 1);
        core_read(m, t, core, pr.src_value, e as u64);
        let compute = match src {
            Side::Vertex => self.algo.hf_compute_cycles(),
            Side::Hyperedge => self.algo.vf_compute_cycles(),
        };
        for j in lo..hi {
            let d = self.g.csr_for(src).targets()[j];
            let m = &mut self.machine;
            let t = &mut self.cores[core];
            core_read(m, t, core, pr.src_incident, j as u64);
            core_read(m, t, core, pr.dst_value, d as u64);
            t.compute(compute);
            let outcome = self.apply(src, e, d);
            let m = &mut self.machine;
            let t = &mut self.cores[core];
            if outcome.wrote {
                core_write(m, t, core, pr.dst_value, d as u64);
            }
            if outcome.activated && next.insert(d) && !self.algo.all_active() {
                // Test-and-set: only the first activation stores the bit.
                let w = bitmap_word(self.g, src.opposite(), true, d);
                core_write(m, t, core, Region::Bitmap, w);
            }
        }
    }

    /// Decoupled processing (full ChGraph): the CP fetches the element's
    /// tuple data through the L2; the core pops tuples from the
    /// bipartite-edge FIFO and applies updates.
    fn process_element_decoupled(
        &mut self,
        core: usize,
        src: Side,
        e: u32,
        emitted_at: u64,
        next: &mut Frontier,
        ring: &mut VecDeque<u64>,
    ) {
        let pr = phase_regions(src);
        let (lo, hi) = self.g.csr_for(src).target_range(e as usize);
        // CP waits for the HCG to emit the element into the chain FIFO.
        let stall = emitted_at.saturating_sub(self.cp[core].now());
        self.engine.fifo_empty_stalls += stall;
        self.cp[core].sync_to(emitted_at);
        {
            let m = &mut self.machine;
            let t = &mut self.cp[core];
            t.compute(cost::HW_OP); // element acquisition stage
            engine_read(m, t, core, pr.src_offset, e as u64);
            engine_read(m, t, core, pr.src_offset, e as u64 + 1);
            engine_read(m, t, core, pr.src_value, e as u64);
        }
        let compute = match src {
            Side::Vertex => self.algo.hf_compute_cycles(),
            Side::Hyperedge => self.algo.vf_compute_cycles(),
        };
        for j in lo..hi {
            let d = self.g.csr_for(src).targets()[j];
            // FIFO back-pressure: the CP may run at most `fifo_capacity`
            // tuples ahead of the core.
            if ring.len() >= self.cfg.fifo_capacity {
                // invariant: fifo_capacity >= 1, so a ring at capacity has
                // a front element.
                let must_wait = ring.pop_front().expect("ring nonempty");
                let stall = must_wait.saturating_sub(self.cp[core].now());
                self.engine.fifo_full_stalls += stall;
                self.cp[core].sync_to(must_wait);
            }
            {
                let m = &mut self.machine;
                let t = &mut self.cp[core];
                engine_read(m, t, core, pr.src_incident, j as u64);
                engine_read(m, t, core, pr.dst_value, d as u64);
                t.compute(cost::HW_OP); // tuple packing
            }
            let tuple_ready = self.cp[core].now();
            self.engine.tuples_delivered += 1;
            // The core pops the tuple (CH_FETCH_BIPARTITE_EDGE).
            self.cores[core].sync_to(tuple_ready);
            self.cores[core].compute(compute + 1);
            let outcome = self.apply(src, e, d);
            let m = &mut self.machine;
            let t = &mut self.cores[core];
            if outcome.wrote {
                core_write(m, t, core, pr.dst_value, d as u64);
            }
            if outcome.activated && next.insert(d) && !self.algo.all_active() {
                let w = bitmap_word(self.g, src.opposite(), true, d);
                core_write(m, t, core, Region::Bitmap, w);
            }
            ring.push_back(self.cores[core].now());
        }
    }

    /// The event-driven prefetcher baseline's engine work for one upcoming
    /// element: fetch its offsets, incidence list and destination values
    /// into the L2, plus a configurable fraction of useless ("noisy")
    /// fetches. Returns the engine completion time.
    fn prefetch_element(&mut self, core: usize, src: Side, e: u32, seq: usize) -> u64 {
        // (timing note: the engine clock trails the core clock, modelling an
        // event-triggered prefetcher that reacts to core progress.)
        let pr = phase_regions(src);
        let (lo, hi) = self.g.csr_for(src).target_range(e as usize);
        // The prefetcher reacts to core progress: it cannot start before the
        // core has reached the triggering element.
        let issue = self.cores[core].now();
        self.cp[core].sync_to(issue);
        let num_dst = self.g.num_on(src.opposite()) as u64;
        let m = &mut self.machine;
        let t = &mut self.cp[core];
        engine_read(m, t, core, pr.src_offset, e as u64);
        engine_read(m, t, core, pr.src_value, e as u64);
        for j in lo..hi {
            let d = self.g.csr_for(src).targets()[j];
            engine_read(m, t, core, pr.src_incident, j as u64);
            engine_read(m, t, core, pr.dst_value, d as u64);
            // Deterministic pseudo-random noise: some prefetches are wrong.
            let h = (seq as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(j as u64);
            if (h % 100) < self.cfg.prefetcher_noise_pct as u64 {
                engine_read(m, t, core, pr.dst_value, h % num_dst);
            }
        }
        self.cp[core].now()
    }

    /// Applies `HF` or `VF` for the bipartite edge `(e, d)`.
    fn apply(&mut self, src: Side, e: u32, d: u32) -> crate::UpdateOutcome {
        match src {
            Side::Vertex => self.algo.apply_hf(self.g, &mut self.state, e, d),
            Side::Hyperedge => self.algo.apply_vf(self.g, &mut self.state, e, d),
        }
    }

    // ------------------------------------------------------------------
    // Schedule generation
    // ------------------------------------------------------------------

    fn make_schedules(
        &mut self,
        src: Side,
        frontier: &Frontier,
        phase: &'static str,
    ) -> Result<Vec<CoreSchedule>, ExecError> {
        let side_idx = match src {
            Side::Vertex => 0,
            Side::Hyperedge => 1,
        };
        let reusable = self.algo.all_active()
            && !matches!(self.mode, ExecMode::IndexOrdered | ExecMode::IndexOrderedPrefetch);
        if reusable {
            if let Some(cached) = self.schedule_cache[side_idx].clone() {
                return Ok(self.replay_cached(cached));
            }
        }
        // Sparse-phase fallback: when too few elements are active, overlap
        // partners are almost surely inactive and chains degenerate to
        // singletons; schedule in index order and skip the OAG walk.
        let chain_mode =
            !matches!(self.mode, ExecMode::IndexOrdered | ExecMode::IndexOrderedPrefetch);
        let sparse = self.cfg.sparse_chain_divisor > 0
            && frontier.len() * self.cfg.sparse_chain_divisor < self.g.num_on(src)
            && chain_mode;
        // Static fallback: a side whose OAG is degenerate (fewer than one
        // edge per element on average) cannot form chains worth their walk;
        // the configuration step can detect this from the OAG header alone.
        let degenerate = chain_mode
            && matches!(self.mode, ExecMode::SoftwareChains | ExecMode::HardwareChains { .. })
            && self.oag_for(src).is_some_and(|oag| oag.num_edge_entries() < oag.len());
        let sparse = sparse || degenerate;
        let schedules: Vec<CoreSchedule> = if sparse {
            self.index_schedules(src, frontier)
        } else {
            match self.mode {
                ExecMode::IndexOrdered | ExecMode::IndexOrderedPrefetch => {
                    self.index_schedules(src, frontier)
                }
                ExecMode::SoftwareChains => self.software_chain_schedules(src, frontier, phase)?,
                ExecMode::HardwareChains { .. } => {
                    self.hardware_chain_schedules(src, frontier, phase)?
                }
                ExecMode::HatsTraversal => self.hats_schedules(src, frontier),
            }
        };
        if reusable {
            self.schedule_cache[side_idx] = Some(schedules.clone());
        }
        Ok(schedules)
    }

    /// All-active reuse: the schedule was generated in iteration 0 and is
    /// streamed back from the in-memory chain queue (paper §VI-B: chains are
    /// generated only in the first iteration for PageRank-like workloads).
    fn replay_cached(&mut self, mut cached: Vec<CoreSchedule>) -> Vec<CoreSchedule> {
        let software = self.mode == ExecMode::SoftwareChains;
        for (core, sched) in cached.iter_mut().enumerate() {
            sched.chains = 0; // chains are not regenerated
            for (i, done) in sched.emit_time.iter_mut().enumerate() {
                if software {
                    // One schedule-queue indirection per element.
                    let m = &mut self.machine;
                    let t = &mut self.cores[core];
                    t.compute(cost::SW_SCAN);
                    core_read(m, t, core, Region::Other, i as u64);
                    *done = 0;
                } else {
                    if i % cost::IDS_PER_LINE as usize == 0 {
                        let m = &mut self.machine;
                        let t = &mut self.hcg[core];
                        engine_read(m, t, core, Region::Other, i as u64);
                        t.compute(cost::HW_OP);
                    }
                    *done = self.hcg[core].now();
                }
            }
        }
        cached
    }

    /// Hygra's index-ordered schedule: scan the chunk's bitmap words,
    /// collecting active ids in ascending order.
    fn index_schedules(&mut self, src: Side, frontier: &Frontier) -> Vec<CoreSchedule> {
        let all_active = self.algo.all_active();
        let chunks = self.chunks_for(src).to_vec();
        chunks
            .iter()
            .enumerate()
            .map(|(core, chunk)| {
                let mut elements = Vec::new();
                let mut last_word = u64::MAX;
                for id in chunk.ids() {
                    if !all_active {
                        let w = bitmap_word(self.g, src, false, id);
                        if w != last_word {
                            let m = &mut self.machine;
                            let t = &mut self.cores[core];
                            core_read(m, t, core, Region::Bitmap, w);
                            last_word = w;
                        }
                    }
                    if all_active || frontier.contains(id) {
                        elements.push(id);
                    }
                }
                let emit_time = vec![0u64; elements.len()];
                CoreSchedule { elements, emit_time, chains: 0 }
            })
            .collect()
    }

    /// Software GLA: Algorithm 3 runs on the core, paying full memory and
    /// compute cost for every micro-step — the overhead that makes the
    /// software solution slower than Hygra (Fig. 3).
    fn software_chain_schedules(
        &mut self,
        src: Side,
        frontier: &Frontier,
        phase: &'static str,
    ) -> Result<Vec<CoreSchedule>, ExecError> {
        // invariant: the runtime constructs both OAGs before entering a
        // chain mode; only an internal dispatch bug could reach here
        // without one.
        let oag = self.oag_for(src).expect("chain modes require an OAG");
        let pr = phase_regions(src);
        let chunks = self.chunks_for(src).to_vec();
        let g = self.g;
        let deep_validate = self.cfg.validate;
        chunks
            .iter()
            .enumerate()
            .map(|(core, chunk)| {
                struct SwObserver<'m> {
                    m: &'m mut Machine,
                    t: &'m mut CoreTimer,
                    core: usize,
                    src: Side,
                    g: &'m Hypergraph,
                    pr: PhaseRegions,
                    last_word: u64,
                    queue_pos: u64,
                }
                impl ChainObserver for SwObserver<'_> {
                    fn bitmap_scan(&mut self, element: u32) {
                        self.t.compute(cost::SW_SCAN);
                        let w = bitmap_word(self.g, self.src, false, element);
                        if w != self.last_word {
                            core_read(self.m, self.t, self.core, Region::Bitmap, w);
                            self.last_word = w;
                        }
                    }
                    fn offsets_fetch(&mut self, element: u32) {
                        // DFS successor fetch: serially dependent.
                        core_read_dep(
                            self.m,
                            self.t,
                            self.core,
                            self.pr.oag_offset,
                            element as u64,
                        );
                        core_read(
                            self.m,
                            self.t,
                            self.core,
                            self.pr.oag_offset,
                            element as u64 + 1,
                        );
                    }
                    fn edge_scan(&mut self, edge_index: usize) {
                        self.t.compute(cost::SW_EDGE);
                        core_read(self.m, self.t, self.core, self.pr.oag_edge, edge_index as u64);
                        // Visited-flag probe (random access into scratch).
                        core_read(
                            self.m,
                            self.t,
                            self.core,
                            Region::Other,
                            edge_index as u64 % self.g.num_on(self.src) as u64,
                        );
                    }
                    fn emit(&mut self, _element: u32) {
                        self.t.compute(cost::SW_EMIT);
                        core_write(self.m, self.t, self.core, Region::Other, self.queue_pos);
                        self.queue_pos += 1;
                    }
                    fn chain_end(&mut self) {
                        self.t.compute(cost::SW_SCAN);
                    }
                }
                let mut obs = SwObserver {
                    m: &mut self.machine,
                    t: &mut self.cores[core],
                    core,
                    src,
                    g,
                    pr,
                    last_word: u64::MAX,
                    queue_pos: 0,
                };
                let chains = generate_chains_observed_with_scratch(
                    oag,
                    frontier,
                    chunk.first..chunk.last,
                    &self.cfg.chain,
                    &mut obs,
                    &mut self.chain_scratch,
                );
                if deep_validate {
                    chains
                        .validate_cover(frontier, chunk.first..chunk.last)
                        .map_err(|source| ExecError::InvalidChainCover { phase, source })?;
                }
                let elements = chains.schedule().to_vec();
                let emit_time = vec![0u64; elements.len()];
                Ok(CoreSchedule { elements, emit_time, chains: chains.num_chains() as u64 })
            })
            .collect()
    }

    /// ChGraph's HCG: the same walk, executed by the 4-stage pipeline. One
    /// pipeline action per cycle; OAG edges are examined a cacheline at a
    /// time; accesses enter at the L2 with deep decoupled overlap. Selected
    /// elements are marked inactive in the bitmap by the hardware.
    fn hardware_chain_schedules(
        &mut self,
        src: Side,
        frontier: &Frontier,
        phase: &'static str,
    ) -> Result<Vec<CoreSchedule>, ExecError> {
        // invariant: see software_chain_schedules — OAGs exist before any
        // chain mode runs.
        let oag = self.oag_for(src).expect("chain modes require an OAG");
        let pr = phase_regions(src);
        let chunks = self.chunks_for(src).to_vec();
        let g = self.g;
        let deep_validate = self.cfg.validate;
        chunks
            .iter()
            .enumerate()
            .map(|(core, chunk)| {
                struct HwObserver<'m> {
                    m: &'m mut Machine,
                    t: &'m mut CoreTimer,
                    core: usize,
                    src: Side,
                    g: &'m Hypergraph,
                    pr: PhaseRegions,
                    last_bitmap_word: u64,
                    last_edge_line: u64,
                    emit_time: Vec<u64>,
                }
                impl ChainObserver for HwObserver<'_> {
                    fn bitmap_scan(&mut self, element: u32) {
                        let w = bitmap_word(self.g, self.src, false, element);
                        if w != self.last_bitmap_word {
                            self.t.compute(cost::HW_OP);
                            engine_read(self.m, self.t, self.core, Region::Bitmap, w);
                            self.last_bitmap_word = w;
                        }
                    }
                    fn offsets_fetch(&mut self, element: u32) {
                        self.t.compute(cost::HW_OP);
                        engine_read(self.m, self.t, self.core, self.pr.oag_offset, element as u64);
                        self.last_edge_line = u64::MAX;
                    }
                    fn edge_scan(&mut self, edge_index: usize) {
                        let line = edge_index as u64 / cost::IDS_PER_LINE;
                        if line != self.last_edge_line {
                            self.t.compute(cost::HW_OP);
                            engine_read(
                                self.m,
                                self.t,
                                self.core,
                                self.pr.oag_edge,
                                edge_index as u64,
                            );
                            self.last_edge_line = line;
                        }
                    }
                    fn emit(&mut self, element: u32) {
                        self.t.compute(cost::HW_OP);
                        // Mark inactive immediately (paper §V-B).
                        let w = bitmap_word(self.g, self.src, false, element);
                        let a = self.m.access(
                            self.core,
                            Region::Bitmap,
                            w,
                            AccessKind::Write,
                            Level::L2,
                            self.t.now(),
                        );
                        self.t.charge(a);
                        self.emit_time.push(self.t.now());
                    }
                    fn chain_end(&mut self) {
                        self.t.compute(cost::HW_OP);
                    }
                }
                let mut obs = HwObserver {
                    m: &mut self.machine,
                    t: &mut self.hcg[core],
                    core,
                    src,
                    g,
                    pr,
                    last_bitmap_word: u64::MAX,
                    last_edge_line: u64::MAX,
                    emit_time: Vec::new(),
                };
                let chains = generate_chains_observed_with_scratch(
                    oag,
                    frontier,
                    chunk.first..chunk.last,
                    &self.cfg.chain,
                    &mut obs,
                    &mut self.chain_scratch,
                );
                if deep_validate {
                    chains
                        .validate_cover(frontier, chunk.first..chunk.last)
                        .map_err(|source| ExecError::InvalidChainCover { phase, source })?;
                }
                let elements = chains.schedule().to_vec();
                let emit_time = obs.emit_time;
                debug_assert_eq!(emit_time.len(), elements.len());
                Ok(CoreSchedule { elements, emit_time, chains: chains.num_chains() as u64 })
            })
            .collect()
    }

    /// HATS-V: hardware bounded-DFS over the bipartite structure. Finding a
    /// same-side neighbor requires traversing *two* bipartite edges
    /// (element -> shared opposite element -> candidate), the redundant
    /// traversal the paper identifies (§II-C), and successors are picked by
    /// first discovery, not maximal overlap.
    fn hats_schedules(&mut self, src: Side, frontier: &Frontier) -> Vec<CoreSchedule> {
        let pr = phase_regions(src);
        let chunks = self.chunks_for(src).to_vec();
        let opp = src.opposite();
        let opp_regions = phase_regions(opp);
        let d_max = self.cfg.chain.d_max;
        chunks
            .iter()
            .enumerate()
            .map(|(core, chunk)| {
                let mut elements = Vec::new();
                let mut emit_time = Vec::new();
                let mut chains = 0u64;
                let mut visited = vec![false; chunk.len()];
                let vis = |e: u32| (e - chunk.first) as usize;
                let mut last_word = u64::MAX;
                for root in chunk.ids() {
                    // Bitmap root scan.
                    let w = bitmap_word(self.g, src, false, root);
                    if w != last_word {
                        let m = &mut self.machine;
                        let t = &mut self.hcg[core];
                        t.compute(cost::HW_OP);
                        engine_read(m, t, core, Region::Bitmap, w);
                        last_word = w;
                    }
                    if visited[vis(root)] || !frontier.contains(root) {
                        continue;
                    }
                    chains += 1;
                    let mut current = root;
                    visited[vis(current)] = true;
                    let mut depth = 1usize;
                    loop {
                        // Emit current.
                        {
                            let m = &mut self.machine;
                            let t = &mut self.hcg[core];
                            t.compute(cost::HW_OP);
                            let wb = bitmap_word(self.g, src, false, current);
                            let a = m.access(
                                core,
                                Region::Bitmap,
                                wb,
                                AccessKind::Write,
                                Level::L2,
                                t.now(),
                            );
                            t.charge(a);
                        }
                        elements.push(current);
                        emit_time.push(self.hcg[core].now());
                        if depth >= d_max {
                            break;
                        }
                        // First bipartite hop: current's incidence list.
                        let (lo, hi) = self.g.csr_for(src).target_range(current as usize);
                        {
                            let m = &mut self.machine;
                            let t = &mut self.hcg[core];
                            t.compute(cost::HW_OP);
                            engine_read(m, t, core, pr.src_offset, current as u64);
                        }
                        let mut next_elem = None;
                        'mid: for j in lo..hi {
                            let mid = self.g.csr_for(src).targets()[j];
                            {
                                let m = &mut self.machine;
                                let t = &mut self.hcg[core];
                                if ((j - lo) as u64).is_multiple_of(cost::IDS_PER_LINE) {
                                    t.compute(cost::HW_OP);
                                    engine_read(m, t, core, pr.src_incident, j as u64);
                                }
                            }
                            // Second bipartite hop: mid's incidence list.
                            let (mlo, mhi) = self.g.csr_for(opp).target_range(mid as usize);
                            {
                                let m = &mut self.machine;
                                let t = &mut self.hcg[core];
                                t.compute(cost::HW_OP);
                                engine_read(m, t, core, opp_regions.src_offset, mid as u64);
                            }
                            for k in mlo..mhi {
                                let cand = self.g.csr_for(opp).targets()[k];
                                {
                                    let m = &mut self.machine;
                                    let t = &mut self.hcg[core];
                                    if ((k - mlo) as u64).is_multiple_of(cost::IDS_PER_LINE) {
                                        t.compute(cost::HW_OP);
                                        engine_read(m, t, core, opp_regions.src_incident, k as u64);
                                    }
                                }
                                if chunk.contains(cand)
                                    && !visited[vis(cand)]
                                    && frontier.contains(cand)
                                {
                                    next_elem = Some(cand);
                                    break 'mid;
                                }
                            }
                        }
                        let Some(cand) = next_elem else { break };
                        current = cand;
                        visited[vis(current)] = true;
                        depth += 1;
                    }
                }
                CoreSchedule { elements, emit_time, chains }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MinLabel, RunConfig};
    use oag::OagConfig;

    fn small_graph() -> Hypergraph {
        hypergraph::generate::GeneratorConfig::new(300, 200).with_seed(5).generate()
    }

    /// A 4-core machine whose caches are far smaller than the test graphs'
    /// value arrays, so the capacity-miss regime of the paper's evaluation
    /// is reproduced at unit-test scale.
    pub(crate) fn tiny_system() -> archsim::SystemConfig {
        let mut s = archsim::SystemConfig::scaled(4);
        s.l1.size_bytes = 2 * 1024;
        s.l2.size_bytes = 8 * 1024;
        s.l3.size_bytes = 32 * 1024;
        s
    }

    fn run_mode(g: &Hypergraph, mode: ExecMode) -> DriverOutput {
        let cfg = RunConfig::new().with_system(tiny_system());
        let needs_oag = matches!(mode, ExecMode::SoftwareChains | ExecMode::HardwareChains { .. });
        let (ho, vo) = if needs_oag {
            (
                Some(OagConfig::new().with_w_min(1).build(g, Side::Hyperedge)),
                Some(OagConfig::new().with_w_min(1).build(g, Side::Vertex)),
            )
        } else {
            (None, None)
        };
        let algo = MinLabel;
        Driver::new(g, &algo, &cfg, mode, ho.as_ref(), vo.as_ref()).run()
    }

    #[test]
    fn all_modes_reach_identical_fixpoints() {
        let g = small_graph();
        let base = run_mode(&g, ExecMode::IndexOrdered);
        for mode in [
            ExecMode::IndexOrderedPrefetch,
            ExecMode::SoftwareChains,
            ExecMode::HardwareChains { prefetch: false },
            ExecMode::HardwareChains { prefetch: true },
            ExecMode::HatsTraversal,
        ] {
            let out = run_mode(&g, mode);
            assert_eq!(out.state.vertex_value, base.state.vertex_value, "{mode:?}");
            assert_eq!(out.state.hyperedge_value, base.state.hyperedge_value, "{mode:?}");
        }
    }

    #[test]
    fn min_label_converges_to_component_minima() {
        let g = hypergraph::fig1_example();
        let out = run_mode(&g, ExecMode::IndexOrdered);
        // Fig. 1: component {h0,h2} x {v0,v2,v4,v6} overlaps h1 via v2, and
        // h1/h3 connect v1,v3,v5 — the whole hypergraph is one component
        // with minimum vertex id 0.
        assert!(out.state.vertex_value.iter().all(|&v| v == 0.0));
        assert!(out.state.hyperedge_value.iter().all(|&h| h == 0.0));
        assert!(out.iterations >= 2);
    }

    #[test]
    fn cycles_and_memory_are_nonzero() {
        let g = small_graph();
        let out = run_mode(&g, ExecMode::IndexOrdered);
        assert!(out.cycles > 0);
        assert!(out.mem.main_memory_accesses() > 0);
        assert!(out.core_busy_cycles > 0);
    }

    #[test]
    fn chgraph_uses_engine_and_delivers_tuples() {
        let g = small_graph();
        let out = run_mode(&g, ExecMode::HardwareChains { prefetch: true });
        assert!(out.engine.tuples_delivered > 0);
        assert!(out.engine.chains_generated > 0);
        assert!(out.engine.hcg_cycles > 0);
    }

    #[test]
    fn hardware_chains_beat_software_chains_on_cycles() {
        let g = small_graph();
        let sw = run_mode(&g, ExecMode::SoftwareChains);
        let hw = run_mode(&g, ExecMode::HardwareChains { prefetch: true });
        assert!(
            hw.cycles < sw.cycles,
            "hardware ({}) must be faster than software GLA ({})",
            hw.cycles,
            sw.cycles
        );
    }
}
