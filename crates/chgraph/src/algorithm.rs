//! The programming model: algorithm-specific update functions.
//!
//! Hypergraph processing (Algorithm 1 of the paper) is an iterative
//! procedure alternating two kernels:
//!
//! - **hyperedge computation** — every active vertex updates its incident
//!   hyperedges through the hyperedge update function `HF`;
//! - **vertex computation** — every active hyperedge updates its incident
//!   vertices through the vertex update function `VF`.
//!
//! An [`Algorithm`] supplies `HF`/`VF` plus initialization, and the runtimes
//! (Hygra / software GLA / ChGraph / baselines) supply the *schedule* in
//! which bipartite edges are processed. Like the paper's systems, execution
//! is synchronous: an update made in iteration `i` is consumed in iteration
//! `i + 1`; a well-formed algorithm's result therefore cannot depend on the
//! schedule (the property the cross-runtime equivalence tests assert).

use hypergraph::{Frontier, Hypergraph};

/// Mutable per-element values of one execution.
///
/// The `*_value` arrays are the paper's `vertex_value` / `hyperedge_value`,
/// whose accesses the simulator charges to the [`archsim::Region`] value
/// regions. The `*_aux` arrays hold algorithm-private companion state
/// (e.g. BC path counts, MIS decision flags); their accesses are folded into
/// the corresponding value access (modelling a wider per-element record),
/// identically for every runtime, so comparisons stay fair.
#[derive(Clone, PartialEq, Debug)]
pub struct State {
    /// `vertex_value[v]` — the attribute of vertex `v`.
    pub vertex_value: Vec<f64>,
    /// `hyperedge_value[h]` — the attribute of hyperedge `h`.
    pub hyperedge_value: Vec<f64>,
    /// Optional per-vertex auxiliary state (empty when unused).
    pub vertex_aux: Vec<f64>,
    /// Optional per-hyperedge auxiliary state (empty when unused).
    pub hyperedge_aux: Vec<f64>,
}

impl State {
    /// Creates a state with every value set to `v0` (vertices) / `h0`
    /// (hyperedges) and no auxiliary arrays.
    pub fn filled(g: &Hypergraph, v0: f64, h0: f64) -> Self {
        State {
            vertex_value: vec![v0; g.num_vertices()],
            hyperedge_value: vec![h0; g.num_hyperedges()],
            vertex_aux: Vec::new(),
            hyperedge_aux: Vec::new(),
        }
    }

    /// Like [`State::filled`], additionally allocating auxiliary arrays
    /// initialized to `va0` / `ha0`.
    pub fn filled_with_aux(g: &Hypergraph, v0: f64, h0: f64, va0: f64, ha0: f64) -> Self {
        State {
            vertex_value: vec![v0; g.num_vertices()],
            hyperedge_value: vec![h0; g.num_hyperedges()],
            vertex_aux: vec![va0; g.num_vertices()],
            hyperedge_aux: vec![ha0; g.num_hyperedges()],
        }
    }
}

/// Outcome of one `HF`/`VF` application.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UpdateOutcome {
    /// The destination element's value changed (a store is simulated).
    pub wrote: bool,
    /// The destination element becomes active next phase (first activation
    /// is what inserts it into the next frontier).
    pub activated: bool,
}

impl UpdateOutcome {
    /// Neither wrote nor activated.
    pub const NONE: UpdateOutcome = UpdateOutcome { wrote: false, activated: false };
    /// Wrote and activated — the common case for monotone algorithms.
    pub const WROTE_AND_ACTIVATED: UpdateOutcome = UpdateOutcome { wrote: true, activated: true };
    /// Wrote without activating (e.g. accumulation below threshold).
    pub const WROTE: UpdateOutcome = UpdateOutcome { wrote: true, activated: false };
}

/// An iterative hypergraph algorithm expressed as `HF`/`VF` update
/// functions (paper Algorithm 1).
///
/// Implementations must be *schedule-oblivious*: `apply_hf`/`apply_vf` may
/// only combine the source element's value into the destination's with an
/// order-insensitive (commutative, associative) operation, since runtimes
/// process bipartite edges in different orders.
pub trait Algorithm {
    /// Short name (used in reports and figures).
    fn name(&self) -> &'static str;

    /// Builds the initial state and the initial active-vertex frontier.
    fn init(&self, g: &Hypergraph) -> (State, Frontier);

    /// Hook invoked at the start of every iteration, before hyperedge
    /// computation (e.g. PageRank zeroes the hyperedge accumulators).
    fn begin_iteration(&self, g: &Hypergraph, state: &mut State, iteration: usize) {
        let _ = (g, state, iteration);
    }

    /// Hook invoked between the hyperedge-computation and
    /// vertex-computation kernels of an iteration (e.g. PageRank zeroes the
    /// vertex accumulators once their previous values have been consumed).
    fn begin_vertex_phase(&self, g: &Hypergraph, state: &mut State, iteration: usize) {
        let _ = (g, state, iteration);
    }

    /// Hook invoked after both kernels of an iteration. Receives the
    /// just-built next vertex frontier; algorithms with bulk per-iteration
    /// decisions (e.g. MIS join/exclude) may rewrite it. Frontier
    /// manipulation here is identical across runtimes and is not charged to
    /// the simulated memory system.
    fn end_iteration(
        &self,
        g: &Hypergraph,
        state: &mut State,
        next_vertices: &mut Frontier,
        iteration: usize,
    ) {
        let _ = (g, state, next_vertices, iteration);
    }

    /// `HF`: processes the bipartite edge `<v, h>`, folding the influence of
    /// active vertex `v` into hyperedge `h`.
    fn apply_hf(&self, g: &Hypergraph, state: &mut State, v: u32, h: u32) -> UpdateOutcome;

    /// `VF`: processes the bipartite edge `<h, v>`, folding the influence of
    /// active hyperedge `h` into vertex `v`.
    fn apply_vf(&self, g: &Hypergraph, state: &mut State, h: u32, v: u32) -> UpdateOutcome;

    /// Maximum number of iterations (PageRank runs 10; traversal algorithms
    /// run to convergence).
    fn max_iterations(&self) -> usize {
        usize::MAX
    }

    /// Returns `true` when every element is unconditionally active each
    /// iteration (PageRank). All-active algorithms generate chains once and
    /// reuse them (§VI-B), and never consult the bitmap (§VI-C).
    fn all_active(&self) -> bool {
        false
    }

    /// Core compute cycles per `HF` application (ALU work of the update).
    fn hf_compute_cycles(&self) -> u64 {
        4
    }

    /// Core compute cycles per `VF` application.
    fn vf_compute_cycles(&self) -> u64 {
        6
    }
}

/// A minimal connected-components-style test algorithm: label propagation
/// by `min`, used by this crate's unit tests and doc examples.
///
/// Every vertex starts with its own id as label; hyperedges take the min of
/// their active incident vertices, vertices take the min of their active
/// incident hyperedges, until a fixpoint.
#[derive(Clone, Copy, Debug, Default)]
pub struct MinLabel;

impl Algorithm for MinLabel {
    fn name(&self) -> &'static str {
        "min-label"
    }

    fn init(&self, g: &Hypergraph) -> (State, Frontier) {
        let mut state = State::filled(g, 0.0, f64::INFINITY);
        for (v, val) in state.vertex_value.iter_mut().enumerate() {
            *val = v as f64;
        }
        (state, Frontier::full(g.num_vertices()))
    }

    fn apply_hf(&self, _g: &Hypergraph, state: &mut State, v: u32, h: u32) -> UpdateOutcome {
        let cand = state.vertex_value[v as usize];
        if cand < state.hyperedge_value[h as usize] {
            state.hyperedge_value[h as usize] = cand;
            UpdateOutcome::WROTE_AND_ACTIVATED
        } else {
            UpdateOutcome::NONE
        }
    }

    fn apply_vf(&self, _g: &Hypergraph, state: &mut State, h: u32, v: u32) -> UpdateOutcome {
        let cand = state.hyperedge_value[h as usize];
        if cand < state.vertex_value[v as usize] {
            state.vertex_value[v as usize] = cand;
            UpdateOutcome::WROTE_AND_ACTIVATED
        } else {
            UpdateOutcome::NONE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_filled() {
        let g = hypergraph::fig1_example();
        let s = State::filled(&g, 1.5, -2.0);
        assert_eq!(s.vertex_value.len(), 7);
        assert_eq!(s.hyperedge_value.len(), 4);
        assert!(s.vertex_value.iter().all(|&v| v == 1.5));
        assert!(s.hyperedge_value.iter().all(|&h| h == -2.0));
    }

    #[test]
    fn min_label_init() {
        let g = hypergraph::fig1_example();
        let (s, f) = MinLabel.init(&g);
        assert_eq!(s.vertex_value[3], 3.0);
        assert_eq!(f.len(), 7);
    }

    #[test]
    fn min_label_updates_are_monotone() {
        let g = hypergraph::fig1_example();
        let (mut s, _) = MinLabel.init(&g);
        let o = MinLabel.apply_hf(&g, &mut s, 4, 0);
        assert_eq!(o, UpdateOutcome::WROTE_AND_ACTIVATED);
        assert_eq!(s.hyperedge_value[0], 4.0);
        let o = MinLabel.apply_hf(&g, &mut s, 6, 0);
        assert_eq!(o, UpdateOutcome::NONE, "6 > 4: no change");
        let o = MinLabel.apply_hf(&g, &mut s, 0, 0);
        assert_eq!(o, UpdateOutcome::WROTE_AND_ACTIVATED);
        assert_eq!(s.hyperedge_value[0], 0.0);
    }

    #[test]
    fn outcome_constants() {
        assert!(!UpdateOutcome::NONE.wrote);
        assert!(UpdateOutcome::WROTE.wrote && !UpdateOutcome::WROTE.activated);
        assert!(UpdateOutcome::WROTE_AND_ACTIVATED.activated);
    }
}
