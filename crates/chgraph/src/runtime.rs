//! The runtime abstraction and its configuration.

use crate::guard::{ExecError, WatchdogConfig};
use crate::{Algorithm, ExecutionReport};
use archsim::SystemConfig;
use hypergraph::Hypergraph;
use oag::{ChainConfig, OagConfig};

/// Configuration shared by every runtime execution.
#[derive(Clone, Copy, Debug)]
pub struct RunConfig {
    /// The simulated machine.
    pub system: SystemConfig,
    /// OAG construction parameters (`W_min`, caps) for chain-driven runtimes.
    pub oag: OagConfig,
    /// Chain-walk parameters (`D_max`).
    pub chain: ChainConfig,
    /// Overrides the algorithm's iteration bound when set.
    pub max_iterations: Option<usize>,
    /// Capacity of the chain FIFO and the bipartite-edge FIFO (paper: 32).
    pub fifo_capacity: usize,
    /// Effective memory-level parallelism of the ChGraph engine's pipelined,
    /// decoupled accesses (deeper than the core's OOO window).
    pub engine_mlp: u64,
    /// Run-ahead distance, in elements, of the event-driven prefetcher
    /// baseline (§VI-H).
    pub prefetcher_distance: usize,
    /// Percentage (0–100) of the prefetcher baseline's value prefetches
    /// that fetch a useless line ("noisy data", §II-C).
    pub prefetcher_noise_pct: u8,
    /// Chain-driven runtimes fall back to index order for phases whose
    /// frontier is smaller than `universe / sparse_chain_divisor`: with few
    /// active elements, overlap partners are almost surely inactive, so the
    /// OAG walk costs traffic it cannot repay. The element count is known
    /// from the previous phase's activation counter, so hardware can make
    /// the same decision. `0` disables the fallback.
    pub sparse_chain_divisor: usize,
    /// Host worker threads used to *construct* OAGs. This is a build-speed
    /// knob only: the OAG (and therefore every simulated result) is
    /// bit-identical for any value — see
    /// [`OagConfig::build_with_stats_threads`](oag::OagConfig::build_with_stats_threads).
    pub oag_build_threads: usize,
    /// Execution watchdog budgets (cycles, wall clock, frontier stalls).
    /// The default has no budgets, so nothing ever trips; budgets convert
    /// runaway executions into typed
    /// [`ExecError::BudgetExceeded`](crate::ExecError::BudgetExceeded)
    /// failures with partial statistics.
    pub watchdog: WatchdogConfig,
    /// Deep structural checking: validate the hypergraph and both OAGs
    /// before execution, and prove every generated chain schedule covers
    /// the active set exactly once (§IV reordering invariant) before
    /// consuming it. Costs a full pass per schedule; off by default.
    pub validate: bool,
}

impl RunConfig {
    /// Default configuration: the scaled 16-core machine, `W_min = 3`,
    /// `D_max = 16`, 32-entry FIFOs.
    pub fn new() -> Self {
        RunConfig {
            system: SystemConfig::scaled16(),
            oag: OagConfig::new(),
            chain: ChainConfig::default(),
            max_iterations: None,
            fifo_capacity: 32,
            engine_mlp: 8,
            prefetcher_distance: 8,
            prefetcher_noise_pct: 20,
            sparse_chain_divisor: 12,
            oag_build_threads: 1,
            watchdog: WatchdogConfig::default(),
            validate: false,
        }
    }

    /// Replaces the simulated machine.
    pub fn with_system(mut self, system: SystemConfig) -> Self {
        self.system = system;
        self
    }

    /// Replaces the OAG configuration.
    pub fn with_oag(mut self, oag: OagConfig) -> Self {
        self.oag = oag;
        self
    }

    /// Replaces the chain configuration.
    pub fn with_chain(mut self, chain: ChainConfig) -> Self {
        self.chain = chain;
        self
    }

    /// Caps the number of iterations.
    pub fn with_max_iterations(mut self, n: usize) -> Self {
        self.max_iterations = Some(n);
        self
    }

    /// Sets the host thread count for OAG construction (minimum 1). Results
    /// are bit-identical for any value; only wall-clock changes.
    pub fn with_oag_build_threads(mut self, threads: usize) -> Self {
        self.oag_build_threads = threads.max(1);
        self
    }

    /// Replaces the watchdog budgets.
    pub fn with_watchdog(mut self, watchdog: WatchdogConfig) -> Self {
        self.watchdog = watchdog;
        self
    }

    /// Caps simulated cycles (shorthand for a cycle-only watchdog budget).
    pub fn with_max_cycles(mut self, cycles: u64) -> Self {
        self.watchdog.max_cycles = Some(cycles);
        self
    }

    /// Enables or disables deep structural validation (see
    /// [`RunConfig::validate`]).
    pub fn with_validate(mut self, validate: bool) -> Self {
        self.validate = validate;
        self
    }
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig::new()
    }
}

/// A hypergraph-processing system simulated on the machine: Hygra, software
/// GLA, ChGraph, or one of the comparison baselines.
pub trait Runtime {
    /// Short name used in reports and figures.
    fn name(&self) -> &'static str;

    /// Executes `algo` on `g` under this runtime, returning the full report
    /// (final state, cycles, memory statistics, preprocessing accounting) —
    /// or a typed [`ExecError`] when a watchdog budget is exhausted, a
    /// structural validation fails, or the configuration cannot be
    /// simulated.
    fn try_execute(
        &self,
        g: &Hypergraph,
        algo: &dyn Algorithm,
        cfg: &RunConfig,
    ) -> Result<ExecutionReport, ExecError>;

    /// Like [`try_execute`](Runtime::try_execute), but may reuse pre-built
    /// OAG artifacts instead of rebuilding them per execution.
    ///
    /// The contract is strict: the report must be **bit-identical** to
    /// `try_execute(g, algo, cfg)`. Implementations must therefore verify
    /// that `prepared` matches `cfg.oag` (and rebuild if it does not), and
    /// the default implementation simply ignores `prepared` — correct for
    /// runtimes that never build OAGs.
    fn try_execute_prepared(
        &self,
        g: &Hypergraph,
        algo: &dyn Algorithm,
        cfg: &RunConfig,
        prepared: Option<&crate::PreparedOags>,
    ) -> Result<ExecutionReport, ExecError> {
        let _ = prepared;
        self.try_execute(g, algo, cfg)
    }

    /// Infallible convenience wrapper over
    /// [`try_execute`](Runtime::try_execute).
    ///
    /// # Panics
    ///
    /// Panics with the [`ExecError`] message if the execution fails; with a
    /// default [`RunConfig`] (no budgets, no deep validation) failures only
    /// arise from untrusted inputs or unsimulatable configurations.
    fn execute(&self, g: &Hypergraph, algo: &dyn Algorithm, cfg: &RunConfig) -> ExecutionReport {
        self.try_execute(g, algo, cfg).unwrap_or_else(|e| panic!("{}: {e}", self.name()))
    }

    /// Infallible convenience wrapper over
    /// [`try_execute_prepared`](Runtime::try_execute_prepared).
    ///
    /// # Panics
    ///
    /// Panics with the [`ExecError`] message if the execution fails.
    fn execute_prepared(
        &self,
        g: &Hypergraph,
        algo: &dyn Algorithm,
        cfg: &RunConfig,
        prepared: Option<&crate::PreparedOags>,
    ) -> ExecutionReport {
        self.try_execute_prepared(g, algo, cfg, prepared)
            .unwrap_or_else(|e| panic!("{}: {e}", self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_paperlike() {
        let c = RunConfig::new();
        assert_eq!(c.system.num_cores, 16);
        assert_eq!(c.oag.w_min, 3);
        assert_eq!(c.chain.d_max, 16);
        assert_eq!(c.fifo_capacity, 32);
        assert!(c.max_iterations.is_none());
    }

    #[test]
    fn builders_compose() {
        let c = RunConfig::new()
            .with_system(SystemConfig::scaled(4))
            .with_oag(OagConfig::new().with_w_min(1))
            .with_chain(ChainConfig::new(8))
            .with_max_iterations(3);
        assert_eq!(c.system.num_cores, 4);
        assert_eq!(c.oag.w_min, 1);
        assert_eq!(c.chain.d_max, 8);
        assert_eq!(c.max_iterations, Some(3));
    }
}
