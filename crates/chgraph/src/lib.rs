#![warn(missing_docs)]

//! ChGraph: chain-driven hypergraph processing with a hardware-accelerated
//! engine — the core of the HPCA'22 reproduction.
//!
//! This crate implements the paper's contribution and its evaluation
//! apparatus:
//!
//! - the [`Algorithm`] programming model (`HF`/`VF` update functions of
//!   Algorithm 1);
//! - the chain-driven **Generate-Load-Apply** execution model (§IV) in two
//!   forms: a pure-software runtime ([`GlaRuntime`]) whose chain-generation
//!   overhead makes it *slower* than Hygra despite fewer memory accesses
//!   (Figs. 2–3), and the hardware-accelerated [`ChGraphRuntime`] whose
//!   per-core engine (the 4-stage hardware chain generator plus the 4-stage
//!   chain-driven prefetcher of §V, connected by FIFOs) reverses the
//!   situation;
//! - the [`HygraRuntime`] baseline (index-ordered scheduling);
//! - the comparison baselines of §II-C and §VI-H: [`HatsVRuntime`],
//!   [`PrefetcherRuntime`], and the reordering transformation in
//!   [`baseline::reorder`];
//! - the engine cost model ([`engine`]) reproducing the §VI-E area/power
//!   accounting;
//! - [`ExecutionReport`] with the paper's metrics: cycles, off-chip
//!   main-memory accesses by array, stall fractions, preprocessing
//!   overheads.
//!
//! # Example
//!
//! ```
//! use chgraph::{ChGraphRuntime, HygraRuntime, MinLabel, RunConfig, Runtime};
//!
//! let g = hypergraph::datasets::Dataset::LiveJournal.config()
//!     .with_seed(1).generate();
//! let cfg = RunConfig::new().with_max_iterations(2);
//! let hygra = HygraRuntime.execute(&g, &MinLabel, &cfg);
//! let chg = ChGraphRuntime::new().execute(&g, &MinLabel, &cfg);
//! assert_eq!(hygra.state.vertex_value, chg.state.vertex_value);
//! ```

mod algorithm;
pub mod baseline;
pub mod engine;
mod exec;
pub mod guard;
pub mod layout;
pub mod preprocess;
mod report;
mod runtime;
mod runtimes;
#[cfg(test)]
mod testutil;

pub use algorithm::{Algorithm, MinLabel, State, UpdateOutcome};
pub use baseline::{HatsVRuntime, PrefetcherRuntime};
pub use guard::{Budget, ExecError, ExecProgress, Watchdog, WatchdogConfig};
pub use report::{EngineReport, ExecutionReport, PreprocessReport};
pub use runtime::{RunConfig, Runtime};
pub use runtimes::{ChGraphRuntime, GlaRuntime, HygraRuntime, PreparedOags};
