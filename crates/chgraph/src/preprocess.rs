//! Preprocessing cost estimation (Fig. 21 / Fig. 22).
//!
//! Both Hygra and ChGraph preprocess the input once: parse the edge list and
//! build the two bipartite CSRs. ChGraph additionally builds the two OAGs.
//! The iterative computation is simulated cycle-by-cycle, so to compare
//! *total* running time (Fig. 22) preprocessing must be expressed in the
//! same unit. This module converts preprocessing operation counts into
//! cycle estimates.
//!
//! Calibration: parsing/CSR construction is charged per bipartite edge
//! (dominated by input scanning, which is sequential and single-pass),
//! while the OAG two-hop counting kernel — a tight, branch-light loop over
//! in-cache counters that parallelizes perfectly across the 16 cores — is
//! charged per step at 1/16 the serial rate. These constants put the OAG
//! overhead in the 13–46 % band the paper reports (§VI-G) for inputs with
//! the paper's overlap profiles; the *shape* (ChGraph pays more, the
//! light-overlap WEB pays the least relative overhead) is what the Fig. 21
//! harness asserts.

use crate::PreprocessReport;
use hypergraph::Hypergraph;
use oag::OagBuildStats;

/// Cycles per bipartite edge for parsing + CSR construction.
pub const CYCLES_PER_EDGE_BUILD: u64 = 52;
/// Cycles per element (offset array initialization, counting).
pub const CYCLES_PER_ELEMENT_BUILD: u64 = 8;
/// Serial cycles per OAG two-hop counting step.
pub const CYCLES_PER_TWO_HOP_STEP: u64 = 4;
/// Serial cycles per OAG edge kept (sort + append).
pub const CYCLES_PER_OAG_EDGE: u64 = 30;
/// Parallel speedup of the OAG counting kernel (16 cores).
pub const OAG_PARALLELISM: u64 = 16;

/// Cycle estimate of the preprocessing both systems share: parsing the
/// input and building the two bipartite CSRs.
pub fn bipartite_build_cycles(g: &Hypergraph) -> u64 {
    g.num_bipartite_edges() as u64 * CYCLES_PER_EDGE_BUILD
        + (g.num_vertices() + g.num_hyperedges()) as u64 * CYCLES_PER_ELEMENT_BUILD
}

/// Cycle estimate of building one OAG from its construction statistics.
pub fn oag_build_cycles(stats: &OagBuildStats) -> u64 {
    (stats.two_hop_steps * CYCLES_PER_TWO_HOP_STEP + stats.edges_kept as u64 * CYCLES_PER_OAG_EDGE)
        / OAG_PARALLELISM
}

/// Assembles the [`PreprocessReport`] for a runtime without OAGs (Hygra,
/// HATS-V, the prefetcher baseline).
pub fn report_plain(g: &Hypergraph) -> PreprocessReport {
    PreprocessReport {
        bipartite_build_ops: g.num_bipartite_edges() as u64,
        oag_build: None,
        oag_extra_bytes: 0,
        cycles_estimate: bipartite_build_cycles(g),
    }
}

/// Assembles the [`PreprocessReport`] for a chain-driven runtime that built
/// both OAGs. `merged` is the element-wise sum of the two sides' build
/// statistics; `extra_bytes` the OAGs' combined storage.
pub fn report_with_oag(
    g: &Hypergraph,
    merged: OagBuildStats,
    extra_bytes: usize,
) -> PreprocessReport {
    PreprocessReport {
        bipartite_build_ops: g.num_bipartite_edges() as u64,
        oag_build: Some(merged),
        oag_extra_bytes: extra_bytes,
        cycles_estimate: bipartite_build_cycles(g) + oag_build_cycles(&merged),
    }
}

/// Element-wise sum of two [`OagBuildStats`] (the two OAG sides).
pub fn merge_stats(a: OagBuildStats, b: OagBuildStats) -> OagBuildStats {
    OagBuildStats {
        two_hop_steps: a.two_hop_steps + b.two_hop_steps,
        pairs_considered: a.pairs_considered + b.pairs_considered,
        edges_kept: a.edges_kept + b.edges_kept,
        pivots_skipped: a.pivots_skipped + b.pivots_skipped,
        size_bytes: a.size_bytes + b.size_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_report_has_no_oag() {
        let g = hypergraph::fig1_example();
        let r = report_plain(&g);
        assert!(r.oag_build.is_none());
        assert_eq!(r.bipartite_build_ops, 12);
        assert_eq!(r.cycles_estimate, 12 * CYCLES_PER_EDGE_BUILD + 11 * CYCLES_PER_ELEMENT_BUILD);
    }

    #[test]
    fn oag_report_costs_more() {
        let g = hypergraph::fig1_example();
        let stats = OagBuildStats {
            two_hop_steps: 100,
            pairs_considered: 20,
            edges_kept: 6,
            pivots_skipped: 0,
            size_bytes: 68,
        };
        let with = report_with_oag(&g, stats, 68);
        let without = report_plain(&g);
        assert!(with.cycles_estimate > without.cycles_estimate);
        assert_eq!(with.oag_extra_bytes, 68);
    }

    #[test]
    fn merge_adds_fields() {
        let a = OagBuildStats {
            two_hop_steps: 1,
            pairs_considered: 2,
            edges_kept: 3,
            pivots_skipped: 4,
            size_bytes: 5,
        };
        let m = merge_stats(a, a);
        assert_eq!(m.two_hop_steps, 2);
        assert_eq!(m.edges_kept, 6);
        assert_eq!(m.size_bytes, 10);
    }

    #[test]
    fn oag_overhead_band_on_datasets() {
        // The calibration target: OAG preprocessing adds a bounded share on
        // the stand-in datasets (the paper reports 13-46 %; the densest
        // downscaled stand-ins run above that band — see EXPERIMENTS.md),
        // with WEB below the maximum of the five.
        use hypergraph::datasets::Dataset;
        use hypergraph::Side;
        use oag::OagConfig;
        let mut overheads = Vec::new();
        for ds in Dataset::ALL {
            let g = ds.load();
            let (_, sh) = OagConfig::new().build_with_stats(&g, Side::Hyperedge);
            let (_, sv) = OagConfig::new().build_with_stats(&g, Side::Vertex);
            let oag = oag_build_cycles(&merge_stats(sh, sv)) as f64;
            let base = bipartite_build_cycles(&g) as f64;
            overheads.push((ds, oag / base));
        }
        for &(ds, ov) in &overheads {
            assert!(ov > 0.03 && ov < 2.5, "{ds}: OAG overhead {ov:.2} out of plausible band");
        }
        let web = overheads.iter().find(|(d, _)| *d == Dataset::WebTrackers).unwrap().1;
        let max = overheads.iter().map(|&(_, o)| o).fold(0.0f64, f64::max);
        assert!(web < max, "WEB must not have the largest OAG overhead");
    }
}
