//! Comparison baselines: HATS-V (§II-C), the event-driven hardware
//! prefetcher (§VI-H), and the reordering technique (§VI-H).

pub mod reorder;

use crate::exec::{Driver, ExecMode};
use crate::guard::ExecError;
use crate::{preprocess, Algorithm, ExecutionReport, RunConfig, Runtime};
use hypergraph::Hypergraph;

/// HATS-V: the HATS hardware traversal scheduler (Mukkara et al.,
/// MICRO'18), modified as the paper describes to support hypergraphs —
/// index renumbering to distinguish vertices from hyperedges, alternating
/// traversal control, and per-kind update functions.
///
/// HATS-V schedules via bounded DFS over the **bipartite structure** rather
/// than an OAG: discovering each same-side neighbor traverses *two*
/// bipartite edges, and the successor is the first overlapping element
/// found, not the maximally-overlapping one. Both deficiencies make it
/// inferior to ChGraph (Fig. 7).
#[derive(Clone, Copy, Debug, Default)]
pub struct HatsVRuntime;

impl Runtime for HatsVRuntime {
    fn name(&self) -> &'static str {
        "hats-v"
    }

    fn try_execute(
        &self,
        g: &Hypergraph,
        algo: &dyn Algorithm,
        cfg: &RunConfig,
    ) -> Result<ExecutionReport, ExecError> {
        let out = Driver::try_new(g, algo, cfg, ExecMode::HatsTraversal, None, None)?.try_run()?;
        Ok(ExecutionReport {
            runtime: self.name(),
            algorithm: algo.name(),
            iterations: out.iterations,
            cycles: out.cycles,
            core_busy_cycles: out.core_busy_cycles,
            mem_stall_cycles: out.mem_stall_cycles,
            mem: out.mem,
            state: out.state,
            engine: Some(out.engine),
            preprocess: preprocess::report_plain(g),
        })
    }
}

/// The event-driven programmable prefetcher baseline (Ainsworth & Jones,
/// ASPLOS'18 style): Hygra's index order, with a hardware prefetcher
/// running a configurable distance ahead of the core, fetching offsets,
/// incidence lists and destination values into the L2 — plus a fraction of
/// useless fetches (prefetch inaccuracy).
///
/// It hides latency but cannot *reduce* main-memory traffic, which is why
/// ChGraph outperforms it by changing the schedule instead (Fig. 23).
#[derive(Clone, Copy, Debug, Default)]
pub struct PrefetcherRuntime;

impl Runtime for PrefetcherRuntime {
    fn name(&self) -> &'static str {
        "prefetcher"
    }

    fn try_execute(
        &self,
        g: &Hypergraph,
        algo: &dyn Algorithm,
        cfg: &RunConfig,
    ) -> Result<ExecutionReport, ExecError> {
        let out =
            Driver::try_new(g, algo, cfg, ExecMode::IndexOrderedPrefetch, None, None)?.try_run()?;
        Ok(ExecutionReport {
            runtime: self.name(),
            algorithm: algo.name(),
            iterations: out.iterations,
            cycles: out.cycles,
            core_busy_cycles: out.core_busy_cycles,
            mem_stall_cycles: out.mem_stall_cycles,
            mem: out.mem,
            state: out.state,
            engine: Some(out.engine),
            preprocess: preprocess::report_plain(g),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChGraphRuntime, HygraRuntime, MinLabel};
    use archsim::SystemConfig;

    fn graph() -> Hypergraph {
        // Quarter-scale Web-trackers stand-in, matching the scaled caches
        // below (the paper's capacity-miss regime at test size).
        let mut c = hypergraph::datasets::Dataset::WebTrackers.config();
        c.num_vertices /= 4;
        c.num_hyperedges /= 4;
        c.generate()
    }

    fn cfg() -> RunConfig {
        let mut s = SystemConfig::scaled(4);
        s.l1.size_bytes = 1024;
        s.l2.size_bytes = 4 * 1024;
        s.l3.size_bytes = 16 * 1024;
        RunConfig::new().with_system(s)
    }

    #[test]
    fn baselines_compute_correct_results() {
        let g = graph();
        let cfg = cfg();
        let reference = HygraRuntime.execute(&g, &MinLabel, &cfg);
        for (name, report) in [
            ("hats", HatsVRuntime.execute(&g, &MinLabel, &cfg)),
            ("pf", PrefetcherRuntime.execute(&g, &MinLabel, &cfg)),
        ] {
            assert_eq!(report.state.vertex_value, reference.state.vertex_value, "{name}");
        }
    }

    #[test]
    fn chgraph_beats_hats_v() {
        let g = graph();
        let cfg = cfg();
        let pr = crate::testutil::PrLike { iterations: 3 };
        let hats = HatsVRuntime.execute(&g, &pr, &cfg);
        let chg = ChGraphRuntime::new().execute(&g, &pr, &cfg);
        assert!(
            chg.cycles < hats.cycles,
            "ChGraph ({}) must beat HATS-V ({})",
            chg.cycles,
            hats.cycles
        );
    }

    #[test]
    fn prefetcher_helps_hygra_but_not_as_much_as_chgraph() {
        let g = graph();
        let cfg = cfg();
        let pr = crate::testutil::PrLike { iterations: 3 };
        let hygra = HygraRuntime.execute(&g, &pr, &cfg);
        let pf = PrefetcherRuntime.execute(&g, &pr, &cfg);
        let chg = ChGraphRuntime::new().execute(&g, &pr, &cfg);
        assert!(pf.cycles < hygra.cycles, "prefetching must hide some latency");
        assert!(
            (chg.cycles as f64) < 1.1 * pf.cycles as f64,
            "ChGraph must at least match the prefetcher at test scale              (integration tests assert strict wins at larger scale)"
        );
        // The prefetcher does not reduce DRAM traffic (it may add noise).
        assert!(
            pf.mem.main_memory_accesses() as f64 >= hygra.mem.main_memory_accesses() as f64 * 0.95,
            "prefetcher must not meaningfully reduce main-memory accesses"
        );
    }
}
