//! The reordering technique (§VI-H, Fig. 24).
//!
//! A locality-aware renumbering assigns incident vertices of each hyperedge
//! close-by ids (BFS discovery order over the bipartite structure), which
//! improves *spatial* locality. ChGraph improves *temporal* locality, so
//! the two compose — but the paper finds the reordering overhead offsets
//! its benefit. [`run_reordered`] reproduces that comparison: it reorders
//! the input, runs any runtime on it, and charges the reordering cost as
//! additional preprocessing.

use crate::{Algorithm, ExecutionReport, RunConfig, Runtime};
use hypergraph::{Csr, Hypergraph, Side};

/// Cycles charged per bipartite edge visited during the BFS renumbering —
/// a queue-driven traversal with random-access visited flags is far slower
/// per edge than sequential CSR construction.
pub const CYCLES_PER_REORDER_EDGE: u64 = 90;

/// Renumbers vertices and hyperedges in BFS discovery order over the
/// bipartite structure, returning the reordered hypergraph and the number
/// of traversal operations performed.
///
/// The transformation preserves structure (it is an isomorphism): element
/// counts, degrees and overlaps are unchanged; only ids move.
pub fn reorder(g: &Hypergraph) -> (Hypergraph, u64) {
    let nv = g.num_vertices();
    let nh = g.num_hyperedges();
    // new id assigned in discovery order; u32::MAX = undiscovered.
    let mut v_new = vec![u32::MAX; nv];
    let mut h_new = vec![u32::MAX; nh];
    let mut next_v = 0u32;
    let mut next_h = 0u32;
    let mut ops = 0u64;
    let mut queue = std::collections::VecDeque::new();
    for seed in 0..nv as u32 {
        if v_new[seed as usize] != u32::MAX {
            continue;
        }
        v_new[seed as usize] = next_v;
        next_v += 1;
        queue.push_back((Side::Vertex, seed));
        while let Some((side, id)) = queue.pop_front() {
            for &n in g.incidence(side, id) {
                ops += 1;
                let slot = match side {
                    Side::Vertex => &mut h_new[n as usize],
                    Side::Hyperedge => &mut v_new[n as usize],
                };
                if *slot == u32::MAX {
                    *slot = match side {
                        Side::Vertex => {
                            next_h += 1;
                            next_h - 1
                        }
                        Side::Hyperedge => {
                            next_v += 1;
                            next_v - 1
                        }
                    };
                    queue.push_back((side.opposite(), n));
                }
            }
        }
    }
    // Hyperedges never reached from any vertex cannot exist (hyperedges are
    // non-empty), but be defensive.
    for h in h_new.iter_mut() {
        if *h == u32::MAX {
            *h = next_h;
            next_h += 1;
        }
    }

    // Rebuild: row r of the new hyperedge CSR is old hyperedge with
    // h_new == r; entries renumbered through v_new.
    let mut rows: Vec<Vec<u32>> = vec![Vec::new(); nh];
    for (old_h, &mapped) in h_new.iter().enumerate().take(nh) {
        let new_h = mapped as usize;
        rows[new_h] =
            g.incidence(Side::Hyperedge, old_h as u32).iter().map(|&v| v_new[v as usize]).collect();
        // Sort incident vertices so close ids sit together in the line.
        rows[new_h].sort_unstable();
        ops += rows[new_h].len() as u64;
    }
    let hyperedge_csr = Csr::from_adjacency(rows);
    let vertex_csr = hyperedge_csr.transpose(nv);
    (Hypergraph::from_csr(hyperedge_csr, vertex_csr), ops)
}

/// Runs `inner` on the reordered hypergraph, charging the reordering cost
/// to preprocessing (Fig. 24's `Hygra+Reordering` / `ChGraph+Reordering`
/// configurations).
pub fn run_reordered(
    inner: &dyn Runtime,
    g: &Hypergraph,
    algo: &dyn Algorithm,
    cfg: &RunConfig,
) -> ExecutionReport {
    let (reordered, ops) = reorder(g);
    let mut report = inner.execute(&reordered, algo, cfg);
    report.preprocess.cycles_estimate += ops * CYCLES_PER_REORDER_EDGE;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::{HyperedgeId, VertexId};

    #[test]
    fn reorder_preserves_structure() {
        let g = hypergraph::generate::GeneratorConfig::new(500, 400).with_seed(2).generate();
        let (r, ops) = reorder(&g);
        assert_eq!(r.num_vertices(), g.num_vertices());
        assert_eq!(r.num_hyperedges(), g.num_hyperedges());
        assert_eq!(r.num_bipartite_edges(), g.num_bipartite_edges());
        assert!(ops >= g.num_bipartite_edges() as u64);
        // Degree multiset preserved.
        let degs = |g: &Hypergraph| {
            let mut d: Vec<usize> = (0..g.num_hyperedges())
                .map(|h| g.hyperedge_degree(HyperedgeId::from_index(h)))
                .collect();
            d.sort_unstable();
            d
        };
        assert_eq!(degs(&g), degs(&r));
        let vdegs = |g: &Hypergraph| {
            let mut d: Vec<usize> =
                (0..g.num_vertices()).map(|v| g.vertex_degree(VertexId::from_index(v))).collect();
            d.sort_unstable();
            d
        };
        assert_eq!(vdegs(&g), vdegs(&r));
    }

    #[test]
    fn reorder_improves_incident_id_locality() {
        let g = hypergraph::datasets::Dataset::LiveJournal.config().with_seed(123).generate();
        let spread = |g: &Hypergraph| -> f64 {
            let mut total = 0u64;
            let mut n = 0u64;
            for h in 0..g.num_hyperedges() {
                let vs = g.incidence(Side::Hyperedge, h as u32);
                for w in vs.windows(2) {
                    total += (w[1] as i64 - w[0] as i64).unsigned_abs();
                    n += 1;
                }
            }
            total as f64 / n.max(1) as f64
        };
        let (r, _) = reorder(&g);
        assert!(
            spread(&r) < spread(&g),
            "BFS renumbering should shrink the id spread within hyperedges"
        );
    }

    #[test]
    fn reorder_ids_are_dense_permutations() {
        let g = hypergraph::fig1_example();
        let (r, _) = reorder(&g);
        // Every vertex id appears exactly once across incidence lists'
        // universe: check via degree > 0 count preserved.
        assert_eq!(r.num_vertices(), 7);
        let total: usize = (0..7).map(|v| r.vertex_degree(VertexId::from_index(v))).sum();
        assert_eq!(total, 12);
    }
}
