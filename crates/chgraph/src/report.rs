//! Execution reports and cross-runtime comparison helpers.

use crate::State;
use archsim::{MemStats, RegionGroup};
use oag::OagBuildStats;
use std::fmt;

/// Statistics of the ChGraph engine (HCG + CP) for one execution.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EngineReport {
    /// Engine cycles spent in the hardware chain generator.
    pub hcg_cycles: u64,
    /// Engine cycles spent in the chain-driven prefetcher.
    pub cp_cycles: u64,
    /// Tuples delivered through the bipartite-edge FIFO.
    pub tuples_delivered: u64,
    /// Chains generated across all iterations and chunks.
    pub chains_generated: u64,
    /// Cycles the engine stalled on a full bipartite-edge FIFO.
    pub fifo_full_stalls: u64,
    /// Cycles the core stalled waiting for the FIFO to fill.
    pub fifo_empty_stalls: u64,
}

/// Preprocessing accounting (Fig. 21): what it cost to prepare the input
/// before the iterative computation started.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct PreprocessReport {
    /// Work units (element + edge visits) to build the bipartite CSR —
    /// preprocessing both Hygra and ChGraph pay.
    pub bipartite_build_ops: u64,
    /// OAG construction statistics (ChGraph only), both sides merged.
    pub oag_build: Option<OagBuildStats>,
    /// Extra bytes the OAGs occupy beyond the bipartite structure.
    pub oag_extra_bytes: usize,
    /// Estimated preprocessing cycles (proportional to the op counts; used
    /// for the Fig. 22 end-to-end comparison).
    pub cycles_estimate: u64,
}

/// Result of executing one algorithm under one runtime on the simulated
/// machine.
#[derive(Clone, PartialEq, Debug)]
pub struct ExecutionReport {
    /// Runtime name (e.g. `"hygra"`, `"gla"`, `"chgraph"`).
    pub runtime: &'static str,
    /// Algorithm name.
    pub algorithm: &'static str,
    /// Iterations executed.
    pub iterations: usize,
    /// End-to-end simulated cycles of the iterative computation (barriers
    /// at phase ends; excludes preprocessing).
    pub cycles: u64,
    /// Sum over cores of their busy cycles (for utilization metrics).
    pub core_busy_cycles: u64,
    /// Sum over cores of effective cycles stalled on main-memory accesses.
    pub mem_stall_cycles: u64,
    /// Memory-system statistics (all cores + engines).
    pub mem: MemStats,
    /// Final algorithm state.
    pub state: State,
    /// Engine statistics (ChGraph-family runtimes only).
    pub engine: Option<EngineReport>,
    /// Preprocessing accounting.
    pub preprocess: PreprocessReport,
}

impl ExecutionReport {
    /// This runtime's speedup over `baseline` (>1 means faster), comparing
    /// iterative-computation cycles only (Figs. 3, 14).
    pub fn speedup_over(&self, baseline: &ExecutionReport) -> f64 {
        baseline.cycles as f64 / self.cycles.max(1) as f64
    }

    /// Speedup including preprocessing (Fig. 22's total running time).
    pub fn total_speedup_over(&self, baseline: &ExecutionReport) -> f64 {
        let own = self.cycles + self.preprocess.cycles_estimate;
        let other = baseline.cycles + baseline.preprocess.cycles_estimate;
        other as f64 / own.max(1) as f64
    }

    /// Factor by which this run reduced off-chip main-memory accesses
    /// relative to `baseline` (>1 means fewer; Figs. 2, 15).
    pub fn mem_reduction_over(&self, baseline: &ExecutionReport) -> f64 {
        baseline.mem.main_memory_accesses() as f64 / self.mem.main_memory_accesses().max(1) as f64
    }

    /// Fraction of core-busy cycles stalled on main memory (Fig. 5).
    pub fn mem_stall_fraction(&self) -> f64 {
        if self.core_busy_cycles == 0 {
            0.0
        } else {
            self.mem_stall_cycles as f64 / self.core_busy_cycles as f64
        }
    }
}

impl fmt::Display for ExecutionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "runtime:          {}", self.runtime)?;
        writeln!(f, "algorithm:        {}", self.algorithm)?;
        writeln!(f, "iterations:       {}", self.iterations)?;
        writeln!(f, "cycles:           {}", self.cycles)?;
        writeln!(f, "mem-stall share:  {:.1}%", self.mem_stall_fraction() * 100.0)?;
        writeln!(f, "dram accesses:    {}", self.mem.main_memory_accesses())?;
        for grp in RegionGroup::ALL {
            writeln!(f, "  {:16} {}", grp.label(), self.mem.main_memory_accesses_of_group(grp))?;
        }
        writeln!(f, "preprocess cyc:   {}", self.preprocess.cycles_estimate)?;
        if let Some(e) = &self.engine {
            writeln!(
                f,
                "engine:           {} chains, {} tuples, hcg {} cyc, cp {} cyc",
                e.chains_generated, e.tuples_delivered, e.hcg_cycles, e.cp_cycles
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64, pre: u64) -> ExecutionReport {
        ExecutionReport {
            runtime: "test",
            algorithm: "test",
            iterations: 1,
            cycles,
            core_busy_cycles: cycles,
            mem_stall_cycles: cycles / 2,
            mem: MemStats::new(),
            state: State {
                vertex_value: vec![],
                hyperedge_value: vec![],
                vertex_aux: vec![],
                hyperedge_aux: vec![],
            },
            engine: None,
            preprocess: PreprocessReport { cycles_estimate: pre, ..Default::default() },
        }
    }

    #[test]
    fn speedup_math() {
        let fast = report(100, 0);
        let slow = report(400, 0);
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-12);
        assert!((slow.speedup_over(&fast) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn total_speedup_includes_preprocessing() {
        let fast = report(100, 300); // 400 total
        let slow = report(400, 0); // 400 total
        assert!((fast.total_speedup_over(&slow) - 1.0).abs() < 1e-12);
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn stall_fraction() {
        let r = report(100, 0);
        assert!((r.mem_stall_fraction() - 0.5).abs() < 1e-12);
        let mut z = report(0, 0);
        z.core_busy_cycles = 0;
        assert_eq!(z.mem_stall_fraction(), 0.0);
    }

    #[test]
    fn display_renders_all_sections() {
        let mut r = report(100, 5);
        r.engine = Some(crate::EngineReport { chains_generated: 3, ..Default::default() });
        let text = r.to_string();
        assert!(text.contains("runtime:"));
        assert!(text.contains("value arrays"));
        assert!(text.contains("3 chains"));
    }

    #[test]
    fn mem_reduction_with_zero_accesses_is_finite() {
        let a = report(1, 0);
        let b = report(1, 0);
        assert_eq!(a.mem_reduction_over(&b), 0.0);
    }
}
