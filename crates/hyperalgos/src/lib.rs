#![warn(missing_docs)]

//! The hypergraph algorithms of the ChGraph evaluation.
//!
//! Implements, against the [`chgraph::Algorithm`] programming model
//! (Algorithm 1's `HF`/`VF` update functions), the six workloads of the
//! paper's §VI-A:
//!
//! - [`Bfs`] — breadth-first search (distances in bipartite hops);
//! - [`PageRank`] — the paper's own `HF`/`VF` formulation (Algorithm 1,
//!   lines 15–21), run for 10 iterations, all elements active;
//! - [`Mis`] — maximal independent set (greedy-by-id rounds);
//! - bc — single-source betweenness centrality (Brandes on the bipartite
//!   graph; forward + backward executions composed by [`run_workload`]);
//! - [`ConnectedComponents`] — min-label propagation;
//! - [`KCore`] — k-core decomposition by iterative peeling;
//!
//! plus the two ordinary-graph algorithms of the generality study (§VI-I),
//! which run on 2-uniform hypergraphs: [`Sssp`] (weighted shortest paths)
//! and [`Adsorption`] (label propagation).
//!
//! Every algorithm has a naive reference implementation in [`mod@reference`],
//! used by the test suite to verify simulated executions end-to-end.
//!
//! # Example
//!
//! ```
//! use chgraph::{HygraRuntime, RunConfig};
//! use hyperalgos::{run_workload, Workload};
//!
//! let g = hypergraph::fig1_example();
//! let report = run_workload(Workload::Bfs, &HygraRuntime, &g, &RunConfig::new());
//! // v0 is the source: distance 0; its co-members of h0/h2 are 2 hops away.
//! assert_eq!(report.state.vertex_value[0], 0.0);
//! assert_eq!(report.state.vertex_value[4], 2.0);
//! ```

mod adsorption;
mod bc;
mod bfs;
mod cc;
mod kcore;
mod mis;
mod pagerank;
pub mod reference;
pub mod selfcheck;
mod sssp;
mod workload;

pub use adsorption::Adsorption;
pub use bc::{run_bc, run_bc_prepared, try_run_bc_prepared, BcBackward, BcForward};
pub use bfs::Bfs;
pub use cc::ConnectedComponents;
pub use kcore::{CoreDecomposition, KCore};
pub use mis::{Mis, MisStatus};
pub use pagerank::PageRank;
pub use selfcheck::{self_check, self_check_prepared, SelfCheckError, SelfCheckReport};
pub use sssp::Sssp;
pub use workload::{
    default_source, run_workload, run_workload_prepared, try_run_workload,
    try_run_workload_prepared, Workload,
};
