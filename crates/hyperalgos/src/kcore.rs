//! k-core decomposition by iterative peeling.

use chgraph::{Algorithm, State, UpdateOutcome};
use hypergraph::{Frontier, HyperedgeId, Hypergraph};

/// k-core decomposition (peeling): repeatedly remove vertices incident to
/// fewer than `k` alive hyperedges; a hyperedge dies when fewer than two of
/// its vertices remain alive. The surviving vertices form the hypergraph
/// k-core.
///
/// State encoding: `vertex_value` / `hyperedge_value` hold the current
/// alive-incidence counts; `vertex_aux` / `hyperedge_aux` are death flags
/// (`0` alive, `1` dead). An element is processed by the frontier exactly
/// once — in the phase after it dies — propagating its removal.
#[derive(Clone, Copy, Debug)]
pub struct KCore {
    /// The core parameter `k`.
    pub k: usize,
}

impl KCore {
    /// Peeling with threshold `k` (minimum 1).
    pub fn new(k: usize) -> Self {
        KCore { k: k.max(1) }
    }

    /// Returns the alive (core-member) flags per vertex.
    pub fn core_members(state: &State) -> Vec<bool> {
        state.vertex_aux.iter().map(|&d| d == 0.0).collect()
    }
}

impl Default for KCore {
    fn default() -> Self {
        KCore::new(3)
    }
}

impl Algorithm for KCore {
    fn name(&self) -> &'static str {
        "kcore"
    }

    fn init(&self, g: &Hypergraph) -> (State, Frontier) {
        let mut state = State::filled_with_aux(g, 0.0, 0.0, 0.0, 0.0);
        // Hyperedges connecting fewer than two vertices are dead from the
        // start (they cannot witness any co-membership).
        for h in 0..g.num_hyperedges() {
            let deg = g.hyperedge_degree(HyperedgeId::from_index(h));
            state.hyperedge_value[h] = deg as f64;
            if deg < 2 {
                state.hyperedge_aux[h] = 1.0;
            }
        }
        for v in 0..g.num_vertices() {
            state.vertex_value[v] = g
                .incidence(hypergraph::Side::Vertex, v as u32)
                .iter()
                .filter(|&&h| state.hyperedge_aux[h as usize] == 0.0)
                .count() as f64;
        }
        // Initially dying vertices: alive-degree below k.
        let mut frontier = Frontier::empty(g.num_vertices());
        for v in 0..g.num_vertices() {
            if state.vertex_value[v] < self.k as f64 {
                state.vertex_aux[v] = 1.0;
                frontier.insert(v as u32);
            }
        }
        (state, frontier)
    }

    fn apply_hf(&self, _g: &Hypergraph, state: &mut State, v: u32, h: u32) -> UpdateOutcome {
        // `v` just died: decrement the hyperedge's alive-vertex count.
        debug_assert_eq!(state.vertex_aux[v as usize], 1.0, "frontier vertices are dying");
        if state.hyperedge_aux[h as usize] == 1.0 {
            return UpdateOutcome::NONE;
        }
        state.hyperedge_value[h as usize] -= 1.0;
        if state.hyperedge_value[h as usize] < 2.0 {
            state.hyperedge_aux[h as usize] = 1.0;
            UpdateOutcome::WROTE_AND_ACTIVATED
        } else {
            UpdateOutcome::WROTE
        }
    }

    fn apply_vf(&self, _g: &Hypergraph, state: &mut State, h: u32, v: u32) -> UpdateOutcome {
        // `h` just died: decrement the vertex's alive-hyperedge count.
        debug_assert_eq!(state.hyperedge_aux[h as usize], 1.0, "frontier hyperedges are dying");
        if state.vertex_aux[v as usize] == 1.0 {
            return UpdateOutcome::NONE;
        }
        state.vertex_value[v as usize] -= 1.0;
        if state.vertex_value[v as usize] < self.k as f64 {
            state.vertex_aux[v as usize] = 1.0;
            UpdateOutcome::WROTE_AND_ACTIVATED
        } else {
            UpdateOutcome::WROTE
        }
    }

    fn hf_compute_cycles(&self) -> u64 {
        4
    }

    fn vf_compute_cycles(&self) -> u64 {
        4
    }

    fn max_iterations(&self) -> usize {
        10_000
    }
}

/// Full k-core **decomposition**: computes every vertex's coreness (the
/// largest `k` such that the vertex belongs to the k-core) by peeling with
/// a rising threshold. This is the paper's "k-core" workload: unlike a
/// single-`k` query it performs substantial work on every input.
///
/// `vertex_aux` ends holding the coreness (vertices alive at threshold `k`
/// that die during round `k` receive coreness `k - 1`); the sentinel `-1`
/// marks still-alive vertices during execution. Hyperedges die below two
/// alive vertices, as in [`KCore`].
#[derive(Debug, Default)]
pub struct CoreDecomposition {
    current_k: std::cell::Cell<usize>,
}

impl CoreDecomposition {
    /// Creates the decomposition workload.
    pub fn new() -> Self {
        CoreDecomposition { current_k: std::cell::Cell::new(1) }
    }

    /// Coreness per vertex from a finished state.
    pub fn coreness(state: &State) -> Vec<usize> {
        state.vertex_aux.iter().map(|&c| if c < 0.0 { usize::MAX } else { c as usize }).collect()
    }

    fn alive(aux: f64) -> bool {
        aux < 0.0
    }

    /// Raises the threshold until some alive vertex falls below it (seeding
    /// the next peeling round) or every vertex is dead.
    fn seed_next_threshold(&self, g: &Hypergraph, state: &mut State, frontier: &mut Frontier) {
        let max_k = g.num_hyperedges().max(2);
        loop {
            let k = self.current_k.get() + 1;
            if k > max_k || state.vertex_aux.iter().all(|&a| !Self::alive(a)) {
                return;
            }
            self.current_k.set(k);
            for v in 0..g.num_vertices() {
                if Self::alive(state.vertex_aux[v]) && state.vertex_value[v] < k as f64 {
                    state.vertex_aux[v] = (k - 1) as f64;
                    frontier.insert(v as u32);
                }
            }
            if !frontier.is_empty() {
                return;
            }
        }
    }
}

impl Algorithm for CoreDecomposition {
    fn name(&self) -> &'static str {
        "kcore"
    }

    fn init(&self, g: &Hypergraph) -> (State, Frontier) {
        self.current_k.set(1);
        let mut state = State::filled_with_aux(g, 0.0, 0.0, -1.0, 0.0);
        for h in 0..g.num_hyperedges() {
            let deg = g.hyperedge_degree(HyperedgeId::from_index(h));
            state.hyperedge_value[h] = deg as f64;
            if deg < 2 {
                state.hyperedge_aux[h] = 1.0;
            }
        }
        let mut frontier = Frontier::empty(g.num_vertices());
        for v in 0..g.num_vertices() {
            state.vertex_value[v] = g
                .incidence(hypergraph::Side::Vertex, v as u32)
                .iter()
                .filter(|&&h| state.hyperedge_aux[h as usize] == 0.0)
                .count() as f64;
            if state.vertex_value[v] < 1.0 {
                state.vertex_aux[v] = 0.0; // coreness 0
                frontier.insert(v as u32);
            }
        }
        if frontier.is_empty() {
            // No isolated vertices: advance to the first threshold that
            // peels something.
            self.seed_next_threshold(g, &mut state, &mut frontier);
        }
        (state, frontier)
    }

    fn apply_hf(&self, _g: &Hypergraph, state: &mut State, _v: u32, h: u32) -> UpdateOutcome {
        if state.hyperedge_aux[h as usize] == 1.0 {
            return UpdateOutcome::NONE;
        }
        state.hyperedge_value[h as usize] -= 1.0;
        if state.hyperedge_value[h as usize] < 2.0 {
            state.hyperedge_aux[h as usize] = 1.0;
            UpdateOutcome::WROTE_AND_ACTIVATED
        } else {
            UpdateOutcome::WROTE
        }
    }

    fn apply_vf(&self, _g: &Hypergraph, state: &mut State, h: u32, v: u32) -> UpdateOutcome {
        debug_assert_eq!(state.hyperedge_aux[h as usize], 1.0);
        if !Self::alive(state.vertex_aux[v as usize]) {
            return UpdateOutcome::NONE;
        }
        state.vertex_value[v as usize] -= 1.0;
        if state.vertex_value[v as usize] < self.current_k.get() as f64 {
            state.vertex_aux[v as usize] = (self.current_k.get() - 1) as f64;
            UpdateOutcome::WROTE_AND_ACTIVATED
        } else {
            UpdateOutcome::WROTE
        }
    }

    fn end_iteration(
        &self,
        g: &Hypergraph,
        state: &mut State,
        next_vertices: &mut Frontier,
        _iteration: usize,
    ) {
        if !next_vertices.is_empty() {
            return; // the current threshold's cascade continues
        }
        // The k-core for the current threshold is stable: raise k and seed
        // the next peeling round.
        self.seed_next_threshold(g, state, next_vertices);
    }

    fn hf_compute_cycles(&self) -> u64 {
        4
    }

    fn vf_compute_cycles(&self) -> u64 {
        4
    }

    fn max_iterations(&self) -> usize {
        100_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use chgraph::{ChGraphRuntime, HygraRuntime, RunConfig, Runtime};

    #[test]
    fn fig1_two_core_is_empty() {
        // Every vertex of fig1 has degree <= 2; the 3-core is empty.
        let g = hypergraph::fig1_example();
        let r = HygraRuntime.execute(&g, &KCore::new(3), &RunConfig::new());
        assert!(KCore::core_members(&r.state).iter().all(|&alive| !alive));
    }

    #[test]
    fn fig1_one_core_keeps_everything() {
        let g = hypergraph::fig1_example();
        let r = HygraRuntime.execute(&g, &KCore::new(1), &RunConfig::new());
        assert!(KCore::core_members(&r.state).iter().all(|&alive| alive));
    }

    #[test]
    fn matches_reference_peeling() {
        for (seed, k) in [(1u64, 2usize), (5, 3), (9, 4)] {
            let g = hypergraph::generate::GeneratorConfig::new(300, 200).with_seed(seed).generate();
            let r = HygraRuntime.execute(&g, &KCore::new(k), &RunConfig::new());
            let want = reference::kcore(&g, k);
            assert_eq!(KCore::core_members(&r.state), want, "seed {seed} k {k}");
        }
    }

    #[test]
    fn runtimes_agree() {
        let g = hypergraph::generate::GeneratorConfig::new(300, 200).with_seed(2).generate();
        let cfg = RunConfig::new();
        let a = HygraRuntime.execute(&g, &KCore::new(3), &cfg);
        let b = ChGraphRuntime::new().execute(&g, &KCore::new(3), &cfg);
        assert_eq!(a.state.vertex_aux, b.state.vertex_aux);
        assert_eq!(a.state.hyperedge_aux, b.state.hyperedge_aux);
    }

    #[test]
    fn decomposition_matches_reference_coreness() {
        for seed in [1u64, 6] {
            let g = hypergraph::generate::GeneratorConfig::new(250, 180).with_seed(seed).generate();
            let r = HygraRuntime.execute(&g, &CoreDecomposition::new(), &RunConfig::new());
            let got = CoreDecomposition::coreness(&r.state);
            let want = reference::coreness(&g);
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn decomposition_is_consistent_with_single_k_queries() {
        let g = hypergraph::generate::GeneratorConfig::new(200, 150).with_seed(4).generate();
        let cfg = RunConfig::new();
        let cores = CoreDecomposition::coreness(
            &HygraRuntime.execute(&g, &CoreDecomposition::new(), &cfg).state,
        );
        for k in 1..=4usize {
            let members =
                KCore::core_members(&HygraRuntime.execute(&g, &KCore::new(k), &cfg).state);
            for v in 0..g.num_vertices() {
                assert_eq!(members[v], cores[v] >= k, "v{v} at k={k}");
            }
        }
    }

    #[test]
    fn decomposition_agrees_across_runtimes() {
        let g = hypergraph::generate::GeneratorConfig::new(250, 200).with_seed(8).generate();
        let cfg = RunConfig::new();
        let a = HygraRuntime.execute(&g, &CoreDecomposition::new(), &cfg);
        let b = ChGraphRuntime::new().execute(&g, &CoreDecomposition::new(), &cfg);
        assert_eq!(a.state.vertex_aux, b.state.vertex_aux);
    }

    #[test]
    fn cores_are_nested() {
        let g = hypergraph::generate::GeneratorConfig::new(400, 300).with_seed(3).generate();
        let cfg = RunConfig::new();
        let core2 = KCore::core_members(&HygraRuntime.execute(&g, &KCore::new(2), &cfg).state);
        let core4 = KCore::core_members(&HygraRuntime.execute(&g, &KCore::new(4), &cfg).state);
        for v in 0..g.num_vertices() {
            assert!(!core4[v] || core2[v], "4-core member v{v} missing from 2-core");
        }
    }
}
