//! Adsorption (label propagation with injection).

use chgraph::{Algorithm, State, UpdateOutcome};
use hypergraph::{Frontier, HyperedgeId, Hypergraph, VertexId};

/// Adsorption-style label propagation (the second generality-study workload
/// of §VI-I). A sparse set of *seed* vertices carries a unit label prior;
/// each iteration every vertex recomputes its score as a mix of its
/// injected prior and the mean score of its incident hyperedges, which in
/// turn average their incident vertices — an all-active accumulation
/// workload like PageRank but with per-vertex injection.
#[derive(Clone, Copy, Debug)]
pub struct Adsorption {
    /// Weight of the injected prior.
    pub injection: f64,
    /// Weight of the propagated neighborhood score.
    pub continuation: f64,
    /// Every `seed_stride`-th vertex carries a unit prior.
    pub seed_stride: u32,
    /// Number of iterations.
    pub iterations: usize,
}

impl Adsorption {
    /// Default parameters: 25 % injection, 75 % continuation, seeds every
    /// 32nd vertex, 10 iterations.
    pub fn new() -> Self {
        Adsorption { injection: 0.25, continuation: 0.75, seed_stride: 32, iterations: 10 }
    }

    fn prior(&self, v: u32) -> f64 {
        if v.is_multiple_of(self.seed_stride) {
            1.0
        } else {
            0.0
        }
    }
}

impl Default for Adsorption {
    fn default() -> Self {
        Adsorption::new()
    }
}

impl Algorithm for Adsorption {
    fn name(&self) -> &'static str {
        "adsorption"
    }

    fn init(&self, g: &Hypergraph) -> (State, Frontier) {
        let mut state = State::filled_with_aux(g, 0.0, 0.0, 0.0, 0.0);
        for v in 0..g.num_vertices() as u32 {
            state.vertex_value[v as usize] = self.prior(v);
            state.vertex_aux[v as usize] = self.prior(v);
        }
        (state, Frontier::full(g.num_vertices()))
    }

    fn begin_iteration(&self, _g: &Hypergraph, state: &mut State, _iteration: usize) {
        state.hyperedge_value.fill(0.0);
    }

    fn begin_vertex_phase(&self, _g: &Hypergraph, state: &mut State, _iteration: usize) {
        state.vertex_value.fill(0.0);
    }

    fn apply_hf(&self, g: &Hypergraph, state: &mut State, v: u32, h: u32) -> UpdateOutcome {
        let deg = g.vertex_degree(VertexId::new(v)).max(1) as f64;
        state.hyperedge_value[h as usize] += state.vertex_value[v as usize] / deg;
        UpdateOutcome::WROTE_AND_ACTIVATED
    }

    fn apply_vf(&self, g: &Hypergraph, state: &mut State, h: u32, v: u32) -> UpdateOutcome {
        let vdeg = g.vertex_degree(VertexId::new(v)).max(1) as f64;
        let hdeg = g.hyperedge_degree(HyperedgeId::new(h)).max(1) as f64;
        // Per-edge injection share sums to `injection * prior(v)`.
        state.vertex_value[v as usize] += self.injection * state.vertex_aux[v as usize] / vdeg
            + self.continuation * state.hyperedge_value[h as usize] / hdeg;
        UpdateOutcome::WROTE_AND_ACTIVATED
    }

    fn max_iterations(&self) -> usize {
        self.iterations
    }

    fn all_active(&self) -> bool {
        true
    }

    fn hf_compute_cycles(&self) -> u64 {
        6
    }

    fn vf_compute_cycles(&self) -> u64 {
        10
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use chgraph::{HygraRuntime, RunConfig, Runtime};
    use hypergraph::generate::two_uniform_graph;

    fn close(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
    }

    #[test]
    fn matches_reference() {
        let g = two_uniform_graph(120, 400, 9);
        let algo = Adsorption { iterations: 4, ..Adsorption::new() };
        let r = HygraRuntime.execute(&g, &algo, &RunConfig::new());
        let want = reference::adsorption(&g, 0.25, 0.75, 32, 4);
        assert!(close(&r.state.vertex_value, &want));
    }

    #[test]
    fn seeds_spread_influence() {
        let g = two_uniform_graph(100, 500, 2);
        let r = HygraRuntime.execute(&g, &Adsorption::new(), &RunConfig::new());
        let touched = r.state.vertex_value.iter().filter(|&&x| x > 0.0).count();
        assert!(touched > 50, "labels must propagate beyond the seeds ({touched})");
    }

    #[test]
    fn zero_injection_keeps_priors_irrelevant() {
        let g = two_uniform_graph(60, 150, 5);
        let mut algo = Adsorption::new();
        algo.injection = 0.0;
        algo.iterations = 3;
        let r = HygraRuntime.execute(&g, &algo, &RunConfig::new());
        // With no injection and zeroed accumulators, only the initial-state
        // propagation survives — still finite and nonnegative.
        assert!(r.state.vertex_value.iter().all(|x| x.is_finite() && *x >= 0.0));
    }
}
