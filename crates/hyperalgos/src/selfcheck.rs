//! Differential self-check: execute a workload under a simulated runtime
//! and diff the final state against the naive reference implementation of
//! [`mod@crate::reference`].
//!
//! Exact-valued workloads (BFS, CC, SSSP, k-core) must match the reference
//! bit-for-bit; accumulation workloads (PR, BC, Adsorption) sum in
//! schedule-dependent order and are compared under a relative
//! floating-point tolerance; MIS has many valid answers, so its *validity*
//! (independence + maximality) is checked instead of its values. A mismatch
//! reports the first divergent element id, both values, and how many
//! iterations the checked execution ran — enough to reproduce and bisect.

use crate::reference::{self, MisViolation};
use crate::{try_run_workload_prepared, CoreDecomposition, Mis, Workload};
use chgraph::{ExecError, ExecutionReport, PreparedOags, RunConfig, Runtime};
use hypergraph::Hypergraph;
use std::fmt;

/// Relative tolerance for accumulation workloads whose floating-point sums
/// are reassociated by scheduling (PR, BC, Adsorption).
pub const FLOAT_TOLERANCE: f64 = 1e-9;

/// The first element where a simulated execution diverges from the
/// reference.
#[derive(Clone, Copy, Debug)]
pub struct Divergence {
    /// Which state array diverged (`"vertex_value"`, `"hyperedge_value"`,
    /// or `"coreness"`).
    pub field: &'static str,
    /// The first divergent element id within that array.
    pub id: usize,
    /// The simulated value.
    pub got: f64,
    /// The reference value.
    pub want: f64,
    /// The relative tolerance the comparison allowed (`0.0` = exact).
    pub tolerance: f64,
}

/// Why a self-checked execution is not trustworthy.
#[derive(Debug)]
pub enum SelfCheckError {
    /// The execution itself failed (watchdog budget, validation, config)
    /// before producing a state to diff.
    Exec(ExecError),
    /// The execution completed but its state diverges from the reference.
    Diverged {
        /// The checked workload.
        workload: Workload,
        /// The runtime that produced the divergent state.
        runtime: &'static str,
        /// Iterations the checked execution ran before finishing.
        iterations: usize,
        /// First divergent element.
        divergence: Divergence,
    },
    /// The MIS execution completed but its answer is not a valid maximal
    /// independent set.
    InvalidMis {
        /// The runtime that produced the invalid set.
        runtime: &'static str,
        /// Iterations the checked execution ran before finishing.
        iterations: usize,
        /// The first validity violation.
        violation: MisViolation,
    },
}

impl fmt::Display for SelfCheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelfCheckError::Exec(e) => write!(f, "execution failed before the diff: {e}"),
            SelfCheckError::Diverged { workload, runtime, iterations, divergence } => {
                let Divergence { field, id, got, want, tolerance } = divergence;
                write!(
                    f,
                    "{workload} under {runtime} diverges from reference at {field}[{id}]: \
                     got {got}, want {want} (tolerance {tolerance}, after {iterations} iterations)"
                )
            }
            SelfCheckError::InvalidMis { runtime, iterations, violation } => {
                write!(
                    f,
                    "MIS under {runtime} is invalid after {iterations} iterations: {violation}"
                )
            }
        }
    }
}

impl std::error::Error for SelfCheckError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SelfCheckError::Exec(e) => Some(e),
            SelfCheckError::InvalidMis { violation, .. } => Some(violation),
            SelfCheckError::Diverged { .. } => None,
        }
    }
}

impl From<ExecError> for SelfCheckError {
    fn from(e: ExecError) -> Self {
        SelfCheckError::Exec(e)
    }
}

/// A verified execution: the report plus how much of it was diffed.
#[derive(Clone, Debug)]
pub struct SelfCheckReport {
    /// The checked workload.
    pub workload: Workload,
    /// The full execution report, usable exactly as an unchecked run's.
    pub report: ExecutionReport,
    /// How many state elements were compared against the reference.
    pub elements_checked: usize,
}

/// Executes `workload` on `g` under `runtime` and verifies the result
/// against the naive reference implementation.
pub fn self_check(
    workload: Workload,
    runtime: &dyn Runtime,
    g: &Hypergraph,
    cfg: &RunConfig,
) -> Result<SelfCheckReport, SelfCheckError> {
    self_check_prepared(workload, runtime, g, cfg, None)
}

/// [`self_check`] with optional pre-built OAG artifacts.
pub fn self_check_prepared(
    workload: Workload,
    runtime: &dyn Runtime,
    g: &Hypergraph,
    cfg: &RunConfig,
    prepared: Option<&PreparedOags>,
) -> Result<SelfCheckReport, SelfCheckError> {
    let source = crate::default_source(g);
    let report = try_run_workload_prepared(workload, runtime, g, cfg, prepared)?;
    let iterations = report.iterations;
    let diverged = |divergence| SelfCheckError::Diverged {
        workload,
        runtime: report.runtime,
        iterations,
        divergence,
    };
    let elements_checked = match workload {
        Workload::Bfs => {
            let (vd, hd) = reference::bfs(g, source);
            diff("vertex_value", &report.state.vertex_value, &vd, 0.0).map_err(diverged)?;
            diff("hyperedge_value", &report.state.hyperedge_value, &hd, 0.0).map_err(diverged)?;
            vd.len() + hd.len()
        }
        Workload::Pr => {
            // The reference must run exactly as many iterations as the
            // simulated execution did (`max_iterations` may cap it).
            let want = reference::pagerank(g, 0.85, iterations);
            diff("vertex_value", &report.state.vertex_value, &want, FLOAT_TOLERANCE)
                .map_err(diverged)?;
            want.len()
        }
        Workload::Mis => {
            let statuses = Mis::statuses(&report.state);
            reference::check_mis(g, &statuses).map_err(|violation| SelfCheckError::InvalidMis {
                runtime: report.runtime,
                iterations,
                violation,
            })?;
            statuses.len()
        }
        Workload::Bc => {
            // Hyperedge deltas of childless hyperedges are folded into the
            // seeding (see `BcBackward`), so only vertex deltas are diffed.
            let (vd, _) = reference::bc_single_source(g, source);
            diff("vertex_value", &report.state.vertex_value, &vd, FLOAT_TOLERANCE)
                .map_err(diverged)?;
            vd.len()
        }
        Workload::Cc => {
            let want = reference::connected_components(g);
            diff("vertex_value", &report.state.vertex_value, &want, 0.0).map_err(diverged)?;
            want.len()
        }
        Workload::KCore => {
            let got = CoreDecomposition::coreness(&report.state);
            let want = reference::coreness(g);
            if let Some(id) = (0..want.len().min(got.len())).find(|&v| got[v] != want[v]) {
                return Err(diverged(Divergence {
                    field: "coreness",
                    id,
                    got: got[id] as f64,
                    want: want[id] as f64,
                    tolerance: 0.0,
                }));
            }
            want.len()
        }
        Workload::Sssp => {
            let want = reference::sssp(g, source);
            diff("vertex_value", &report.state.vertex_value, &want, 0.0).map_err(diverged)?;
            want.len()
        }
        Workload::Adsorption => {
            let a = crate::Adsorption::new();
            let want =
                reference::adsorption(g, a.injection, a.continuation, a.seed_stride, iterations);
            diff("vertex_value", &report.state.vertex_value, &want, FLOAT_TOLERANCE)
                .map_err(diverged)?;
            want.len()
        }
    };
    Ok(SelfCheckReport { workload, report, elements_checked })
}

/// `true` when `got` matches `want` within relative tolerance `tol`
/// (`0.0` = exact). Matching infinities (unreached distances) are equal;
/// NaN never matches anything.
fn close(got: f64, want: f64, tol: f64) -> bool {
    if got.is_infinite() || want.is_infinite() {
        return got == want;
    }
    let scale = got.abs().max(want.abs()).max(1.0);
    (got - want).abs() <= tol * scale
}

fn diff(field: &'static str, got: &[f64], want: &[f64], tolerance: f64) -> Result<(), Divergence> {
    debug_assert_eq!(got.len(), want.len(), "{field}: state/reference length mismatch");
    for (id, (&g, &w)) in got.iter().zip(want).enumerate() {
        if !close(g, w, tolerance) {
            return Err(Divergence { field, id, got: g, want: w, tolerance });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chgraph::{ChGraphRuntime, HygraRuntime};

    #[test]
    fn every_workload_self_checks_on_fig1() {
        let g = hypergraph::fig1_example();
        let cfg = RunConfig::new();
        for w in Workload::HYPERGRAPH.into_iter().chain(Workload::GRAPH) {
            let r = self_check(w, &HygraRuntime, &g, &cfg)
                .unwrap_or_else(|e| panic!("{w} failed its self-check: {e}"));
            assert!(r.elements_checked > 0, "{w} checked nothing");
        }
    }

    #[test]
    fn chain_driven_runtime_self_checks_on_a_generated_graph() {
        let g = hypergraph::generate::GeneratorConfig::new(200, 120).with_seed(11).generate();
        let cfg = RunConfig::new().with_system(archsim::SystemConfig::scaled(2));
        for w in Workload::HYPERGRAPH {
            self_check(w, &ChGraphRuntime::new(), &g, &cfg)
                .unwrap_or_else(|e| panic!("{w} failed its self-check: {e}"));
        }
    }

    #[test]
    fn pagerank_respects_iteration_caps() {
        // With a capped iteration count, the reference must be re-run for
        // the same number of iterations — a mismatch here would diverge.
        let g = hypergraph::generate::GeneratorConfig::new(150, 100).with_seed(3).generate();
        let cfg = RunConfig::new().with_max_iterations(3);
        let r = self_check(Workload::Pr, &HygraRuntime, &g, &cfg).expect("capped PR diverged");
        assert_eq!(r.report.iterations, 3);
    }

    #[test]
    fn a_budget_trip_surfaces_as_an_exec_error() {
        let g = hypergraph::generate::GeneratorConfig::new(150, 100).with_seed(4).generate();
        let cfg = RunConfig::new().with_max_cycles(1);
        match self_check(Workload::Pr, &HygraRuntime, &g, &cfg) {
            Err(SelfCheckError::Exec(ExecError::BudgetExceeded { progress, .. })) => {
                assert!(progress.cycles > 0, "partial stats must be reported");
            }
            other => panic!("expected a budget trip, got {other:?}"),
        }
    }

    #[test]
    fn a_fabricated_divergence_reports_the_first_bad_id() {
        let want = [0.0, 1.0, 2.0, 3.0];
        let got = [0.0, 1.0, 7.0, 9.0];
        let d = diff("vertex_value", &got, &want, 0.0).unwrap_err();
        assert_eq!(d.id, 2);
        assert_eq!(d.got, 7.0);
        assert_eq!(d.want, 3.0 - 1.0);
    }

    #[test]
    fn tolerance_comparison_handles_infinities_and_nan() {
        assert!(close(f64::INFINITY, f64::INFINITY, 0.0));
        assert!(!close(f64::INFINITY, 1.0, 1e-9));
        assert!(!close(f64::NAN, f64::NAN, 1e-9));
        assert!(close(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!close(1.0, 1.1, 1e-9));
    }

    #[test]
    fn errors_render_actionable_messages() {
        let e = SelfCheckError::Diverged {
            workload: Workload::Bfs,
            runtime: "hygra",
            iterations: 4,
            divergence: Divergence {
                field: "vertex_value",
                id: 17,
                got: 2.0,
                want: 3.0,
                tolerance: 0.0,
            },
        };
        let msg = e.to_string();
        assert!(msg.contains("BFS under hygra"), "{msg}");
        assert!(msg.contains("vertex_value[17]"), "{msg}");
        assert!(msg.contains("after 4 iterations"), "{msg}");
    }
}
