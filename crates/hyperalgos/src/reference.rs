//! Naive reference implementations used to verify simulated executions.
//!
//! Every function here computes its result directly on the hypergraph with
//! textbook sequential algorithms — no scheduling, no simulation — so the
//! test suite can check the GLA implementations end-to-end.

use hypergraph::{HyperedgeId, Hypergraph, Side, VertexId};
use std::collections::{BinaryHeap, VecDeque};

/// Bipartite BFS: returns `(vertex_dists, hyperedge_dists)` in bipartite
/// hops from `source` (unreached elements hold `f64::INFINITY`).
pub fn bfs(g: &Hypergraph, source: VertexId) -> (Vec<f64>, Vec<f64>) {
    let mut vd = vec![f64::INFINITY; g.num_vertices()];
    let mut hd = vec![f64::INFINITY; g.num_hyperedges()];
    vd[source.index()] = 0.0;
    let mut queue = VecDeque::from([(Side::Vertex, source.raw())]);
    while let Some((side, id)) = queue.pop_front() {
        let dist = match side {
            Side::Vertex => vd[id as usize],
            Side::Hyperedge => hd[id as usize],
        };
        for &n in g.incidence(side, id) {
            let slot = match side {
                Side::Vertex => &mut hd[n as usize],
                Side::Hyperedge => &mut vd[n as usize],
            };
            if slot.is_infinite() {
                *slot = dist + 1.0;
                queue.push_back((side.opposite(), n));
            }
        }
    }
    (vd, hd)
}

/// Dense two-phase PageRank matching the paper's Algorithm 1 formulation.
pub fn pagerank(g: &Hypergraph, damping: f64, iterations: usize) -> Vec<f64> {
    let nv = g.num_vertices();
    let mut vv = vec![1.0 / nv as f64; nv];
    let mut hv = vec![0.0; g.num_hyperedges()];
    for _ in 0..iterations {
        hv.fill(0.0);
        for v in 0..nv as u32 {
            let deg = g.vertex_degree(VertexId::new(v)).max(1) as f64;
            for &h in g.incidence(Side::Vertex, v) {
                hv[h as usize] += vv[v as usize] / deg;
            }
        }
        vv.fill(0.0);
        for h in 0..g.num_hyperedges() as u32 {
            let hdeg = g.hyperedge_degree(HyperedgeId::new(h)).max(1) as f64;
            for &v in g.incidence(Side::Hyperedge, h) {
                let vdeg = g.vertex_degree(VertexId::new(v)).max(1) as f64;
                vv[v as usize] +=
                    (1.0 - damping) / (nv as f64 * vdeg) + damping * hv[h as usize] / hdeg;
            }
        }
    }
    vv
}

/// Connected-component labels: each vertex receives the minimum vertex id
/// of its component.
pub fn connected_components(g: &Hypergraph) -> Vec<f64> {
    let mut label = vec![f64::INFINITY; g.num_vertices()];
    for start in 0..g.num_vertices() as u32 {
        if label[start as usize].is_finite() {
            continue;
        }
        // BFS the component; `start` is its minimum id by scan order.
        let mut queue = VecDeque::from([start]);
        label[start as usize] = start as f64;
        let mut seen_h = vec![];
        let mut h_seen = std::collections::HashSet::new();
        while let Some(v) = queue.pop_front() {
            for &h in g.incidence(Side::Vertex, v) {
                if h_seen.insert(h) {
                    seen_h.push(h);
                    for &u in g.incidence(Side::Hyperedge, h) {
                        if label[u as usize].is_infinite() {
                            label[u as usize] = start as f64;
                            queue.push_back(u);
                        }
                    }
                }
            }
        }
    }
    label
}

/// How a claimed maximal independent set fails to be one — see
/// [`check_mis`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MisViolation {
    /// The status vector does not have one entry per vertex.
    WrongLength {
        /// Entries provided.
        got: usize,
        /// Vertices in the hypergraph.
        want: usize,
    },
    /// A vertex was left undecided.
    Undecided {
        /// The undecided vertex.
        vertex: u32,
    },
    /// Independence broken: a hyperedge contains two or more selected
    /// vertices.
    Dependent {
        /// The offending hyperedge.
        hyperedge: u32,
        /// How many of its members are selected.
        selected: usize,
    },
    /// Maximality broken: an excluded vertex shares no hyperedge with any
    /// selected vertex, so it could have been added.
    NotMaximal {
        /// The wrongly excluded vertex.
        vertex: u32,
    },
}

impl std::fmt::Display for MisViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MisViolation::WrongLength { got, want } => {
                write!(f, "{got} statuses for {want} vertices")
            }
            MisViolation::Undecided { vertex } => write!(f, "v{vertex} left undecided"),
            MisViolation::Dependent { hyperedge, selected } => {
                write!(f, "hyperedge h{hyperedge} contains {selected} selected vertices")
            }
            MisViolation::NotMaximal { vertex } => {
                write!(f, "excluded v{vertex} has no selected hyperedge-neighbor")
            }
        }
    }
}

impl std::error::Error for MisViolation {}

/// Checks that `statuses` is a valid maximal strong independent set of `g`:
/// no two selected vertices share a hyperedge, every vertex is decided, and
/// no excluded vertex could be added. Returns the first violation found.
pub fn check_mis(g: &Hypergraph, statuses: &[crate::MisStatus]) -> Result<(), MisViolation> {
    use crate::MisStatus;
    if statuses.len() != g.num_vertices() {
        return Err(MisViolation::WrongLength { got: statuses.len(), want: g.num_vertices() });
    }
    for (v, s) in statuses.iter().enumerate() {
        if *s == MisStatus::Undecided {
            return Err(MisViolation::Undecided { vertex: v as u32 });
        }
    }
    // Independence: no hyperedge contains two selected vertices.
    for h in 0..g.num_hyperedges() as u32 {
        let selected = g
            .incidence(Side::Hyperedge, h)
            .iter()
            .filter(|&&v| statuses[v as usize] == MisStatus::InSet)
            .count();
        if selected > 1 {
            return Err(MisViolation::Dependent { hyperedge: h, selected });
        }
    }
    // Maximality: every excluded vertex shares a hyperedge with a selected one.
    for v in 0..g.num_vertices() as u32 {
        if statuses[v as usize] != MisStatus::Excluded {
            continue;
        }
        let witnessed = g.incidence(Side::Vertex, v).iter().any(|&h| {
            g.incidence(Side::Hyperedge, h)
                .iter()
                .any(|&u| u != v && statuses[u as usize] == MisStatus::InSet)
        });
        if !witnessed {
            return Err(MisViolation::NotMaximal { vertex: v });
        }
    }
    Ok(())
}

/// Panics unless `statuses` is a valid maximal strong independent set of
/// `g` (see [`check_mis`]).
///
/// # Panics
///
/// Panics with a description of the violation.
pub fn assert_valid_mis(g: &Hypergraph, statuses: &[crate::MisStatus]) {
    if let Err(v) = check_mis(g, statuses) {
        panic!("{v}");
    }
}

/// k-core fixpoint by repeated global recomputation: returns per-vertex
/// alive flags. A vertex survives with >= `k` alive hyperedges; a hyperedge
/// survives with >= 2 alive vertices.
pub fn kcore(g: &Hypergraph, k: usize) -> Vec<bool> {
    let mut v_alive = vec![true; g.num_vertices()];
    let mut h_alive: Vec<bool> = (0..g.num_hyperedges())
        .map(|h| g.hyperedge_degree(HyperedgeId::from_index(h)) >= 2)
        .collect();
    loop {
        let mut changed = false;
        for v in 0..g.num_vertices() as u32 {
            if v_alive[v as usize] {
                let alive_deg =
                    g.incidence(Side::Vertex, v).iter().filter(|&&h| h_alive[h as usize]).count();
                if alive_deg < k {
                    v_alive[v as usize] = false;
                    changed = true;
                }
            }
        }
        for h in 0..g.num_hyperedges() as u32 {
            if h_alive[h as usize] {
                let alive_deg = g
                    .incidence(Side::Hyperedge, h)
                    .iter()
                    .filter(|&&v| v_alive[v as usize])
                    .count();
                if alive_deg < 2 {
                    h_alive[h as usize] = false;
                    changed = true;
                }
            }
        }
        if !changed {
            return v_alive;
        }
    }
}

/// Coreness of every vertex by textbook peeling with a rising threshold:
/// hyperedges die below two alive vertices; a vertex removed during the
/// `k`-threshold round has coreness `k - 1`.
pub fn coreness(g: &Hypergraph) -> Vec<usize> {
    let mut v_alive = vec![true; g.num_vertices()];
    let mut h_alive: Vec<bool> = (0..g.num_hyperedges())
        .map(|h| g.hyperedge_degree(HyperedgeId::from_index(h)) >= 2)
        .collect();
    let mut core = vec![usize::MAX; g.num_vertices()];
    let alive_vdeg = |v: u32, h_alive: &[bool]| {
        g.incidence(Side::Vertex, v).iter().filter(|&&h| h_alive[h as usize]).count()
    };
    for k in 0..=g.num_hyperedges().max(1) {
        loop {
            let mut changed = false;
            for v in 0..g.num_vertices() as u32 {
                if v_alive[v as usize] && alive_vdeg(v, &h_alive) < k {
                    v_alive[v as usize] = false;
                    core[v as usize] = k.saturating_sub(1);
                    changed = true;
                }
            }
            for h in 0..g.num_hyperedges() as u32 {
                if h_alive[h as usize] {
                    let n = g
                        .incidence(Side::Hyperedge, h)
                        .iter()
                        .filter(|&&v| v_alive[v as usize])
                        .count();
                    if n < 2 {
                        h_alive[h as usize] = false;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        if v_alive.iter().all(|&a| !a) {
            break;
        }
    }
    core
}

/// Brandes single-source betweenness on the bipartite graph: returns
/// `(vertex_deltas, hyperedge_deltas)`.
pub fn bc_single_source(g: &Hypergraph, source: VertexId) -> (Vec<f64>, Vec<f64>) {
    let nv = g.num_vertices();
    let nh = g.num_hyperedges();
    let n = nv + nh;
    let node = |side: Side, id: u32| match side {
        Side::Vertex => id as usize,
        Side::Hyperedge => nv + id as usize,
    };
    let side_of = |x: usize| {
        if x < nv {
            (Side::Vertex, x as u32)
        } else {
            (Side::Hyperedge, (x - nv) as u32)
        }
    };
    let mut dist = vec![i64::MAX; n];
    let mut sigma = vec![0.0f64; n];
    let mut order = Vec::with_capacity(n);
    let s = node(Side::Vertex, source.raw());
    dist[s] = 0;
    sigma[s] = 1.0;
    let mut queue = VecDeque::from([s]);
    while let Some(x) = queue.pop_front() {
        order.push(x);
        let (side, id) = side_of(x);
        for &nb in g.incidence(side, id) {
            let y = node(side.opposite(), nb);
            if dist[y] == i64::MAX {
                dist[y] = dist[x] + 1;
                queue.push_back(y);
            }
            if dist[y] == dist[x] + 1 {
                sigma[y] += sigma[x];
            }
        }
    }
    let mut delta = vec![0.0f64; n];
    for &x in order.iter().rev() {
        let (side, id) = side_of(x);
        for &nb in g.incidence(side, id) {
            let y = node(side.opposite(), nb);
            if dist[y] == dist[x] + 1 {
                delta[x] += sigma[x] / sigma[y] * (1.0 + delta[y]);
            }
        }
    }
    (delta[..nv].to_vec(), delta[nv..].to_vec())
}

/// Dijkstra with the [`Sssp`](crate::Sssp) hyperedge weights: returns
/// per-vertex distances.
pub fn sssp(g: &Hypergraph, source: VertexId) -> Vec<f64> {
    #[derive(PartialEq)]
    struct Item(f64, u32);
    impl Eq for Item {}
    impl PartialOrd for Item {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Item {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other.0.total_cmp(&self.0) // min-heap
        }
    }
    let mut dist = vec![f64::INFINITY; g.num_vertices()];
    dist[source.index()] = 0.0;
    let mut heap = BinaryHeap::from([Item(0.0, source.raw())]);
    while let Some(Item(d, v)) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        for &h in g.incidence(Side::Vertex, v) {
            let w = crate::Sssp::weight(HyperedgeId::new(h));
            for &u in g.incidence(Side::Hyperedge, h) {
                if d + w < dist[u as usize] {
                    dist[u as usize] = d + w;
                    heap.push(Item(d + w, u));
                }
            }
        }
    }
    dist
}

/// Dense adsorption reference matching [`Adsorption`](crate::Adsorption).
pub fn adsorption(
    g: &Hypergraph,
    injection: f64,
    continuation: f64,
    seed_stride: u32,
    iterations: usize,
) -> Vec<f64> {
    let nv = g.num_vertices();
    let prior: Vec<f64> =
        (0..nv as u32).map(|v| if v % seed_stride == 0 { 1.0 } else { 0.0 }).collect();
    let mut vv = prior.clone();
    let mut hv = vec![0.0; g.num_hyperedges()];
    for _ in 0..iterations {
        hv.fill(0.0);
        for v in 0..nv as u32 {
            let deg = g.vertex_degree(VertexId::new(v)).max(1) as f64;
            for &h in g.incidence(Side::Vertex, v) {
                hv[h as usize] += vv[v as usize] / deg;
            }
        }
        vv.fill(0.0);
        for h in 0..g.num_hyperedges() as u32 {
            let hdeg = g.hyperedge_degree(HyperedgeId::new(h)).max(1) as f64;
            for &v in g.incidence(Side::Hyperedge, h) {
                let vdeg = g.vertex_degree(VertexId::new(v)).max(1) as f64;
                vv[v as usize] +=
                    injection * prior[v as usize] / vdeg + continuation * hv[h as usize] / hdeg;
            }
        }
    }
    vv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_bfs_fig1() {
        let g = hypergraph::fig1_example();
        let (vd, hd) = bfs(&g, VertexId::new(0));
        assert_eq!(vd, vec![0.0, 4.0, 2.0, 4.0, 2.0, 4.0, 2.0]);
        assert_eq!(hd, vec![1.0, 3.0, 1.0, 5.0]);
    }

    #[test]
    fn reference_cc_fig1() {
        let g = hypergraph::fig1_example();
        assert!(connected_components(&g).iter().all(|&l| l == 0.0));
    }

    #[test]
    fn reference_kcore_monotone_in_k() {
        let g = hypergraph::generate::GeneratorConfig::new(200, 150).with_seed(1).generate();
        let c2 = kcore(&g, 2);
        let c3 = kcore(&g, 3);
        for v in 0..g.num_vertices() {
            assert!(!c3[v] || c2[v]);
        }
    }

    #[test]
    fn reference_bc_sums_are_positive_on_connected_inputs() {
        let g = hypergraph::fig1_example();
        let (vd, hd) = bc_single_source(&g, VertexId::new(0));
        assert!(vd.iter().chain(&hd).all(|&x| x >= 0.0));
        assert!(vd.iter().sum::<f64>() + hd.iter().sum::<f64>() > 0.0);
    }

    #[test]
    fn reference_sssp_source_is_zero() {
        let g = hypergraph::generate::two_uniform_graph(50, 150, 1);
        let d = sssp(&g, VertexId::new(0));
        assert_eq!(d[0], 0.0);
        assert!(d.iter().all(|&x| x >= 0.0));
    }
}
