//! Connected components.

use chgraph::{Algorithm, State, UpdateOutcome};
use hypergraph::{Frontier, Hypergraph};

/// Connected components by min-label propagation.
///
/// Every vertex starts labelled with its own id; hyperedges and vertices
/// repeatedly take the minimum label of their active incident elements
/// until a fixpoint. Two vertices end with the same label iff they are
/// connected through some sequence of shared hyperedges.
#[derive(Clone, Copy, Debug, Default)]
pub struct ConnectedComponents;

impl Algorithm for ConnectedComponents {
    fn name(&self) -> &'static str {
        "cc"
    }

    fn init(&self, g: &Hypergraph) -> (State, Frontier) {
        let mut state = State::filled(g, 0.0, f64::INFINITY);
        for (v, val) in state.vertex_value.iter_mut().enumerate() {
            *val = v as f64;
        }
        (state, Frontier::full(g.num_vertices()))
    }

    fn apply_hf(&self, _g: &Hypergraph, state: &mut State, v: u32, h: u32) -> UpdateOutcome {
        let cand = state.vertex_value[v as usize];
        if cand < state.hyperedge_value[h as usize] {
            state.hyperedge_value[h as usize] = cand;
            UpdateOutcome::WROTE_AND_ACTIVATED
        } else {
            UpdateOutcome::NONE
        }
    }

    fn apply_vf(&self, _g: &Hypergraph, state: &mut State, h: u32, v: u32) -> UpdateOutcome {
        let cand = state.hyperedge_value[h as usize];
        if cand < state.vertex_value[v as usize] {
            state.vertex_value[v as usize] = cand;
            UpdateOutcome::WROTE_AND_ACTIVATED
        } else {
            UpdateOutcome::NONE
        }
    }

    fn hf_compute_cycles(&self) -> u64 {
        3
    }

    fn vf_compute_cycles(&self) -> u64 {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use chgraph::{GlaRuntime, HygraRuntime, RunConfig, Runtime};

    #[test]
    fn fig1_is_one_component() {
        let g = hypergraph::fig1_example();
        let r = HygraRuntime.execute(&g, &ConnectedComponents, &RunConfig::new());
        assert!(r.state.vertex_value.iter().all(|&l| l == 0.0));
    }

    #[test]
    fn matches_reference_labels() {
        for seed in [3u64, 9] {
            let g = hypergraph::generate::GeneratorConfig::new(300, 120).with_seed(seed).generate();
            let r = HygraRuntime.execute(&g, &ConnectedComponents, &RunConfig::new());
            let want = reference::connected_components(&g);
            assert_eq!(r.state.vertex_value, want, "seed {seed}");
        }
    }

    #[test]
    fn disjoint_pieces_keep_distinct_labels() {
        use hypergraph::{HypergraphBuilder, VertexId};
        let mut b = HypergraphBuilder::new(6);
        b.add_hyperedge([0, 1, 2].map(VertexId::new)).unwrap();
        b.add_hyperedge([3, 4].map(VertexId::new)).unwrap();
        let g = b.build();
        let r = GlaRuntime.execute(&g, &ConnectedComponents, &RunConfig::new());
        assert_eq!(r.state.vertex_value[..3], [0.0, 0.0, 0.0]);
        assert_eq!(r.state.vertex_value[3..5], [3.0, 3.0]);
        assert_eq!(r.state.vertex_value[5], 5.0, "isolated vertex keeps its own label");
    }
}
