//! The evaluation's workload set and a uniform entry point.

use crate::{run_bc, Adsorption, Bfs, ConnectedComponents, CoreDecomposition, Mis, PageRank, Sssp};
use chgraph::{ExecutionReport, RunConfig, Runtime};
use hypergraph::{Hypergraph, VertexId};
use std::fmt;

/// The deterministic source vertex used by the traversal workloads: the
/// highest-degree vertex (ties broken by lowest id), so the traversal is
/// never a trivial no-op on an isolated vertex.
pub fn default_source(g: &Hypergraph) -> VertexId {
    let mut best = 0usize;
    for v in 1..g.num_vertices() {
        if g.vertex_degree(VertexId::from_index(v)) > g.vertex_degree(VertexId::from_index(best)) {
            best = v;
        }
    }
    VertexId::from_index(best)
}

/// The six hypergraph workloads of the paper's evaluation (§VI-A) plus the
/// two ordinary-graph workloads of the generality study (§VI-I).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Workload {
    /// Breadth-first search.
    Bfs,
    /// PageRank (10 iterations, all active).
    Pr,
    /// Maximal independent set.
    Mis,
    /// Betweenness centrality (single source, forward + backward).
    Bc,
    /// Connected components.
    Cc,
    /// k-core decomposition (full coreness computation).
    KCore,
    /// Weighted single-source shortest paths (generality study).
    Sssp,
    /// Adsorption label propagation (generality study).
    Adsorption,
}

impl Workload {
    /// The six hypergraph workloads, in the paper's presentation order.
    pub const HYPERGRAPH: [Workload; 6] = [
        Workload::Bfs,
        Workload::Pr,
        Workload::Mis,
        Workload::Bc,
        Workload::Cc,
        Workload::KCore,
    ];

    /// The two ordinary-graph workloads of Fig. 25.
    pub const GRAPH: [Workload; 2] = [Workload::Adsorption, Workload::Sssp];

    /// Short label as used in the paper's figures.
    pub fn abbrev(self) -> &'static str {
        match self {
            Workload::Bfs => "BFS",
            Workload::Pr => "PR",
            Workload::Mis => "MIS",
            Workload::Bc => "BC",
            Workload::Cc => "CC",
            Workload::KCore => "k-core",
            Workload::Sssp => "SSSP",
            Workload::Adsorption => "Adsorption",
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Executes `workload` on `g` under `runtime` with the standard parameters
/// of the evaluation (source vertex 0 for traversals, k = 3 for k-core,
/// 10 iterations for PR/Adsorption).
pub fn run_workload(
    workload: Workload,
    runtime: &dyn Runtime,
    g: &Hypergraph,
    cfg: &RunConfig,
) -> ExecutionReport {
    let source = default_source(g);
    match workload {
        Workload::Bfs => runtime.execute(g, &Bfs::new(source), cfg),
        Workload::Pr => runtime.execute(g, &PageRank::new(), cfg),
        Workload::Mis => runtime.execute(g, &Mis, cfg),
        Workload::Bc => run_bc(runtime, g, cfg, source),
        Workload::Cc => runtime.execute(g, &ConnectedComponents, cfg),
        Workload::KCore => runtime.execute(g, &CoreDecomposition::new(), cfg),
        Workload::Sssp => runtime.execute(g, &Sssp::new(source), cfg),
        Workload::Adsorption => runtime.execute(g, &Adsorption::new(), cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chgraph::HygraRuntime;

    #[test]
    fn every_workload_runs_on_fig1() {
        let g = hypergraph::fig1_example();
        let cfg = RunConfig::new();
        for w in Workload::HYPERGRAPH.into_iter().chain(Workload::GRAPH) {
            let r = run_workload(w, &HygraRuntime, &g, &cfg);
            assert!(r.cycles > 0, "{w}: zero cycles");
            assert!(r.iterations > 0, "{w}: zero iterations");
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Workload::KCore.to_string(), "k-core");
        assert_eq!(Workload::Pr.abbrev(), "PR");
        assert_eq!(Workload::HYPERGRAPH.len(), 6);
        assert_eq!(Workload::GRAPH.len(), 2);
    }
}
