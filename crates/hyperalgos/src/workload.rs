//! The evaluation's workload set and a uniform entry point.

use crate::{
    try_run_bc_prepared, Adsorption, Bfs, ConnectedComponents, CoreDecomposition, Mis, PageRank,
    Sssp,
};
use chgraph::{ExecError, ExecutionReport, PreparedOags, RunConfig, Runtime};
use hypergraph::{Hypergraph, VertexId};
use std::fmt;

/// The deterministic source vertex used by the traversal workloads: the
/// highest-degree vertex (ties broken by lowest id), so the traversal is
/// never a trivial no-op on an isolated vertex.
pub fn default_source(g: &Hypergraph) -> VertexId {
    let mut best = 0usize;
    for v in 1..g.num_vertices() {
        if g.vertex_degree(VertexId::from_index(v)) > g.vertex_degree(VertexId::from_index(best)) {
            best = v;
        }
    }
    VertexId::from_index(best)
}

/// The six hypergraph workloads of the paper's evaluation (§VI-A) plus the
/// two ordinary-graph workloads of the generality study (§VI-I).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Workload {
    /// Breadth-first search.
    Bfs,
    /// PageRank (10 iterations, all active).
    Pr,
    /// Maximal independent set.
    Mis,
    /// Betweenness centrality (single source, forward + backward).
    Bc,
    /// Connected components.
    Cc,
    /// k-core decomposition (full coreness computation).
    KCore,
    /// Weighted single-source shortest paths (generality study).
    Sssp,
    /// Adsorption label propagation (generality study).
    Adsorption,
}

impl Workload {
    /// The six hypergraph workloads, in the paper's presentation order.
    pub const HYPERGRAPH: [Workload; 6] =
        [Workload::Bfs, Workload::Pr, Workload::Mis, Workload::Bc, Workload::Cc, Workload::KCore];

    /// The two ordinary-graph workloads of Fig. 25.
    pub const GRAPH: [Workload; 2] = [Workload::Adsorption, Workload::Sssp];

    /// Short label as used in the paper's figures.
    pub fn abbrev(self) -> &'static str {
        match self {
            Workload::Bfs => "BFS",
            Workload::Pr => "PR",
            Workload::Mis => "MIS",
            Workload::Bc => "BC",
            Workload::Cc => "CC",
            Workload::KCore => "k-core",
            Workload::Sssp => "SSSP",
            Workload::Adsorption => "Adsorption",
        }
    }
}

impl fmt::Display for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Executes `workload` on `g` under `runtime` with the standard parameters
/// of the evaluation (source vertex 0 for traversals, k = 3 for k-core,
/// 10 iterations for PR/Adsorption).
pub fn run_workload(
    workload: Workload,
    runtime: &dyn Runtime,
    g: &Hypergraph,
    cfg: &RunConfig,
) -> ExecutionReport {
    run_workload_prepared(workload, runtime, g, cfg, None)
}

/// [`run_workload`] with optional pre-built OAG artifacts. Passing
/// `Some(prepared)` skips per-execution OAG construction for chain-driven
/// runtimes; the report is bit-identical either way (see
/// [`Runtime::execute_prepared`]).
pub fn run_workload_prepared(
    workload: Workload,
    runtime: &dyn Runtime,
    g: &Hypergraph,
    cfg: &RunConfig,
    prepared: Option<&PreparedOags>,
) -> ExecutionReport {
    try_run_workload_prepared(workload, runtime, g, cfg, prepared)
        .unwrap_or_else(|e| panic!("{}: {e}", runtime.name()))
}

/// Fallible [`run_workload`]: watchdog budgets and structural-validation
/// failures surface as a typed [`ExecError`] instead of a panic.
pub fn try_run_workload(
    workload: Workload,
    runtime: &dyn Runtime,
    g: &Hypergraph,
    cfg: &RunConfig,
) -> Result<ExecutionReport, ExecError> {
    try_run_workload_prepared(workload, runtime, g, cfg, None)
}

/// Fallible [`run_workload_prepared`].
pub fn try_run_workload_prepared(
    workload: Workload,
    runtime: &dyn Runtime,
    g: &Hypergraph,
    cfg: &RunConfig,
    prepared: Option<&PreparedOags>,
) -> Result<ExecutionReport, ExecError> {
    let source = default_source(g);
    match workload {
        Workload::Bfs => runtime.try_execute_prepared(g, &Bfs::new(source), cfg, prepared),
        Workload::Pr => runtime.try_execute_prepared(g, &PageRank::new(), cfg, prepared),
        Workload::Mis => runtime.try_execute_prepared(g, &Mis, cfg, prepared),
        Workload::Bc => try_run_bc_prepared(runtime, g, cfg, source, prepared),
        Workload::Cc => runtime.try_execute_prepared(g, &ConnectedComponents, cfg, prepared),
        Workload::KCore => {
            runtime.try_execute_prepared(g, &CoreDecomposition::new(), cfg, prepared)
        }
        Workload::Sssp => runtime.try_execute_prepared(g, &Sssp::new(source), cfg, prepared),
        Workload::Adsorption => runtime.try_execute_prepared(g, &Adsorption::new(), cfg, prepared),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chgraph::HygraRuntime;

    #[test]
    fn every_workload_runs_on_fig1() {
        let g = hypergraph::fig1_example();
        let cfg = RunConfig::new();
        for w in Workload::HYPERGRAPH.into_iter().chain(Workload::GRAPH) {
            let r = run_workload(w, &HygraRuntime, &g, &cfg);
            assert!(r.cycles > 0, "{w}: zero cycles");
            assert!(r.iterations > 0, "{w}: zero iterations");
        }
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Workload::KCore.to_string(), "k-core");
        assert_eq!(Workload::Pr.abbrev(), "PR");
        assert_eq!(Workload::HYPERGRAPH.len(), 6);
        assert_eq!(Workload::GRAPH.len(), 2);
    }
}
