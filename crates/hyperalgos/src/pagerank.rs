//! PageRank — the paper's own formulation.

use chgraph::{Algorithm, State, UpdateOutcome};
use hypergraph::{Frontier, HyperedgeId, Hypergraph, VertexId};

/// Hypergraph PageRank, exactly as the paper's Algorithm 1 (lines 15–21):
///
/// - `HF(v, h)`: `hyperedge_value\[h\] += vertex_value\[v\] / deg(v)`;
/// - `VF(h, v)`: `vertex_value\[v\] += (1 - d) / (|V| * deg(v))
///   + d * hyperedge_value\[h\] / deg(h)`
///
/// where the per-edge addend sums to the usual `(1 - d) / |V|` base term
/// over a vertex's `deg(v)` incident hyperedges. All elements are active in
/// every iteration; the evaluation runs 10 iterations (§VI-A).
#[derive(Clone, Copy, Debug)]
pub struct PageRank {
    /// Damping factor (the paper's α/ω).
    pub damping: f64,
    /// Number of iterations (paper: 10).
    pub iterations: usize,
}

impl PageRank {
    /// PageRank with damping 0.85 and the paper's 10 iterations.
    pub fn new() -> Self {
        PageRank { damping: 0.85, iterations: 10 }
    }

    /// Overrides the iteration count.
    pub fn with_iterations(mut self, n: usize) -> Self {
        self.iterations = n;
        self
    }
}

impl Default for PageRank {
    fn default() -> Self {
        PageRank::new()
    }
}

impl Algorithm for PageRank {
    fn name(&self) -> &'static str {
        "pr"
    }

    fn init(&self, g: &Hypergraph) -> (State, Frontier) {
        let state = State::filled(g, 1.0 / g.num_vertices() as f64, 0.0);
        (state, Frontier::full(g.num_vertices()))
    }

    fn begin_iteration(&self, _g: &Hypergraph, state: &mut State, _iteration: usize) {
        state.hyperedge_value.fill(0.0);
    }

    fn begin_vertex_phase(&self, _g: &Hypergraph, state: &mut State, _iteration: usize) {
        state.vertex_value.fill(0.0);
    }

    fn apply_hf(&self, g: &Hypergraph, state: &mut State, v: u32, h: u32) -> UpdateOutcome {
        let deg = g.vertex_degree(VertexId::new(v)).max(1) as f64;
        state.hyperedge_value[h as usize] += state.vertex_value[v as usize] / deg;
        UpdateOutcome::WROTE_AND_ACTIVATED
    }

    fn apply_vf(&self, g: &Hypergraph, state: &mut State, h: u32, v: u32) -> UpdateOutcome {
        let vdeg = g.vertex_degree(VertexId::new(v)).max(1) as f64;
        let hdeg = g.hyperedge_degree(HyperedgeId::new(h)).max(1) as f64;
        let addend = (1.0 - self.damping) / (g.num_vertices() as f64 * vdeg);
        state.vertex_value[v as usize] +=
            addend + self.damping * state.hyperedge_value[h as usize] / hdeg;
        UpdateOutcome::WROTE_AND_ACTIVATED
    }

    fn max_iterations(&self) -> usize {
        self.iterations
    }

    fn all_active(&self) -> bool {
        true
    }

    fn hf_compute_cycles(&self) -> u64 {
        6
    }

    fn vf_compute_cycles(&self) -> u64 {
        10
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use chgraph::{ChGraphRuntime, HygraRuntime, RunConfig, Runtime};

    fn close(a: &[f64], b: &[f64], tol: f64) -> bool {
        a.len() == b.len()
            && a.iter().zip(b).all(|(x, y)| (x - y).abs() <= tol * x.abs().max(1e-12).max(y.abs()))
    }

    #[test]
    fn matches_reference() {
        let g = hypergraph::generate::GeneratorConfig::new(300, 200).with_seed(5).generate();
        let pr = PageRank::new().with_iterations(5);
        let r = HygraRuntime.execute(&g, &pr, &RunConfig::new());
        let want = reference::pagerank(&g, 0.85, 5);
        assert!(close(&r.state.vertex_value, &want, 1e-9), "simulated PR diverges from reference");
    }

    #[test]
    fn mass_is_conserved_approximately() {
        let g = hypergraph::generate::GeneratorConfig::new(400, 300).with_seed(6).generate();
        let r = HygraRuntime.execute(&g, &PageRank::new(), &RunConfig::new());
        let total: f64 = r.state.vertex_value.iter().sum();
        // Vertices with no incident hyperedges leak mass; total stays within
        // (0, 1].
        assert!(total > 0.1 && total <= 1.0 + 1e-9, "total rank {total}");
        assert_eq!(r.iterations, 10);
    }

    #[test]
    fn runtimes_agree_within_float_tolerance() {
        let g = hypergraph::generate::GeneratorConfig::new(300, 220).with_seed(7).generate();
        let pr = PageRank::new().with_iterations(4);
        let cfg = RunConfig::new();
        let a = HygraRuntime.execute(&g, &pr, &cfg);
        let b = ChGraphRuntime::new().execute(&g, &pr, &cfg);
        // Different schedules sum in different orders: equality up to
        // floating-point associativity.
        assert!(close(&a.state.vertex_value, &b.state.vertex_value, 1e-9));
    }

    #[test]
    fn higher_degree_vertices_get_more_rank_than_isolated() {
        let g = hypergraph::fig1_example();
        let r = HygraRuntime.execute(&g, &PageRank::new(), &RunConfig::new());
        // Every vertex of fig1 is incident to something; ranks positive.
        assert!(r.state.vertex_value.iter().all(|&x| x > 0.0));
    }
}
