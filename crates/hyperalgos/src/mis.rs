//! Maximal independent set.

use chgraph::{Algorithm, State, UpdateOutcome};
use hypergraph::{Frontier, Hypergraph, Side};

/// Decision state of a vertex in the MIS computation, encoded in
/// `vertex_aux`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MisStatus {
    /// Not yet decided.
    Undecided,
    /// Selected into the independent set.
    InSet,
    /// Excluded (shares a hyperedge with a selected vertex).
    Excluded,
}

impl MisStatus {
    /// Decodes the `vertex_aux` encoding.
    pub fn from_aux(aux: f64) -> MisStatus {
        match aux as i64 {
            1 => MisStatus::InSet,
            2 => MisStatus::Excluded,
            _ => MisStatus::Undecided,
        }
    }
}

/// Maximal independent set on a hypergraph: no two selected vertices share
/// a hyperedge (strong independence), and no unselected vertex can be added.
///
/// Greedy-by-id rounds: each round, every undecided vertex publishes its id
/// to its incident hyperedges (`HF`, min); a vertex whose id equals the
/// minimum over *all* its incident hyperedges joins the set; its hyperedge
/// neighbors are excluded. Selection/exclusion bookkeeping runs in the
/// `end_iteration` hook identically for every runtime.
#[derive(Clone, Copy, Debug, Default)]
pub struct Mis;

impl Mis {
    /// Decoded per-vertex statuses from a finished state.
    pub fn statuses(state: &State) -> Vec<MisStatus> {
        state.vertex_aux.iter().map(|&a| MisStatus::from_aux(a)).collect()
    }
}

impl Algorithm for Mis {
    fn name(&self) -> &'static str {
        "mis"
    }

    fn init(&self, g: &Hypergraph) -> (State, Frontier) {
        // vertex_value: per-round min accumulator; hyperedge_value: per-round
        // min of undecided incident vertex ids; vertex_aux: MisStatus.
        let mut state = State::filled_with_aux(g, f64::INFINITY, f64::INFINITY, 0.0, 0.0);
        // Vertices with no incident hyperedges join trivially (maximality);
        // they can never conflict with anything.
        for v in 0..g.num_vertices() {
            if g.vertex_degree(hypergraph::VertexId::from_index(v)) == 0 {
                state.vertex_aux[v] = 1.0;
            }
        }
        (state, Frontier::full(g.num_vertices()))
    }

    fn begin_iteration(&self, _g: &Hypergraph, state: &mut State, _iteration: usize) {
        state.hyperedge_value.fill(f64::INFINITY);
        state.vertex_value.fill(f64::INFINITY);
    }

    fn apply_hf(&self, _g: &Hypergraph, state: &mut State, v: u32, h: u32) -> UpdateOutcome {
        if MisStatus::from_aux(state.vertex_aux[v as usize]) != MisStatus::Undecided {
            return UpdateOutcome::NONE;
        }
        let cand = v as f64;
        if cand < state.hyperedge_value[h as usize] {
            state.hyperedge_value[h as usize] = cand;
            UpdateOutcome::WROTE_AND_ACTIVATED
        } else {
            // The hyperedge still participates in the round even when this
            // vertex is not its minimum.
            UpdateOutcome { wrote: false, activated: true }
        }
    }

    fn apply_vf(&self, _g: &Hypergraph, state: &mut State, h: u32, v: u32) -> UpdateOutcome {
        if MisStatus::from_aux(state.vertex_aux[v as usize]) != MisStatus::Undecided {
            return UpdateOutcome::NONE;
        }
        let cand = state.hyperedge_value[h as usize];
        if cand < state.vertex_value[v as usize] {
            state.vertex_value[v as usize] = cand;
            UpdateOutcome::WROTE_AND_ACTIVATED
        } else {
            UpdateOutcome { wrote: false, activated: true }
        }
    }

    fn end_iteration(
        &self,
        g: &Hypergraph,
        state: &mut State,
        next_vertices: &mut Frontier,
        _iteration: usize,
    ) {
        // A vertex joins iff it is the minimum undecided id in every
        // incident hyperedge it shares with an undecided vertex:
        // vertex_value accumulated min over incident hyperedges' minima,
        // all of which are <= v; equality to v means v is min everywhere.
        let joined: Vec<u32> = next_vertices
            .iter()
            .filter(|&v| {
                MisStatus::from_aux(state.vertex_aux[v as usize]) == MisStatus::Undecided
                    && state.vertex_value[v as usize] == v as f64
            })
            .collect();
        for &v in &joined {
            state.vertex_aux[v as usize] = 1.0;
            for &h in g.incidence(Side::Vertex, v) {
                for &u in g.incidence(Side::Hyperedge, h) {
                    if MisStatus::from_aux(state.vertex_aux[u as usize]) == MisStatus::Undecided {
                        state.vertex_aux[u as usize] = 2.0;
                    }
                }
            }
        }
        // Next round: only still-undecided vertices stay active.
        let undecided: Vec<u32> = next_vertices
            .iter()
            .filter(|&v| MisStatus::from_aux(state.vertex_aux[v as usize]) == MisStatus::Undecided)
            .collect();
        next_vertices.clear();
        next_vertices.extend(undecided);
    }

    fn hf_compute_cycles(&self) -> u64 {
        4
    }

    fn vf_compute_cycles(&self) -> u64 {
        4
    }

    fn max_iterations(&self) -> usize {
        10_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use chgraph::{ChGraphRuntime, HygraRuntime, RunConfig, Runtime};

    #[test]
    fn fig1_mis_is_valid_and_greedy() {
        let g = hypergraph::fig1_example();
        let r = HygraRuntime.execute(&g, &Mis, &RunConfig::new());
        let statuses = Mis::statuses(&r.state);
        reference::assert_valid_mis(&g, &statuses);
        // Greedy by id: v0 joins first; v2/v4/v6 excluded (share h0/h2);
        // v1 joins next; v3/v5 excluded (share h1/h3).
        assert_eq!(statuses[0], MisStatus::InSet);
        assert_eq!(statuses[1], MisStatus::InSet);
        for v in [2usize, 3, 4, 5, 6] {
            assert_eq!(statuses[v], MisStatus::Excluded, "v{v}");
        }
    }

    #[test]
    fn random_inputs_yield_valid_maximal_sets() {
        for seed in [2u64, 11, 23] {
            let g = hypergraph::generate::GeneratorConfig::new(300, 150).with_seed(seed).generate();
            let r = HygraRuntime.execute(&g, &Mis, &RunConfig::new());
            reference::assert_valid_mis(&g, &Mis::statuses(&r.state));
        }
    }

    #[test]
    fn runtimes_agree() {
        let g = hypergraph::generate::GeneratorConfig::new(250, 120).with_seed(4).generate();
        let cfg = RunConfig::new();
        let a = HygraRuntime.execute(&g, &Mis, &cfg);
        let b = ChGraphRuntime::new().execute(&g, &Mis, &cfg);
        assert_eq!(a.state.vertex_aux, b.state.vertex_aux);
    }

    #[test]
    fn status_decoding() {
        assert_eq!(MisStatus::from_aux(0.0), MisStatus::Undecided);
        assert_eq!(MisStatus::from_aux(1.0), MisStatus::InSet);
        assert_eq!(MisStatus::from_aux(2.0), MisStatus::Excluded);
    }
}
