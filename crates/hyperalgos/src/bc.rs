//! Single-source betweenness centrality (Brandes on the bipartite graph).
//!
//! Following HyperBC-style formulations, centrality is computed on the
//! bipartite representation: both vertices and hyperedges are nodes, edges
//! are the bipartite incidences, and the dependency of the source on every
//! node is accumulated with Brandes' backward recurrence
//!
//! ```text
//! delta(u) = sum over successors x of  sigma(u)/sigma(x) * (1 + delta(x))
//! ```
//!
//! The computation is two chained executions — [`BcForward`] (BFS with
//! shortest-path counting) and [`BcBackward`] (level-synchronous dependency
//! accumulation) — composed by [`run_bc`].

use chgraph::{Algorithm, ExecError, ExecutionReport, RunConfig, Runtime, State, UpdateOutcome};
use hypergraph::{Frontier, Hypergraph, VertexId};
use std::cell::Cell;

/// Forward pass: BFS distances (bipartite hops) and shortest-path counts.
///
/// `vertex_value`/`hyperedge_value` hold distances; `vertex_aux`/
/// `hyperedge_aux` hold path counts σ. Path counts are integers stored in
/// `f64` (exact up to 2^53), and every same-level accumulation is a sum of
/// such integers, so results are schedule-independent bit-for-bit.
#[derive(Clone, Copy, Debug)]
pub struct BcForward {
    /// The source vertex.
    pub source: VertexId,
}

impl Algorithm for BcForward {
    fn name(&self) -> &'static str {
        "bc-forward"
    }

    fn init(&self, g: &Hypergraph) -> (State, Frontier) {
        let mut state = State::filled_with_aux(g, f64::INFINITY, f64::INFINITY, 0.0, 0.0);
        state.vertex_value[self.source.index()] = 0.0;
        state.vertex_aux[self.source.index()] = 1.0;
        (state, Frontier::from_iter(g.num_vertices(), [self.source.raw()]))
    }

    fn apply_hf(&self, _g: &Hypergraph, state: &mut State, v: u32, h: u32) -> UpdateOutcome {
        let cand = state.vertex_value[v as usize] + 1.0;
        let cur = state.hyperedge_value[h as usize];
        if cand < cur {
            state.hyperedge_value[h as usize] = cand;
            state.hyperedge_aux[h as usize] = state.vertex_aux[v as usize];
            UpdateOutcome::WROTE_AND_ACTIVATED
        } else if cand == cur {
            state.hyperedge_aux[h as usize] += state.vertex_aux[v as usize];
            UpdateOutcome::WROTE_AND_ACTIVATED
        } else {
            UpdateOutcome::NONE
        }
    }

    fn apply_vf(&self, _g: &Hypergraph, state: &mut State, h: u32, v: u32) -> UpdateOutcome {
        let cand = state.hyperedge_value[h as usize] + 1.0;
        let cur = state.vertex_value[v as usize];
        if cand < cur {
            state.vertex_value[v as usize] = cand;
            state.vertex_aux[v as usize] = state.hyperedge_aux[h as usize];
            UpdateOutcome::WROTE_AND_ACTIVATED
        } else if cand == cur {
            state.vertex_aux[v as usize] += state.hyperedge_aux[h as usize];
            UpdateOutcome::WROTE_AND_ACTIVATED
        } else {
            UpdateOutcome::NONE
        }
    }

    fn hf_compute_cycles(&self) -> u64 {
        5
    }

    fn vf_compute_cycles(&self) -> u64 {
        5
    }
}

/// Backward pass: level-synchronous dependency accumulation.
///
/// `vertex_value`/`hyperedge_value` hold the dependencies δ. Iteration `i`
/// pushes from vertices at bipartite level `L_max - 2i` to their
/// predecessor hyperedges and on to predecessor vertices; frontiers are
/// rewritten per level in `end_iteration` (identically for every runtime).
#[derive(Clone, Debug)]
pub struct BcBackward {
    vdist: Vec<f64>,
    hdist: Vec<f64>,
    vsigma: Vec<f64>,
    hsigma: Vec<f64>,
    max_level: f64,
    current_level: Cell<f64>,
}

impl BcBackward {
    /// Seeds the dependencies of *childless* hyperedges (reachable
    /// hyperedges with no deeper vertex successor): their `delta` is zero,
    /// so their `sigma_v / sigma_h * 1` contribution to each predecessor
    /// vertex is folded into the initial vertex dependencies. Every other
    /// hyperedge is activated by its successor wave during execution.
    fn seed_vertex_deltas(&self, g: &Hypergraph) -> Vec<f64> {
        let mut delta = vec![0.0; g.num_vertices()];
        for h in 0..g.num_hyperedges() as u32 {
            let dh = self.hdist[h as usize];
            if !dh.is_finite() {
                continue;
            }
            let vs = g.incidence(hypergraph::Side::Hyperedge, h);
            let childless = !vs.iter().any(|&v| self.vdist[v as usize] == dh + 1.0);
            if !childless {
                continue;
            }
            for &v in vs {
                if self.vdist[v as usize] == dh - 1.0 {
                    delta[v as usize] += self.vsigma[v as usize] / self.hsigma[h as usize];
                }
            }
        }
        delta
    }
}

impl BcBackward {
    /// Builds the backward pass from a finished forward state.
    pub fn from_forward(forward: &State) -> Self {
        let max_level =
            forward.vertex_value.iter().copied().filter(|d| d.is_finite()).fold(0.0f64, f64::max);
        BcBackward {
            vdist: forward.vertex_value.clone(),
            hdist: forward.hyperedge_value.clone(),
            vsigma: forward.vertex_aux.clone(),
            hsigma: forward.hyperedge_aux.clone(),
            max_level,
            current_level: Cell::new(0.0),
        }
    }

    fn vertices_at(&self, level: f64) -> impl Iterator<Item = u32> + '_ {
        self.vdist.iter().enumerate().filter(move |(_, &d)| d == level).map(|(v, _)| v as u32)
    }
}

impl Algorithm for BcBackward {
    fn name(&self) -> &'static str {
        "bc-backward"
    }

    fn init(&self, g: &Hypergraph) -> (State, Frontier) {
        let mut state = State::filled(g, 0.0, 0.0);
        state.vertex_value = self.seed_vertex_deltas(g);
        self.current_level.set(self.max_level);
        (state, Frontier::from_iter(g.num_vertices(), self.vertices_at(self.max_level)))
    }

    fn begin_iteration(&self, _g: &Hypergraph, _state: &mut State, iteration: usize) {
        self.current_level.set(self.max_level - 2.0 * iteration as f64);
    }

    fn apply_hf(&self, _g: &Hypergraph, state: &mut State, v: u32, h: u32) -> UpdateOutcome {
        // v (level L) pushes to its predecessor hyperedges (level L - 1).
        if self.hdist[h as usize] != self.vdist[v as usize] - 1.0 {
            return UpdateOutcome::NONE;
        }
        let contrib = self.hsigma[h as usize] / self.vsigma[v as usize]
            * (1.0 + state.vertex_value[v as usize]);
        state.hyperedge_value[h as usize] += contrib;
        UpdateOutcome::WROTE_AND_ACTIVATED
    }

    fn apply_vf(&self, _g: &Hypergraph, state: &mut State, h: u32, v: u32) -> UpdateOutcome {
        // h (level L - 1) pushes to its predecessor vertices (level L - 2).
        if self.vdist[v as usize] != self.hdist[h as usize] - 1.0 {
            return UpdateOutcome::NONE;
        }
        let contrib = self.vsigma[v as usize] / self.hsigma[h as usize]
            * (1.0 + state.hyperedge_value[h as usize]);
        state.vertex_value[v as usize] += contrib;
        UpdateOutcome::WROTE_AND_ACTIVATED
    }

    fn end_iteration(
        &self,
        _g: &Hypergraph,
        _state: &mut State,
        next_vertices: &mut Frontier,
        iteration: usize,
    ) {
        // The next wave is exactly the vertices two levels down, regardless
        // of which of them received contributions (leaf branches must still
        // push their own 1 + delta).
        let next_level = self.max_level - 2.0 * (iteration as f64 + 1.0);
        next_vertices.clear();
        if next_level >= 1.0 {
            next_vertices.extend(self.vertices_at(next_level));
        }
    }

    fn hf_compute_cycles(&self) -> u64 {
        8
    }

    fn vf_compute_cycles(&self) -> u64 {
        8
    }
}

/// Runs single-source betweenness centrality under `runtime`: the forward
/// pass, then the backward pass, returning a merged report whose state holds
/// the dependencies (δ in the value arrays, forward σ untouched in the
/// backward state's aux — empty).
pub fn run_bc(
    runtime: &dyn Runtime,
    g: &Hypergraph,
    cfg: &RunConfig,
    source: VertexId,
) -> ExecutionReport {
    run_bc_prepared(runtime, g, cfg, source, None)
}

/// [`run_bc`] with optional pre-built OAG artifacts shared by both passes.
///
/// # Panics
///
/// Panics with the [`ExecError`] message if either pass fails; use
/// [`try_run_bc_prepared`] to keep failures typed.
pub fn run_bc_prepared(
    runtime: &dyn Runtime,
    g: &Hypergraph,
    cfg: &RunConfig,
    source: VertexId,
    prepared: Option<&chgraph::PreparedOags>,
) -> ExecutionReport {
    try_run_bc_prepared(runtime, g, cfg, source, prepared)
        .unwrap_or_else(|e| panic!("{}: {e}", runtime.name()))
}

/// Fallible [`run_bc_prepared`]: watchdog budgets and validation failures in
/// either pass surface as a typed [`ExecError`] instead of a panic.
pub fn try_run_bc_prepared(
    runtime: &dyn Runtime,
    g: &Hypergraph,
    cfg: &RunConfig,
    source: VertexId,
    prepared: Option<&chgraph::PreparedOags>,
) -> Result<ExecutionReport, ExecError> {
    let forward = runtime.try_execute_prepared(g, &BcForward { source }, cfg, prepared)?;
    let backward_algo = BcBackward::from_forward(&forward.state);
    let mut backward = runtime.try_execute_prepared(g, &backward_algo, cfg, prepared)?;
    backward.algorithm = "bc";
    backward.cycles += forward.cycles;
    backward.core_busy_cycles += forward.core_busy_cycles;
    backward.mem_stall_cycles += forward.mem_stall_cycles;
    backward.iterations += forward.iterations;
    backward.mem.merge(&forward.mem);
    if let (Some(b), Some(f)) = (backward.engine.as_mut(), forward.engine.as_ref()) {
        b.hcg_cycles += f.hcg_cycles;
        b.cp_cycles += f.cp_cycles;
        b.tuples_delivered += f.tuples_delivered;
        b.chains_generated += f.chains_generated;
        b.fifo_full_stalls += f.fifo_full_stalls;
        b.fifo_empty_stalls += f.fifo_empty_stalls;
    }
    Ok(backward)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use chgraph::{ChGraphRuntime, HygraRuntime, RunConfig};

    fn close(a: &[f64], b: &[f64]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9)
    }

    #[test]
    fn forward_counts_paths_on_fig1() {
        let g = hypergraph::fig1_example();
        let r =
            HygraRuntime.execute(&g, &BcForward { source: VertexId::new(0) }, &RunConfig::new());
        // v0 -> {h0, h2}; v4 is in both: two shortest paths.
        assert_eq!(r.state.vertex_aux[4], 2.0);
        assert_eq!(r.state.vertex_aux[6], 1.0); // only via h0
        assert_eq!(r.state.vertex_aux[2], 1.0); // only via h2
    }

    #[test]
    fn bc_matches_reference_brandes() {
        for seed in [1u64, 8, 21] {
            let g = hypergraph::generate::GeneratorConfig::new(150, 90).with_seed(seed).generate();
            let r = run_bc(&HygraRuntime, &g, &RunConfig::new(), VertexId::new(0));
            let (vd, hd) = reference::bc_single_source(&g, VertexId::new(0));
            assert!(close(&r.state.vertex_value, &vd), "vertex deltas diverge (seed {seed})");
            assert!(close(&r.state.hyperedge_value, &hd), "hyperedge deltas diverge (seed {seed})");
        }
    }

    #[test]
    fn runtimes_agree_on_bc() {
        let g = hypergraph::generate::GeneratorConfig::new(200, 120).with_seed(3).generate();
        let cfg = RunConfig::new();
        let a = run_bc(&HygraRuntime, &g, &cfg, VertexId::new(0));
        let b = run_bc(&ChGraphRuntime::new(), &g, &cfg, VertexId::new(0));
        assert!(close(&a.state.vertex_value, &b.state.vertex_value));
        assert_eq!(a.algorithm, "bc");
        assert!(b.engine.is_some());
    }

    #[test]
    fn unreachable_parts_have_zero_dependency() {
        use hypergraph::HypergraphBuilder;
        let mut b = HypergraphBuilder::new(5);
        b.add_hyperedge([0, 1].map(VertexId::new)).unwrap();
        b.add_hyperedge([2, 3, 4].map(VertexId::new)).unwrap();
        let g = b.build();
        let r = run_bc(&HygraRuntime, &g, &RunConfig::new(), VertexId::new(0));
        assert_eq!(r.state.vertex_value[2], 0.0);
        assert_eq!(r.state.hyperedge_value[1], 0.0);
    }
}
