//! Single-source shortest paths (weighted, Bellman-Ford style).

use chgraph::{Algorithm, State, UpdateOutcome};
use hypergraph::{Frontier, HyperedgeId, Hypergraph, VertexId};

/// Single-source shortest paths with per-hyperedge weights.
///
/// Traversing a hyperedge `h` costs [`Sssp::weight`]; the distance of a
/// vertex is the cheapest sequence of hyperedge traversals from the source.
/// On 2-uniform hypergraphs this is ordinary weighted SSSP — the
/// generality-study configuration of the paper's §VI-I.
///
/// Synchronous Bellman-Ford: each iteration relaxes the frontier of
/// improved elements until a fixpoint.
#[derive(Clone, Copy, Debug)]
pub struct Sssp {
    /// The source vertex.
    pub source: VertexId,
}

impl Sssp {
    /// SSSP from vertex `source`.
    pub fn new(source: VertexId) -> Self {
        Sssp { source }
    }

    /// The deterministic weight of hyperedge `h`: `1 + (h mod 4)`.
    pub fn weight(h: HyperedgeId) -> f64 {
        1.0 + (h.raw() % 4) as f64
    }
}

impl Default for Sssp {
    fn default() -> Self {
        Sssp::new(VertexId::new(0))
    }
}

impl Algorithm for Sssp {
    fn name(&self) -> &'static str {
        "sssp"
    }

    fn init(&self, g: &Hypergraph) -> (State, Frontier) {
        let mut state = State::filled(g, f64::INFINITY, f64::INFINITY);
        state.vertex_value[self.source.index()] = 0.0;
        (state, Frontier::from_iter(g.num_vertices(), [self.source.raw()]))
    }

    fn apply_hf(&self, _g: &Hypergraph, state: &mut State, v: u32, h: u32) -> UpdateOutcome {
        // Entering the hyperedge from an improved vertex.
        let cand = state.vertex_value[v as usize];
        if cand < state.hyperedge_value[h as usize] {
            state.hyperedge_value[h as usize] = cand;
            UpdateOutcome::WROTE_AND_ACTIVATED
        } else {
            UpdateOutcome::NONE
        }
    }

    fn apply_vf(&self, _g: &Hypergraph, state: &mut State, h: u32, v: u32) -> UpdateOutcome {
        // Leaving the hyperedge costs its weight.
        let cand = state.hyperedge_value[h as usize] + Sssp::weight(HyperedgeId::new(h));
        if cand < state.vertex_value[v as usize] {
            state.vertex_value[v as usize] = cand;
            UpdateOutcome::WROTE_AND_ACTIVATED
        } else {
            UpdateOutcome::NONE
        }
    }

    fn hf_compute_cycles(&self) -> u64 {
        4
    }

    fn vf_compute_cycles(&self) -> u64 {
        5
    }

    fn max_iterations(&self) -> usize {
        10_000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use chgraph::{ChGraphRuntime, HygraRuntime, RunConfig, Runtime};
    use hypergraph::generate::two_uniform_graph;

    #[test]
    fn matches_dijkstra_on_graphs() {
        for seed in [4u64, 13] {
            let g = two_uniform_graph(200, 600, seed);
            let r = HygraRuntime.execute(&g, &Sssp::default(), &RunConfig::new());
            let want = reference::sssp(&g, VertexId::new(0));
            assert_eq!(r.state.vertex_value, want, "seed {seed}");
        }
    }

    #[test]
    fn matches_dijkstra_on_hypergraphs() {
        let g = hypergraph::generate::GeneratorConfig::new(300, 200).with_seed(6).generate();
        let r = HygraRuntime.execute(&g, &Sssp::default(), &RunConfig::new());
        assert_eq!(r.state.vertex_value, reference::sssp(&g, VertexId::new(0)));
    }

    #[test]
    fn runtimes_agree() {
        let g = two_uniform_graph(150, 500, 3);
        let cfg = RunConfig::new();
        let a = HygraRuntime.execute(&g, &Sssp::default(), &cfg);
        let b = ChGraphRuntime::new().execute(&g, &Sssp::default(), &cfg);
        assert_eq!(a.state.vertex_value, b.state.vertex_value);
    }

    #[test]
    fn weights_are_in_declared_range() {
        for h in 0..16u32 {
            let w = Sssp::weight(HyperedgeId::new(h));
            assert!((1.0..=4.0).contains(&w));
        }
        assert_eq!(Sssp::weight(HyperedgeId::new(5)), 2.0);
    }
}
