//! Breadth-first search.

use chgraph::{Algorithm, State, UpdateOutcome};
use hypergraph::{Frontier, Hypergraph, VertexId};

/// Breadth-first search from a source vertex.
///
/// Distances are measured in **bipartite hops**: the source is 0, its
/// incident hyperedges 1, their incident vertices 2, and so on — so vertex
/// distances are even and hyperedge distances odd. (Divide vertex distances
/// by two for "hyperedge hops".) Unreached elements keep `f64::INFINITY`.
#[derive(Clone, Copy, Debug)]
pub struct Bfs {
    /// The source vertex.
    pub source: VertexId,
}

impl Bfs {
    /// BFS from vertex `source`.
    pub fn new(source: VertexId) -> Self {
        Bfs { source }
    }
}

impl Default for Bfs {
    fn default() -> Self {
        Bfs::new(VertexId::new(0))
    }
}

impl Algorithm for Bfs {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn init(&self, g: &Hypergraph) -> (State, Frontier) {
        let mut state = State::filled(g, f64::INFINITY, f64::INFINITY);
        state.vertex_value[self.source.index()] = 0.0;
        (state, Frontier::from_iter(g.num_vertices(), [self.source.raw()]))
    }

    fn apply_hf(&self, _g: &Hypergraph, state: &mut State, v: u32, h: u32) -> UpdateOutcome {
        let cand = state.vertex_value[v as usize] + 1.0;
        if cand < state.hyperedge_value[h as usize] {
            state.hyperedge_value[h as usize] = cand;
            UpdateOutcome::WROTE_AND_ACTIVATED
        } else {
            UpdateOutcome::NONE
        }
    }

    fn apply_vf(&self, _g: &Hypergraph, state: &mut State, h: u32, v: u32) -> UpdateOutcome {
        let cand = state.hyperedge_value[h as usize] + 1.0;
        if cand < state.vertex_value[v as usize] {
            state.vertex_value[v as usize] = cand;
            UpdateOutcome::WROTE_AND_ACTIVATED
        } else {
            UpdateOutcome::NONE
        }
    }

    fn hf_compute_cycles(&self) -> u64 {
        3
    }

    fn vf_compute_cycles(&self) -> u64 {
        3
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use chgraph::{HygraRuntime, RunConfig, Runtime};

    #[test]
    fn fig1_distances() {
        let g = hypergraph::fig1_example();
        let r = HygraRuntime.execute(&g, &Bfs::default(), &RunConfig::new());
        // v0 -> h0/h2 (1) -> v2,v4,v6 (2) -> h1 (3) -> v1,v3,v5 (4).
        assert_eq!(r.state.vertex_value, vec![0.0, 4.0, 2.0, 4.0, 2.0, 4.0, 2.0]);
        assert_eq!(r.state.hyperedge_value, vec![1.0, 3.0, 1.0, 5.0]);
    }

    #[test]
    fn matches_reference_on_random_inputs() {
        for seed in [1u64, 7, 42] {
            let g = hypergraph::generate::GeneratorConfig::new(400, 300).with_seed(seed).generate();
            let r = HygraRuntime.execute(&g, &Bfs::default(), &RunConfig::new());
            let (vd, hd) = reference::bfs(&g, VertexId::new(0));
            assert_eq!(r.state.vertex_value, vd, "seed {seed}");
            assert_eq!(r.state.hyperedge_value, hd, "seed {seed}");
        }
    }

    #[test]
    fn source_choice_matters() {
        let g = hypergraph::fig1_example();
        let r = HygraRuntime.execute(&g, &Bfs::new(VertexId::new(5)), &RunConfig::new());
        assert_eq!(r.state.vertex_value[5], 0.0);
        assert_eq!(r.state.vertex_value[1], 2.0); // v5 -> h1 -> v1
        assert_eq!(r.state.vertex_value[0], 4.0); // v5 -> h1 -> v2 -> h2 -> v0
    }
}
