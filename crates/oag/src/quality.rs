//! Schedule-quality analysis.
//!
//! The whole premise of chain-driven scheduling is that consecutive
//! scheduled elements share incident elements. This module quantifies that
//! property for any schedule, which is how the chain generator's output can
//! be evaluated *without* running the architectural simulator — useful for
//! tuning `W_min`/`D_max` and for regression-testing the walk itself.

use crate::ChainSet;
use hypergraph::{Hypergraph, Side};
use serde::{Deserialize, Serialize};

/// Structural statistics of a [`ChainSet`].
#[derive(Clone, Copy, PartialEq, Debug, Default, Serialize, Deserialize)]
pub struct ChainStats {
    /// Number of chains.
    pub num_chains: usize,
    /// Total scheduled elements.
    pub num_elements: usize,
    /// Chain-count-weighted mean length.
    pub mean_len: f64,
    /// Element-weighted mean length (the length an average *element* sees;
    /// dominated by the long chains that carry the reuse).
    pub element_weighted_len: f64,
    /// Longest chain.
    pub max_len: usize,
    /// Fraction of elements in singleton chains (no reuse partner).
    pub singleton_fraction: f64,
}

/// Computes [`ChainStats`] for a chain set.
///
/// ```
/// use hypergraph::{Frontier, Side};
/// use oag::{generate_chains, quality::chain_stats, ChainConfig, OagConfig};
/// let g = hypergraph::fig1_example();
/// let oag = OagConfig::new().with_w_min(1).build(&g, Side::Hyperedge);
/// let chains = generate_chains(&oag, &Frontier::full(4), 0..4, &ChainConfig::default());
/// let s = chain_stats(&chains);
/// assert_eq!(s.num_chains, 1);
/// assert_eq!(s.max_len, 4);
/// assert_eq!(s.singleton_fraction, 0.0);
/// ```
pub fn chain_stats(chains: &ChainSet) -> ChainStats {
    let num_chains = chains.num_chains();
    let num_elements = chains.num_elements();
    if num_elements == 0 {
        return ChainStats::default();
    }
    let mut weighted = 0usize;
    let mut singletons = 0usize;
    for chain in chains.iter() {
        weighted += chain.len() * chain.len();
        if chain.len() == 1 {
            singletons += 1;
        }
    }
    ChainStats {
        num_chains,
        num_elements,
        mean_len: num_elements as f64 / num_chains as f64,
        element_weighted_len: weighted as f64 / num_elements as f64,
        max_len: chains.max_chain_len(),
        singleton_fraction: singletons as f64 / num_elements as f64,
    }
}

/// The *shared-incidence fraction* of a schedule: over consecutive pairs of
/// scheduled `side` elements, the fraction of the successor's incidence list
/// already present in its predecessor's — exactly the fraction of
/// destination-value accesses a cache can serve from the previous element's
/// working set. Index order on a well-mixed input scores near 0; perfect
/// near-duplicate chains approach 1.
///
/// ```
/// use hypergraph::Side;
/// use oag::quality::shared_incidence_fraction;
/// let g = hypergraph::fig1_example();
/// // The paper's chain <h0, h2, h1, h3>: h2 reuses 2/3, h1 reuses 1/4,
/// // h3 reuses 2/2 of their predecessors' incident vertices.
/// let f = shared_incidence_fraction(&g, Side::Hyperedge, &[0, 2, 1, 3]);
/// assert!(f > 0.5);
/// // Index order <h0, h1, h2, h3> shares much less.
/// assert!(shared_incidence_fraction(&g, Side::Hyperedge, &[0, 1, 2, 3]) < f);
/// ```
pub fn shared_incidence_fraction(g: &Hypergraph, side: Side, schedule: &[u32]) -> f64 {
    let mut shared = 0usize;
    let mut total = 0usize;
    for w in schedule.windows(2) {
        let prev = g.incidence(side, w[0]);
        let cur = g.incidence(side, w[1]);
        shared += cur.iter().filter(|x| prev.contains(x)).count();
        total += cur.len();
    }
    if total == 0 {
        0.0
    } else {
        shared as f64 / total as f64
    }
}

/// Shared-incidence fraction evaluated per chain (pairs never straddle a
/// chain boundary), the quantity the chain generator actually optimizes.
pub fn chained_incidence_fraction(g: &Hypergraph, side: Side, chains: &ChainSet) -> f64 {
    let mut shared = 0usize;
    let mut total = 0usize;
    for chain in chains.iter() {
        for w in chain.windows(2) {
            let prev = g.incidence(side, w[0]);
            let cur = g.incidence(side, w[1]);
            shared += cur.iter().filter(|x| prev.contains(x)).count();
            total += cur.len();
        }
        // Chain heads (and singletons) have no predecessor: count their
        // incidence as unshared so the metric reflects whole-phase reuse.
        if let Some(&head) = chain.first() {
            total += g.incidence(side, head).len();
        }
    }
    if total == 0 {
        0.0
    } else {
        shared as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_chains, ChainConfig, OagConfig};
    use hypergraph::Frontier;

    fn family_graph() -> Hypergraph {
        hypergraph::generate::GeneratorConfig::new(4_000, 2_000)
            .with_seed(3)
            .with_family_range(8, 64)
            .with_member_prob(0.85)
            .generate()
    }

    #[test]
    fn chains_score_higher_than_index_order() {
        let g = family_graph();
        let oag = OagConfig::new().build(&g, Side::Hyperedge);
        let n = g.num_hyperedges() as u32;
        let chains =
            generate_chains(&oag, &Frontier::full(n as usize), 0..n, &ChainConfig::default());
        let chain_frac = shared_incidence_fraction(&g, Side::Hyperedge, chains.schedule());
        let index: Vec<u32> = (0..n).collect();
        let index_frac = shared_incidence_fraction(&g, Side::Hyperedge, &index);
        assert!(
            chain_frac > index_frac + 0.2,
            "chains ({chain_frac:.3}) must clearly beat index order ({index_frac:.3})"
        );
    }

    #[test]
    fn chained_fraction_never_exceeds_pairwise_fraction_bound() {
        let g = family_graph();
        let oag = OagConfig::new().build(&g, Side::Hyperedge);
        let n = g.num_hyperedges() as u32;
        let chains =
            generate_chains(&oag, &Frontier::full(n as usize), 0..n, &ChainConfig::default());
        let f = chained_incidence_fraction(&g, Side::Hyperedge, &chains);
        assert!((0.0..=1.0).contains(&f));
        assert!(f > 0.2, "family input must yield substantial chained reuse ({f:.3})");
    }

    #[test]
    fn stats_of_empty_and_trivial_sets() {
        let empty = ChainSet::new();
        assert_eq!(chain_stats(&empty), ChainStats::default());
        let g = hypergraph::fig1_example();
        let oag = OagConfig::new().with_w_min(3).build(&g, Side::Hyperedge);
        let chains = generate_chains(&oag, &Frontier::full(4), 0..4, &ChainConfig::default());
        let s = chain_stats(&chains);
        assert_eq!(s.num_chains, 4, "W_min=3 isolates every hyperedge of fig1");
        assert_eq!(s.singleton_fraction, 1.0);
        assert_eq!(s.element_weighted_len, 1.0);
    }

    #[test]
    fn element_weighted_exceeds_count_weighted_on_skewed_sets() {
        let g = family_graph();
        let oag = OagConfig::new().build(&g, Side::Hyperedge);
        let n = g.num_hyperedges() as u32;
        let chains =
            generate_chains(&oag, &Frontier::full(n as usize), 0..n, &ChainConfig::default());
        let s = chain_stats(&chains);
        assert!(s.element_weighted_len >= s.mean_len);
        assert!(s.max_len <= 16);
    }

    #[test]
    fn empty_schedule_scores_zero() {
        let g = hypergraph::fig1_example();
        assert_eq!(shared_incidence_fraction(&g, Side::Hyperedge, &[]), 0.0);
        assert_eq!(shared_incidence_fraction(&g, Side::Hyperedge, &[1]), 0.0);
    }
}
