//! Chain storage.
//!
//! Following §IV-B, all chains generated for one phase share a single queue;
//! each chain is recorded as an offset range into that queue (the software
//! analogue of `NEWCHAIN(c)` recording the chain queue's offset).

use hypergraph::{Frontier, ValidationError};
use serde::{Deserialize, Serialize};
use std::ops::Range;

/// A set of chains over one side's element ids, stored as a shared queue plus
/// chain start offsets.
///
/// The concatenation of all chains is the **schedule**: the order in which
/// elements will be processed. Chain generation guarantees the schedule is a
/// permutation of the active set.
#[derive(Clone, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct ChainSet {
    queue: Vec<u32>,
    starts: Vec<u32>,
}

impl ChainSet {
    /// Creates an empty chain set.
    pub fn new() -> Self {
        ChainSet::default()
    }

    /// Creates an empty chain set with room for `elements` scheduled
    /// elements (and as many chain starts — every chain holds at least one
    /// element, so that bounds both arrays). Capacity is invisible to
    /// `Eq`/serialization; chain generation sizes the queue once from the
    /// frontier cardinality instead of growing it in doublings.
    pub(crate) fn with_capacity(elements: usize) -> Self {
        ChainSet { queue: Vec::with_capacity(elements), starts: Vec::with_capacity(elements) }
    }

    /// Builds a chain set from explicit per-chain element lists.
    ///
    /// Chain generation produces [`ChainSet`]s internally; this constructor
    /// exists for external schedules (replays, fault-injection fixtures) so
    /// they can be checked with [`ChainSet::validate_cover`] like any other
    /// schedule.
    pub fn from_chains<I, C>(chains: I) -> Self
    where
        I: IntoIterator<Item = C>,
        C: IntoIterator<Item = u32>,
    {
        let mut set = ChainSet::new();
        for chain in chains {
            set.begin_chain();
            for e in chain {
                set.push_element(e);
            }
        }
        set.end_generation();
        set
    }

    pub(crate) fn push_element(&mut self, e: u32) {
        self.queue.push(e);
    }

    pub(crate) fn begin_chain(&mut self) {
        self.starts.push(self.queue.len() as u32);
    }

    pub(crate) fn end_generation(&mut self) {
        // Drop a trailing empty chain marker, if any.
        if self.starts.last().copied() == Some(self.queue.len() as u32) {
            self.starts.pop();
        }
    }

    /// Number of chains.
    pub fn num_chains(&self) -> usize {
        self.starts.len()
    }

    /// Total number of scheduled elements across all chains.
    pub fn num_elements(&self) -> usize {
        self.queue.len()
    }

    /// Returns `true` if no elements were scheduled.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// The `i`-th chain, as a slice of element ids in schedule order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_chains()`.
    pub fn chain(&self, i: usize) -> &[u32] {
        let lo = self.starts[i] as usize;
        let hi = self.starts.get(i + 1).map_or(self.queue.len(), |&s| s as usize);
        &self.queue[lo..hi]
    }

    /// Iterates all chains in generation order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> + '_ {
        (0..self.num_chains()).map(move |i| self.chain(i))
    }

    /// The flat schedule: every element in processing order.
    pub fn schedule(&self) -> &[u32] {
        &self.queue
    }

    /// Length of the longest chain (0 if empty) — used by the chain-length
    /// skew analysis around `D_max` (Fig. 17).
    pub fn max_chain_len(&self) -> usize {
        self.iter().map(<[u32]>::len).max().unwrap_or(0)
    }

    /// Proves this chain set is a *cover* of the active elements of
    /// `range`: the flat schedule visits every element of `active` within
    /// `range` exactly once and nothing else. This is the paper's §IV
    /// reordering invariant — the property that makes chain-driven
    /// execution a pure permutation of index order — checked explicitly, so
    /// a corrupted schedule (dropped hyperedge, double visit) is rejected
    /// *before* it silently produces a wrong answer.
    ///
    /// Returns the first violation as a typed [`ValidationError`].
    pub fn validate_cover(
        &self,
        active: &Frontier,
        range: Range<u32>,
    ) -> Result<(), ValidationError> {
        let width = (range.end.saturating_sub(range.start)) as usize;
        let mut visited = vec![false; width];
        for &e in &self.queue {
            if !range.contains(&e) {
                return Err(ValidationError::ChainElementOutOfRange {
                    element: e,
                    start: range.start,
                    end: range.end,
                });
            }
            if !active.contains(e) {
                return Err(ValidationError::ChainElementInactive { element: e });
            }
            let slot = (e - range.start) as usize;
            if visited[slot] {
                return Err(ValidationError::ChainDuplicateVisit { element: e });
            }
            visited[slot] = true;
        }
        for e in range.clone() {
            if active.contains(e) && !visited[(e - range.start) as usize] {
                return Err(ValidationError::ChainMissedElement { element: e });
            }
        }
        Ok(())
    }

    /// Mean chain length (0.0 if empty).
    pub fn mean_chain_len(&self) -> f64 {
        if self.num_chains() == 0 {
            0.0
        } else {
            self.num_elements() as f64 / self.num_chains() as f64
        }
    }
}

impl<'a> IntoIterator for &'a ChainSet {
    type Item = &'a [u32];
    type IntoIter = Box<dyn Iterator<Item = &'a [u32]> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ChainSet {
        let mut c = ChainSet::new();
        c.begin_chain();
        c.push_element(0);
        c.push_element(2);
        c.begin_chain();
        c.push_element(1);
        c.begin_chain(); // empty trailing chain, removed by end_generation
        c.end_generation();
        c
    }

    #[test]
    fn chains_and_schedule() {
        let c = sample();
        assert_eq!(c.num_chains(), 2);
        assert_eq!(c.num_elements(), 3);
        assert_eq!(c.chain(0), &[0, 2]);
        assert_eq!(c.chain(1), &[1]);
        assert_eq!(c.schedule(), &[0, 2, 1]);
    }

    #[test]
    fn iter_yields_all_chains() {
        let c = sample();
        let lens: Vec<usize> = c.iter().map(<[u32]>::len).collect();
        assert_eq!(lens, vec![2, 1]);
        assert_eq!((&c).into_iter().count(), 2);
    }

    #[test]
    fn length_statistics() {
        let c = sample();
        assert_eq!(c.max_chain_len(), 2);
        assert!((c.mean_chain_len() - 1.5).abs() < 1e-12);
        let empty = ChainSet::new();
        assert_eq!(empty.max_chain_len(), 0);
        assert_eq!(empty.mean_chain_len(), 0.0);
        assert!(empty.is_empty());
    }

    #[test]
    fn from_chains_matches_incremental_construction() {
        let c = ChainSet::from_chains(vec![vec![0u32, 2], vec![1]]);
        assert_eq!(c, sample());
    }

    #[test]
    fn validate_cover_accepts_exact_permutations() {
        let active = Frontier::from_iter(4, [0, 1, 2]);
        let c = ChainSet::from_chains(vec![vec![0u32, 2], vec![1]]);
        assert!(c.validate_cover(&active, 0..4).is_ok());
    }

    #[test]
    fn validate_cover_rejects_each_fault() {
        let active = Frontier::from_iter(4, [0, 1, 2]);

        // Dropped element: 1 is active but never scheduled.
        let dropped = ChainSet::from_chains(vec![vec![0u32, 2]]);
        assert_eq!(
            dropped.validate_cover(&active, 0..4),
            Err(ValidationError::ChainMissedElement { element: 1 })
        );

        // Double visit.
        let doubled = ChainSet::from_chains(vec![vec![0u32, 2], vec![1, 2]]);
        assert_eq!(
            doubled.validate_cover(&active, 0..4),
            Err(ValidationError::ChainDuplicateVisit { element: 2 })
        );

        // Inactive element scheduled.
        let inactive = ChainSet::from_chains(vec![vec![0u32, 2, 3], vec![1]]);
        assert_eq!(
            inactive.validate_cover(&active, 0..4),
            Err(ValidationError::ChainElementInactive { element: 3 })
        );

        // Element outside the chunk range.
        let escaped = ChainSet::from_chains(vec![vec![0u32, 2], vec![1]]);
        assert_eq!(
            escaped.validate_cover(&active, 0..2),
            Err(ValidationError::ChainElementOutOfRange { element: 2, start: 0, end: 2 })
        );
    }

    #[test]
    fn end_generation_is_idempotent() {
        let mut c = sample();
        c.end_generation();
        assert_eq!(c.num_chains(), 2);
    }
}
