//! Retained reference kernels (pre-flattening implementations).
//!
//! These are the OAG-construction and chain-generation kernels exactly as
//! they shipped before the cache-friendly rewrite: two-hop counting with a
//! clear-as-you-drain dense counter (a zeroing store per drained candidate
//! per row) and a full-row sort ahead of the degree cap, and a chain walk
//! that allocates a fresh `Vec<bool>` visited array per invocation.
//!
//! Compiled only under `cfg(test)` or the `reference-kernels` feature.
//! The workspace identity suite proves the optimized kernels produce
//! byte-identical [`Oag`]s / [`ChainSet`]s / build statistics against
//! these, across random geometries, datasets and thread counts; the
//! `hotpath` benchmark reports the speedup over them.

use crate::{ChainConfig, ChainObserver, ChainSet, NoopObserver, Oag, OagBuildStats, OagConfig};
use hypergraph::{Frontier, Hypergraph, Side};
use std::ops::Range;

/// The pre-rewrite serial OAG build, preserved verbatim from the original
/// `build_with_stats_threads` pipeline: two-hop counting with a
/// clear-as-you-drain scratch and a full-row sort, rows staged into
/// span-local buffers, then a merge pass copying them into the final CSR
/// arrays (the threaded build's concatenation step, which the original
/// serial path also paid with a single span). Produces the same
/// `(Oag, OagBuildStats)` as [`OagConfig::build_with_stats`].
pub fn build_with_stats(cfg: &OagConfig, g: &Hypergraph, side: Side) -> (Oag, OagBuildStats) {
    let n = g.num_on(side);

    // --- staging: count the single span 0..n into span-local buffers ---
    let mut stats = OagBuildStats::default();

    // Sparse per-row counter: counts[b] = overlap weight with the pivot
    // row; `touched` remembers which slots to reset.
    let mut counts = vec![0u32; n];
    let mut touched: Vec<u32> = Vec::new();
    let mut row: Vec<(u32, u32)> = Vec::new(); // (neighbor, weight)

    let mut row_lens: Vec<u32> = Vec::with_capacity(n);
    let mut span_edges: Vec<u32> = Vec::new();
    let mut span_weights: Vec<u32> = Vec::new();
    for a in 0..n as u32 {
        for &mid in g.incidence(side, a) {
            let pivot_deg = g.degree(side.opposite(), mid);
            if pivot_deg as u64 > cfg.max_pivot_degree as u64 {
                stats.pivots_skipped += 1;
                continue;
            }
            for &b in g.incidence(side.opposite(), mid) {
                stats.two_hop_steps += 1;
                if b == a {
                    continue;
                }
                if counts[b as usize] == 0 {
                    touched.push(b);
                }
                counts[b as usize] += 1;
            }
        }
        row.clear();
        for &b in &touched {
            let w = counts[b as usize];
            counts[b as usize] = 0;
            stats.pairs_considered += 1;
            if w >= cfg.w_min {
                row.push((b, w));
            }
        }
        touched.clear();
        // Descending weight, ascending id on ties — the storage order the
        // hardware's neighbor-selection stage relies on.
        row.sort_unstable_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        row.truncate(cfg.max_degree as usize);
        stats.edges_kept += row.len();
        row_lens.push(row.len() as u32);
        for &(b, w) in &row {
            span_edges.push(b);
            span_weights.push(w);
        }
    }

    // --- merge: prefix-sum the offsets and copy the staged arrays ---
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0u32);
    let mut edges = Vec::with_capacity(span_edges.len());
    let mut weights = Vec::with_capacity(span_weights.len());
    let mut running = 0u64;
    for len in row_lens {
        running += len as u64;
        // invariant: node ids are u32 and max_degree caps edges per node,
        // so the total edge count fits u32 by construction.
        offsets.push(u32::try_from(running).expect("OAG edge count fits u32"));
    }
    edges.extend_from_slice(&span_edges);
    weights.extend_from_slice(&span_weights);
    let oag = Oag::from_parts(side, cfg.w_min, offsets, edges, weights);
    stats.size_bytes = oag.size_bytes();
    (oag, stats)
}

/// The pre-rewrite chain walk: fresh `vec![false; width]` visited array and
/// unreserved chain queue per call. Produces the same [`ChainSet`] (and the
/// same observer event sequence) as [`crate::generate_chains`].
pub fn generate_chains(
    oag: &Oag,
    frontier: &Frontier,
    range: Range<u32>,
    cfg: &ChainConfig,
) -> ChainSet {
    generate_chains_observed(oag, frontier, range, cfg, &mut NoopObserver)
}

/// [`generate_chains`] with a [`ChainObserver`] receiving every micro-step.
pub fn generate_chains_observed<O: ChainObserver>(
    oag: &Oag,
    frontier: &Frontier,
    range: Range<u32>,
    cfg: &ChainConfig,
    observer: &mut O,
) -> ChainSet {
    assert!(range.end as usize <= oag.len(), "chunk range exceeds OAG size");
    assert!(frontier.universe() >= oag.len(), "frontier universe smaller than OAG");
    let mut chains = ChainSet::new();
    if range.is_empty() {
        return chains;
    }
    let mut visited = vec![false; (range.end - range.start) as usize];
    let in_range = |e: u32| (range.start..range.end).contains(&e);
    let vis_idx = |e: u32| (e - range.start) as usize;

    for root in range.clone() {
        observer.bitmap_scan(root);
        if visited[vis_idx(root)] || !frontier.contains(root) {
            continue;
        }
        chains.begin_chain();
        let mut current = root;
        visited[vis_idx(current)] = true;
        observer.emit(current);
        chains.push_element(current);
        let mut depth = 1usize;
        'walk: while depth < cfg.d_max {
            observer.offsets_fetch(current);
            let (lo, hi) = oag.edge_range(current);
            let neighbors = oag.edges();
            let mut next = None;
            for (j, &cand) in neighbors.iter().enumerate().take(hi).skip(lo) {
                observer.edge_scan(j);
                if in_range(cand) && !visited[vis_idx(cand)] && frontier.contains(cand) {
                    next = Some(cand);
                    break;
                }
            }
            let Some(cand) = next else {
                break 'walk;
            };
            current = cand;
            visited[vis_idx(current)] = true;
            observer.emit(current);
            chains.push_element(current);
            depth += 1;
        }
        observer.chain_end();
    }
    chains.end_generation();
    chains
}
