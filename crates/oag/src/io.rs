//! Binary OAG serialization.
//!
//! OAG construction is the expensive preprocessing step the paper amortizes
//! across algorithm executions (§IV-A, §VI-G). This module provides the
//! compact on-disk format a system would cache it in: a magic/version
//! header, the side tag and `W_min`, then the three raw arrays
//! (`OAG_offset`, `OAG_edge`, `OAG_weight`) in little-endian.

use crate::Oag;
use hypergraph::Side;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

const MAGIC: &[u8; 4] = b"CHGO";
const VERSION: u32 = 1;

/// Error returned by [`read_binary`].
#[derive(Debug)]
pub enum ReadOagError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Bad magic, version, or inconsistent arrays.
    Malformed(String),
}

impl fmt::Display for ReadOagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadOagError::Io(e) => write!(f, "i/o error: {e}"),
            ReadOagError::Malformed(m) => write!(f, "malformed OAG file: {m}"),
        }
    }
}

impl Error for ReadOagError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadOagError::Io(e) => Some(e),
            ReadOagError::Malformed(_) => None,
        }
    }
}

impl From<std::io::Error> for ReadOagError {
    fn from(e: std::io::Error) -> Self {
        ReadOagError::Io(e)
    }
}

fn write_u32s<W: Write>(w: &mut W, values: &[u32]) -> std::io::Result<()> {
    w.write_all(&(values.len() as u64).to_le_bytes())?;
    for &v in values {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_u32s<R: BufRead>(r: &mut R) -> Result<Vec<u32>, ReadOagError> {
    let mut len8 = [0u8; 8];
    r.read_exact(&mut len8)?;
    let len = u64::from_le_bytes(len8) as usize;
    let mut out = Vec::with_capacity(len.min(1 << 24));
    let mut buf = [0u8; 4];
    for _ in 0..len {
        r.read_exact(&mut buf)?;
        out.push(u32::from_le_bytes(buf));
    }
    Ok(out)
}

/// Writes `oag` in the binary format.
///
/// # Errors
///
/// Propagates any I/O error from `w`.
pub fn write_binary<W: Write>(oag: &Oag, mut w: W) -> std::io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&[match oag.side() {
        Side::Vertex => 0u8,
        Side::Hyperedge => 1,
    }])?;
    w.write_all(&oag.w_min().to_le_bytes())?;
    write_u32s(&mut w, oag.offsets())?;
    write_u32s(&mut w, oag.edges())?;
    write_u32s(&mut w, oag.weights())?;
    Ok(())
}

/// Reads an OAG written by [`write_binary`].
///
/// # Errors
///
/// Returns [`ReadOagError::Malformed`] for header or consistency problems
/// and [`ReadOagError::Io`] for underlying failures (including truncation).
pub fn read_binary<R: BufRead>(mut r: R) -> Result<Oag, ReadOagError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ReadOagError::Malformed(format!("bad magic {magic:?}")));
    }
    let mut ver = [0u8; 4];
    r.read_exact(&mut ver)?;
    if u32::from_le_bytes(ver) != VERSION {
        return Err(ReadOagError::Malformed("unsupported version".into()));
    }
    let mut side_byte = [0u8; 1];
    r.read_exact(&mut side_byte)?;
    let side = match side_byte[0] {
        0 => Side::Vertex,
        1 => Side::Hyperedge,
        other => return Err(ReadOagError::Malformed(format!("bad side tag {other}"))),
    };
    let mut wmin4 = [0u8; 4];
    r.read_exact(&mut wmin4)?;
    let w_min = u32::from_le_bytes(wmin4);
    let offsets = read_u32s(&mut r)?;
    let edges = read_u32s(&mut r)?;
    let weights = read_u32s(&mut r)?;
    if offsets.is_empty()
        || !offsets.windows(2).all(|w| w[0] <= w[1])
        || *offsets.last().expect("nonempty") as usize != edges.len()
        || edges.len() != weights.len()
    {
        return Err(ReadOagError::Malformed("inconsistent arrays".into()));
    }
    let n = offsets.len() as u32 - 1;
    if edges.iter().any(|&e| e >= n) {
        return Err(ReadOagError::Malformed("edge target out of range".into()));
    }
    Ok(Oag::from_parts(side, w_min, offsets, edges, weights))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OagConfig;

    fn sample() -> Oag {
        let g = hypergraph::generate::GeneratorConfig::new(400, 300).with_seed(3).generate();
        OagConfig::new().with_w_min(2).build(&g, Side::Hyperedge)
    }

    #[test]
    fn roundtrip() {
        let oag = sample();
        let mut buf = Vec::new();
        write_binary(&oag, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(back, oag);
        assert_eq!(back.side(), Side::Hyperedge);
        assert_eq!(back.w_min(), 2);
    }

    #[test]
    fn rejects_corruption() {
        let oag = sample();
        let mut buf = Vec::new();
        write_binary(&oag, &mut buf).unwrap();
        let mut bad = buf.clone();
        bad[0] = b'Z';
        assert!(matches!(read_binary(&bad[..]).unwrap_err(), ReadOagError::Malformed(_)));
        let truncated = &buf[..buf.len() / 2];
        assert!(matches!(read_binary(truncated).unwrap_err(), ReadOagError::Io(_)));
        let mut bad_side = buf.clone();
        bad_side[8] = 7;
        assert!(matches!(read_binary(&bad_side[..]).unwrap_err(), ReadOagError::Malformed(_)));
    }

    #[test]
    fn vertex_side_roundtrips_too() {
        let g = hypergraph::fig1_example();
        let oag = OagConfig::new().with_w_min(1).build(&g, Side::Vertex);
        let mut buf = Vec::new();
        write_binary(&oag, &mut buf).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), oag);
    }
}
