//! Binary OAG serialization.
//!
//! OAG construction is the expensive preprocessing step the paper amortizes
//! across algorithm executions (§IV-A, §VI-G). This module provides the
//! compact on-disk format a system would cache it in: a magic/version
//! header, the side tag and `W_min`, then the three raw arrays
//! (`OAG_offset`, `OAG_edge`, `OAG_weight`) in little-endian, and — since
//! format v2 — a trailing FNV-1a checksum of everything before it so
//! storage corruption is detected at read time instead of being
//! deserialized into a silently wrong OAG.

use crate::Oag;
use hypergraph::checksum::{HashingReader, HashingWriter};
use hypergraph::Side;
use std::error::Error;
use std::fmt;
use std::io::{Read, Write};

const MAGIC: &[u8; 4] = b"CHGO";
/// Version written by [`write_binary`]; [`read_binary`] also accepts the
/// checksum-less legacy v1.
const VERSION: u32 = 2;
/// Oldest version [`read_binary`] accepts.
const MIN_VERSION: u32 = 1;
/// Upper bound on a deserialized array length (ids are `u32`, so any real
/// OAG fits well under this); larger values can only be corruption.
const MAX_ARRAY_LEN: u64 = 1 << 33;

/// Error returned by [`read_binary`].
#[derive(Debug)]
pub enum ReadOagError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Bad magic, version, or inconsistent arrays.
    Malformed(String),
    /// The trailing v2 checksum did not match the file contents.
    ChecksumMismatch {
        /// Digest stored in the file trailer.
        stored: u64,
        /// Digest computed over the bytes actually read.
        computed: u64,
    },
}

impl fmt::Display for ReadOagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadOagError::Io(e) => write!(f, "i/o error: {e}"),
            ReadOagError::Malformed(m) => write!(f, "malformed OAG file: {m}"),
            ReadOagError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "OAG checksum mismatch: file says {stored:#018x}, contents hash to {computed:#018x}"
                )
            }
        }
    }
}

impl Error for ReadOagError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ReadOagError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ReadOagError {
    fn from(e: std::io::Error) -> Self {
        ReadOagError::Io(e)
    }
}

fn write_u32s<W: Write>(w: &mut W, values: &[u32]) -> std::io::Result<()> {
    w.write_all(&(values.len() as u64).to_le_bytes())?;
    for &v in values {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_u32s<R: Read>(r: &mut R, what: &str) -> Result<Vec<u32>, ReadOagError> {
    let mut len8 = [0u8; 8];
    r.read_exact(&mut len8)?;
    let len = u64::from_le_bytes(len8);
    if len > MAX_ARRAY_LEN {
        return Err(ReadOagError::Malformed(format!(
            "implausible {what} length {len} (corrupt length field?)"
        )));
    }
    let len = len as usize;
    let mut out = Vec::with_capacity(len.min(1 << 24));
    let mut buf = [0u8; 4];
    for _ in 0..len {
        r.read_exact(&mut buf)?;
        out.push(u32::from_le_bytes(buf));
    }
    Ok(out)
}

/// Writes `oag` in the binary format (v2: payload plus trailing FNV-1a
/// checksum).
///
/// # Errors
///
/// Propagates any I/O error from `w`.
pub fn write_binary<W: Write>(oag: &Oag, w: W) -> std::io::Result<()> {
    let mut w = HashingWriter::new(w);
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&[match oag.side() {
        Side::Vertex => 0u8,
        Side::Hyperedge => 1,
    }])?;
    w.write_all(&oag.w_min().to_le_bytes())?;
    write_u32s(&mut w, oag.offsets())?;
    write_u32s(&mut w, oag.edges())?;
    write_u32s(&mut w, oag.weights())?;
    let digest = w.digest();
    w.into_inner().write_all(&digest.to_le_bytes())
}

/// Reads an OAG written by [`write_binary`]. Accepts both format versions:
/// v2 (current, trailing checksum verified) and the legacy checksum-less
/// v1. Every deserialized offset and edge id is bounds-validated before
/// the OAG is constructed.
///
/// # Errors
///
/// Returns [`ReadOagError::Malformed`] for header or consistency problems,
/// [`ReadOagError::ChecksumMismatch`] when the v2 trailer disagrees with
/// the contents, and [`ReadOagError::Io`] for underlying failures
/// (including truncation).
pub fn read_binary<R: Read>(r: R) -> Result<Oag, ReadOagError> {
    let mut r = HashingReader::new(r);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(ReadOagError::Malformed(format!("bad magic {magic:?}")));
    }
    let mut ver = [0u8; 4];
    r.read_exact(&mut ver)?;
    let version = u32::from_le_bytes(ver);
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(ReadOagError::Malformed(format!("unsupported version {version}")));
    }
    let mut side_byte = [0u8; 1];
    r.read_exact(&mut side_byte)?;
    let side = match side_byte[0] {
        0 => Side::Vertex,
        1 => Side::Hyperedge,
        other => return Err(ReadOagError::Malformed(format!("bad side tag {other}"))),
    };
    let mut wmin4 = [0u8; 4];
    r.read_exact(&mut wmin4)?;
    let w_min = u32::from_le_bytes(wmin4);
    let offsets = read_u32s(&mut r, "offsets")?;
    let edges = read_u32s(&mut r, "edges")?;
    let weights = read_u32s(&mut r, "weights")?;
    if version >= 2 {
        let computed = r.digest();
        let mut trailer = [0u8; 8];
        r.get_mut().read_exact(&mut trailer)?;
        let stored = u64::from_le_bytes(trailer);
        if stored != computed {
            return Err(ReadOagError::ChecksumMismatch { stored, computed });
        }
    }
    let Some(&last) = offsets.last() else {
        return Err(ReadOagError::Malformed("empty offsets".into()));
    };
    if !offsets.windows(2).all(|w| w[0] <= w[1])
        || last as usize != edges.len()
        || edges.len() != weights.len()
    {
        return Err(ReadOagError::Malformed("inconsistent arrays".into()));
    }
    let n = offsets.len() as u32 - 1;
    if edges.iter().any(|&e| e >= n) {
        return Err(ReadOagError::Malformed("edge target out of range".into()));
    }
    Ok(Oag::from_parts(side, w_min, offsets, edges, weights))
}

/// Rewrites a v2 binary blob as the legacy v1 format (patch the version
/// field, drop the checksum trailer). Exposed for compatibility tests and
/// migration tooling; new files should always be v2.
pub fn downgrade_binary_to_v1(v2: &[u8]) -> Option<Vec<u8>> {
    if v2.len() < 16 || &v2[..4] != MAGIC {
        return None;
    }
    if u32::from_le_bytes([v2[4], v2[5], v2[6], v2[7]]) != 2 {
        return None;
    }
    let mut v1 = v2[..v2.len() - 8].to_vec();
    v1[4..8].copy_from_slice(&1u32.to_le_bytes());
    Some(v1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OagConfig;

    fn sample() -> Oag {
        let g = hypergraph::generate::GeneratorConfig::new(400, 300).with_seed(3).generate();
        OagConfig::new().with_w_min(2).build(&g, Side::Hyperedge)
    }

    #[test]
    fn roundtrip() {
        let oag = sample();
        let mut buf = Vec::new();
        write_binary(&oag, &mut buf).unwrap();
        let back = read_binary(&buf[..]).unwrap();
        assert_eq!(back, oag);
        assert_eq!(back.side(), Side::Hyperedge);
        assert_eq!(back.w_min(), 2);
    }

    #[test]
    fn rejects_corruption() {
        let oag = sample();
        let mut buf = Vec::new();
        write_binary(&oag, &mut buf).unwrap();
        let mut bad = buf.clone();
        bad[0] = b'Z';
        assert!(matches!(read_binary(&bad[..]).unwrap_err(), ReadOagError::Malformed(_)));
        let truncated = &buf[..buf.len() / 2];
        assert!(matches!(read_binary(truncated).unwrap_err(), ReadOagError::Io(_)));
        let mut bad_side = buf.clone();
        bad_side[8] = 7;
        assert!(matches!(read_binary(&bad_side[..]).unwrap_err(), ReadOagError::Malformed(_)));
    }

    #[test]
    fn payload_flip_is_a_checksum_mismatch() {
        let oag = sample();
        let mut buf = Vec::new();
        write_binary(&oag, &mut buf).unwrap();
        let mid = buf.len() / 2;
        buf[mid] ^= 0x01;
        assert!(matches!(
            read_binary(&buf[..]).unwrap_err(),
            ReadOagError::ChecksumMismatch { .. } | ReadOagError::Malformed(_)
        ));
    }

    #[test]
    fn v1_files_still_read() {
        let oag = sample();
        let mut v2 = Vec::new();
        write_binary(&oag, &mut v2).unwrap();
        let v1 = downgrade_binary_to_v1(&v2).expect("well-formed v2 blob");
        assert_eq!(read_binary(&v1[..]).unwrap(), oag, "v1 must remain readable");
    }

    #[test]
    fn implausible_length_is_rejected_quickly() {
        let oag = sample();
        let mut buf = Vec::new();
        write_binary(&oag, &mut buf).unwrap();
        // Offsets length lives right after magic+version+side+wmin = 13.
        buf[13..21].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_binary(&buf[..]).is_err());
    }

    #[test]
    fn vertex_side_roundtrips_too() {
        let g = hypergraph::fig1_example();
        let oag = OagConfig::new().with_w_min(1).build(&g, Side::Vertex);
        let mut buf = Vec::new();
        write_binary(&oag, &mut buf).unwrap();
        assert_eq!(read_binary(&buf[..]).unwrap(), oag);
    }
}
