//! The overlap-aware abstraction graph.

use hypergraph::validate::{validate_offsets, validate_targets};
use hypergraph::{Side, ValidationError};
use serde::{Deserialize, Serialize};

/// An overlap-aware abstraction graph (paper Definition 1).
///
/// One OAG vertex per element of the chosen [`Side`] of the hypergraph; an
/// edge `(a, b)` with weight `w` means elements `a` and `b` share `w`
/// opposite-side elements, with `w >= w_min`.
///
/// Stored in CSR form with three parallel arrays — `OAG_offset`, `OAG_edge`,
/// `OAG_weight` (Fig. 13) — and, crucially for the hardware's *neighbor
/// selection* stage, each row's edges are pre-sorted by **descending weight**
/// (ties broken by ascending id) so the maximal-weight successor is always
/// the first valid entry (§IV-B: "we enforce to store the CSR-based edges of
/// each vertex in a descending order according to their weights").
///
/// Construct via [`OagConfig::build`](crate::OagConfig::build).
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Oag {
    side: Side,
    w_min: u32,
    offsets: Vec<u32>,
    edges: Vec<u32>,
    weights: Vec<u32>,
}

impl Oag {
    pub(crate) fn from_parts(
        side: Side,
        w_min: u32,
        offsets: Vec<u32>,
        edges: Vec<u32>,
        weights: Vec<u32>,
    ) -> Self {
        debug_assert_eq!(edges.len(), weights.len());
        debug_assert_eq!(*offsets.last().expect("offsets nonempty") as usize, edges.len());
        Oag { side, w_min, offsets, edges, weights }
    }

    /// Which hypergraph side this OAG abstracts.
    #[inline]
    pub fn side(&self) -> Side {
        self.side
    }

    /// The `W_min` threshold the OAG was built with.
    #[inline]
    pub fn w_min(&self) -> u32 {
        self.w_min
    }

    /// Number of OAG vertices (= number of `side` elements).
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Returns `true` if the OAG has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of directed edge entries (each undirected overlap is stored
    /// twice, once per endpoint).
    #[inline]
    pub fn num_edge_entries(&self) -> usize {
        self.edges.len()
    }

    /// Neighbors of element `e`, in descending-weight order.
    #[inline]
    pub fn neighbors(&self, e: u32) -> &[u32] {
        let lo = self.offsets[e as usize] as usize;
        let hi = self.offsets[e as usize + 1] as usize;
        &self.edges[lo..hi]
    }

    /// Weights parallel to [`Self::neighbors`].
    #[inline]
    pub fn weights_of(&self, e: u32) -> &[u32] {
        let lo = self.offsets[e as usize] as usize;
        let hi = self.offsets[e as usize + 1] as usize;
        &self.weights[lo..hi]
    }

    /// OAG degree of element `e`.
    #[inline]
    pub fn degree(&self, e: u32) -> usize {
        (self.offsets[e as usize + 1] - self.offsets[e as usize]) as usize
    }

    /// Half-open range of `e`'s entries in the edge/weight arrays — the pair
    /// the hardware's *offsets fetching* stage reads.
    #[inline]
    pub fn edge_range(&self, e: u32) -> (usize, usize) {
        (self.offsets[e as usize] as usize, self.offsets[e as usize + 1] as usize)
    }

    /// The weight of edge `(a, b)`, if present.
    pub fn weight(&self, a: u32, b: u32) -> Option<u32> {
        self.neighbors(a).iter().position(|&n| n == b).map(|i| self.weights_of(a)[i])
    }

    /// Raw `OAG_offset` array.
    #[inline]
    pub fn offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// Raw `OAG_edge` array.
    #[inline]
    pub fn edges(&self) -> &[u32] {
        &self.edges
    }

    /// Raw `OAG_weight` array.
    #[inline]
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// Checks every structural invariant of the OAG representation:
    /// well-formed offsets, parallel edge/weight arrays, in-range neighbor
    /// ids, no self-overlaps, every weight at least `W_min`, and each row
    /// sorted by descending weight with ties broken by ascending id (the
    /// order the hardware's neighbor-selection stage depends on, §IV-B).
    /// Returns the first violation as a typed [`ValidationError`].
    ///
    /// [`OagConfig::build`](crate::OagConfig::build) cannot produce a
    /// violation; the check exists for *untrusted* OAGs — deserialized
    /// cache artifacts and fault-injection fixtures.
    pub fn validate(&self) -> Result<(), ValidationError> {
        validate_offsets("OAG", &self.offsets, self.edges.len())?;
        if self.edges.len() != self.weights.len() {
            return Err(ValidationError::WeightCountMismatch {
                num_edges: self.edges.len(),
                num_weights: self.weights.len(),
            });
        }
        validate_targets("OAG", &self.edges, self.len())?;
        for e in 0..self.len() as u32 {
            let neighbors = self.neighbors(e);
            let weights = self.weights_of(e);
            for (pos, (&n, &w)) in neighbors.iter().zip(weights).enumerate() {
                if n == e {
                    return Err(ValidationError::SelfOverlap { element: e });
                }
                if w < self.w_min {
                    return Err(ValidationError::WeightBelowThreshold {
                        element: e,
                        neighbor: n,
                        weight: w,
                        w_min: self.w_min,
                    });
                }
                if pos > 0 {
                    let ordered =
                        w < weights[pos - 1] || (w == weights[pos - 1] && n > neighbors[pos - 1]);
                    if !ordered {
                        return Err(ValidationError::RowOrderViolation {
                            element: e,
                            position: pos,
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Resident size in bytes of the three OAG arrays — the extra storage
    /// ChGraph pays over Hygra (Fig. 21(b)).
    pub fn size_bytes(&self) -> usize {
        (self.offsets.len() + self.edges.len() + self.weights.len()) * std::mem::size_of::<u32>()
    }

    /// Extracts the per-chunk OAG for elements `range.start..range.end`
    /// (paper §IV-B: "each chunk has a hyperedge OAG or a vertex OAG").
    /// Ids keep their global values; rows outside the range are empty and
    /// edges leaving the range are dropped, so walking the restriction is
    /// exactly walking the global OAG with an in-range filter.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the OAG.
    pub fn restrict_to_range(&self, range: std::ops::Range<u32>) -> Oag {
        assert!(range.end as usize <= self.len(), "range exceeds OAG");
        let mut offsets = Vec::with_capacity(self.len() + 1);
        offsets.push(0u32);
        let mut edges = Vec::new();
        let mut weights = Vec::new();
        for e in 0..self.len() as u32 {
            if range.contains(&e) {
                for (&n, &w) in self.neighbors(e).iter().zip(self.weights_of(e)) {
                    if range.contains(&n) {
                        edges.push(n);
                        weights.push(w);
                    }
                }
            }
            offsets.push(edges.len() as u32);
        }
        Oag::from_parts(self.side, self.w_min, offsets, edges, weights)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::OagConfig;
    use hypergraph::fig1_example;

    fn fig11_oag() -> Oag {
        // Fig. 11 uses the same hypergraph as Fig. 1; its hyperedge OAG has
        // edges (h0,h2) w=2, (h1,h2) w=1, (h1,h3) w=2.
        OagConfig::new().with_w_min(1).build(&fig1_example(), Side::Hyperedge)
    }

    #[test]
    fn fig11_structure() {
        let oag = fig11_oag();
        assert_eq!(oag.len(), 4);
        assert_eq!(oag.num_edge_entries(), 6); // 3 undirected edges
        assert_eq!(oag.weight(0, 2), Some(2));
        assert_eq!(oag.weight(2, 0), Some(2));
        assert_eq!(oag.weight(1, 3), Some(2));
        assert_eq!(oag.weight(1, 2), Some(1));
        assert_eq!(oag.weight(0, 1), None);
        assert_eq!(oag.weight(0, 3), None);
    }

    #[test]
    fn neighbors_sorted_by_descending_weight() {
        let oag = fig11_oag();
        // h1 overlaps h3 (w=2) and h2 (w=1): h3 must come first.
        assert_eq!(oag.neighbors(1), &[3, 2]);
        assert_eq!(oag.weights_of(1), &[2, 1]);
    }

    #[test]
    fn edge_range_matches_neighbors() {
        let oag = fig11_oag();
        let (lo, hi) = oag.edge_range(1);
        assert_eq!(&oag.edges()[lo..hi], oag.neighbors(1));
        assert_eq!(&oag.weights()[lo..hi], oag.weights_of(1));
    }

    #[test]
    fn size_bytes_counts_three_arrays() {
        let oag = fig11_oag();
        assert_eq!(oag.size_bytes(), (5 + 6 + 6) * 4);
    }

    #[test]
    fn validate_accepts_built_oag() {
        let oag = fig11_oag();
        assert!(oag.validate().is_ok());
        assert!(oag.restrict_to_range(1..3).validate().is_ok());
    }

    #[test]
    fn validate_rejects_single_field_corruption() {
        let base = fig11_oag();

        let mut oag = base.clone();
        oag.weights[0] = 0;
        assert!(matches!(
            oag.validate(),
            Err(ValidationError::WeightBelowThreshold { weight: 0, w_min: 1, .. })
        ));

        let mut oag = base.clone();
        oag.edges[0] = 99;
        assert!(matches!(
            oag.validate(),
            Err(ValidationError::TargetOutOfRange { target: 99, .. })
        ));

        let mut oag = base.clone();
        // h1's row is [3 (w=2), 2 (w=1)]; swapping the ids breaks the
        // descending-weight order contract.
        let (lo, _) = base.edge_range(1);
        oag.edges.swap(lo, lo + 1);
        oag.weights.swap(lo, lo + 1);
        assert!(matches!(
            oag.validate(),
            Err(ValidationError::RowOrderViolation { element: 1, position: 1 })
        ));

        let mut oag = base.clone();
        oag.offsets.swap(1, 2);
        assert!(matches!(oag.validate(), Err(ValidationError::NonMonotoneOffsets { .. })));

        let mut oag = base.clone();
        oag.weights.pop();
        assert!(matches!(oag.validate(), Err(ValidationError::WeightCountMismatch { .. })));

        let mut oag = base;
        let (lo, _) = oag.edge_range(1);
        oag.edges[lo] = 1;
        assert!(matches!(oag.validate(), Err(ValidationError::SelfOverlap { element: 1 })));
    }

    #[test]
    fn metadata_accessors() {
        let oag = fig11_oag();
        assert_eq!(oag.side(), Side::Hyperedge);
        assert_eq!(oag.w_min(), 1);
        assert!(!oag.is_empty());
        assert_eq!(oag.degree(0), 1);
        assert_eq!(oag.degree(2), 2);
    }
}
